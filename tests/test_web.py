"""Tests for the web layer: HTTP objects, HTML assembly, static store."""

import pytest

from repro.web.html import Page, escape
from repro.web.http import HttpRequest, HttpResponse
from repro.web.static import StaticContentStore


# ------------------------------------------------------------------- http

def test_request_param_helpers():
    request = HttpRequest("/x", params={"a": "5", "b": "hello", "c": 3})
    assert request.int_param("a") == 5
    assert request.int_param("c") == 3
    assert request.int_param("ghost") is None
    assert request.int_param("ghost", 9) == 9
    assert request.str_param("b") == "hello"
    assert request.str_param("ghost", "d") == "d"


def test_response_byte_count_is_utf8():
    response = HttpResponse(body="héllo")
    assert response.body_bytes == len("héllo".encode("utf-8"))


def test_response_ok_ranges():
    assert HttpResponse(status=200).ok()
    assert HttpResponse(status=299).ok()
    assert not HttpResponse(status=404).ok()
    assert not HttpResponse(status=500).ok()


# ------------------------------------------------------------------- html

def test_escape_neutralizes_markup():
    assert escape('<b a="1">&') == "&lt;b a=&quot;1&quot;&gt;&amp;"
    assert escape(None) == ""
    assert escape(5) == "5"


def test_page_renders_structure():
    page = Page("My Title", site="My Site")
    page.heading("Section")
    page.paragraph("Some <raw> text")
    page.table(["a", "b"], [(1, 2), (3, 4)], caption="cap")
    page.link("/next", "Next")
    page.form("/submit", ["name"])
    html = page.render()
    assert html.startswith("<!DOCTYPE")
    assert "My Site: My Title" in html
    assert "&lt;raw&gt;" in html
    assert "<td>3</td>" in html
    assert 'action="/submit"' in html
    assert html.rstrip().endswith("</html>")


def test_page_tracks_embedded_images():
    page = Page("T")
    page.add_image("/images/x.gif")
    page.nav_buttons(["home", "browse"])
    assert page.images == ["/images/logo.gif", "/images/x.gif",
                           "/images/home.gif", "/images/browse.gif"]


# ----------------------------------------------------------------- static

def test_store_register_and_serve():
    store = StaticContentStore()
    store.register("/images/a.gif", 1000)
    assert store.size_of("/images/a.gif") == 1000
    assert store.serve("/images/a.gif") == 1000
    assert store.hits == 1
    assert store.bytes_served == 1000


def test_store_nav_fallback_is_deterministic():
    store = StaticContentStore()
    first = store.size_of("/images/unknown.gif")
    assert first == store.size_of("/images/unknown.gif")
    assert first >= store.DEFAULT_NAV_BYTES


def test_store_unknown_non_image_raises():
    store = StaticContentStore()
    with pytest.raises(KeyError):
        store.size_of("/files/readme.txt")


def test_store_item_images():
    store = StaticContentStore()
    store.register_item_images("/images/shop", 10,
                               thumb_bytes=100, detail_bytes=900)
    assert len(store) == 20
    assert store.size_of("/images/shop/thumb_3.gif") == 100
    assert store.size_of("/images/shop/image_7.gif") == 900
    assert store.total_bytes() == 10 * 1000


def test_store_rejects_negative_size():
    with pytest.raises(ValueError):
        StaticContentStore().register("/x", -1)

"""Tests for the bulletin-board extension application."""

import random

import pytest

from repro.apps.bboard import (
    BulletinBoardApp,
    READING_MIX,
    SUBMISSION_MIX,
    build_bboard_database,
)
from repro.apps.bboard.logic import INTERACTIONS, STATIC_INTERACTIONS
from repro.apps.bboard.mixes import (
    BboardState,
    make_request,
    read_write_fraction,
)
from repro.web.http import HttpRequest


@pytest.fixture(scope="module")
def app():
    return BulletinBoardApp(build_bboard_database(scale=0.0002, tiny=True))


@pytest.fixture(scope="module")
def php(app):
    return app.deploy_php()


def _state(app):
    return BboardState.from_database(app.database, random.Random(3))


def test_database_has_seven_tables(app):
    assert sorted(app.database.tables) == sorted([
        "categories", "users", "stories", "old_stories", "comments",
        "old_comments", "moderations"])


def test_sizing_ratios(app):
    db = app.database
    stories = len(db.table("stories"))
    assert len(db.table("comments")) == 10 * stories
    assert len(db.table("categories")) == 15
    # Denormalized counter matches reality at load time.
    count = db.execute(
        "SELECT COUNT(*) FROM comments WHERE story_id = 1").scalar()
    nb = db.execute(
        "SELECT nb_comments FROM stories WHERE id = 1").scalar()
    assert count == nb == 10


def test_all_sixteen_interactions_render(app, php):
    rng = random.Random(1)
    state = _state(app)
    for name in INTERACTIONS:
        response, trace = php.handle(make_request(name, rng, state))
        assert response.ok(), f"{name}: {response.status} {response.body[:80]}"


def test_static_pages_issue_no_queries(app, php):
    rng = random.Random(2)
    state = _state(app)
    for name in STATIC_INTERACTIONS:
        __, trace = php.handle(make_request(name, rng, state))
        assert trace.query_count() == 0, name


def test_home_lists_newest_first(app, php):
    response, trace = php.handle(HttpRequest("/home"))
    assert response.ok()
    # Single short query over the live stories table only.
    assert trace.query_count() == 1
    assert trace.queries()[0].tables_read == ("stories",)


def test_post_comment_updates_denormalized_counter(app, php):
    db = app.database
    state = _state(app)
    before = db.execute(
        "SELECT nb_comments FROM stories WHERE id = 3").scalar()
    response, __ = php.handle(HttpRequest("/post_comment", params={
        "story_id": 3, "subject": "hot take", **state.credentials()}))
    assert response.ok()
    after = db.execute(
        "SELECT nb_comments FROM stories WHERE id = 3").scalar()
    assert after == before + 1
    real = db.execute(
        "SELECT COUNT(*) FROM comments WHERE story_id = 3").scalar()
    assert real == after


def test_post_comment_to_archived_story_rejected(app, php):
    state = _state(app)
    archived = state.n_stories + 5
    response, __ = php.handle(HttpRequest("/post_comment", params={
        "story_id": archived, **state.credentials()}))
    assert response.status == 409


def test_moderation_updates_comment_and_author(app, php):
    db = app.database
    state = _state(app)   # state.user_id is a moderator
    target = db.execute(
        "SELECT id, author, rating FROM comments WHERE id = 7").first()
    author_rating = db.execute(
        "SELECT rating FROM users WHERE id = ?", (target[1],)).scalar()
    response, __ = php.handle(HttpRequest("/moderate_comment", params={
        "comment_id": 7, "vote": 1, **state.credentials()}))
    assert response.ok()
    assert db.execute("SELECT rating FROM comments WHERE id = 7").scalar() \
        == target[2] + 1
    assert db.execute("SELECT rating FROM users WHERE id = ?",
                      (target[1],)).scalar() == author_rating + 1
    assert db.execute("SELECT COUNT(*) FROM moderations "
                      "WHERE comment_id = 7").scalar() >= 1


def test_non_moderator_cannot_moderate(app, php):
    response, __ = php.handle(HttpRequest("/moderate_comment", params={
        "comment_id": 7, "vote": 1, "nickname": "reader1",
        "password": "word1"}))
    assert response.status == 403


def test_submit_story_appears_on_home(app, php):
    state = _state(app)
    response, __ = php.handle(HttpRequest("/submit_story", params={
        "title": "VERY FRESH HEADLINE", **state.credentials()}))
    assert response.ok()
    home, __t = php.handle(HttpRequest("/home"))
    assert "VERY FRESH HEADLINE" in home.body


def test_view_story_falls_back_to_archive(app, php):
    state = _state(app)
    response, trace = php.handle(HttpRequest("/view_story", params={
        "story_id": state.n_stories + 2}))
    assert response.ok()
    tables = {t for q in trace.queries() for t in q.tables_read}
    assert "old_stories" in tables and "old_comments" in tables


def test_register_user(app, php):
    response, __ = php.handle(HttpRequest("/register_user", params={
        "nickname": "fresh_bboard_user"}))
    assert response.ok()
    dup, __t = php.handle(HttpRequest("/register_user", params={
        "nickname": "fresh_bboard_user"}))
    assert dup.status == 409


def test_php_and_servlet_issue_identical_sql():
    app1 = BulletinBoardApp(build_bboard_database(scale=0.0002, tiny=True))
    app2 = BulletinBoardApp(build_bboard_database(scale=0.0002, tiny=True))
    php = app1.deploy_php()
    servlet = app2.deploy_servlet()
    rng1, rng2 = random.Random(7), random.Random(7)
    s1 = BboardState.from_database(app1.database, random.Random(5))
    s2 = BboardState.from_database(app2.database, random.Random(5))
    for name in INTERACTIONS:
        __, t1 = php.handle(make_request(name, rng1, s1))
        __, t2 = servlet.handle(make_request(name, rng2, s2))
        assert [q.sql for q in t1.queries()] == \
            [q.sql for q in t2.queries()], name


def test_sync_servlet_has_no_lock_statements(app):
    sync = app.deploy_servlet(sync_locking=True)
    rng = random.Random(11)
    state = _state(app)
    for name in INTERACTIONS:
        __, trace = sync.handle(make_request(name, rng, state))
        assert trace.lock_statement_count() == 0, name


def test_ejb_all_interactions_render(app):
    presentation, __ = app.deploy_ejb()
    rng = random.Random(13)
    state = _state(app)
    for name in INTERACTIONS:
        response, __t = presentation.handle(make_request(name, rng, state))
        assert response.ok(), f"{name}: {response.status}"


def test_ejb_moderation_matches_php_semantics(app):
    presentation, __ = app.deploy_ejb()
    db = app.database
    state = _state(app)
    before = db.execute("SELECT rating FROM comments WHERE id = 9").scalar()
    response, trace = presentation.handle(
        HttpRequest("/moderate_comment", params={
            "comment_id": 9, "vote": -1, **state.credentials()}))
    assert response.ok()
    assert db.execute("SELECT rating FROM comments WHERE id = 9").scalar() \
        == before - 1
    assert trace.rmi_calls()


def test_mixes_are_well_formed():
    assert sum(SUBMISSION_MIX.values()) == pytest.approx(100.0, abs=0.5)
    assert sum(READING_MIX.values()) == pytest.approx(100.0, abs=0.5)
    assert read_write_fraction(SUBMISSION_MIX) == pytest.approx(0.15,
                                                                abs=0.005)
    assert read_write_fraction(READING_MIX) == 0.0
    assert set(SUBMISSION_MIX) == set(INTERACTIONS)
    assert set(READING_MIX) <= set(INTERACTIONS)


def test_interaction_count_is_16():
    assert len(INTERACTIONS) == 16

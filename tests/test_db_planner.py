"""Unit tests for planner internals: conjuncts, access paths, joins."""

import pytest

from repro.db import Column, ColumnType, Database, IndexDef, TableSchema
from repro.db.planner import Planner, split_conjuncts
from repro.db.sql.parser import parse
from repro.db.sql import nodes as n


@pytest.fixture
def catalog():
    db = Database()
    db.create_table(TableSchema(
        name="t",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("a", ColumnType.INT),
                 Column("b", ColumnType.INT),
                 Column("name", ColumnType.VARCHAR)],
        primary_key="id", auto_increment=True,
        indexes=[IndexDef("idx_ab", ("a", "b")),
                 IndexDef("idx_name_hash", ("name",), kind="hash")]))
    db.create_table(TableSchema(
        name="u",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("t_id", ColumnType.INT)],
        primary_key="id", auto_increment=True,
        indexes=[IndexDef("idx_u_t", ("t_id",))]))
    return db


def plan_of(db, sql):
    stmt, __ = parse(sql)
    return Planner(db.tables).plan_select(stmt)


def test_split_conjuncts_flattens_nested_ands():
    stmt, __ = parse("SELECT id FROM t WHERE a = 1 AND (b = 2 AND id = 3)")
    conjuncts = split_conjuncts(stmt.where)
    assert len(conjuncts) == 3


def test_split_conjuncts_keeps_or_intact():
    stmt, __ = parse("SELECT id FROM t WHERE a = 1 OR b = 2")
    conjuncts = split_conjuncts(stmt.where)
    assert len(conjuncts) == 1
    assert isinstance(conjuncts[0], n.BoolOp)


def test_pk_equality_prefers_pk_index(catalog):
    plan = plan_of(catalog, "SELECT a FROM t WHERE id = 1")
    assert plan.paths[0].kind == "index_eq"
    assert plan.paths[0].index.name == "pk_t"


def test_composite_index_full_prefix(catalog):
    plan = plan_of(catalog, "SELECT id FROM t WHERE a = 1 AND b = 2")
    path = plan.paths[0]
    assert path.kind == "index_eq"
    assert path.index.name == "idx_ab"
    assert len(path.key_fns) == 2
    assert path.filter_fn is None        # everything covered by the key


def test_composite_index_partial_prefix(catalog):
    plan = plan_of(catalog, "SELECT id FROM t WHERE a = 1 AND name = 'x'")
    path = plan.paths[0]
    # 'name = ?' satisfies the full hash index, so it wins over the
    # single-column prefix of idx_ab... unless idx_ab's prefix is longer.
    assert path.kind == "index_eq"
    assert path.filter_fn is not None


def test_hash_index_requires_full_key(catalog):
    # Only a = ? matches idx_ab's prefix; the hash index on name cannot
    # serve a LIKE, so no hash path may be chosen.
    plan = plan_of(catalog, "SELECT id FROM t WHERE name LIKE 'x%'")
    assert plan.paths[0].kind == "scan"


def test_range_path_on_pk(catalog):
    plan = plan_of(catalog, "SELECT id FROM t WHERE id > 5 AND id < 10")
    path = plan.paths[0]
    assert path.kind == "index_range"
    assert not path.low_inclusive and not path.high_inclusive


def test_order_hint_uses_index_order_scan(catalog):
    plan = plan_of(catalog, "SELECT id FROM t ORDER BY id DESC LIMIT 3")
    assert plan.paths[0].kind == "index_order"
    assert plan.paths[0].descending
    assert plan.ordered_by_index


def test_eq_prefix_plus_next_column_order(catalog):
    plan = plan_of(catalog,
                   "SELECT id FROM t WHERE a = 1 ORDER BY b LIMIT 5")
    path = plan.paths[0]
    assert path.kind == "index_eq"
    assert path.index.name == "idx_ab"
    assert path.ordered
    assert plan.ordered_by_index


def test_order_by_unrelated_column_needs_sort(catalog):
    plan = plan_of(catalog,
                   "SELECT id FROM t WHERE a = 1 ORDER BY name")
    assert not plan.ordered_by_index


def test_join_binds_equality_to_inner_index(catalog):
    plan = plan_of(catalog,
                   "SELECT u.id FROM t JOIN u ON u.t_id = t.id "
                   "WHERE t.a = 1")
    assert [p.alias for p in plan.paths] == ["t", "u"]
    assert plan.paths[1].kind == "index_eq"
    assert plan.paths[1].index.name == "idx_u_t"


def test_comma_join_pulls_condition_from_where(catalog):
    plan = plan_of(catalog,
                   "SELECT u.id FROM t, u WHERE u.t_id = t.id AND t.a = 1")
    assert plan.paths[1].kind == "index_eq"
    assert plan.post_filter is None


def test_unbindable_cross_condition_becomes_post_filter(catalog):
    plan = plan_of(catalog,
                   "SELECT u.id FROM t, u WHERE u.t_id + 1 = t.id + 1")
    # Neither side is a bare column of the inner table: nested loop with
    # a post filter.
    assert plan.paths[1].kind == "scan"
    assert plan.post_filter is not None


def test_duplicate_alias_rejected(catalog):
    from repro.db.errors import SqlError
    with pytest.raises(SqlError):
        plan_of(catalog, "SELECT x.id FROM t x, t x")


def test_tables_read_lists_every_table(catalog):
    plan = plan_of(catalog,
                   "SELECT u.id FROM t JOIN u ON u.t_id = t.id")
    assert plan.tables_read == ("t", "u")

"""Tests for WIRT constraints and profile serialization."""

import pytest

from repro.harness.profile_io import (
    FORMAT_VERSION,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.metrics.wirt import (
    BOOKSTORE_WIRT_LIMITS,
    WirtResult,
    evaluate_wirt,
)
from repro.workload.client import ClientStats


# -------------------------------------------------------------------- WIRT

def _stats_with(times: dict) -> ClientStats:
    stats = ClientStats()
    for name, samples in times.items():
        for value in samples:
            stats.record(name, value)
    return stats


def test_wirt_limits_cover_all_interactions():
    from repro.apps.bookstore.logic import INTERACTIONS
    assert set(BOOKSTORE_WIRT_LIMITS) == set(INTERACTIONS)


def test_percentile_computation():
    stats = _stats_with({"home": [float(i) for i in range(1, 11)]})
    assert stats.percentile("home", 0.9) == 9.0
    assert stats.percentile("home", 0.5) == 5.0
    assert stats.percentile("ghost") is None


def test_wirt_passes_fast_run():
    stats = _stats_with({name: [0.1, 0.2, 0.3]
                         for name in BOOKSTORE_WIRT_LIMITS})
    report = evaluate_wirt(stats)
    assert report.compliant
    assert not report.violations()
    assert "WIRT-compliant" in report.render()


def test_wirt_flags_slow_interaction():
    times = {name: [0.1] for name in BOOKSTORE_WIRT_LIMITS}
    times["best_sellers"] = [30.0] * 10     # p90 = 30 s > 5 s limit
    report = evaluate_wirt(_stats_with(times))
    assert not report.compliant
    violated = report.violations()
    assert [v.interaction for v in violated] == ["best_sellers"]
    assert "VIOLATED" in report.render()


def test_wirt_unobserved_interaction_is_not_a_violation():
    report = evaluate_wirt(_stats_with({"home": [0.1]}))
    assert report.compliant
    unobserved = [r for r in report.results if r.samples == 0]
    assert unobserved and all(r.passed for r in unobserved)


def test_wirt_result_passed_logic():
    assert WirtResult("x", 3.0, 2.9, 10).passed
    assert not WirtResult("x", 3.0, 3.1, 10).passed
    assert WirtResult("x", 3.0, None, 0).passed


# -------------------------------------------------------------- profile io

@pytest.fixture(scope="module")
def sync_profile():
    from repro.apps.auction import AuctionApp, build_auction_database
    from repro.harness.profiles import profile_application
    app = AuctionApp(build_auction_database(scale=0.0005, tiny=True))
    return profile_application(
        app, app.deploy_servlet(sync_locking=True), "servlet_sync",
        repetitions=2)


def test_profile_roundtrip_is_lossless(sync_profile):
    rebuilt = profile_from_dict(profile_to_dict(sync_profile))
    assert rebuilt.app_name == sync_profile.app_name
    assert rebuilt.flavor == sync_profile.flavor
    assert rebuilt.key_spaces == sync_profile.key_spaces
    assert set(rebuilt.interactions) == set(sync_profile.interactions)
    for name, original in sync_profile.interactions.items():
        copy = rebuilt.interactions[name]
        assert copy.read_only == original.read_only
        assert len(copy.variants) == len(original.variants)
        for v_orig, v_copy in zip(original.variants, copy.variants):
            assert v_copy.steps == v_orig.steps
            assert v_copy.response_bytes == v_orig.response_bytes
            assert v_copy.db_cpu_seconds == v_orig.db_cpu_seconds


def test_profile_save_load_file(tmp_path, sync_profile):
    path = tmp_path / "auction_sync.profile.json"
    save_profile(sync_profile, path)
    loaded = load_profile(path)
    assert loaded.interactions["store_bid"].variants[0].steps == \
        sync_profile.interactions["store_bid"].variants[0].steps


def test_profile_version_mismatch_rejected(sync_profile):
    data = profile_to_dict(sync_profile)
    data["format_version"] = FORMAT_VERSION + 1
    with pytest.raises(ValueError):
        profile_from_dict(data)


def test_loaded_profile_replays_in_simulator(tmp_path, sync_profile):
    """A deserialized profile drives the simulator identically."""
    import random
    from repro.sim import Simulator
    from repro.topology.configs import WS_SERVLET_DB_SYNC
    from repro.topology.simulation import SimulatedSite

    path = tmp_path / "p.json"
    save_profile(sync_profile, path)
    loaded = load_profile(path)
    results = []
    for profile in (sync_profile, loaded):
        sim = Simulator()
        site = SimulatedSite(sim, WS_SERVLET_DB_SYNC, profile)
        sim.spawn(site.perform(0, "store_bid", random.Random(9)))
        sim.run()
        results.append((round(sim.now, 9),
                        round(site.db.cpu.busy_time(), 9)))
    assert results[0] == results[1]

"""Property-based tests over the applications: random interaction
sequences must preserve the denormalized invariants the paper's schema
optimizations rely on."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.apps.auction import AuctionApp, build_auction_database
from repro.apps.auction.mixes import AuctionState
from repro.apps.auction.mixes import make_request as auction_request
from repro.apps.bboard import BulletinBoardApp, build_bboard_database
from repro.apps.bboard.mixes import BboardState
from repro.apps.bboard.mixes import make_request as bboard_request
from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.apps.bookstore.mixes import BookstoreState
from repro.apps.bookstore.mixes import make_request as bookstore_request

AUCTION_NAMES = ["view_item", "store_bid", "store_buy_now",
                 "register_user", "register_item", "store_comment",
                 "search_items_in_category", "about_me"]

BOOKSTORE_NAMES = ["shopping_cart", "buy_confirm", "home",
                   "customer_registration", "buy_request",
                   "product_detail", "admin_confirm"]

BBOARD_NAMES = ["post_comment", "submit_story", "moderate_comment",
                "view_story", "register_user", "home"]


@settings(max_examples=5, deadline=None)
@given(seq=st.lists(st.sampled_from(AUCTION_NAMES), min_size=5,
                    max_size=18),
       seed=st.integers(0, 10**6))
def test_auction_denormalized_counters_stay_consistent(seq, seed):
    """items.nb_of_bids and items.max_bid always agree with the bids
    table, whatever interaction order runs."""
    app = AuctionApp(build_auction_database(scale=0.0003, tiny=True))
    php = app.deploy_php()
    rng = random.Random(seed)
    state = AuctionState.from_database(app.database, rng)
    for name in seq:
        response, __ = php.handle(auction_request(name, rng, state))
        assert response.status in (200, 401, 404, 409), name
    db = app.database
    for item_id, nb, max_bid in db.execute(
            "SELECT id, nb_of_bids, max_bid FROM items").rows:
        count = db.execute(
            "SELECT COUNT(*) FROM bids WHERE item_id = ?",
            (item_id,)).scalar()
        top = db.execute(
            "SELECT MAX(bid) FROM bids WHERE item_id = ?",
            (item_id,)).scalar()
        assert nb == count, f"item {item_id} nb_of_bids"
        if count:
            assert max_bid == pytest.approx(top), f"item {item_id} max_bid"
    # The ids counters never fall behind the actual keys.
    for table in ("bids", "users", "items"):
        counter = db.execute("SELECT value FROM ids WHERE name = ?",
                             (table,)).scalar()
        top_id = db.execute(f"SELECT MAX(id) FROM {table}").scalar() or 0
        assert counter >= top_id


@settings(max_examples=4, deadline=None)
@given(seq=st.lists(st.sampled_from(BOOKSTORE_NAMES), min_size=5,
                    max_size=25),
       seed=st.integers(0, 10**6))
def test_bookstore_orders_and_lines_stay_consistent(seq, seed):
    """Every order_line points at an existing order and item; every
    non-cart order has payment info; stock never goes negative."""
    app = BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))
    php = app.deploy_php()
    rng = random.Random(seed)
    state = BookstoreState.from_database(app.database, rng)
    for name in seq:
        response, __ = php.handle(bookstore_request(name, rng, state))
        assert response.status in (200, 404, 409), name
    db = app.database
    dangling = db.execute(
        "SELECT COUNT(*) FROM order_line ol LEFT JOIN orders o "
        "ON o.id = ol.o_id WHERE o.id IS NULL").scalar()
    assert dangling == 0
    negative = db.execute(
        "SELECT COUNT(*) FROM items WHERE stock < 0").scalar()
    assert negative == 0
    # Orders that completed purchase carry exactly one payment record.
    for (order_id,) in db.execute(
            "SELECT id FROM orders WHERE status = 'pending'").rows:
        payments = db.execute(
            "SELECT COUNT(*) FROM credit_info WHERE o_id = ?",
            (order_id,)).scalar()
        assert payments == 1, f"order {order_id}"


@settings(max_examples=4, deadline=None)
@given(seq=st.lists(st.sampled_from(BBOARD_NAMES), min_size=5,
                    max_size=25),
       seed=st.integers(0, 10**6))
def test_bboard_comment_counters_stay_consistent(seq, seed):
    """stories.nb_comments always equals the comments actually stored."""
    app = BulletinBoardApp(build_bboard_database(scale=0.0002, tiny=True))
    php = app.deploy_php()
    rng = random.Random(seed)
    state = BboardState.from_database(app.database, rng)
    for name in seq:
        response, __ = php.handle(bboard_request(name, rng, state))
        assert response.status in (200, 401, 403, 404, 409), name
    db = app.database
    for story_id, nb in db.execute(
            "SELECT id, nb_comments FROM stories").rows:
        count = db.execute(
            "SELECT COUNT(*) FROM comments WHERE story_id = ?",
            (story_id,)).scalar()
        assert nb == count, f"story {story_id}"


@settings(max_examples=3, deadline=None)
@given(seq=st.lists(st.sampled_from(AUCTION_NAMES), min_size=4,
                    max_size=15),
       seed=st.integers(0, 10**6))
def test_php_servlet_sync_state_equivalence(seq, seed):
    """Running the same interaction sequence through PHP and the sync
    servlet engine leaves two databases in identical observable state --
    the locking rewrite must not change semantics."""
    app1 = AuctionApp(build_auction_database(scale=0.0003, tiny=True))
    app2 = AuctionApp(build_auction_database(scale=0.0003, tiny=True))
    php = app1.deploy_php()
    sync = app2.deploy_servlet(sync_locking=True)
    rng1, rng2 = random.Random(seed), random.Random(seed)
    s1 = AuctionState.from_database(app1.database, random.Random(seed + 1))
    s2 = AuctionState.from_database(app2.database, random.Random(seed + 1))
    for name in seq:
        r1, __ = php.handle(auction_request(name, rng1, s1))
        r2, __ = sync.handle(auction_request(name, rng2, s2))
        assert r1.status == r2.status, name
    for probe in ("SELECT COUNT(*) FROM bids",
                  "SELECT SUM(nb_of_bids) FROM items",
                  "SELECT COUNT(*) FROM users",
                  "SELECT MAX(value) FROM ids",
                  "SELECT COUNT(*) FROM comments"):
        assert app1.database.execute(probe).scalar() == \
            app2.database.execute(probe).scalar(), probe

"""Unit tests for row storage and index maintenance internals."""

import pytest

from repro.db.errors import IntegrityError, SqlError
from repro.db.index import HashIndex, SortedIndex
from repro.db.schema import Column, ColumnType, IndexDef, TableSchema
from repro.db.storage import Table


def make_table(**kwargs):
    defaults = dict(
        name="t",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("k", ColumnType.INT),
                 Column("v", ColumnType.VARCHAR)],
        primary_key="id", auto_increment=True,
        indexes=[IndexDef("idx_k", ("k",))])
    defaults.update(kwargs)
    return Table(TableSchema(**defaults))


# ------------------------------------------------------------------- table

def test_insert_defaults_and_unknown_columns():
    table = make_table()
    rowid = table.insert({"k": 1})
    assert table.get_row(rowid) == [1, 1, None]
    with pytest.raises(SqlError):
        table.insert({"ghost": 1})


def test_auto_increment_respects_explicit_values():
    table = make_table()
    table.insert({"id": 10, "k": 1})
    rowid = table.insert({"k": 2})
    assert table.get_row(rowid)[0] == 11
    assert table.next_auto_increment == 12


def test_tombstone_delete_and_scan():
    table = make_table()
    ids = [table.insert({"k": i}) for i in range(5)]
    table.delete_row(ids[2])
    assert len(table) == 4
    assert list(table.scan()) == [0, 1, 3, 4]
    assert table.get_row(ids[2]) is None
    table.delete_row(ids[2])     # idempotent
    assert len(table) == 4


def test_update_moves_index_entries():
    table = make_table()
    rowid = table.insert({"k": 5})
    index = table.indexes["idx_k"]
    assert index.lookup((5,)) == [rowid]
    table.update_row(rowid, {"k": 9})
    assert index.lookup((5,)) == []
    assert index.lookup((9,)) == [rowid]


def test_update_rollback_on_unique_violation():
    table = make_table(indexes=[IndexDef("uk", ("k",), unique=True)])
    table.insert({"k": 1, "v": "a"})
    second = table.insert({"k": 2, "v": "b"})
    with pytest.raises(IntegrityError):
        table.update_row(second, {"k": 1, "v": "changed"})
    # The whole row image is restored, not just the indexed column.
    assert table.get_row(second) == [2, 2, "b"]
    assert sorted(table.indexes["uk"].lookup((2,))) == [second]


def test_insert_rollback_on_unique_violation():
    table = make_table(indexes=[IndexDef("uk", ("k",), unique=True),
                                IndexDef("idx_v", ("v",))])
    table.insert({"k": 1, "v": "a"})
    with pytest.raises(IntegrityError):
        table.insert({"k": 1, "v": "b"})
    assert len(table) == 1
    assert table.indexes["idx_v"].lookup(("b",)) == []


def test_create_index_backfills_existing_rows():
    table = make_table(indexes=[])
    for i in range(4):
        table.insert({"k": i % 2})
    table.create_index(IndexDef("late", ("k",)))
    assert sorted(table.indexes["late"].lookup((0,))) == [0, 2]


def test_duplicate_index_name_rejected():
    table = make_table()
    with pytest.raises(SqlError):
        table.create_index(IndexDef("idx_k", ("k",)))


def test_rows_as_dicts():
    table = make_table()
    table.insert({"k": 1, "v": "x"})
    assert list(table.rows_as_dicts()) == [{"id": 1, "k": 1, "v": "x"}]


def test_index_on_prefix_match():
    table = make_table(indexes=[IndexDef("ab", ("k", "v"))])
    assert table.index_on(["k"]).name == "ab"
    assert table.index_on(["v"]) is None
    assert table.sorted_index_on(("k",)).name == "ab"


# ------------------------------------------------------------------ indexes

def test_sorted_index_range_bounds():
    index = SortedIndex("s", ("k",))
    for i in range(10):
        index.insert((i,), i)
    assert list(index.range((3,), (6,))) == [3, 4, 5, 6]
    assert list(index.range((3,), (6,), low_inclusive=False,
                            high_inclusive=False)) == [4, 5]
    assert list(index.range(None, (2,))) == [0, 1, 2]
    assert list(index.range((8,), None)) == [8, 9]


def test_sorted_index_scan_directions():
    index = SortedIndex("s", ("k",))
    for i in (3, 1, 2):
        index.insert((i,), i)
    assert list(index.scan()) == [1, 2, 3]
    assert list(index.scan(descending=True)) == [3, 2, 1]


def test_null_keys_live_in_side_bucket():
    for index in (SortedIndex("s", ("k",)), HashIndex("h", ("k",))):
        index.insert((None,), 7)
        index.insert((1,), 8)
        assert index.lookup((None,)) == []
        assert index.null_rows() == [7]
        assert len(index) == 2
        index.delete((None,), 7)
        assert index.null_rows() == []


def test_hash_index_unique_violation():
    index = HashIndex("h", ("k",), unique=True)
    index.insert((1,), 0)
    with pytest.raises(IntegrityError):
        index.insert((1,), 1)


def test_sorted_index_delete_specific_rowid():
    index = SortedIndex("s", ("k",))
    index.insert((1,), 10)
    index.insert((1,), 11)
    index.delete((1,), 10)
    assert index.lookup((1,)) == [11]

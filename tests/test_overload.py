"""Overload layer: open-loop arrivals, graceful degradation, circuit
breakers, and the open-loop experiment runner."""

import os
import random
import subprocess
import sys
from dataclasses import asdict

import pytest

from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.faults.errors import (
    BackpressureError,
    CircuitOpenError,
    TransientDbError,
)
from repro.harness.experiment import ExperimentSpec, build_site, run_experiment
from repro.harness.profiles import profile_application
from repro.metrics.slo import SloSeries, SloSpec
from repro.overload import (
    AbandonmentSpec,
    BreakerPolicy,
    CircuitBreaker,
    DegradationPolicy,
    DiurnalProfile,
    FlashCrowdProfile,
    MmppProfile,
    OpenLoopPopulation,
    OverloadSpec,
    PoissonProfile,
    ThinkTimeModel,
    install_degradation,
)
from repro.sim import Simulator
from repro.sim.rng import RngStreams
from repro.topology.configs import WS_PHP_DB
from repro.topology.simulation import SimulatedSite
from repro.workload.markov import choose_interaction


@pytest.fixture(scope="module")
def app():
    return BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def php_profile(app):
    return profile_application(app, app.deploy_php(), "php", repetitions=2)


# -- arrival profiles ---------------------------------------------------------

def _gaps(profile, seed, n):
    rng = random.Random(seed)
    it = profile.arrivals(rng)
    return [next(it) for __ in range(n)]


def test_poisson_arrivals_deterministic_under_seed():
    profile = PoissonProfile(rate=3.0)
    assert _gaps(profile, 7, 100) == _gaps(profile, 7, 100)
    assert _gaps(profile, 7, 100) != _gaps(profile, 8, 100)
    mean = sum(_gaps(profile, 7, 4000)) / 4000
    assert 0.8 / 3.0 < mean < 1.2 / 3.0


def test_flash_crowd_rate_shape():
    profile = FlashCrowdProfile(base_rate=2.0, burst_start=10.0,
                                burst_duration=5.0, multiplier=4.0)
    assert profile.peak_rate == 8.0
    assert profile.burst_end == 15.0
    assert profile.rate_at(9.9) == 2.0
    assert profile.rate_at(10.0) == 8.0
    assert profile.rate_at(14.9) == 8.0
    assert profile.rate_at(15.0) == 2.0


def test_flash_crowd_burst_concentrates_arrivals():
    profile = FlashCrowdProfile(base_rate=2.0, burst_start=30.0,
                                burst_duration=30.0, multiplier=8.0)
    rng = random.Random(11)
    t, before, during = 0.0, 0, 0
    for gap in profile.arrivals(rng):
        t += gap
        if t >= 60.0:
            break
        if t < 30.0:
            before += 1
        else:
            during += 1
    # Equal-length spans at 2/s vs 16/s: the burst must dominate.
    assert during > 3 * before


def test_mmpp_and_diurnal_deterministic():
    mmpp = MmppProfile(calm_rate=1.0, busy_rate=10.0, calm_dwell_mean=5.0,
                       busy_dwell_mean=5.0)
    assert _gaps(mmpp, 3, 200) == _gaps(mmpp, 3, 200)
    assert all(g > 0 for g in _gaps(mmpp, 3, 200))
    diurnal = DiurnalProfile(mean_rate=4.0, amplitude=0.5, period=60.0)
    assert _gaps(diurnal, 3, 200) == _gaps(diurnal, 3, 200)
    assert diurnal.peak_rate == 6.0
    assert diurnal.rate_at(0.0) == pytest.approx(4.0)
    assert diurnal.rate_at(15.0) == pytest.approx(6.0)


@pytest.mark.parametrize("bad", [
    lambda: PoissonProfile(rate=0.0),
    lambda: PoissonProfile(rate=-1.0),
    lambda: FlashCrowdProfile(base_rate=0.0, burst_start=1, burst_duration=1),
    lambda: FlashCrowdProfile(base_rate=1.0, burst_start=-1,
                              burst_duration=1),
    lambda: FlashCrowdProfile(base_rate=1.0, burst_start=1,
                              burst_duration=0),
    lambda: FlashCrowdProfile(base_rate=1.0, burst_start=1,
                              burst_duration=1, multiplier=0.5),
    lambda: MmppProfile(calm_rate=0.0, busy_rate=1.0),
    lambda: MmppProfile(calm_rate=1.0, busy_rate=1.0, busy_dwell_mean=0.0),
    lambda: DiurnalProfile(mean_rate=0.0),
    lambda: DiurnalProfile(mean_rate=1.0, amplitude=1.5),
    lambda: DiurnalProfile(mean_rate=1.0, period=0.0),
])
def test_arrival_profile_validation(bad):
    with pytest.raises(ValueError):
        bad()


# -- think times and abandonment ----------------------------------------------

def test_think_time_models_draw_positive_and_capped():
    rng = random.Random(5)
    for dist in ("exponential", "lognormal", "pareto"):
        model = ThinkTimeModel(distribution=dist, mean=7.0, cap=30.0)
        draws = [model.draw(rng) for __ in range(2000)]
        assert all(0 < d <= 30.0 for d in draws)
        # All three are parameterized by the mean; with the cap only
        # shaving the far tail the sample mean stays in the ballpark.
        assert 3.0 < sum(draws) / len(draws) < 11.0


def test_pareto_think_time_is_heavier_tailed_than_exponential():
    rng = random.Random(5)
    expo = ThinkTimeModel(distribution="exponential", mean=7.0)
    pareto = ThinkTimeModel(distribution="pareto", mean=7.0, alpha=1.5)
    expo_tail = sum(expo.draw(rng) > 60.0 for __ in range(5000))
    pareto_tail = sum(pareto.draw(rng) > 60.0 for __ in range(5000))
    assert pareto_tail > expo_tail


@pytest.mark.parametrize("bad", [
    lambda: ThinkTimeModel(distribution="uniform"),
    lambda: ThinkTimeModel(mean=0.0),
    lambda: ThinkTimeModel(sigma=0.0),
    lambda: ThinkTimeModel(alpha=1.0),
    lambda: ThinkTimeModel(cap=0.0),
    lambda: AbandonmentSpec(patience=0.0),
    lambda: AbandonmentSpec(probability=0.0),
    lambda: AbandonmentSpec(probability=1.5),
    lambda: OverloadSpec(session_mean=0.0),
    lambda: OverloadSpec(max_concurrent_sessions=0),
])
def test_think_abandonment_overload_validation(bad):
    with pytest.raises(ValueError):
        bad()


def test_overload_spec_rejects_non_profile():
    with pytest.raises(TypeError):
        OverloadSpec(arrivals=object())


# -- circuit breaker (simulation-side) ----------------------------------------

class _FakeSim:
    def __init__(self):
        self.now = 0.0


def _tripped_breaker(policy=None):
    sim = _FakeSim()
    breaker = CircuitBreaker(sim, policy or BreakerPolicy(
        window=10, min_calls=4, trip_threshold=0.5, reset_timeout=5.0,
        half_open_probes=2))
    for __ in range(2):
        breaker.record_success()
    for __ in range(4):
        breaker.record_failure()
    return sim, breaker


def test_breaker_trips_on_failure_ratio():
    sim, breaker = _tripped_breaker()
    assert breaker.state == breaker.OPEN
    assert breaker.trips == 1
    assert not breaker.allow()
    assert breaker.fast_fails == 1


def test_breaker_ignores_failures_below_min_calls():
    breaker = CircuitBreaker(_FakeSim(), BreakerPolicy(
        window=10, min_calls=5, trip_threshold=0.5))
    for __ in range(4):
        breaker.record_failure()
    assert breaker.state == breaker.CLOSED
    assert breaker.allow()


def test_breaker_half_open_probe_success_closes():
    sim, breaker = _tripped_breaker()
    sim.now = 4.9
    assert not breaker.allow()          # still open before the timeout
    sim.now = 5.0
    assert breaker.allow()              # first probe slot
    assert breaker.state == breaker.HALF_OPEN
    assert breaker.allow()              # second probe slot
    assert not breaker.allow()          # slots exhausted
    breaker.record_success()
    assert breaker.state == breaker.CLOSED
    assert breaker.allow()


def test_breaker_half_open_probe_failure_reopens():
    sim, breaker = _tripped_breaker()
    sim.now = 6.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == breaker.OPEN
    assert breaker.trips == 2
    # The open clock restarted at the failed probe.
    sim.now = 10.9
    assert not breaker.allow()
    sim.now = 11.0
    assert breaker.allow()


@pytest.mark.parametrize("kwargs", [
    dict(window=0), dict(min_calls=0), dict(trip_threshold=0.0),
    dict(trip_threshold=1.5), dict(reset_timeout=0.0),
    dict(half_open_probes=0),
])
def test_breaker_policy_validation(kwargs):
    with pytest.raises(ValueError):
        BreakerPolicy(**kwargs)


# -- circuit breaker (functional driver wrapper) ------------------------------

class _FlakyConnection:
    """Stands in for a db connection; fails while ``broken`` is set."""

    def __init__(self):
        self.broken = False
        self.calls = 0
        self.closed = False

    def execute(self, sql, params=()):
        self.calls += 1
        if self.broken:
            raise TransientDbError("boom")
        return "ok"

    @property
    def last_insert_id(self):
        return None

    def close(self):
        self.closed = True


def test_circuit_breaker_connection_trips_and_probes():
    from repro.db.driver import CircuitBreakerConnection
    inner = _FlakyConnection()
    conn = CircuitBreakerConnection(inner, window=8, min_calls=4,
                                    trip_threshold=0.5)
    assert conn.execute("SELECT 1") == "ok"
    inner.broken = True
    # After the 3rd failure the ring holds [ok, fail, fail, fail]:
    # min_calls reached and the failure fraction is past the threshold.
    for __ in range(3):
        with pytest.raises(TransientDbError):
            conn.execute("SELECT 1")
    assert conn.open
    calls = inner.calls
    with pytest.raises(CircuitOpenError):
        conn.execute("SELECT 1")
    assert inner.calls == calls         # fail-fast: inner never touched
    assert conn.fast_fails == 1
    # A failed probe keeps it open; a successful one closes it.
    with pytest.raises(TransientDbError):
        conn.probe("SELECT 1")
    assert conn.open
    inner.broken = False
    assert conn.probe("SELECT 1") == "ok"
    assert not conn.open
    assert conn.execute("SELECT 1") == "ok"


@pytest.mark.parametrize("kwargs", [
    dict(window=0), dict(min_calls=0), dict(trip_threshold=0.0),
    dict(trip_threshold=1.1),
])
def test_circuit_breaker_connection_validation(kwargs):
    from repro.db.driver import CircuitBreakerConnection
    with pytest.raises(ValueError):
        CircuitBreakerConnection(_FlakyConnection(), **kwargs)


# -- degradation policy + installation ----------------------------------------

@pytest.mark.parametrize("kwargs", [
    dict(container_concurrency=0), dict(container_backlog=-1),
    dict(db_concurrency=0), dict(db_backlog=-1),
    dict(shed_queue_threshold=0),
])
def test_degradation_policy_validation(kwargs):
    with pytest.raises(ValueError):
        DegradationPolicy(**kwargs)


def test_open_breaker_degrades_browses_but_not_orders(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    state = install_degradation(site, DegradationPolicy())
    state.breaker._trip()               # database is misbehaving

    sim.spawn(site.perform(0, "home", random.Random(1)))
    sim.run()
    assert state.degraded_served == 1
    assert site.interactions_done == 1  # degraded replies count as served

    # Order-class interactions keep the full path and hit the open
    # breaker at the driver instead of getting a stale page.
    errors = []

    def order():
        try:
            yield from site.perform(1, "shopping_cart", random.Random(2))
        except CircuitOpenError as exc:
            errors.append(exc)

    state.breaker._trip()               # re-arm (time advanced past reset)
    sim.spawn(order())
    sim.run()
    assert len(errors) == 1
    assert state.degraded_served == 1


def test_container_gate_sheds_with_busy_page(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    policy = DegradationPolicy(container_concurrency=1, container_backlog=0,
                               db_concurrency=None, breaker=None,
                               shed_queue_threshold=None)
    state = install_degradation(site, policy)
    rejected = []

    def client(i):
        try:
            yield from site.perform(i, "product_detail", random.Random(i))
        except BackpressureError as exc:
            rejected.append(exc)

    for i in range(6):
        sim.spawn(client(i))
    sim.run()
    assert rejected
    assert all(exc.tier == "servlet" for exc in rejected)
    assert state.backpressure_rejects["servlet"] == len(rejected)
    assert site.interactions_done == 6 - len(rejected)
    assert state.container_gate.in_use == 0
    assert state.container_gate.queue_length == 0
    assert sim.quiescent()


def test_db_gate_backpressure(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    policy = DegradationPolicy(container_concurrency=None,
                               db_concurrency=1, db_backlog=0,
                               breaker=None, shed_queue_threshold=None)
    state = install_degradation(site, policy)
    rejected = []

    def client(i):
        try:
            yield from site.perform(i, "best_sellers", random.Random(i))
        except BackpressureError as exc:
            rejected.append(exc)

    for i in range(6):
        sim.spawn(client(i))
    sim.run()
    assert rejected
    assert all(exc.tier == "db" for exc in rejected)
    assert state.backpressure_rejects["db"] == len(rejected)
    assert state.db_gate.in_use == 0
    assert state.db_gate.queue_length == 0


def test_all_levers_disabled_changes_nothing(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    state = install_degradation(site, DegradationPolicy(
        container_concurrency=None, db_concurrency=None, breaker=None,
        shed_queue_threshold=None))
    assert state.container_gate is None
    assert state.db_gate is None
    assert state.breaker is None
    sim.spawn(site.perform(0, "home", random.Random(1)))
    sim.spawn(site.perform(1, "buy_confirm", random.Random(2)))
    sim.run()
    assert site.interactions_done == 2
    assert state.degraded_served == 0


def test_degradation_on_clustered_site(php_profile):
    from repro.cluster.site import ClusteredSite
    from repro.cluster.spec import clustered
    sim = Simulator()
    config = clustered(WS_PHP_DB, web=2, db_replicas=1)
    site = ClusteredSite(sim, config, php_profile, rng=RngStreams(4))
    state = install_degradation(site, DegradationPolicy())
    state.breaker._trip()
    sim.spawn(site.perform(0, "home", random.Random(1)))
    sim.run()
    # Cluster routing (a class-level _perform override) still runs
    # underneath the instance-attribute wrapper.
    assert state.degraded_served == 1
    assert site.interactions_done == 1


# -- open-loop population -----------------------------------------------------

def _open_loop_run(spec, php_profile, mix, seed=13, until=30.0, warmup=5.0):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    series = SloSeries(sim, SloSpec(window=1.0))
    population = OpenLoopPopulation(
        sim, spec, mix, site, RngStreams(seed), choose_interaction,
        slo=series)
    population.start()
    sim.run(until=warmup)
    population.begin_measurement()
    sim.run(until=until)
    stats = population.end_measurement()
    population.stop()
    sim.run()
    assert all(p.finished for p in population._procs), "stuck session"
    assert not site.inflight_processes()
    assert sim.quiescent()
    return stats, series, sim.events_processed


def test_open_loop_bit_identical_under_pinned_seed(app, php_profile):
    spec = OverloadSpec(arrivals=PoissonProfile(rate=2.0),
                        think=ThinkTimeModel(mean=1.0), session_mean=10.0)
    mix = app.mix("shopping")
    one = _open_loop_run(spec, php_profile, mix)
    two = _open_loop_run(spec, php_profile, mix)
    assert asdict(one[0]) == asdict(two[0])
    assert one[2] == two[2]             # kernel event counts match
    w1 = [(w.completions, w.arrivals, w.p95) for w in one[1].windows()]
    w2 = [(w.completions, w.arrivals, w.p95) for w in two[1].windows()]
    assert w1 == w2
    assert one[0].interactions_completed > 0
    assert sum(w.arrivals for w in one[1].windows()) > 0


def test_abandonment_ends_sessions(app, php_profile):
    spec = OverloadSpec(
        arrivals=PoissonProfile(rate=2.0), think=ThinkTimeModel(mean=1.0),
        session_mean=60.0,
        abandonment=AbandonmentSpec(patience=1e-6, probability=1.0))
    stats, __, __ = _open_loop_run(spec, php_profile, app.mix("shopping"))
    # Everyone's patience is sub-microsecond and the giving-up
    # probability is 1: every measured session abandons after its first
    # interaction, so abandonments track interactions one-for-one.
    assert stats.sessions_abandoned > 0
    assert stats.sessions_abandoned == stats.interactions_started


def test_session_cap_turns_arrivals_away(app, php_profile):
    spec = OverloadSpec(arrivals=PoissonProfile(rate=5.0),
                        think=ThinkTimeModel(mean=2.0), session_mean=120.0,
                        max_concurrent_sessions=1)
    stats, __, __ = _open_loop_run(spec, php_profile, app.mix("shopping"))
    assert stats.turned_away > 0


# -- runner + ExperimentSpec integration --------------------------------------

def test_run_open_loop_point(app, php_profile):
    spec = ExperimentSpec(
        config=WS_PHP_DB, profile=php_profile, mix=app.mix("shopping"),
        clients=0, ramp_up=3.0, measure=15.0, ramp_down=2.0,
        overload=OverloadSpec(arrivals=PoissonProfile(rate=2.0),
                              think=ThinkTimeModel(mean=1.0),
                              session_mean=10.0),
        degradation=DegradationPolicy(), slo=SloSpec(window=1.0))
    point = run_experiment(spec)
    assert point.throughput_ipm > 0
    assert point.slo.goodput_per_s > 0
    assert point.slo.windows_total > 0
    assert point.slo_windows
    assert point.overload_stats.sessions_started > 0
    assert point.degradation is not None
    assert point.kernel_events > 0


def test_run_open_loop_deterministic(app, php_profile):
    spec = ExperimentSpec(
        config=WS_PHP_DB, profile=php_profile, mix=app.mix("shopping"),
        clients=0, ramp_up=2.0, measure=10.0, ramp_down=1.0,
        overload=OverloadSpec(arrivals=PoissonProfile(rate=2.0),
                              think=ThinkTimeModel(mean=1.0),
                              session_mean=10.0))
    one, two = run_experiment(spec), run_experiment(spec)
    assert asdict(one) == asdict(two)
    assert one.kernel_events == two.kernel_events


def test_closed_loop_leaves_site_unwrapped(php_profile):
    """Without a policy the hot-path methods stay class-level -- the
    degradation layer adds zero frames, zero RNG, zero events."""
    sim = Simulator()
    spec = ExperimentSpec(config=WS_PHP_DB, profile=php_profile,
                          mix={"home": 1.0}, clients=1)
    site = build_site(sim, spec)
    for name in ("_perform", "_run_container", "_run_php", "_db_query"):
        assert name not in vars(site), f"{name} wrapped without a policy"
    assert not hasattr(site, "degradation")


def test_closed_loop_never_imports_overload_package():
    """The experiment harness must not pull repro.overload in unless a
    spec opts in: disabled-by-default means not even imported."""
    code = (
        "import sys\n"
        "import repro.harness.experiment\n"
        "import repro.workload.client\n"
        "import repro.topology.simulation\n"
        "import repro.metrics\n"
        "bad = [m for m in sys.modules if m.startswith('repro.overload')]\n"
        "assert not bad, bad\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))), "src")
    subprocess.run([sys.executable, "-c", code], check=True, env=env)

"""Property: any combination of open-loop arrivals, abandonment,
shedding, breaker trips, and fault plans leaves the system clean --
no dangling DB locks, no stranded gate slots, no stuck clients, and a
quiescent kernel."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.harness.profiles import profile_application
from repro.metrics.slo import SloSeries, SloSpec
from repro.overload import (
    AbandonmentSpec,
    BreakerPolicy,
    DegradationPolicy,
    FlashCrowdProfile,
    MmppProfile,
    OpenLoopPopulation,
    OverloadSpec,
    PoissonProfile,
    ThinkTimeModel,
    install_degradation,
)
from repro.sim import Simulator
from repro.sim.rng import RngStreams
from repro.topology.configs import WS_PHP_DB
from repro.workload.client import ClientPopulation, RetryPolicy
from repro.workload.markov import choose_interaction


@pytest.fixture(scope="module")
def app():
    return BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def php_profile(app):
    return profile_application(app, app.deploy_php(), "php", repetitions=2)


def _no_dangling_locks(site) -> bool:
    for lock in site._table_locks.values():
        if lock.writer or lock.readers or lock.waiting_writers or \
                lock.waiting_readers:
            return False
    for lock in site._sync_locks.values():
        if lock.writer or lock.readers:
            return False
    return True


def _assert_clean(sim, site, population, state) -> None:
    assert all(p.finished for p in population._procs), "stuck client"
    assert not site.inflight_processes(), "stuck in-flight interaction"
    assert _no_dangling_locks(site), "dangling db/sync lock"
    assert site.web_processes.in_use == 0
    assert site.web_processes.queue_length == 0
    for gate in (state.container_gate, state.db_gate):
        if gate is not None:
            assert gate.in_use == 0, f"stranded slot on {gate.name}"
            assert gate.queue_length == 0, f"stranded waiter on {gate.name}"
    if state.breaker is not None:
        assert state.breaker._probes_in_flight >= 0
    assert sim.quiescent()


# -- drawn inputs -------------------------------------------------------------

_arrival = st.one_of(
    st.floats(min_value=0.5, max_value=2.0).map(
        lambda r: PoissonProfile(rate=r)),
    st.floats(min_value=0.5, max_value=1.5).map(
        lambda r: FlashCrowdProfile(base_rate=r, burst_start=4.0,
                                    burst_duration=6.0, multiplier=4.0)),
    st.floats(min_value=0.5, max_value=1.5).map(
        lambda r: MmppProfile(calm_rate=r, busy_rate=4 * r,
                              calm_dwell_mean=4.0, busy_dwell_mean=3.0)),
)

_think = st.sampled_from([
    ThinkTimeModel(mean=1.0),
    ThinkTimeModel(distribution="lognormal", mean=1.0, sigma=1.2),
    ThinkTimeModel(distribution="pareto", mean=1.0, alpha=1.3, cap=20.0),
])

_abandon = st.one_of(
    st.none(),
    st.builds(AbandonmentSpec,
              patience=st.floats(min_value=0.005, max_value=1.0),
              probability=st.floats(min_value=0.3, max_value=1.0)))

# Tiny bounds force constant gate churn: rejections, shedding and
# queueing all fire within a 16-second run.
_policy = st.builds(
    DegradationPolicy,
    container_concurrency=st.sampled_from([None, 1, 2, 8]),
    container_backlog=st.integers(min_value=0, max_value=3),
    db_concurrency=st.sampled_from([None, 1, 2, 8]),
    db_backlog=st.integers(min_value=0, max_value=3),
    breaker=st.sampled_from([
        None,
        BreakerPolicy(window=6, min_calls=2, trip_threshold=0.5,
                      reset_timeout=1.0, half_open_probes=1),
    ]),
    shed_queue_threshold=st.sampled_from([None, 1, 4]))

_fault = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["web", "db", "db"]),
              st.sampled_from(["crash", "db_conn_glitch"]),
              st.floats(min_value=2.0, max_value=10.0),
              st.floats(min_value=0.5, max_value=4.0)))


def _build_plan(fault):
    if fault is None:
        return None
    tier, kind, at, duration = fault
    if kind == "db_conn_glitch":
        tier = "db"
    return FaultPlan((FaultEvent(kind, tier, at, duration),))


# -- open loop ----------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(arrival=_arrival, think=_think, abandon=_abandon, policy=_policy,
       fault=_fault)
def test_open_loop_chaos_leaves_system_clean(arrival, think, abandon,
                                             policy, fault):
    fn = test_open_loop_chaos_leaves_system_clean
    sim = Simulator()
    from repro.topology.simulation import SimulatedSite
    site = SimulatedSite(sim, WS_PHP_DB, fn.profile)
    state = install_degradation(site, policy)
    spec = OverloadSpec(arrivals=arrival, think=think, session_mean=3.0,
                        abandonment=abandon, max_concurrent_sessions=64)
    population = OpenLoopPopulation(
        sim, spec, fn.mix, site, RngStreams(17), choose_interaction,
        retry=RetryPolicy(deadline=2.0, max_retries=1, backoff_base=0.1,
                          backoff_cap=0.5, retry_budget=10),
        slo=SloSeries(sim, SloSpec()))
    plan = _build_plan(fault)
    if plan is not None:
        FaultInjector(sim, site, plan).start()
    population.start()
    sim.run(until=2.0)
    population.begin_measurement()
    sim.run(until=16.0)
    population.end_measurement()
    population.stop()
    sim.run()
    _assert_clean(sim, site, population, state)


# -- closed loop with degradation installed -----------------------------------

@settings(max_examples=8, deadline=None)
@given(policy=_policy, fault=_fault)
def test_closed_loop_with_degradation_leaves_system_clean(policy, fault):
    fn = test_closed_loop_with_degradation_leaves_system_clean
    sim = Simulator()
    from repro.topology.simulation import SimulatedSite
    site = SimulatedSite(sim, WS_PHP_DB, fn.profile)
    state = install_degradation(site, policy)
    population = ClientPopulation(
        sim, 5, fn.mix, site, RngStreams(23), choose_interaction,
        retry=RetryPolicy(deadline=2.0, max_retries=1, backoff_base=0.1,
                          backoff_cap=0.5, retry_budget=10))
    plan = _build_plan(fault)
    if plan is not None:
        FaultInjector(sim, site, plan).start()
    population.start()
    sim.run(until=16.0)
    population.stop()
    sim.run()
    _assert_clean(sim, site, population, state)


# hypothesis @given cannot take module fixtures; attach inputs once.
@pytest.fixture(scope="module", autouse=True)
def _attach_inputs(app, php_profile):
    for fn in (test_open_loop_chaos_leaves_system_clean,
               test_closed_loop_with_degradation_leaves_system_clean):
        fn.profile = php_profile
        fn.mix = app.mix("shopping")
    yield

"""Tests for the figure registry and experiment plumbing."""

import pytest

from repro.experiments.common import (
    ALL_FIGURE_SPECS,
    FigureSpec,
    Phases,
    run_figure_spec,
)
from repro.experiments.registry import FIGURES, figure_spec
from repro.topology.configs import ALL_CONFIGURATIONS


def test_registry_has_all_ten_figures():
    assert sorted(FIGURES) == [f"fig{n:02d}" for n in range(5, 15)]


def test_throughput_and_cpu_share_a_spec():
    spec5, kind5 = FIGURES["fig05"]
    spec6, kind6 = FIGURES["fig06"]
    assert spec5 is spec6
    assert kind5 == "throughput" and kind6 == "cpu"


def test_figure_spec_lookup():
    assert figure_spec("fig11").app_name == "auction"
    with pytest.raises(KeyError):
        figure_spec("fig99")


def test_every_spec_covers_all_configurations():
    for spec in ALL_FIGURE_SPECS:
        assert set(spec.grids) == {c.name for c in ALL_CONFIGURATIONS}
        for name in spec.grids:
            quick = spec.grid_for(name, full=False)
            complete = spec.grid_for(name, full=True)
            assert len(complete) >= len(quick) >= 2


def test_mix_names_resolve():
    from repro.experiments.common import get_app
    for spec in ALL_FIGURE_SPECS:
        app = get_app(spec.app_name)
        assert app.mix(spec.mix_name)


@pytest.mark.slow
def test_run_tiny_figure_end_to_end():
    """A miniature sweep through the full figure pipeline."""
    base = figure_spec("fig11")
    tiny = FigureSpec(
        throughput_figure="tiny11", cpu_figure="tiny12",
        title="tiny", app_name="auction", mix_name="bidding",
        grids={c.name: ((50,), (50,)) for c in ALL_CONFIGURATIONS})
    report = run_figure_spec(
        tiny, full=False,
        configurations=("WsPhp-DB", "Ws-Servlet-EJB-DB"),
        phases=Phases(20.0, 40.0, 2.0))
    assert set(report.series) == {"WsPhp-DB", "Ws-Servlet-EJB-DB"}
    for series in report.series.values():
        assert len(series.points) == 1
        assert series.points[0].throughput_ipm > 0
    text = report.render_throughput_table()
    assert "WsPhp-DB" in text
    cpu_text = report.render_cpu_table()
    assert "EJB Server" in cpu_text


def test_cli_figures_and_version(capsys):
    from repro.__main__ import main
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out and "fig14" in out
    assert main(["version"]) == 0
    assert main(["run", "fig99"]) == 2


def test_cli_parser_rejects_no_command():
    import pytest as _pytest
    from repro.__main__ import build_parser
    with _pytest.raises(SystemExit):
        build_parser().parse_args([])

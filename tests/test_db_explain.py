"""Tests for EXPLAIN plan descriptions."""

import pytest

from repro.db import Column, ColumnType, Database, IndexDef, TableSchema
from repro.db.errors import SqlError


@pytest.fixture
def db():
    database = Database()
    database.create_table(TableSchema(
        name="items",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("category", ColumnType.INT),
                 Column("end_date", ColumnType.FLOAT),
                 Column("name", ColumnType.VARCHAR)],
        primary_key="id", auto_increment=True,
        indexes=[IndexDef("idx_cat_end", ("category", "end_date"))]))
    database.create_table(TableSchema(
        name="bids",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("item_id", ColumnType.INT),
                 Column("amount", ColumnType.FLOAT)],
        primary_key="id", auto_increment=True,
        indexes=[IndexDef("idx_item", ("item_id",))]))
    for i in range(1, 30):
        database.execute(
            "INSERT INTO items (category, end_date, name) VALUES (?, ?, ?)",
            (i % 3, float(i), f"item{i}"))
    return database


def _plan(db, sql):
    result = db.execute(sql)
    assert result.kind == "explain"
    return result.rows


def test_explain_pk_probe(db):
    rows = _plan(db, "EXPLAIN SELECT name FROM items WHERE id = 5")
    assert rows[0][1] == "items"
    assert rows[0][2] == "index_eq"
    assert rows[0][3] == "pk_items"


def test_explain_full_scan_with_filter(db):
    rows = _plan(db, "EXPLAIN SELECT id FROM items WHERE name LIKE 'x%'")
    assert rows[0][2] == "scan"
    assert "filter" in rows[0][4]


def test_explain_ordered_composite_index(db):
    """The MySQL-style 'equality prefix + ORDER BY next column' plan is
    visible: ordered index_eq, no sort step."""
    rows = _plan(db, "EXPLAIN SELECT id FROM items WHERE category = 1 "
                     "ORDER BY end_date LIMIT 5")
    assert rows[0][2] == "index_eq"
    assert rows[0][3] == "idx_cat_end"
    assert "ordered" in rows[0][4]
    assert all(row[2] != "sort" for row in rows)


def test_explain_sort_step_when_not_indexed(db):
    rows = _plan(db, "EXPLAIN SELECT id FROM items WHERE category = 1 "
                     "ORDER BY name")
    assert rows[-1][2] == "sort"


def test_explain_join_order(db):
    rows = _plan(db, "EXPLAIN SELECT i.name FROM bids b "
                     "JOIN items i ON i.id = b.item_id WHERE b.item_id = 3")
    assert [row[1] for row in rows] == ["bids", "items"]
    assert rows[0][2] == "index_eq"
    assert rows[1][3] == "pk_items"


def test_explain_aggregate_step(db):
    rows = _plan(db, "EXPLAIN SELECT category, COUNT(*) FROM items "
                     "GROUP BY category")
    assert rows[-1][2] == "aggregate"


def test_explain_update_and_delete(db):
    rows = _plan(db, "EXPLAIN UPDATE items SET name = 'x' WHERE id = 1")
    assert rows[0][2] == "index_eq"
    rows = _plan(db, "EXPLAIN DELETE FROM items WHERE category = 2")
    assert rows[0][3] == "idx_cat_end"


def test_explain_rejects_non_dml(db):
    with pytest.raises(SqlError):
        db.execute("EXPLAIN LOCK TABLES items READ")


def test_explain_runs_nothing(db):
    before = db.execute("SELECT COUNT(*) FROM items").scalar()
    db.execute("EXPLAIN DELETE FROM items WHERE id > 0")
    after = db.execute("SELECT COUNT(*) FROM items").scalar()
    assert before == after

"""Tests for request-level tracing (repro.obs): span trees, attribution,
exports, and the guarantee that tracing never perturbs the simulation."""

from __future__ import annotations

import json
import random
from dataclasses import asdict, replace

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.faults import FaultEvent, FaultPlan
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.profiles import profile_application
from repro.obs import (
    Tracer,
    build_report,
    chrome_trace,
    flame_summary,
    render_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim import Simulator
from repro.topology.configs import WS_SEP_SERVLET_DB, WS_SERVLET_DB
from repro.workload.client import RetryPolicy

EPS = 1e-9


@pytest.fixture(scope="module")
def app():
    return BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def servlet_profile(app):
    return profile_application(app, app.deploy_servlet(), "servlet",
                               repetitions=2)


def _tiny_spec(app, profile, **overrides):
    base = ExperimentSpec(
        config=WS_SERVLET_DB, profile=profile, mix=app.mix("shopping"),
        clients=20, ramp_up=15.0, measure=45.0, ramp_down=5.0, seed=7,
        ssl_interactions=app.SSL_INTERACTIONS, app_name="bookstore")
    return replace(base, **overrides)


# -- span-tree structural properties (hypothesis) -----------------------------

_ops = st.lists(
    st.tuples(st.sampled_from(["push", "pop", "pop_deep"]),
              st.floats(min_value=0.0, max_value=3.0)),
    max_size=40)


def _assert_well_formed(root):
    """Every span closed, children nested in time, exclusive sums add up."""
    for span in root.walk():
        assert span.end is not None, f"unclosed span {span.name}"
        assert span.end >= span.start
        covered = 0.0
        for child in span.children:
            assert child.parent is span
            assert child.start >= span.start - EPS
            assert child.end <= span.end + EPS
            covered += child.wall
        # Stack discipline makes siblings sequential, so child walls
        # can never cover more than the parent's wall...
        assert covered <= span.wall + EPS
        # ... and exclusive() is exactly the uncovered remainder.
        assert abs(span.exclusive() - max(0.0, span.wall - covered)) <= EPS


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_span_trees_are_well_formed(ops):
    """Whatever push/pop/advance sequence a request performs -- including
    popping a span several levels below the top of the stack, as an
    interrupted generator's finally-unwind does -- the finished tree is
    properly nested and every span is closed."""
    sim = Simulator()
    tracer = Tracer(sim)
    done = {}

    def request():
        rc = tracer.begin_request("req", 0)
        open_spans = []
        for op, dt in ops:
            if dt > 0.0:
                yield dt
            if op == "push":
                open_spans.append(rc.push(
                    f"s{rc.span_count}", "cpu", "t",
                    meta={"demand": 0.0}))
            elif op == "pop" and open_spans:
                rc.pop(open_spans.pop())
            elif op == "pop_deep" and open_spans:
                # Pop an arbitrary open span: everything pushed above
                # it must be force-closed with it.
                idx = len(open_spans) // 2
                rc.pop(open_spans[idx])
                del open_spans[idx:]
        yield 0.5
        rc.close()
        done["rc"] = rc

    sim.spawn(request())
    sim.run()
    rc = done["rc"]
    assert rc.closed
    _assert_well_formed(rc.root)
    # The tracer folded exactly the spans the tree holds and no request
    # context is left open.
    assert tracer.spans_folded == rc.span_count
    assert tracer.open_requests() == 0
    assert tracer.requests == [rc]


def test_pop_is_robust_to_unwound_spans():
    """Popping a parent closes the children still open above it; popping
    an already-unwound span is a no-op."""
    sim = Simulator()
    tracer = Tracer(sim)

    def request():
        rc = tracer.begin_request("req", 0)
        a = rc.push("a", "phase", "t")
        b = rc.push("b", "phase", "t")
        c = rc.push("c", "phase", "t")
        yield 1.0
        rc.pop(a)                   # closes c, b, then a
        assert a.end == b.end == c.end == sim.now
        rc.pop(b)                   # already unwound: no effect
        rc.close()

    sim.spawn(request())
    sim.run()


# -- tracing is a pure observer ------------------------------------------------

def test_traced_run_matches_untraced_run(app, servlet_profile):
    """Tracing on vs off: every declared report field is identical --
    same virtual-time results, same kernel event count (tracing adds no
    events, no RNG draws) -- except the trace-only bottleneck verdict."""
    untraced = run_experiment(_tiny_spec(app, servlet_profile))
    traced = run_experiment(_tiny_spec(app, servlet_profile, trace=True))

    as_untraced = asdict(untraced)
    as_traced = asdict(traced)
    assert as_traced.pop("bottleneck") is not None
    as_untraced.pop("bottleneck")
    assert as_traced == as_untraced
    assert traced.kernel_events == untraced.kernel_events

    # The traced point carries the full aggregates.
    tracer = traced.tracer
    assert tracer.open_requests() == 0
    assert tracer.n_requests > 0
    report = traced.bottleneck_report
    assert report.bottleneck == traced.bottleneck
    assert "bottleneck:" in render_report(report)


def test_trace_cpu_matches_sampler_within_one_percent(app, servlet_profile):
    """The trace-derived busy fraction (sum of clipped cpu-span demands
    over the window) must agree with the sysstat sampler's mean CPU on
    both machines of the canonical fig06-style point."""
    point = run_experiment(_tiny_spec(app, servlet_profile, trace=True))
    tracer = point.tracer
    assert abs(tracer.busy_fraction("web") - point.cpu.web_server) <= 0.01
    assert abs(tracer.busy_fraction("db") - point.cpu.database) <= 0.01


# -- closure by quiescence under fault plans ----------------------------------

_crashes = st.lists(
    st.tuples(st.sampled_from(["web", "servlet", "db"]),
              st.floats(min_value=16.0, max_value=40.0),
              st.floats(min_value=0.5, max_value=6.0)),
    min_size=1, max_size=2)


@settings(max_examples=8, deadline=None)
@given(drawn=_crashes)
def test_spans_close_by_quiescence_under_crash_plans(drawn):
    """Whatever tier crashes mid-measurement, once the run drains every
    request context is closed and every retained span has an end time."""
    app_, profile = test_spans_close_by_quiescence_under_crash_plans.inputs
    plan = FaultPlan(tuple(FaultEvent("crash", tier, at, duration)
                           for tier, at, duration in drawn))
    point = run_experiment(_tiny_spec(
        app_, profile, config=WS_SEP_SERVLET_DB, clients=8, trace=True,
        fault_plan=plan,
        retry=RetryPolicy(deadline=3.0, max_retries=1, backoff_base=0.25,
                          backoff_cap=1.0, retry_budget=10)))
    tracer = point.tracer
    assert tracer.open_requests() == 0
    for rc in tracer.requests:
        assert rc.closed
        _assert_well_formed(rc.root)


@pytest.fixture(scope="module", autouse=True)
def _attach_crash_inputs(app, servlet_profile):
    test_spans_close_by_quiescence_under_crash_plans.inputs = \
        (app, servlet_profile)
    yield


# -- attribution and exports ---------------------------------------------------

def test_bottleneck_report_shape(app, servlet_profile):
    point = run_experiment(_tiny_spec(app, servlet_profile, trace=True))
    report = build_report(point.tracer, configuration="WsServlet-DB",
                          interaction_mix="bookstore", clients=20)
    assert report.bottleneck
    shares = report.critical_path_shares()
    assert shares
    # Shares are fractions of total request time.
    assert all(0.0 <= s <= 1.0 + EPS for s in shares.values())
    assert sum(shares.values()) <= 1.0 + 1e-6


def test_chrome_trace_export_validates(app, servlet_profile, tmp_path):
    point = run_experiment(_tiny_spec(app, servlet_profile, trace=True))
    payload = chrome_trace(point.tracer.requests)
    validate_chrome_trace(payload)
    events = payload["traceEvents"]
    assert events
    assert {e["ph"] for e in events} <= {"X", "M"}
    assert any(e["ph"] == "X" for e in events)

    out = tmp_path / "trace.json"
    n = write_chrome_trace(point.tracer, str(out))
    assert n == len(events)
    validate_chrome_trace(json.loads(out.read_text()))

    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X"}]})


def test_flame_summary_mentions_hot_paths(app, servlet_profile):
    point = run_experiment(_tiny_spec(app, servlet_profile, trace=True))
    text = flame_summary(point.tracer.requests)
    assert "db.query" in text or "web.http" in text
    # Every interaction of the mix that ran shows up under its own name.
    assert any(name in text for name in app.interaction_names())

"""Windowed SLO metrics, the availability-sampler tail fix, and
construction-time validation of the resilience knobs."""

import random
from dataclasses import dataclass

import pytest

from repro.metrics.availability import AvailabilitySampler
from repro.metrics.slo import (
    SloSeries,
    SloSpec,
    SloWindow,
    percentile,
    select_stable_windows,
    summarize_slo,
    time_to_recover,
)
from repro.sim import Simulator


class _Clock:
    """Minimal stand-in for a Simulator: just a settable ``now``."""

    def __init__(self, now=0.0):
        self.now = now


# -- percentile ---------------------------------------------------------------

def test_percentile_nearest_rank():
    assert percentile([], 0.95) is None
    assert percentile([3.0], 0.5) == 3.0
    samples = [float(i) for i in range(1, 101)]   # 1..100
    random.Random(1).shuffle(samples)
    assert percentile(samples, 0.50) == 50.0
    assert percentile(samples, 0.95) == 95.0
    assert percentile(samples, 0.99) == 99.0


# -- SloSpec ------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    dict(latency_bound=0.0), dict(latency_bound=-1.0),
    dict(percentile=0.0), dict(percentile=1.0), dict(window=0.0),
])
def test_slo_spec_validation(kwargs):
    with pytest.raises(ValueError):
        SloSpec(**kwargs)


# -- SloSeries windowing ------------------------------------------------------

def test_series_files_samples_by_window():
    clock = _Clock()
    series = SloSeries(clock, SloSpec(window=1.0))
    series.start()
    clock.now = 0.2
    series.record_arrival()
    series.record(0.1)
    clock.now = 0.9
    series.record(0.3)
    clock.now = 2.5
    series.record_arrival()
    series.record_error()
    windows = series.windows()
    assert [w.index for w in windows] == [0, 1, 2]
    assert windows[0].completions == 2
    assert windows[0].arrivals == 1
    assert (windows[0].start, windows[0].end) == (0.0, 1.0)
    # The untouched middle window is materialized empty and sealed.
    assert windows[1].completions == 0
    assert windows[1].arrivals == 0
    assert windows[2].errors == 1
    assert windows[2].arrivals == 1
    assert windows[0].throughput == pytest.approx(2.0)
    assert windows[0].offered == pytest.approx(1.0)


def test_series_origin_anchors_window_zero():
    clock = _Clock(now=100.0)
    series = SloSeries(clock, SloSpec(window=2.0))
    series.start()
    clock.now = 101.9
    series.record(0.5)
    clock.now = 102.1
    series.record(0.5)
    windows = series.windows()
    assert [w.index for w in windows] == [0, 1]
    assert (windows[0].start, windows[0].end) == (100.0, 102.0)
    assert windows[0].completions == 1
    assert windows[1].completions == 1


def test_series_empty_and_unstarted_are_safe():
    series = SloSeries(_Clock(), SloSpec())
    assert series.windows() == []
    # Recording before start() anchors at t=0 instead of crashing.
    clock = _Clock(now=3.5)
    series = SloSeries(clock, SloSpec(window=1.0))
    series.record(0.2)
    assert [w.index for w in series.windows()] == [0, 1, 2, 3]


def test_series_never_schedules_events():
    sim = Simulator()
    series = SloSeries(sim, SloSpec())
    series.start()
    series.record_arrival()
    series.record(0.1)
    series.record_error()
    series.windows()
    assert sim.quiescent()
    assert sim.events_processed == 0


# -- SloWindow.violates -------------------------------------------------------

def test_empty_window_violates_only_under_offered_load():
    spec = SloSpec(latency_bound=2.0, percentile=0.95)
    idle = SloWindow(index=0, start=0, end=1)
    assert not idle.violates(spec)
    starved = SloWindow(index=0, start=0, end=1, arrivals=3)
    assert starved.violates(spec)
    erroring = SloWindow(index=0, start=0, end=1, errors=1)
    assert erroring.violates(spec)


def test_violates_checks_percentile_raw_and_sealed():
    spec = SloSpec(latency_bound=2.0, percentile=0.95)
    good = SloWindow(index=0, start=0, end=1, completions=20,
                     latencies=[0.1] * 19 + [5.0])
    # p95 of 19x0.1 + one 5.0 is 0.1: one straggler doesn't violate.
    assert not good.violates(spec)
    bad = SloWindow(index=0, start=0, end=1, completions=20,
                    latencies=[3.0] * 20)
    assert bad.violates(spec)
    # Sealing drops the raw samples; the digest keeps the verdict.
    good.seal()
    bad.seal()
    assert good.latencies == [] and bad.latencies == []
    assert not good.violates(spec)
    assert bad.violates(spec)


# -- select_stable_windows ----------------------------------------------------

def _window_run(n, width=1.0):
    return [SloWindow(index=i, start=i * width, end=(i + 1) * width,
                      completions=1, latencies=[0.1])
            for i in range(n)]


def test_select_stable_windows_drops_warmup_and_partial_tail():
    windows = _window_run(10)
    stable = select_stable_windows(windows, warmup=2, horizon=9.5)
    # Warmup windows 0-1 gone; window [9, 10) extends past the 9.5
    # horizon so it is partial and dropped too.
    assert [w.index for w in stable] == [2, 3, 4, 5, 6, 7, 8]
    aligned = select_stable_windows(windows, warmup=0, horizon=10.0)
    assert [w.index for w in aligned] == list(range(10))
    kept = select_stable_windows(windows, warmup=0, horizon=9.5,
                                 drop_last_partial=False)
    assert [w.index for w in kept] == list(range(10))
    assert select_stable_windows([], warmup=3) == []
    with pytest.raises(ValueError):
        select_stable_windows(windows, warmup=-1)


# -- summarize_slo ------------------------------------------------------------

def test_summarize_slo_raw_samples():
    spec = SloSpec(latency_bound=1.0, percentile=0.95)
    windows = [
        SloWindow(index=0, start=0, end=1, completions=4, arrivals=5,
                  latencies=[0.1, 0.2, 0.3, 0.4]),
        SloWindow(index=1, start=1, end=2, completions=2, arrivals=2,
                  errors=1, latencies=[2.0, 3.0]),
    ]
    summary = summarize_slo(windows, spec)
    assert summary.windows_total == 2
    assert summary.windows_violating == 1
    assert summary.violation_fraction == pytest.approx(0.5)
    assert summary.compliant_fraction == pytest.approx(0.5)
    assert summary.offered_per_s == pytest.approx(3.5)
    assert summary.goodput_per_s == pytest.approx(3.0)
    assert summary.error_per_s == pytest.approx(0.5)
    assert summary.p50 == 0.3
    # Nearest-rank over the 6 pooled samples: rank int(0.95*6)=5 -> 2.0.
    assert summary.p95 == 2.0


def test_summarize_slo_sealed_falls_back_to_weighted_digest():
    spec = SloSpec()
    one = SloWindow(index=0, start=0, end=1, completions=1,
                    latencies=[1.0])
    three = SloWindow(index=1, start=1, end=2, completions=3,
                      latencies=[2.0, 2.0, 2.0])
    one.seal()
    three.seal()
    summary = summarize_slo([one, three], spec)
    # Completions-weighted: (1*1.0 + 3*2.0) / 4.
    assert summary.p50 == pytest.approx(1.75)
    empty = summarize_slo([], spec)
    assert empty.windows_total == 0
    assert empty.violation_fraction == 0.0
    assert empty.goodput_per_s == 0.0
    assert empty.p95 is None


# -- time_to_recover ----------------------------------------------------------

def _recovery_series(violating_until):
    windows = []
    for i in range(12):
        bad = i < violating_until
        windows.append(SloWindow(
            index=i, start=float(i), end=float(i + 1), completions=5,
            latencies=[5.0] * 5 if bad else [0.1] * 5))
    return windows


def test_time_to_recover_finds_first_settled_run():
    spec = SloSpec(latency_bound=2.0, percentile=0.95)
    windows = _recovery_series(violating_until=6)
    # Disturbance ends at t=4; windows 6,7,8 are the first 3-window
    # compliant run, starting at t=6.
    assert time_to_recover(windows, spec, disturbance_end=4.0,
                           settle=3) == pytest.approx(2.0)
    # Recovery at the disturbance edge clamps to zero.
    assert time_to_recover(windows, spec, disturbance_end=7.0,
                           settle=3) == pytest.approx(0.0)


def test_time_to_recover_never_settles():
    spec = SloSpec(latency_bound=2.0, percentile=0.95)
    windows = _recovery_series(violating_until=12)
    assert time_to_recover(windows, spec, disturbance_end=2.0) is None
    with pytest.raises(ValueError):
        time_to_recover(windows, spec, disturbance_end=2.0, settle=0)


def test_time_to_recover_ignores_pre_disturbance_compliance():
    spec = SloSpec(latency_bound=2.0, percentile=0.95)
    # Compliant early, violating through the disturbance, never recovers.
    windows = _recovery_series(violating_until=0)
    for w in windows[4:]:
        w.latencies = [5.0] * 5
    assert time_to_recover(windows, spec, disturbance_end=4.0) is None


# -- AvailabilitySampler.flush (the tail-window fix) --------------------------

@dataclass
class _Counters:
    interactions_completed: int = 0
    timeouts: int = 0
    aborts: int = 0
    rejections: int = 0
    retries: int = 0


class _StubPopulation:
    def __init__(self):
        self.stats = _Counters()


def test_flush_captures_run_shorter_than_one_interval():
    sim = Simulator()
    population = _StubPopulation()
    sampler = AvailabilitySampler(sim, population, interval=10.0)
    sampler.start()
    population.stats.interactions_completed = 7
    sim.run(until=4.0)
    assert sampler.windows == []          # no full interval elapsed
    sampler.flush()
    assert len(sampler.windows) == 1
    tail = sampler.windows[0]
    assert (tail.start, tail.end) == (0.0, 4.0)
    assert tail.completions == 7
    assert tail.goodput_ipm == pytest.approx(7 * 60.0 / 4.0)


def test_flush_captures_partial_tail_after_full_windows():
    sim = Simulator()
    population = _StubPopulation()
    sampler = AvailabilitySampler(sim, population, interval=5.0)
    sampler.start()
    population.stats.interactions_completed = 10
    sim.run(until=5.0)
    population.stats.interactions_completed = 14
    population.stats.rejections = 2
    sim.run(until=8.0)
    sampler.flush()
    assert len(sampler.windows) == 2
    assert (sampler.windows[0].start, sampler.windows[0].end) == (0.0, 5.0)
    assert sampler.windows[0].completions == 10
    tail = sampler.windows[1]
    assert (tail.start, tail.end) == (5.0, 8.0)
    assert tail.completions == 4
    assert tail.rejections == 2


def test_flush_skips_zero_length_tail_and_unstarted_sampler():
    sim = Simulator()
    population = _StubPopulation()
    sampler = AvailabilitySampler(sim, population, interval=5.0)
    sampler.flush()                       # never started: no-op
    assert sampler.windows == []
    sampler.start()
    sim.run(until=5.0)
    sampler.flush()                       # measurement ended on a sample
    assert len(sampler.windows) == 1
    assert sampler.windows[0].duration == pytest.approx(5.0)
    # Double flush adds nothing either.
    sampler.flush()
    assert len(sampler.windows) == 1


# -- construction-time validation of resilience knobs -------------------------

def test_retry_policy_validation():
    from repro.workload.client import RetryPolicy
    RetryPolicy(deadline=None)            # None = no deadline: fine
    RetryPolicy(deadline=2.0, max_retries=0, backoff_base=0.0,
                backoff_cap=0.0, retry_budget=1)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_cap=-0.1)
    with pytest.raises(ValueError, match="max_retries=0"):
        RetryPolicy(retry_budget=0)


def test_think_time_spec_validation():
    from repro.workload.client import ThinkTimeSpec
    with pytest.raises(ValueError):
        ThinkTimeSpec(think_mean=0.0)
    with pytest.raises(ValueError):
        ThinkTimeSpec(session_mean=-1.0)


def test_fault_plan_stochastic_validation():
    from repro.faults import FaultPlan
    rng = random.Random(1)
    plan = FaultPlan.stochastic(rng, horizon=100.0, mtbf=30.0, mttr=5.0)
    assert plan.events
    with pytest.raises(ValueError):
        FaultPlan.stochastic(rng, horizon=0.0)
    with pytest.raises(ValueError):
        FaultPlan.stochastic(rng, horizon=100.0, mtbf=0.0)
    with pytest.raises(ValueError):
        FaultPlan.stochastic(rng, horizon=100.0, mttr=-1.0)
    with pytest.raises(ValueError):
        FaultPlan.stochastic(rng, horizon=100.0, max_events=0)

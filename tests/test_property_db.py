"""Property-based tests (hypothesis) for the database engine."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db import Column, ColumnType, Database, IndexDef, TableSchema


def fresh_db(kind="sorted"):
    db = Database()
    db.create_table(TableSchema(
        name="t",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("k", ColumnType.INT),
                 Column("v", ColumnType.VARCHAR)],
        primary_key="id", auto_increment=True,
        indexes=[IndexDef("idx_k", ("k",), kind=kind)]))
    return db


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=-50, max_value=50),
              st.text(alphabet="abcxyz", max_size=6)),
    min_size=0, max_size=60)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, probe=st.integers(min_value=-50, max_value=50))
def test_index_lookup_equals_scan(rows, probe):
    """An indexed equality probe returns exactly what a scan would."""
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    indexed = db.execute("SELECT id FROM t WHERE k = ?", (probe,))
    assert not indexed.stats.rows_examined_scan
    expected = sorted(i + 1 for i, (k, __) in enumerate(rows) if k == probe)
    assert sorted(r[0] for r in indexed.rows) == expected


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy,
       low=st.integers(min_value=-50, max_value=50),
       high=st.integers(min_value=-50, max_value=50))
def test_range_query_matches_filter(rows, low, high):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    result = db.execute("SELECT k FROM t WHERE k >= ? AND k <= ?",
                        (low, high))
    expected = sorted(k for k, __ in rows if low <= k <= high)
    assert sorted(r[0] for r in result.rows) == expected


@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy)
def test_order_by_limit_prefix_of_full_sort(rows):
    """LIMIT n under ORDER BY returns the first n of the full ordering."""
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    full = db.execute("SELECT k, id FROM t ORDER BY k, id")
    limited = db.execute("SELECT k, id FROM t ORDER BY k, id LIMIT 7")
    assert limited.rows == full.rows[:7]
    keys = [r[0] for r in full.rows]
    assert keys == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy)
def test_aggregates_match_python(rows):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    result = db.execute("SELECT COUNT(*), SUM(k), MIN(k), MAX(k) FROM t")
    count, total, low, high = result.rows[0]
    keys = [k for k, __ in rows]
    assert count == len(keys)
    if keys:
        assert total == sum(keys)
        assert low == min(keys)
        assert high == max(keys)
    else:
        assert total is None and low is None and high is None


@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy, threshold=st.integers(-50, 50))
def test_delete_then_count_consistent(rows, threshold):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    deleted = db.execute("DELETE FROM t WHERE k < ?", (threshold,))
    remaining = db.execute("SELECT COUNT(*) FROM t").scalar()
    expected_deleted = sum(1 for k, __ in rows if k < threshold)
    assert deleted.rowcount == expected_deleted
    assert remaining == len(rows) - expected_deleted
    # Index agrees with the heap after deletions.
    still = db.execute("SELECT COUNT(*) FROM t WHERE k >= ?",
                       (threshold,)).scalar()
    assert still == remaining


@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy, delta=st.integers(-5, 5))
def test_update_preserves_row_count_and_index(rows, delta):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    db.execute("UPDATE t SET k = k + ?", (delta,))
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)
    for k, __ in rows[:5]:
        hits = db.execute("SELECT COUNT(*) FROM t WHERE k = ?",
                          (k + delta,)).scalar()
        expected = sum(1 for kk, __v in rows if kk == k)
        assert hits >= 1 if expected else True


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_hash_and_sorted_index_agree(rows):
    """The same equality probe gives identical answers on both index
    kinds."""
    sorted_db = fresh_db("sorted")
    hash_db = fresh_db("hash")
    for k, v in rows:
        sorted_db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
        hash_db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    for probe in {k for k, __ in rows[:10]}:
        a = sorted_db.execute("SELECT id FROM t WHERE k = ?", (probe,))
        b = hash_db.execute("SELECT id FROM t WHERE k = ?", (probe,))
        assert sorted(a.rows) == sorted(b.rows)


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy, limit=st.integers(1, 10),
       offset=st.integers(0, 10))
def test_limit_offset_window(rows, limit, offset):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    full = db.execute("SELECT id FROM t ORDER BY id")
    window = db.execute(
        f"SELECT id FROM t ORDER BY id LIMIT {limit} OFFSET {offset}")
    assert window.rows == full.rows[offset:offset + limit]


@settings(max_examples=40, deadline=None)
@given(rows=rows_strategy)
def test_group_by_totals_match(rows):
    db = fresh_db()
    for k, v in rows:
        db.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
    grouped = db.execute("SELECT k, COUNT(*) FROM t GROUP BY k")
    from collections import Counter
    expected = Counter(k for k, __ in rows)
    assert {row[0]: row[1] for row in grouped.rows} == dict(expected)
    assert sum(row[1] for row in grouped.rows) == len(rows)

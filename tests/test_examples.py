"""Smoke tests: the example scripts run end to end.

Only the fast examples run here (the sweep-based ones take minutes and
are exercised by the benchmark suite instead); each is executed in-
process with its output captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "bookstore_shopping.py",
            "auction_bidding.py", "custom_architecture.py",
            "analytic_model.py", "wirt_compliance.py",
            "bulletin_board.py"} <= names


def test_quickstart_runs(capsys):
    out = run_example("quickstart.py", capsys)
    assert "/best_sellers" in out
    assert "EJB" in out
    # The headline observation is visible in the output: EJB issues far
    # more queries than PHP on the same page.
    assert "lock_stmts=2" in out      # PHP buy_confirm uses LOCK TABLES
    assert "sync_spans=1" in out      # the sync servlet replaces them


def test_bulletin_board_example_runs(capsys):
    out = run_example("bulletin_board.py", capsys)
    assert "prediction HOLDS" in out
    assert "Ws-Servlet-EJB-DB" in out


@pytest.mark.slow
def test_analytic_model_example_runs(capsys):
    out = run_example("analytic_model.py", capsys)
    assert "MVA throughput curve" in out
    assert "bottleneck" in out

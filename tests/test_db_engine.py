"""End-to-end SQL tests against the Database engine."""

import pytest

from repro.db import (
    Column,
    ColumnType,
    Database,
    IndexDef,
    TableSchema,
)
from repro.db.errors import IntegrityError, LockError, SqlError


@pytest.fixture
def db():
    database = Database()
    database.create_table(TableSchema(
        name="items",
        columns=[
            Column("id", ColumnType.INT, nullable=False),
            Column("name", ColumnType.VARCHAR),
            Column("category", ColumnType.INT),
            Column("price", ColumnType.FLOAT),
            Column("quantity", ColumnType.INT),
        ],
        primary_key="id",
        auto_increment=True,
        indexes=[IndexDef("idx_cat", ("category",))],
    ))
    database.create_table(TableSchema(
        name="bids",
        columns=[
            Column("id", ColumnType.INT, nullable=False),
            Column("item_id", ColumnType.INT),
            Column("user_id", ColumnType.INT),
            Column("amount", ColumnType.FLOAT),
        ],
        primary_key="id",
        auto_increment=True,
        indexes=[IndexDef("idx_item", ("item_id",))],
    ))
    for i in range(1, 21):
        database.execute(
            "INSERT INTO items (name, category, price, quantity) "
            "VALUES (?, ?, ?, ?)",
            (f"item{i:02d}", i % 4, float(i), 10))
    for i in range(1, 11):
        database.execute(
            "INSERT INTO bids (item_id, user_id, amount) VALUES (?, ?, ?)",
            (1 + (i % 5), i, 10.0 * i))
    return database


def test_insert_assigns_auto_increment(db):
    result = db.execute(
        "INSERT INTO items (name, category, price, quantity) "
        "VALUES ('new', 1, 5.0, 3)")
    assert result.last_insert_id == 21


def test_select_by_primary_key_uses_index(db):
    result = db.execute("SELECT name FROM items WHERE id = ?", (7,))
    assert result.rows == [("item07",)]
    assert result.stats.indexed_for_table("items") == 1
    assert not result.stats.rows_examined_scan


def test_select_by_secondary_index(db):
    result = db.execute("SELECT id FROM items WHERE category = ?", (2,))
    ids = sorted(r[0] for r in result.rows)
    assert ids == [2, 6, 10, 14, 18]
    assert result.stats.indexed_for_table("items") == 5


def test_select_full_scan_counts_examined(db):
    result = db.execute("SELECT id FROM items WHERE price > 18.0")
    assert {r[0] for r in result.rows} == {19, 20}
    assert result.stats.rows_examined_scan["items"] == 20


def test_select_range_uses_pk_index(db):
    result = db.execute("SELECT id FROM items WHERE id > 17")
    assert sorted(r[0] for r in result.rows) == [18, 19, 20]
    assert result.stats.indexed_for_table("items") == 3


def test_order_by_and_limit(db):
    result = db.execute(
        "SELECT id, price FROM items ORDER BY price DESC LIMIT 3")
    assert [r[0] for r in result.rows] == [20, 19, 18]


def test_order_by_index_early_stop(db):
    result = db.execute("SELECT id FROM items ORDER BY id LIMIT 5")
    assert [r[0] for r in result.rows] == [1, 2, 3, 4, 5]
    # Early termination: only LIMIT rows examined via the ordered index.
    assert result.stats.indexed_for_table("items") == 5


def test_order_by_multiple_keys(db):
    result = db.execute(
        "SELECT category, id FROM items ORDER BY category ASC, id DESC "
        "LIMIT 6")
    assert result.rows[0][0] == 0
    cats = [r[0] for r in result.rows]
    assert cats == sorted(cats)
    zero_ids = [r[1] for r in result.rows if r[0] == 0]
    assert zero_ids == sorted(zero_ids, reverse=True)


def test_limit_offset(db):
    result = db.execute("SELECT id FROM items ORDER BY id LIMIT 5 OFFSET 10")
    assert [r[0] for r in result.rows] == [11, 12, 13, 14, 15]


def test_join_with_index_probe(db):
    result = db.execute(
        "SELECT i.name, b.amount FROM bids b JOIN items i ON i.id = b.item_id "
        "WHERE b.user_id = ?", (3,))
    assert result.rows == [("item04", 30.0)]


def test_comma_join_equivalent(db):
    explicit = db.execute(
        "SELECT b.id FROM bids b JOIN items i ON i.id = b.item_id "
        "WHERE i.category = 1")
    comma = db.execute(
        "SELECT b.id FROM bids b, items i "
        "WHERE i.id = b.item_id AND i.category = 1")
    assert sorted(explicit.rows) == sorted(comma.rows)


def test_left_join_preserves_unmatched(db):
    db.execute("INSERT INTO items (name, category, price, quantity) "
               "VALUES ('lonely', 9, 1.0, 1)")
    result = db.execute(
        "SELECT i.id, b.id FROM items i LEFT JOIN bids b ON b.item_id = i.id "
        "WHERE i.category = 9")
    assert result.rows == [(21, None)]


def test_aggregates_global(db):
    result = db.execute(
        "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) "
        "FROM bids")
    count, total, low, high, avg = result.rows[0]
    assert count == 10
    assert total == pytest.approx(550.0)
    assert low == 10.0 and high == 100.0
    assert avg == pytest.approx(55.0)


def test_aggregates_empty_input(db):
    result = db.execute("SELECT COUNT(*), MAX(amount) FROM bids WHERE id > 999")
    assert result.rows == [(0, None)]


def test_group_by_with_having_and_order(db):
    result = db.execute(
        "SELECT item_id, COUNT(*) AS cnt, MAX(amount) AS top FROM bids "
        "GROUP BY item_id HAVING COUNT(*) > 1 ORDER BY top DESC")
    assert all(row[1] > 1 for row in result.rows)
    tops = [row[2] for row in result.rows]
    assert tops == sorted(tops, reverse=True)


def test_count_distinct(db):
    result = db.execute("SELECT COUNT(DISTINCT item_id) FROM bids")
    assert result.scalar() == 5


def test_distinct_rows(db):
    result = db.execute("SELECT DISTINCT category FROM items ORDER BY category")
    assert [r[0] for r in result.rows] == [0, 1, 2, 3]


def test_update_with_arithmetic(db):
    db.execute("UPDATE items SET quantity = quantity - 1 WHERE id = ?", (5,))
    result = db.execute("SELECT quantity FROM items WHERE id = 5")
    assert result.scalar() == 9


def test_update_rowcount(db):
    result = db.execute("UPDATE items SET quantity = 0 WHERE category = 1")
    assert result.rowcount == 5


def test_update_does_not_see_own_writes(db):
    # Halloween protection: moving rows into the scanned range must not
    # cause re-processing.
    db.execute("UPDATE items SET category = category + 1")
    result = db.execute("SELECT COUNT(*) FROM items WHERE category = 4")
    assert result.scalar() == 5


def test_delete(db):
    result = db.execute("DELETE FROM bids WHERE item_id = ?", (1,))
    assert result.rowcount == 2
    remaining = db.execute("SELECT COUNT(*) FROM bids").scalar()
    assert remaining == 8


def test_delete_then_insert_reuses_nothing(db):
    db.execute("DELETE FROM items WHERE id = 20")
    result = db.execute("INSERT INTO items (name, category, price, quantity) "
                        "VALUES ('x', 0, 1.0, 1)")
    assert result.last_insert_id == 21  # auto-increment never reused


def test_like_patterns(db):
    result = db.execute("SELECT id FROM items WHERE name LIKE 'item0%'")
    assert len(result.rows) == 9
    result = db.execute("SELECT id FROM items WHERE name LIKE 'item_5'")
    assert {r[0] for r in result.rows} == {5, 15}


def test_in_and_between(db):
    result = db.execute("SELECT id FROM items WHERE id IN (1, 3, 99)")
    assert sorted(r[0] for r in result.rows) == [1, 3]
    result = db.execute("SELECT id FROM items WHERE price BETWEEN 4 AND 6")
    assert sorted(r[0] for r in result.rows) == [4, 5, 6]


def test_is_null_matching(db):
    db.execute("INSERT INTO items (name, category, price, quantity) "
               "VALUES ('nullcat', NULL, 1.0, 1)")
    result = db.execute("SELECT id FROM items WHERE category IS NULL")
    assert len(result.rows) == 1
    result = db.execute("SELECT COUNT(*) FROM items WHERE category IS NOT NULL")
    assert result.scalar() == 20


def test_null_comparison_never_matches(db):
    db.execute("INSERT INTO items (name, category, price, quantity) "
               "VALUES ('nullcat', NULL, 1.0, 1)")
    result = db.execute("SELECT id FROM items WHERE category = NULL")
    assert result.rows == []


def test_or_predicate(db):
    result = db.execute(
        "SELECT id FROM items WHERE id = 1 OR id = 2")
    assert sorted(r[0] for r in result.rows) == [1, 2]


def test_select_expression_projection(db):
    result = db.execute(
        "SELECT id, price * quantity AS total FROM items WHERE id = 3")
    assert result.rows == [(3, 30.0)]
    assert result.columns == ["id", "total"]


def test_parameter_count_enforced(db):
    with pytest.raises(SqlError):
        db.execute("SELECT id FROM items WHERE id = ?", (1, 2))
    with pytest.raises(SqlError):
        db.execute("SELECT id FROM items WHERE id = ?")


def test_unknown_table_and_column(db):
    with pytest.raises(SqlError):
        db.execute("SELECT id FROM ghosts")
    with pytest.raises(SqlError):
        db.execute("SELECT ghost FROM items")


def test_ambiguous_column_rejected(db):
    with pytest.raises(SqlError):
        db.execute("SELECT id FROM items i JOIN bids b ON b.item_id = i.id")


def test_ddl_via_sql(db):
    db.execute("CREATE TABLE notes (id INT AUTO_INCREMENT, body TEXT)")
    db.execute("INSERT INTO notes (body) VALUES ('hello')")
    assert db.execute("SELECT body FROM notes").scalar() == "hello"
    db.execute("CREATE INDEX idx_body ON notes (body)")
    assert "idx_body" in db.table("notes").indexes


def test_transaction_statements_are_noops(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO items (name, category, price, quantity) "
               "VALUES ('t', 0, 1.0, 1)")
    db.execute("ROLLBACK")  # MyISAM: no effect
    assert db.execute("SELECT COUNT(*) FROM items").scalar() == 21


def test_lock_tables_enforcement(db):
    session = db.open_session()
    db.execute("LOCK TABLES items READ", session=session)
    # Reading a locked table is fine.
    db.execute("SELECT COUNT(*) FROM items", session=session)
    # Writing a READ-locked table is rejected.
    with pytest.raises(LockError):
        db.execute("UPDATE items SET quantity = 0 WHERE id = 1",
                    session=session)
    # Touching an unlocked table is rejected.
    with pytest.raises(LockError):
        db.execute("SELECT COUNT(*) FROM bids", session=session)
    db.execute("UNLOCK TABLES", session=session)
    db.execute("SELECT COUNT(*) FROM bids", session=session)


def test_lock_tables_write_allows_update(db):
    session = db.open_session()
    db.execute("LOCK TABLES items WRITE", session=session)
    db.execute("UPDATE items SET quantity = 99 WHERE id = 1", session=session)
    db.execute("UNLOCK TABLES", session=session)
    assert db.execute("SELECT quantity FROM items WHERE id = 1").scalar() == 99


def test_sessions_are_isolated(db):
    s1 = db.open_session()
    s2 = db.open_session()
    db.execute("LOCK TABLES items READ", session=s1)
    # s2 holds no locks, so it is unrestricted (functional layer is
    # single-threaded; contention happens in the simulation layer).
    db.execute("SELECT COUNT(*) FROM bids", session=s2)


def test_duplicate_primary_key_rejected(db):
    with pytest.raises(IntegrityError):
        db.execute("INSERT INTO items (id, name, category, price, quantity) "
                   "VALUES (1, 'dup', 0, 1.0, 1)")


def test_not_null_enforced(db):
    db.create_table(TableSchema(
        name="strict",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("req", ColumnType.VARCHAR, nullable=False)],
        primary_key="id", auto_increment=True))
    with pytest.raises(IntegrityError):
        db.execute("INSERT INTO strict (req) VALUES (NULL)")


def test_cost_scales_scans_by_nominal_rows():
    db = Database()
    schema = TableSchema(
        name="big",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("x", ColumnType.INT)],
        primary_key="id", auto_increment=True)
    schema.stats.nominal_rows = 100_000
    db.create_table(schema)
    for i in range(100):
        db.execute("INSERT INTO big (x) VALUES (?)", (i,))
    scan = db.execute("SELECT COUNT(*) FROM big WHERE x > -1")
    probe = db.execute("SELECT x FROM big WHERE id = 5")
    # The scan is priced at ~100k scaled rows, dwarfing the probe.
    assert scan.cost.scaled_rows_examined == pytest.approx(100_000)
    assert scan.cost.cpu_seconds > 100 * probe.cost.cpu_seconds


def test_index_probe_cost_not_scaled():
    db = Database()
    schema = TableSchema(
        name="big",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("x", ColumnType.INT)],
        primary_key="id", auto_increment=True)
    schema.stats.nominal_rows = 1_000_000
    db.create_table(schema)
    for i in range(50):
        db.execute("INSERT INTO big (x) VALUES (?)", (i,))
    probe = db.execute("SELECT x FROM big WHERE id = 5")
    assert probe.cost.scaled_rows_examined == 1.0


def test_result_set_helpers(db):
    result = db.execute("SELECT id, name FROM items WHERE id = 1")
    assert result.first() == (1, "item01")
    assert result.as_dicts() == [{"id": 1, "name": "item01"}]
    empty = db.execute("SELECT id FROM items WHERE id = 999")
    assert empty.first() is None
    assert empty.scalar() is None


def test_left_join_where_is_null_antijoin(db):
    """WHERE predicates on an outer-joined table evaluate after the
    join: the classic anti-join finds rows with no match."""
    # Items 6..20 have no bids (bids cover item_id 1..5).
    result = db.execute(
        "SELECT COUNT(*) FROM items i LEFT JOIN bids b ON b.item_id = i.id "
        "WHERE b.id IS NULL")
    assert result.scalar() == 15
    # And the complementary filter keeps only matched rows.
    matched = db.execute(
        "SELECT COUNT(DISTINCT i.id) FROM items i "
        "LEFT JOIN bids b ON b.item_id = i.id WHERE b.id IS NOT NULL")
    assert matched.scalar() == 5


def test_left_join_where_filter_on_inner_value(db):
    """A WHERE filter on the outer table's column drops NULL rows."""
    result = db.execute(
        "SELECT i.id, b.amount FROM items i "
        "LEFT JOIN bids b ON b.item_id = i.id WHERE b.amount > 90")
    assert all(row[1] > 90 for row in result.rows)


# -- DDL plan-cache invalidation ----------------------------------------------

def _access_kinds(db, sql):
    """The access-path kinds EXPLAIN reports for ``sql``."""
    return [row[2] for row in db.execute("EXPLAIN " + sql).rows]


def test_plan_cache_replans_after_create_index(db):
    """A cached plan must be re-planned once a usable index appears."""
    sql = "SELECT id FROM items WHERE price = 5.0"
    assert "scan" in _access_kinds(db, sql)
    db.execute(sql)                               # caches the scan plan
    cached = db._plan_cache[sql]
    db.execute("CREATE INDEX idx_price ON items (price)")
    assert sql not in db._plan_cache              # invalidated
    db.execute(sql)
    assert db._plan_cache[sql] is not cached      # freshly planned
    assert "scan" not in _access_kinds(db, sql)   # now uses idx_price


def test_plan_cache_replans_after_drop_index(db):
    sql = "SELECT id FROM items WHERE category = 2"
    assert "scan" not in _access_kinds(db, sql)   # idx_cat in play
    db.execute(sql)
    assert sql in db._plan_cache
    db.execute("DROP INDEX idx_cat ON items")
    assert sql not in db._plan_cache
    # Re-planning falls back to a full scan and still answers correctly.
    assert "scan" in _access_kinds(db, sql)
    result = db.execute(sql)
    assert sorted(row[0] for row in result.rows) == [2, 6, 10, 14, 18]


def test_ddl_statements_are_never_plan_cached(db):
    for sql in ("CREATE INDEX idx_q ON items (quantity)",
                "DROP INDEX idx_q ON items"):
        db.execute(sql)
        assert sql not in db._plan_cache


def test_drop_index_errors(db):
    with pytest.raises(SqlError):
        db.execute("DROP INDEX nonexistent ON items")
    with pytest.raises(SqlError):
        db.execute("DROP INDEX pk_items ON items")   # pk is protected
    with pytest.raises(SqlError):
        db.execute("DROP INDEX idx_cat ON missing_table")


def test_drop_table_statement(db):
    db.execute("CREATE TABLE scratch (id INT PRIMARY KEY, v INT)")
    db.execute("INSERT INTO scratch (id, v) VALUES (1, 2)")
    sql = "SELECT v FROM scratch WHERE id = 1"
    assert db.execute(sql).scalar() == 2
    db.execute("DROP TABLE scratch")
    assert sql not in db._plan_cache
    with pytest.raises(SqlError):
        db.execute(sql)

"""Tests for configurations, profiles, and the simulated site."""

import random

import pytest

from repro.apps.auction import AuctionApp, build_auction_database
from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.harness.profiles import (
    compile_trace,
    profile_application,
)
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.sim import Simulator
from repro.topology.configs import (
    ALL_CONFIGURATIONS,
    WS_PHP_DB,
    WS_SEP_SERVLET_DB,
    WS_SERVLET_DB,
    WS_SERVLET_DB_SYNC,
    WS_SERVLET_EJB_DB,
    configuration_by_name,
)
from repro.topology.simulation import SimulatedSite


@pytest.fixture(scope="module")
def bookstore_app():
    return BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def php_profile(bookstore_app):
    return profile_application(bookstore_app, bookstore_app.deploy_php(),
                               "php", repetitions=2)


@pytest.fixture(scope="module")
def sync_profile(bookstore_app):
    return profile_application(
        bookstore_app, bookstore_app.deploy_servlet(sync_locking=True),
        "servlet_sync", repetitions=2)


# -------------------------------------------------------------- configs

def test_six_configurations_match_paper():
    names = [c.name for c in ALL_CONFIGURATIONS]
    assert names == ["WsPhp-DB", "WsServlet-DB", "WsServlet-DB(sync)",
                     "Ws-Servlet-DB", "Ws-Servlet-DB(sync)",
                     "Ws-Servlet-EJB-DB"]


def test_php_is_colocated_with_web():
    assert WS_PHP_DB.colocated("web", "gen")
    assert not WS_SEP_SERVLET_DB.colocated("web", "gen")


def test_machine_counts():
    assert len(WS_PHP_DB.machine_names()) == 2
    assert len(WS_SERVLET_DB.machine_names()) == 2
    assert len(WS_SEP_SERVLET_DB.machine_names()) == 3
    assert len(WS_SERVLET_EJB_DB.machine_names()) == 4


def test_configuration_by_name():
    assert configuration_by_name("WsPhp-DB") is WS_PHP_DB
    with pytest.raises(KeyError):
        configuration_by_name("nope")


def test_unknown_role_raises():
    with pytest.raises(KeyError):
        WS_PHP_DB.machine_of("ejb")


# -------------------------------------------------------------- profiles

def test_profile_covers_every_interaction(bookstore_app, php_profile):
    assert set(php_profile.interactions) == \
        set(bookstore_app.interaction_names())
    for profile in php_profile.interactions.values():
        assert len(profile.variants) == 2


def test_profile_demands_are_positive(php_profile):
    for name, interaction in php_profile.interactions.items():
        for variant in interaction.variants:
            assert variant.response_bytes > 0, name
            if name != "search_request":
                assert variant.db_cpu_seconds > 0, name


def test_php_profile_has_lock_steps_not_sync(php_profile):
    cart = php_profile.profile("shopping_cart").variants[0]
    kinds = [s[0] for s in cart.steps]
    assert "lock" in kinds and "unlock" in kinds
    assert "sync_acquire" not in kinds


def test_sync_profile_has_sync_steps_not_locks(sync_profile):
    cart = sync_profile.profile("shopping_cart").variants[0]
    kinds = [s[0] for s in cart.steps]
    assert "sync_acquire" in kinds and "sync_release" in kinds
    assert "lock" not in kinds


def test_sync_keys_are_anonymized(sync_profile):
    cart = sync_profile.profile("shopping_cart").variants[0]
    acquire = next(s for s in cart.steps if s[0] == "sync_acquire")
    for table, slot, mode in acquire[1]:
        assert slot is not None          # entity keys -> placeholders
        assert "#" not in table
        assert mode == "WRITE"


def test_read_batching_coalesces_queries():
    """Consecutive read-only queries collapse into counted batches."""
    from repro.middleware.trace import InteractionTrace
    from repro.db.driver import QueryRecord
    from repro.web.http import HttpResponse
    from repro.web.static import StaticContentStore

    trace = InteractionTrace()
    for i in range(10):
        trace.add_query(QueryRecord(
            sql=f"SELECT {i}", kind="select", cpu_seconds=0.001,
            result_bytes=10, rows_returned=1, rows_changed=0,
            tables_read=("t",), tables_written=()))
    trace.response = HttpResponse(body="x" * 100)
    variant = compile_trace(trace, 100, StaticContentStore(), batch_reads=4)
    query_steps = [s for s in variant.steps if s[0] == "query"]
    assert [s[6] for s in query_steps] == [4, 4, 2]
    assert variant.query_count == 10
    assert sum(s[1] for s in query_steps) == pytest.approx(0.010)


def test_writes_never_batched():
    from repro.middleware.trace import InteractionTrace
    from repro.db.driver import QueryRecord
    from repro.web.http import HttpResponse
    from repro.web.static import StaticContentStore

    trace = InteractionTrace()
    for i in range(4):
        trace.add_query(QueryRecord(
            sql="UPDATE t", kind="update", cpu_seconds=0.001,
            result_bytes=0, rows_returned=0, rows_changed=1,
            tables_read=("t",), tables_written=("t",)))
    trace.response = HttpResponse(body="x")
    variant = compile_trace(trace, 100, StaticContentStore())
    query_steps = [s for s in variant.steps if s[0] == "query"]
    assert len(query_steps) == 4
    assert all(s[6] == 1 for s in query_steps)


# ---------------------------------------------------------- simulated site

def test_site_rejects_mismatched_profile(php_profile):
    sim = Simulator()
    with pytest.raises(ValueError):
        SimulatedSite(sim, WS_SERVLET_DB, php_profile)


def test_site_single_interaction_end_to_end(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    rng = random.Random(5)
    proc = sim.spawn(site.perform(0, "product_detail", rng))
    sim.run()
    assert proc.finished
    assert site.interactions_done == 1
    assert site.web.cpu.busy_time() > 0
    assert site.db.cpu.busy_time() > 0
    # No locks left dangling.
    for lock in site._table_locks.values():
        assert not lock.writer and lock.readers == 0


def test_site_sync_interaction_releases_locks(sync_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_SERVLET_DB_SYNC, sync_profile)
    rng = random.Random(5)
    proc = sim.spawn(site.perform(0, "buy_confirm", rng))
    sim.run()
    assert proc.finished
    for lock in site._sync_locks.values():
        assert not lock.writer and lock.readers == 0


def test_separate_servlet_config_uses_three_machines(php_profile,
                                                     sync_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_SEP_SERVLET_DB, _servlet_profile())
    assert set(site.machines) == {"web", "servlet", "db"}
    assert site.gen is site.machines["servlet"]


def _servlet_profile():
    app = BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))
    return profile_application(app, app.deploy_servlet(), "servlet",
                               repetitions=1)


def test_colocated_servlet_charges_one_machine():
    """WsServlet-DB: web and container work land on the same CPU."""
    profile = _servlet_profile()
    sim = Simulator()
    site = SimulatedSite(sim, WS_SERVLET_DB, profile)
    rng = random.Random(5)
    sim.spawn(site.perform(0, "product_detail", rng))
    sim.run()
    assert site.gen is site.web
    assert site.web.cpu.busy_time() > 0


def test_ejb_config_charges_four_machines():
    app = BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))
    presentation, __ = app.deploy_ejb()
    profile = profile_application(app, presentation, "ejb", repetitions=1)
    sim = Simulator()
    site = SimulatedSite(sim, WS_SERVLET_EJB_DB, profile)
    rng = random.Random(5)
    sim.spawn(site.perform(0, "product_detail", rng))
    sim.run()
    assert site.ejb.cpu.busy_time() > 0
    assert site.db.cpu.busy_time() > 0
    assert site.gen.cpu.busy_time() > 0


def test_run_experiment_returns_sane_point(php_profile):
    app_mix = {"product_detail": 50.0, "home": 50.0}
    spec = ExperimentSpec(config=WS_PHP_DB, profile=php_profile,
                          mix=app_mix, clients=20, ramp_up=10,
                          measure=60, ramp_down=2)
    point = run_experiment(spec)
    # 20 clients, ~7s think, fast interactions: ~170 ipm.
    assert point.throughput_ipm == pytest.approx(20 / 7.0 * 60, rel=0.15)
    assert 0 <= point.cpu.web_server <= 1
    assert 0 <= point.cpu.database <= 1
    assert point.cpu.servlet_container is None


def test_experiment_spec_scaled():
    spec = ExperimentSpec(config=WS_PHP_DB, profile=None, mix={},
                          clients=10, ramp_up=100, measure=200, ramp_down=10)
    small = spec.scaled(0.5)
    assert small.measure == 100
    assert small.ramp_up == 50


def test_lock_wait_accounting_separates_policies():
    """The ordering mix shows heavy DB lock waiting without sync and
    (much smaller) container waiting with sync -- measured directly."""
    from repro.apps.bookstore.mixes import ORDERING_MIX
    app = BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))
    plain_profile = profile_application(app, app.deploy_servlet(),
                                        "servlet", repetitions=2)
    sync_profile2 = profile_application(
        app, app.deploy_servlet(sync_locking=True), "servlet_sync",
        repetitions=2)
    plain = run_experiment(ExperimentSpec(
        config=WS_SERVLET_DB, profile=plain_profile, mix=ORDERING_MIX,
        clients=400, ramp_up=120, measure=150, ramp_down=5))
    sync = run_experiment(ExperimentSpec(
        config=WS_SERVLET_DB_SYNC, profile=sync_profile2, mix=ORDERING_MIX,
        clients=400, ramp_up=120, measure=150, ramp_down=5))
    # Non-sync interactions wait longer on database table locks (their
    # explicit spans hold them across round trips); entity-granular
    # container locks cost essentially nothing.
    assert plain.db_lock_wait_per_interaction > \
        1.2 * sync.db_lock_wait_per_interaction
    assert sync.sync_lock_wait_per_interaction < \
        0.01 * plain.db_lock_wait_per_interaction

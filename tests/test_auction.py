"""Tests for the auction application across all three architectures."""

import random

import pytest

from repro.apps.auction import (
    AuctionApp,
    BIDDING_MIX,
    BROWSING_MIX,
    build_auction_database,
)
from repro.apps.auction.logic import INTERACTIONS, STATIC_INTERACTIONS
from repro.apps.auction.mixes import (
    AuctionState,
    choose_interaction,
    make_request,
    read_write_fraction,
)
from repro.web.http import HttpRequest


@pytest.fixture(scope="module")
def app():
    return AuctionApp(build_auction_database(scale=0.0005, tiny=True))


@pytest.fixture(scope="module")
def php(app):
    return app.deploy_php()


def _state(app):
    return AuctionState.from_database(app.database, random.Random(3))


def test_database_has_nine_tables(app):
    assert sorted(app.database.tables) == sorted([
        "categories", "regions", "users", "items", "old_items", "bids",
        "comments", "buy_now", "ids"])


def test_sizing_follows_paper_ratios(app):
    db = app.database
    items = len(db.table("items"))
    assert len(db.table("bids")) == 10 * items        # 10 bids per item
    assert len(db.table("categories")) == 40
    assert len(db.table("regions")) == 62
    old = len(db.table("old_items"))
    assert len(db.table("comments")) == pytest.approx(0.95 * old, rel=0.02)
    assert len(db.table("buy_now")) == pytest.approx(0.05 * old, rel=0.05)


def test_all_twentysix_interactions_render_on_php(app, php):
    rng = random.Random(1)
    state = _state(app)
    for name in INTERACTIONS:
        response, trace = php.handle(make_request(name, rng, state))
        assert response.ok(), f"{name}: {response.status} {response.body[:90]}"
        assert response.body_bytes > 250, name


def test_static_interactions_issue_no_queries(app, php):
    rng = random.Random(2)
    state = _state(app)
    for name in STATIC_INTERACTIONS:
        __, trace = php.handle(make_request(name, rng, state))
        assert trace.query_count() == 0, name


def test_interaction_count_is_26():
    assert len(INTERACTIONS) == 26


def test_store_bid_updates_denormalized_counters(app, php):
    db = app.database
    state = _state(app)
    before = db.execute(
        "SELECT nb_of_bids, max_bid FROM items WHERE id = 7").first()
    request = HttpRequest("/store_bid", params={
        "item_id": 7, "bid": before[1] + 10.0, "max_bid": before[1] + 20.0,
        "qty": 1, **state.credentials()})
    response, trace = php.handle(request)
    assert response.ok()
    after = db.execute(
        "SELECT nb_of_bids, max_bid FROM items WHERE id = 7").first()
    assert after[0] == before[0] + 1
    assert after[1] == before[1] + 10.0
    # The bid row itself exists.
    top = db.execute(
        "SELECT MAX(bid) FROM bids WHERE item_id = 7").scalar()
    assert top == before[1] + 10.0


def test_store_bid_rejects_low_bid(app, php):
    state = _state(app)
    response, __ = php.handle(HttpRequest("/store_bid", params={
        "item_id": 8, "bid": 0.5, "qty": 1, **state.credentials()}))
    assert response.status == 409


def test_store_bid_requires_auth(app, php):
    response, __ = php.handle(HttpRequest("/store_bid", params={
        "item_id": 8, "bid": 10_000.0, "nickname": "user1",
        "password": "wrong"}))
    assert response.status == 401


def test_buy_now_closes_auction_when_sold_out(app, php):
    db = app.database
    state = _state(app)
    item_id = 11
    qty = db.execute("SELECT quantity FROM items WHERE id = ?",
                     (item_id,)).scalar()
    response, __ = php.handle(HttpRequest("/store_buy_now", params={
        "item_id": item_id, "qty": qty, **state.credentials()}))
    assert response.ok()
    end_date = db.execute("SELECT end_date, quantity FROM items "
                          "WHERE id = ?", (item_id,)).first()
    assert end_date[1] == 0
    assert end_date[0] < 1_000_000_000.0  # closed


def test_store_comment_updates_rating(app, php):
    db = app.database
    state = _state(app)
    to_user = 42
    rating_before = db.execute(
        "SELECT rating FROM users WHERE id = ?", (to_user,)).scalar()
    response, __ = php.handle(HttpRequest("/store_comment", params={
        "to_user": to_user, "item_id": state.n_items + 1, "rating": 1,
        "comment": "smooth deal", **state.credentials()}))
    assert response.ok()
    rating_after = db.execute(
        "SELECT rating FROM users WHERE id = ?", (to_user,)).scalar()
    assert rating_after == rating_before + 1


def test_register_user_via_ids_counter(app, php):
    db = app.database
    counter_before = db.execute(
        "SELECT value FROM ids WHERE name = 'users'").scalar()
    response, trace = php.handle(HttpRequest("/register_user", params={
        "nickname": "fresh_nickname_001", "region_name": "REGION05"}))
    assert response.ok()
    counter_after = db.execute(
        "SELECT value FROM ids WHERE name = 'users'").scalar()
    assert counter_after == counter_before + 1
    new_user = db.execute(
        "SELECT id, region FROM users WHERE nickname = 'fresh_nickname_001'"
    ).first()
    assert new_user[0] == counter_after
    assert new_user[1] == 5


def test_register_user_duplicate_nickname(app, php):
    response, __ = php.handle(HttpRequest("/register_user", params={
        "nickname": "user1"}))
    assert response.status == 409


def test_register_item_appears_in_category(app, php):
    db = app.database
    state = _state(app)
    response, __ = php.handle(HttpRequest("/register_item", params={
        "name": "SHINY NEW THING", "initial_price": 42.0, "category": 3,
        **state.credentials()}))
    assert response.ok()
    found = db.execute(
        "SELECT COUNT(*) FROM items WHERE name = 'SHINY NEW THING'").scalar()
    assert found == 1


def test_view_item_falls_back_to_old_items(app, php):
    state = _state(app)
    old_id = state.n_items + 3
    response, __ = php.handle(HttpRequest("/view_item",
                                          params={"item_id": old_id}))
    assert response.ok()
    assert "auction has ended" in response.body


def test_about_me_shows_all_sections(app, php):
    state = _state(app)
    response, __ = php.handle(make_request("about_me", random.Random(5),
                                           state))
    assert response.ok()
    for section in ("Your current bids", "Items you are selling",
                    "Comments about you", "Your buy-now purchases"):
        assert section in response.body


def test_php_and_servlet_issue_identical_sql():
    app1 = AuctionApp(build_auction_database(scale=0.0005, tiny=True))
    app2 = AuctionApp(build_auction_database(scale=0.0005, tiny=True))
    php = app1.deploy_php()
    servlet = app2.deploy_servlet()
    rng1, rng2 = random.Random(7), random.Random(7)
    s1 = AuctionState.from_database(app1.database, random.Random(5))
    s2 = AuctionState.from_database(app2.database, random.Random(5))
    for name in INTERACTIONS:
        __, t1 = php.handle(make_request(name, rng1, s1))
        __, t2 = servlet.handle(make_request(name, rng2, s2))
        assert [q.sql for q in t1.queries()] == \
            [q.sql for q in t2.queries()], name


def test_sync_servlet_has_no_lock_statements(app):
    sync = app.deploy_servlet(sync_locking=True)
    rng = random.Random(11)
    state = _state(app)
    for name in INTERACTIONS:
        __, trace = sync.handle(make_request(name, rng, state))
        assert trace.lock_statement_count() == 0, name
        if name in ("store_bid", "store_buy_now", "store_comment",
                    "register_item", "register_user"):
            assert trace.sync_spans() >= 1 or \
                trace.response.status in (401, 409), name


def test_ejb_all_interactions_render(app):
    presentation, container = app.deploy_ejb()
    rng = random.Random(13)
    state = _state(app)
    for name in INTERACTIONS:
        response, __ = presentation.handle(make_request(name, rng, state))
        assert response.ok(), f"{name}: {response.status}"


def test_ejb_bid_matches_php_semantics(app):
    presentation, __ = app.deploy_ejb()
    db = app.database
    state = _state(app)
    before = db.execute(
        "SELECT nb_of_bids, max_bid FROM items WHERE id = 20").first()
    response, trace = presentation.handle(HttpRequest("/store_bid", params={
        "item_id": 20, "bid": before[1] + 7.0, "max_bid": before[1] + 9.0,
        "qty": 1, **state.credentials()}))
    assert response.ok()
    after = db.execute(
        "SELECT nb_of_bids, max_bid FROM items WHERE id = 20").first()
    assert after[0] == before[0] + 1
    assert after[1] == before[1] + 7.0
    assert trace.rmi_calls()


def test_ejb_query_flood_on_short_interactions(app):
    php = app.deploy_php()
    presentation, __ = app.deploy_ejb()
    rng1, rng2 = random.Random(17), random.Random(17)
    s1 = _state(app)
    s2 = _state(app)
    php_total = ejb_total = 0
    for name in ("view_bid_history", "about_me", "view_user_info",
                 "search_items_in_category"):
        __, t1 = php.handle(make_request(name, rng1, s1))
        __, t2 = presentation.handle(make_request(name, rng2, s2))
        php_total += t1.query_count()
        ejb_total += t2.query_count()
    assert ejb_total > 4 * php_total


# ------------------------------------------------------------------- mixes

def test_bidding_mix_is_15_percent_read_write():
    assert read_write_fraction(BIDDING_MIX) == pytest.approx(0.15, abs=0.005)
    assert sum(BIDDING_MIX.values()) == pytest.approx(100.0, abs=0.5)


def test_browsing_mix_is_read_only():
    assert read_write_fraction(BROWSING_MIX) == 0.0
    assert sum(BROWSING_MIX.values()) == pytest.approx(100.0, abs=0.5)


def test_mix_names_are_valid_interactions():
    for mix in (BIDDING_MIX, BROWSING_MIX):
        assert set(mix) <= set(INTERACTIONS)


def test_choose_interaction_distribution():
    rng = random.Random(0)
    counts = {name: 0 for name in BIDDING_MIX}
    n = 20_000
    for __ in range(n):
        counts[choose_interaction(BIDDING_MIX, rng)] += 1
    assert counts["view_item"] / n == pytest.approx(0.127, abs=0.01)
    assert counts["store_bid"] / n == pytest.approx(0.075, abs=0.01)

"""Tests for demand tables, MVA, and DES/analytic consistency."""

import pytest

from repro.analytic.demand import DemandTable, expected_demands
from repro.analytic.mva import solve_mva, throughput_curve
from repro.apps.auction import AuctionApp, build_auction_database
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.profiles import profile_application
from repro.topology.configs import (
    WS_PHP_DB,
    WS_SEP_SERVLET_DB,
    WS_SERVLET_EJB_DB,
)


@pytest.fixture(scope="module")
def auction_app():
    return AuctionApp(build_auction_database(scale=0.0005, tiny=True))


@pytest.fixture(scope="module")
def auction_php_profile(auction_app):
    return profile_application(auction_app, auction_app.deploy_php(),
                               "php", repetitions=2)


MIX = {"view_item": 40.0, "search_items_in_category": 30.0,
       "browse_categories": 20.0, "store_bid": 10.0}


# --------------------------------------------------------------------- MVA

def test_mva_single_station_saturates_at_inverse_demand():
    result = solve_mva({"db": 0.1}, clients=200, think_time=1.0)
    assert result.throughput == pytest.approx(10.0, rel=0.01)
    assert result.utilization["db"] == pytest.approx(1.0, abs=0.01)


def test_mva_low_population_is_think_limited():
    result = solve_mva({"db": 0.01}, clients=5, think_time=10.0)
    assert result.throughput == pytest.approx(5 / 10.01, rel=0.02)
    assert result.utilization["db"] < 0.01


def test_mva_bottleneck_is_largest_demand():
    result = solve_mva({"web": 0.02, "db": 0.05}, clients=500,
                       think_time=1.0)
    assert result.throughput == pytest.approx(20.0, rel=0.01)
    assert result.utilization["db"] > result.utilization["web"]


def test_mva_monotone_in_population():
    prev = 0.0
    for n in (1, 5, 20, 80, 320):
        result = solve_mva({"a": 0.03, "b": 0.02}, n, think_time=2.0)
        assert result.throughput >= prev - 1e-9
        prev = result.throughput


def test_mva_rejects_bad_args():
    with pytest.raises(ValueError):
        solve_mva({"a": 0.1}, clients=0)
    with pytest.raises(ValueError):
        solve_mva({"a": 0.1}, clients=5, think_time=-1)


def test_throughput_curve_sorted():
    table = DemandTable(config_name="x", cpu_seconds={"db": 0.05})
    results = throughput_curve(table, [50, 10, 100], think_time=1.0)
    assert [r.clients for r in results] == [10, 50, 100]


# ------------------------------------------------------------ demand tables

def test_demand_table_bottleneck_and_peak():
    table = DemandTable(config_name="x",
                        cpu_seconds={"web": 0.002, "db": 0.004})
    assert table.bottleneck() == "db"
    assert table.max_throughput() == pytest.approx(250.0)


def test_expected_demands_covers_config_machines(auction_app,
                                                 auction_php_profile):
    table = expected_demands(WS_PHP_DB, auction_php_profile, MIX)
    assert set(table.cpu_seconds) == {"web", "db"}
    assert all(v > 0 for v in table.cpu_seconds.values())


def test_expected_demands_separate_servlet(auction_app):
    profile = profile_application(
        auction_app, auction_app.deploy_servlet(), "servlet", repetitions=2)
    table = expected_demands(WS_SEP_SERVLET_DB, profile, MIX)
    assert set(table.cpu_seconds) == {"web", "servlet", "db"}
    # IPC bytes flow between web and servlet machines.
    assert table.wire_bytes[("web", "servlet")] > 0
    assert table.wire_bytes[("servlet", "web")] > 0


def test_expected_demands_ejb(auction_app):
    presentation, __ = auction_app.deploy_ejb()
    profile = profile_application(auction_app, presentation, "ejb",
                                  repetitions=2)
    table = expected_demands(WS_SERVLET_EJB_DB, profile, MIX)
    assert set(table.cpu_seconds) == {"web", "servlet", "ejb", "db"}
    # RMI traffic between servlet and EJB machines.
    assert table.wire_bytes[("servlet", "ejb")] > 0
    # The EJB server carries the biggest burden for this app.
    assert table.bottleneck() == "ejb"


# ------------------------------------------------- DES vs analytic agreement

def test_des_matches_mva_without_contention(auction_app,
                                            auction_php_profile):
    """At a read-dominated mix the DES and MVA must agree closely --
    this pins the simulator's charging rules to the analytic model."""
    read_mix = {"view_item": 50.0, "browse_categories": 25.0,
                "view_user_info": 25.0}
    table = expected_demands(WS_PHP_DB, auction_php_profile, read_mix)
    for clients in (50, 400):
        mva = solve_mva(dict(table.cpu_seconds), clients, think_time=7.0)
        spec = ExperimentSpec(
            config=WS_PHP_DB, profile=auction_php_profile, mix=read_mix,
            clients=clients, ramp_up=60, measure=240, ramp_down=5)
        des = run_experiment(spec)
        assert des.throughput_ipm == pytest.approx(
            mva.throughput_ipm, rel=0.12), f"{clients} clients"


def test_des_utilizations_match_demands(auction_app, auction_php_profile):
    """Utilization = X * D for each machine (operational law)."""
    read_mix = {"view_item": 60.0, "search_items_in_category": 40.0}
    table = expected_demands(WS_PHP_DB, auction_php_profile, read_mix)
    spec = ExperimentSpec(
        config=WS_PHP_DB, profile=auction_php_profile, mix=read_mix,
        clients=100, ramp_up=60, measure=300, ramp_down=5)
    point = run_experiment(spec)
    x = point.throughput_ipm / 60.0
    assert point.cpu.web_server == pytest.approx(
        x * table.cpu_seconds["web"], rel=0.15)
    assert point.cpu.database == pytest.approx(
        x * table.cpu_seconds["db"], rel=0.15)


# ------------------------------------------------------------------ bounds

def test_bounds_bracket_mva():
    """The asymptotic bounds must bracket the exact MVA curve."""
    from repro.analytic.bounds import OperationalBounds
    bounds = OperationalBounds(demands={"web": 0.004, "db": 0.002},
                               think_time=7.0)
    for n in (1, 10, 100, 1000, 5000):
        exact = solve_mva({"web": 0.004, "db": 0.002}, n, 7.0).throughput
        assert bounds.lower(n) - 1e-9 <= exact <= bounds.upper(n) + 1e-9


def test_bounds_knee_and_saturation():
    from repro.analytic.bounds import OperationalBounds
    bounds = OperationalBounds(demands={"web": 0.005}, think_time=7.0)
    assert bounds.saturation_throughput == pytest.approx(200.0)
    assert bounds.knee_population == pytest.approx(7.005 / 0.005)
    assert bounds.bottleneck == "web"
    # Above the knee the upper bound is flat at saturation.
    assert bounds.upper(10_000) == pytest.approx(200.0)
    assert bounds.upper(10) == pytest.approx(10 / 7.005)


def test_bounds_knee_predicts_paper_peak(auction_app, auction_php_profile):
    """WsPhp-DB on the bidding mix must knee near the paper's 1,100
    clients."""
    from repro.analytic.bounds import bounds_for
    from repro.apps.auction.mixes import BIDDING_MIX
    table = expected_demands(WS_PHP_DB, auction_php_profile, BIDDING_MIX)
    bounds = bounds_for(table)
    assert 700 <= bounds.knee_population <= 1600


def test_bounds_for_validates():
    from repro.analytic.bounds import bounds_for
    from repro.analytic.demand import DemandTable
    with pytest.raises(ValueError):
        bounds_for(DemandTable(config_name="x"))
    with pytest.raises(ValueError):
        bounds_for(DemandTable(config_name="x", cpu_seconds={"a": 1.0}),
                   think_time=-1)

"""Failure injection: interrupted interactions, exhausted pools, and
lock hygiene under adversarial timing."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.harness.profiles import profile_application
from repro.sim import Simulator
from repro.sim.kernel import Interrupt
from repro.topology.configs import WS_PHP_DB, WS_SERVLET_DB_SYNC
from repro.topology.simulation import SimulatedSite


@pytest.fixture(scope="module")
def app():
    return BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def php_profile(app):
    return profile_application(app, app.deploy_php(), "php", repetitions=2)


@pytest.fixture(scope="module")
def sync_profile(app):
    return profile_application(
        app, app.deploy_servlet(sync_locking=True), "servlet_sync",
        repetitions=2)


def _no_dangling_locks(site) -> bool:
    for lock in site._table_locks.values():
        if lock.writer or lock.readers or lock.waiting_writers or \
                lock.waiting_readers:
            return False
    for lock in site._sync_locks.values():
        if lock.writer or lock.readers:
            return False
    return True


def _run_with_interrupt(profile, config, interaction, interrupt_at,
                        seed=3) -> bool:
    """Run one interaction, interrupt it mid-flight, verify lock
    hygiene.  Returns True if the interrupt actually landed."""
    sim = Simulator()
    site = SimulatedSite(sim, config, profile)

    landed = []

    def victim():
        try:
            yield from site.perform(0, interaction, random.Random(seed))
        except Interrupt:
            landed.append(True)

    proc = sim.spawn(victim(), name="victim")

    def killer():
        yield interrupt_at
        if not proc.finished:
            proc.interrupt("chaos")

    sim.spawn(killer())
    sim.run()
    assert proc.finished
    assert _no_dangling_locks(site), (
        f"dangling locks after interrupting {interaction} "
        f"at t={interrupt_at}")
    return bool(landed)


def test_interrupt_mid_purchase_releases_db_locks(php_profile):
    landed = _run_with_interrupt(php_profile, WS_PHP_DB, "buy_confirm",
                                 interrupt_at=0.004)
    assert landed


def test_interrupt_mid_purchase_releases_sync_locks(sync_profile):
    landed = _run_with_interrupt(sync_profile, WS_SERVLET_DB_SYNC,
                                 "buy_confirm", interrupt_at=0.006)
    assert landed


@settings(max_examples=25, deadline=None)
@given(at=st.floats(min_value=1e-5, max_value=0.2),
       interaction=st.sampled_from(
           ["shopping_cart", "buy_confirm", "best_sellers",
            "customer_registration", "order_inquiry"]))
def test_interrupt_anywhere_never_leaks_locks(at, interaction):
    """Property: whatever instant an interaction dies at, every database
    table lock and container lock it held is released."""
    profile = test_interrupt_anywhere_never_leaks_locks.profile
    _run_with_interrupt(profile, WS_SERVLET_DB_SYNC, interaction, at)


# hypothesis @given cannot take module fixtures; attach the profile once.
def pytest_configure():  # pragma: no cover - import-time helper
    pass


@pytest.fixture(scope="module", autouse=True)
def _attach_profile(sync_profile):
    test_interrupt_anywhere_never_leaks_locks.profile = sync_profile
    yield


def test_web_process_pool_exhaustion_queues_not_fails(php_profile):
    """With a 2-process pool and 10 concurrent requests, everything
    still completes -- requests queue at the accept point."""
    from repro.web.server import WebServerConfig
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile,
                         web_config=WebServerConfig(max_processes=2))
    procs = [sim.spawn(site.perform(i, "product_detail", random.Random(i)))
             for i in range(10)]
    sim.run()
    assert all(p.finished for p in procs)
    assert site.interactions_done == 10
    assert site.web_processes.in_use == 0


def test_connection_pool_exhaustion_raises():
    from repro.db import Database
    from repro.db.driver import ConnectionPool, NativeDriver
    pool = ConnectionPool(NativeDriver(Database()), size=2)
    a = pool.acquire()
    b = pool.acquire()
    with pytest.raises(RuntimeError):
        pool.acquire()
    pool.release(a)
    c = pool.acquire()       # freed slot is reusable
    assert c is a            # and the connection object is recycled


def test_pool_release_clears_stale_locks():
    from repro.db import Column, ColumnType, Database, TableSchema
    from repro.db.driver import ConnectionPool, NativeDriver
    db = Database()
    db.create_table(TableSchema(
        name="x", columns=[Column("id", ColumnType.INT, nullable=False)],
        primary_key="id", auto_increment=True))
    pool = ConnectionPool(NativeDriver(db), size=1)
    conn = pool.acquire()
    conn.execute("LOCK TABLES x WRITE")
    pool.release(conn)
    fresh = pool.acquire()
    # A recycled connection must not inherit LOCK TABLES state.
    assert fresh.session.locks == {}
    fresh.execute("SELECT COUNT(*) FROM x")     # would raise if locked


def test_unknown_interaction_fails_loudly(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    with pytest.raises(KeyError):
        sim.spawn(site.perform(0, "ghost_page", random.Random(1)))
        sim.run()


# -- property: arbitrary fault plans leave the system clean -------------------
#
# Whatever crash/restart and connection-glitch schedule is thrown at a
# site with a retrying client population, at the end of the run there
# must be no dangling locks, no stuck clients or in-flight attempts,
# and a quiescent kernel.  Exercised for both benchmark applications.

from repro.apps.auction import AuctionApp, build_auction_database
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.rng import RngStreams
from repro.topology.configs import WS_SEP_SERVLET_DB_SYNC
from repro.workload.client import ClientPopulation, RetryPolicy
from repro.workload.markov import choose_interaction


@pytest.fixture(scope="module")
def auction_app():
    return AuctionApp(build_auction_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def auction_profile(auction_app):
    return profile_application(auction_app, auction_app.deploy_php(), "php",
                               repetitions=2)


_fault_events = st.lists(
    st.tuples(st.sampled_from(["crash", "crash", "db_conn_glitch"]),
              st.sampled_from(["web", "servlet", "ejb", "db"]),
              st.floats(min_value=1.0, max_value=35.0),
              st.floats(min_value=0.5, max_value=12.0)),
    min_size=1, max_size=3)


def _build_plan(drawn) -> FaultPlan:
    return FaultPlan(tuple(
        FaultEvent(kind, tier if kind == "crash" else "db", at, duration)
        for kind, tier, at, duration in drawn))


def _run_fault_plan(profile, config, mix, plan) -> None:
    sim = Simulator()
    site = SimulatedSite(sim, config, profile)
    population = ClientPopulation(
        sim, 5, mix, site, RngStreams(9), choose_interaction,
        retry=RetryPolicy(deadline=4.0, max_retries=2, backoff_base=0.25,
                          backoff_cap=1.0, retry_budget=20))
    FaultInjector(sim, site, plan).start()
    population.start()
    sim.run(until=45.0)
    population.stop()
    sim.run()          # drain everything left (no samplers are running)
    assert all(p.finished for p in population._procs), "stuck client"
    assert not site.inflight_processes(), "stuck in-flight interaction"
    assert _no_dangling_locks(site)
    assert site.web_processes.in_use == 0
    assert site.web_processes.queue_length == 0
    assert sim.quiescent()


@settings(max_examples=10, deadline=None)
@given(drawn=_fault_events)
def test_any_fault_plan_leaves_bookstore_clean(drawn):
    fn = test_any_fault_plan_leaves_bookstore_clean
    _run_fault_plan(fn.profile, WS_SEP_SERVLET_DB_SYNC, fn.mix,
                    _build_plan(drawn))


@settings(max_examples=10, deadline=None)
@given(drawn=_fault_events)
def test_any_fault_plan_leaves_auction_clean(drawn):
    fn = test_any_fault_plan_leaves_auction_clean
    _run_fault_plan(fn.profile, WS_PHP_DB, fn.mix, _build_plan(drawn))


@pytest.fixture(scope="module", autouse=True)
def _attach_fault_plan_inputs(app, sync_profile, auction_app,
                              auction_profile):
    test_any_fault_plan_leaves_bookstore_clean.profile = sync_profile
    test_any_fault_plan_leaves_bookstore_clean.mix = app.mix("shopping")
    test_any_fault_plan_leaves_auction_clean.profile = auction_profile
    test_any_fault_plan_leaves_auction_clean.mix = auction_app.mix("bidding")
    yield

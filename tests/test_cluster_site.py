"""Integration tests for clustered sites: the trivial-cluster identity
guarantee, replicated runs, crash re-routing through balancers, the
read/write-splitting driver connection, and the scale CLI plumbing."""

from dataclasses import asdict

import pytest

from repro.apps import build_app
from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.cluster import ClusterSpec, clustered
from repro.cluster.site import ClusteredSite
from repro.db.driver import JdbcLikeDriver, ReadWriteSplitConnection
from repro.faults.plan import FaultPlan
from repro.harness.experiment import ExperimentSpec, build_site, run_experiment
from repro.harness.profiles import profile_all_flavors
from repro.sim import Simulator
from repro.sim.rng import RngStreams
from repro.topology.configs import ALL_CONFIGURATIONS, configuration_by_name
from repro.topology.simulation import SimulatedSite
from repro.workload.client import (
    ClientPopulation,
    RetryPolicy,
    ThinkTimeSpec,
)
from repro.workload.markov import choose_interaction


@pytest.fixture(scope="module")
def app():
    return BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def profiles(app):
    return profile_all_flavors(app, repetitions=2)


def _spec(config, profiles, app, **overrides):
    kwargs = dict(config=config,
                  profile=profiles[config.profile_flavor],
                  mix=app.mix("shopping"), clients=6,
                  ramp_up=20.0, measure=40.0, ramp_down=5.0, seed=42)
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


# -- the identity guarantee ----------------------------------------------------


def test_trivial_cluster_matches_base_field_for_field(app, profiles):
    """``clustered(base)`` with no extra members must reproduce the
    paper configuration's run bit-for-bit: same throughput, same CPU
    samples, same kernel event count."""
    for base in ALL_CONFIGURATIONS:
        base_point = run_experiment(_spec(base, profiles, app))
        cluster_point = run_experiment(_spec(clustered(base), profiles, app))
        assert asdict(cluster_point) == asdict(base_point), base.name


def test_faulted_trivial_cluster_matches_base(app, profiles):
    """Identity holds through the fault injector too: a db crash on the
    trivial cluster replays the base site's run exactly."""
    base = configuration_by_name("Ws-Servlet-DB")
    overrides = dict(
        clients=5, ramp_up=15.0, measure=50.0, ramp_down=5.0, seed=7,
        fault_plan=FaultPlan.single_crash("db", at=25.0, duration=10.0),
        retry=RetryPolicy(deadline=10.0, max_retries=3))
    base_point = run_experiment(_spec(base, profiles, app, **overrides))
    cluster_point = run_experiment(
        _spec(clustered(base), profiles, app, **overrides))
    assert asdict(cluster_point) == asdict(base_point)


# -- replicated runs -----------------------------------------------------------


def _drive_cluster(profiles, app, config, n_clients=8, until=90.0,
                   plan=None, retry=None, seed=11, think=None):
    sim = Simulator()
    site = ClusteredSite(sim, config, profiles[config.profile_flavor],
                         rng=RngStreams(seed))
    population = ClientPopulation(
        sim, n_clients, app.mix("shopping"), site, RngStreams(seed),
        choose_interaction, think=think, retry=retry)
    if plan is not None:
        from repro.faults.injector import FaultInjector
        FaultInjector(sim, site, plan).start()
    population.start()
    sim.run(until=until)
    return sim, site


def test_replicated_run_is_deterministic(app, profiles):
    config = clustered("Ws-Servlet-DB", web=2, gen=2, db_replicas=2)
    spec_kwargs = dict(clients=10, ramp_up=20.0, measure=40.0,
                       ramp_down=5.0, seed=42)
    first = run_experiment(_spec(config, profiles, app, **spec_kwargs))
    second = run_experiment(_spec(config, profiles, app, **spec_kwargs))
    assert asdict(first) == asdict(second)
    assert first.throughput_ipm > 0


def test_replicated_run_uses_every_member(app, profiles):
    config = clustered("Ws-Servlet-DB", web=2, gen=2, db_replicas=2)
    __, site = _drive_cluster(profiles, app, config)
    assert all(count > 0 for count in site.web_lb.served.values())
    assert all(count > 0 for count in site.gen_lb.served.values())
    assert all(r.reads_served > 0 for r in site.repl.replicas)


def test_gen_member_crash_reroutes_through_balancer(app, profiles):
    """Crashing one servlet engine mid-run re-routes its queued
    requests to the surviving member instead of failing them."""
    config = clustered("Ws-Servlet-DB", web=2, gen=2)
    plan = FaultPlan.single_crash("servlet#2", at=30.0, duration=20.0)
    # short think time keeps requests in flight at the crash instant
    __, site = _drive_cluster(
        profiles, app, config, n_clients=40, until=120.0, plan=plan,
        think=ThinkTimeSpec(think_mean=0.3),
        retry=RetryPolicy(deadline=10.0, max_retries=3))
    assert site.reroutes > 0
    # the crashed member rejoined and both engines served requests
    assert all(count > 0 for count in site.gen_lb.served.values())


def test_db_replica_crash_rejoin_catches_up(app, profiles):
    """A crashed read replica misses shipped writes; on rejoin it
    replays the log and converges with the primary."""
    config = clustered("Ws-Servlet-DB", web=1, gen=1, db_replicas=2)
    plan = FaultPlan.single_crash("db.r1", at=30.0, duration=20.0)
    sim, site = _drive_cluster(
        profiles, app, config, until=200.0, plan=plan,
        retry=RetryPolicy(deadline=10.0, max_retries=3))
    sim.run(until=sim.now + 60.0)       # drain: lag + catch-up applies
    assert site.repl.commit_seq > 0
    for replica in site.repl.replicas:
        assert replica.applied_seq == site.repl.commit_seq


# -- functional read/write splitting ------------------------------------------


@pytest.fixture
def split_conn(app):
    driver = JdbcLikeDriver(app.database)
    conn = ReadWriteSplitConnection(
        driver.connect(), [driver.connect(), driver.connect()])
    yield conn
    conn.close()


def test_split_connection_routes_selects_to_replicas(split_conn):
    before = split_conn.reads_split
    split_conn.execute("SELECT * FROM items WHERE id = 1")
    split_conn.execute("SELECT * FROM items WHERE id = 2")
    assert split_conn.reads_split == before + 2


def test_split_connection_writes_pin_until_sync(split_conn):
    split_conn.execute(
        "UPDATE items SET stock = stock + 1 WHERE id = 1")
    split_conn.execute("SELECT * FROM items WHERE id = 1")
    assert split_conn.reads_split == 0      # read-your-writes: primary
    split_conn.sync_replicas()
    split_conn.execute("SELECT * FROM items WHERE id = 1")
    assert split_conn.reads_split == 1


def test_split_connection_lock_span_stays_on_primary(split_conn):
    split_conn.execute("LOCK TABLES items WRITE")
    split_conn.execute("SELECT * FROM items WHERE id = 1")
    assert split_conn.reads_split == 0      # inside the lock span
    split_conn.execute("UNLOCK TABLES")
    split_conn.sync_replicas()
    split_conn.execute("SELECT * FROM items WHERE id = 1")
    assert split_conn.reads_split == 1


# -- functional pools and site dispatch ---------------------------------------


def test_build_app_deploys_a_pool():
    app, pool = build_app("bookstore", "servlet",
                          cluster=ClusterSpec(web=2, gen=2),
                          scale=0.002, tiny=True)
    assert len(pool) == 2
    assert pool[0] is not pool[1]
    responses = [engine.handle(__request_for(app))[0] for engine in pool]
    assert all(r.status == 200 for r in responses)


def __request_for(app):
    from repro.apps.bookstore.mixes import make_request
    import random
    return make_request("home", random.Random(5), app.make_state(
        random.Random(5)))


def test_deploy_pool_rejects_empty(app):
    with pytest.raises(ValueError, match=">= 1"):
        app.deploy_pool("servlet", 0)


def test_build_site_dispatches_on_cluster_axis(app, profiles):
    base = configuration_by_name("WsPhp-DB")
    sim = Simulator()
    plain = build_site(sim, _spec(base, profiles, app))
    assert type(plain) is SimulatedSite
    clustered_site = build_site(
        Simulator(), _spec(clustered(base, web=2), profiles, app))
    assert isinstance(clustered_site, ClusteredSite)


# -- CLI validation ------------------------------------------------------------


def test_cli_rejects_unknown_config_everywhere(capsys):
    from repro.__main__ import main
    for argv in (["figure", "5", "--config", "NoSuchConfig"],
                 ["faults", "--config", "NoSuchConfig"],
                 ["scale", "--config", "NoSuchConfig"],
                 ["perf", "--config", "NoSuchConfig"]):
        assert main(argv) == 2, argv
        err = capsys.readouterr().err
        assert "unknown configuration 'NoSuchConfig'" in err
        assert "WsPhp-DB" in err                # the known names follow


def test_trace_cli_rejects_unknown_config(capsys):
    from repro.experiments.trace import main as trace_main
    with pytest.raises(SystemExit) as exc:
        trace_main(["fig05", "--config", "NoSuchConfig"])
    assert exc.value.code == 2
    assert "known configurations:" in capsys.readouterr().err

"""Tests for the switched LAN model."""

import pytest

from repro.machine import Machine
from repro.net import Lan
from repro.sim import Simulator


def make_lan(sim, names):
    lan = Lan(sim)
    machines = {name: Machine(sim, name) for name in names}
    for machine in machines.values():
        lan.attach(machine)
    return lan, machines


def test_transfer_takes_wire_time():
    sim = Simulator()
    lan, machines = make_lan(sim, ["a", "b"])

    def job():
        # 125_000 bytes = 1 Mb -> 10 ms on each of two 100 Mbps hops.
        yield from lan.transfer(machines["a"], machines["b"], 125_000)

    sim.spawn(job())
    sim.run()
    assert sim.now == pytest.approx(0.01 + lan.latency + 0.01)


def test_transfer_same_machine_is_free():
    sim = Simulator()
    lan, machines = make_lan(sim, ["a"])

    def job():
        yield from lan.transfer(machines["a"], machines["a"], 10**9)

    sim.spawn(job())
    sim.run()
    assert sim.now == 0.0
    assert lan.nic_of("a").bytes_sent == 0


def test_nic_counters():
    sim = Simulator()
    lan, machines = make_lan(sim, ["a", "b"])

    def job():
        yield from lan.transfer(machines["a"], machines["b"], 1000)
        yield from lan.transfer(machines["a"], machines["b"], 2000)

    sim.spawn(job())
    sim.run()
    assert lan.nic_of("a").bytes_sent == 3000
    assert lan.nic_of("b").bytes_received == 3000


def test_nic_saturation_serializes_transmissions():
    """Two flows out of the same NIC share its 100 Mbps."""
    sim = Simulator()
    lan, machines = make_lan(sim, ["a", "b", "c"])
    done = []

    def flow(dst):
        yield from lan.transfer(machines["a"], machines[dst], 1_250_000)  # 0.1 s wire
        done.append(sim.now)

    sim.spawn(flow("b"))
    sim.spawn(flow("c"))
    sim.run()
    # Sender tx serializes: second flow finishes ~0.1 s after the first.
    assert done[1] - done[0] == pytest.approx(0.1, abs=0.01)


def test_distinct_pairs_do_not_interfere():
    """Switched Ethernet: a->b and c->d proceed concurrently."""
    sim = Simulator()
    lan, machines = make_lan(sim, ["a", "b", "c", "d"])
    done = []

    def flow(src, dst):
        yield from lan.transfer(machines[src], machines[dst], 1_250_000)
        done.append(sim.now)

    sim.spawn(flow("a", "b"))
    sim.spawn(flow("c", "d"))
    sim.run()
    assert done[0] == pytest.approx(done[1])
    assert done[0] < 0.25


def test_unattached_machine_raises():
    sim = Simulator()
    lan, machines = make_lan(sim, ["a"])
    with pytest.raises(KeyError):
        lan.nic_of("ghost")


def test_attach_is_idempotent():
    sim = Simulator()
    machine = Machine(sim, "a")
    lan = Lan(sim)
    nic1 = lan.attach(machine)
    nic2 = lan.attach(machine)
    assert nic1 is nic2


def test_negative_transfer_rejected():
    sim = Simulator()
    lan, machines = make_lan(sim, ["a", "b"])
    with pytest.raises(ValueError):
        list(lan.transfer(machines["a"], machines["b"], -5))

"""Property-based tests for the simulation kernel and lock primitives."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.machine.cpu import Cpu
from repro.sim import RWLock, Resource, Simulator


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=30))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(demands=st.lists(st.floats(min_value=0.0001, max_value=0.5),
                        min_size=1, max_size=25),
       capacity=st.integers(1, 4))
def test_resource_conservation(demands, capacity):
    """A capacity-k resource never exceeds k holders, and all jobs
    complete."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_seen = [0]
    done = [0]

    def job(demand):
        yield res.acquire()
        max_seen[0] = max(max_seen[0], res.in_use)
        assert res.in_use <= capacity
        yield demand
        res.release()
        done[0] += 1

    for demand in demands:
        sim.spawn(job(demand))
    sim.run()
    assert done[0] == len(demands)
    assert max_seen[0] <= capacity
    assert res.in_use == 0


@settings(max_examples=50, deadline=None)
@given(demands=st.lists(st.floats(min_value=0.0001, max_value=0.1),
                        min_size=1, max_size=30))
def test_cpu_busy_time_equals_total_demand(demands):
    """Work conservation: busy time == sum of demands when saturated."""
    sim = Simulator()
    cpu = Cpu(sim)

    def job(demand):
        yield from cpu.execute(demand)

    for demand in demands:
        sim.spawn(job(demand))
    sim.run()
    total = sum(demands)
    assert cpu.busy_time() == abs(cpu.busy_time())
    assert abs(cpu.busy_time() - total) < 1e-6
    assert abs(sim.now - total) < 1e-6


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["r", "w"]),
                              st.floats(min_value=0.001, max_value=0.1)),
                    min_size=1, max_size=25),
       priority=st.booleans())
def test_rwlock_mutual_exclusion_invariant(ops, priority):
    """Never a writer concurrent with anyone; all acquirers finish."""
    sim = Simulator()
    lock = RWLock(sim, write_priority=priority)
    state = {"readers": 0, "writers": 0}
    violations = []
    finished = [0]

    def reader(hold):
        yield lock.acquire_read()
        state["readers"] += 1
        if state["writers"]:
            violations.append("reader with writer")
        yield hold
        state["readers"] -= 1
        lock.release_read()
        finished[0] += 1

    def writer(hold):
        yield lock.acquire_write()
        state["writers"] += 1
        if state["writers"] > 1 or state["readers"]:
            violations.append("writer overlap")
        yield hold
        state["writers"] -= 1
        lock.release_write()
        finished[0] += 1

    for kind, hold in ops:
        sim.spawn(reader(hold) if kind == "r" else writer(hold))
    sim.run()
    assert not violations
    assert finished[0] == len(ops)
    assert not lock.writer and lock.readers == 0

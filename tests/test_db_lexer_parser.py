"""Tests for the SQL lexer and parser."""

import pytest

from repro.db.errors import SqlError
from repro.db.sql import nodes as n
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse


# ------------------------------------------------------------------- lexer

def test_lexer_keywords_case_insensitive():
    tokens = tokenize("select FROM Where")
    assert [t.kind for t in tokens[:-1]] == ["KEYWORD"] * 3
    assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]


def test_lexer_identifiers_keep_case():
    tokens = tokenize("myTable")
    assert tokens[0].kind == "IDENT"
    assert tokens[0].value == "myTable"


def test_lexer_numbers():
    tokens = tokenize("42 3.14")
    assert tokens[0].kind == "INT" and tokens[0].value == 42
    assert tokens[1].kind == "FLOAT" and tokens[1].value == pytest.approx(3.14)


def test_lexer_strings_both_quotes_and_escapes():
    tokens = tokenize("'it''s' \"a\\\"b\"")
    assert tokens[0].value == "it's"
    assert tokens[1].value == 'a"b'


def test_lexer_unterminated_string():
    with pytest.raises(SqlError):
        tokenize("'oops")


def test_lexer_params_both_styles():
    tokens = tokenize("? %s")
    assert tokens[0].kind == "PARAM"
    assert tokens[1].kind == "PARAM"


def test_lexer_comparison_operators():
    kinds = [t.kind for t in tokenize("<= >= != <> < > =")][:-1]
    assert kinds == ["LE", "GE", "NE", "NE", "LT", "GT", "EQ"]


def test_lexer_comments_stripped():
    tokens = tokenize("SELECT -- comment here\n 1")
    assert tokens[0].value == "SELECT"
    assert tokens[1].value == 1


def test_lexer_backtick_identifiers():
    tokens = tokenize("`weird name`")
    assert tokens[0].kind == "IDENT"
    assert tokens[0].value == "weird name"


def test_lexer_rejects_garbage():
    with pytest.raises(SqlError):
        tokenize("SELECT @@version")


# ------------------------------------------------------------------ parser

def test_parse_minimal_select():
    stmt, nparams = parse("SELECT id FROM items")
    assert isinstance(stmt, n.Select)
    assert stmt.table.name == "items"
    assert nparams == 0


def test_parse_select_star():
    stmt, __ = parse("SELECT * FROM items")
    assert stmt.items[0].star


def test_parse_qualified_star():
    stmt, __ = parse("SELECT i.* FROM items i")
    assert stmt.items[0].star
    assert stmt.items[0].star_table == "i"


def test_parse_select_with_everything():
    stmt, nparams = parse(
        "SELECT i.id, COUNT(*) AS cnt FROM items i "
        "JOIN bids b ON b.item_id = i.id "
        "WHERE i.category = ? AND b.bid > 10 "
        "GROUP BY i.id HAVING COUNT(*) > 2 "
        "ORDER BY cnt DESC LIMIT 25 OFFSET 5")
    assert nparams == 1
    assert len(stmt.joins) == 1
    assert stmt.group_by
    assert stmt.having is not None
    assert stmt.order_by[0].descending
    assert stmt.limit.value == 25
    assert stmt.offset.value == 5


def test_parse_limit_comma_form():
    stmt, __ = parse("SELECT id FROM t LIMIT 10, 20")
    assert stmt.offset.value == 10
    assert stmt.limit.value == 20


def test_parse_comma_join():
    stmt, __ = parse("SELECT a.x FROM t1 a, t2 b WHERE a.id = b.id")
    assert len(stmt.joins) == 1
    assert stmt.joins[0].condition is None


def test_parse_left_join():
    stmt, __ = parse("SELECT a.x FROM t1 a LEFT JOIN t2 b ON a.id = b.a_id")
    assert stmt.joins[0].outer


def test_parse_table_alias_forms():
    stmt, __ = parse("SELECT x FROM items AS it")
    assert stmt.table.alias == "it"
    stmt, __ = parse("SELECT x FROM items it")
    assert stmt.table.alias == "it"


def test_parse_param_order_is_lexical():
    stmt, nparams = parse(
        "SELECT a FROM t WHERE b = ? AND c = %s LIMIT ?")
    assert nparams == 3
    conjs = stmt.where.operands
    assert conjs[0].right.index == 0
    assert conjs[1].right.index == 1
    assert stmt.limit.index == 2


def test_parse_insert():
    stmt, nparams = parse(
        "INSERT INTO users (name, age) VALUES (?, ?)")
    assert isinstance(stmt, n.Insert)
    assert stmt.columns == ["name", "age"]
    assert nparams == 2


def test_parse_insert_column_count_mismatch():
    with pytest.raises(SqlError):
        parse("INSERT INTO users (a, b) VALUES (1)")


def test_parse_update():
    stmt, nparams = parse(
        "UPDATE items SET quantity = quantity - 1, price = ? WHERE id = ?")
    assert isinstance(stmt, n.Update)
    assert stmt.assignments[0][0] == "quantity"
    assert nparams == 2


def test_parse_delete():
    stmt, __ = parse("DELETE FROM cart WHERE session_id = 'x'")
    assert isinstance(stmt, n.Delete)


def test_parse_lock_tables():
    stmt, __ = parse("LOCK TABLES items WRITE, authors READ")
    assert isinstance(stmt, n.LockTables)
    assert stmt.locks == [("items", "WRITE"), ("authors", "READ")]


def test_parse_unlock_tables():
    stmt, __ = parse("UNLOCK TABLES")
    assert isinstance(stmt, n.UnlockTables)


def test_parse_create_table():
    stmt, __ = parse(
        "CREATE TABLE users (id INT AUTO_INCREMENT, name VARCHAR(20) "
        "NOT NULL, bio TEXT, rating FLOAT, created DATETIME)")
    schema = stmt.schema
    assert schema.primary_key == "id"
    assert schema.auto_increment
    assert not schema.column("name").nullable


def test_parse_create_index():
    stmt, __ = parse("CREATE UNIQUE INDEX idx_nick ON users (nickname)")
    assert stmt.index.unique
    assert stmt.index.columns == ("nickname",)
    stmt, __ = parse("CREATE INDEX i2 ON users (region) USING HASH")
    assert stmt.index.kind == "hash"


def test_parse_transaction_statements():
    for sql in ("BEGIN", "COMMIT", "ROLLBACK"):
        stmt, __ = parse(sql)
        assert isinstance(stmt, n.Transaction)


def test_parse_between_and_in_and_like():
    stmt, __ = parse(
        "SELECT id FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) "
        "AND name LIKE 'foo%' AND c IS NOT NULL")
    conjs = stmt.where.operands
    assert isinstance(conjs[0], n.BetweenOp)
    assert isinstance(conjs[1], n.InOp)
    assert isinstance(conjs[2], n.LikeOp)
    assert isinstance(conjs[3], n.IsNullOp) and conjs[3].negated


def test_parse_not_variants():
    stmt, __ = parse("SELECT id FROM t WHERE a NOT LIKE 'x%' AND b NOT IN (1)")
    conjs = stmt.where.operands
    assert conjs[0].negated
    assert conjs[1].negated


def test_parse_negative_literal():
    stmt, __ = parse("SELECT id FROM t WHERE a = -5")
    assert stmt.where.right.value == -5


def test_parse_arith_precedence():
    stmt, __ = parse("SELECT a + b * 2 FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parse_trailing_garbage_rejected():
    with pytest.raises(SqlError):
        parse("SELECT id FROM t garbage extra ,")


def test_parse_unknown_statement_rejected():
    with pytest.raises(SqlError):
        parse("GRANT ALL ON x")


def test_parse_aggregates():
    stmt, __ = parse(
        "SELECT COUNT(*), MAX(bid), AVG(price), COUNT(DISTINCT uid) FROM b")
    aggs = [item.expr for item in stmt.items]
    assert aggs[0].arg is None
    assert aggs[1].func == "MAX"
    assert aggs[3].distinct


def test_parse_semicolon_tolerated():
    stmt, __ = parse("SELECT id FROM t;")
    assert isinstance(stmt, n.Select)

"""Tests for CPU, disk, and machine models."""

import pytest

from repro.machine import Machine, MachineSpec, paper_machine_spec
from repro.machine.cpu import Cpu
from repro.sim import Simulator


def test_cpu_executes_demand_in_virtual_time():
    sim = Simulator()
    cpu = Cpu(sim)

    def job():
        yield from cpu.execute(0.5)

    sim.spawn(job())
    sim.run()
    assert sim.now == pytest.approx(0.5)
    assert cpu.busy_time() == pytest.approx(0.5)


def test_cpu_speed_scales_demand():
    sim = Simulator()
    cpu = Cpu(sim, speed=2.0)

    def job():
        yield from cpu.execute(1.0)

    sim.spawn(job())
    sim.run()
    assert sim.now == pytest.approx(0.5)


def test_cpu_work_conserving_under_contention():
    sim = Simulator()
    cpu = Cpu(sim)
    ends = []

    def job(i):
        yield from cpu.execute(1.0)
        ends.append((i, sim.now))

    for i in range(3):
        sim.spawn(job(i))
    sim.run()
    # Round-robin: equal jobs finish together near the 3-second mark, in
    # arrival order, and the CPU never idles.
    assert [i for i, __ in ends] == [0, 1, 2]
    assert sim.now == pytest.approx(3.0)
    assert all(end > 2.99 for __, end in ends)
    assert cpu.busy_time() == pytest.approx(3.0)


def test_cpu_short_job_not_starved_behind_long_job():
    """Time-slicing: a 2 ms job behind a 1 s job finishes in
    milliseconds, not after the long job."""
    sim = Simulator()
    cpu = Cpu(sim)
    done = {}

    def job(name, demand):
        yield from cpu.execute(demand)
        done[name] = sim.now

    sim.spawn(job("long", 1.0))
    sim.spawn(job("short", 0.002))
    sim.run()
    assert done["short"] < 0.01
    assert done["long"] == pytest.approx(1.002)


def test_cpu_busy_time_excludes_idle_gaps():
    sim = Simulator()
    cpu = Cpu(sim)

    def job():
        yield from cpu.execute(1.0)
        yield 5.0  # idle gap
        yield from cpu.execute(2.0)

    sim.spawn(job())
    sim.run()
    assert sim.now == pytest.approx(8.0)
    assert cpu.busy_time() == pytest.approx(3.0)


def test_cpu_utilization_under_saturation():
    """With more offered work than capacity, busy fraction reaches 1."""
    sim = Simulator()
    cpu = Cpu(sim)

    def job():
        yield from cpu.execute(0.1)

    for _ in range(100):
        sim.spawn(job())
    sim.run()
    assert sim.now == pytest.approx(10.0)
    assert cpu.busy_time() / sim.now == pytest.approx(1.0)


def test_cpu_rejects_bad_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        Cpu(sim, speed=0)
    cpu = Cpu(sim)
    with pytest.raises(ValueError):
        list(cpu.execute(-1))


def test_disk_io_takes_access_plus_transfer_time():
    sim = Simulator()
    machine = Machine(sim, "db")

    def job():
        yield from machine.disk.io(35_000_00)  # 3.5 MB at 35 MB/s = 0.1 s

    sim.spawn(job())
    sim.run()
    assert sim.now == pytest.approx(0.009 + 0.1)
    assert machine.disk.transfers == 1
    assert machine.disk.bytes_moved == 3_500_000


def test_machine_memory_gauge():
    sim = Simulator()
    machine = Machine(sim, "web")
    machine.allocate_memory(100)
    machine.allocate_memory(50)
    assert machine.memory_used_mb == 150
    machine.free_memory(200)
    assert machine.memory_used_mb == 0
    with pytest.raises(ValueError):
        machine.allocate_memory(-1)


def test_paper_machine_spec_matches_testbed():
    spec = paper_machine_spec()
    assert spec.memory_mb == 768
    assert spec.nic_bandwidth_bps == 100e6
    assert spec.cpu_speed == 1.0


def test_custom_machine_spec():
    sim = Simulator()
    spec = MachineSpec(cpu_speed=0.6)  # the 800 MHz client boxes
    machine = Machine(sim, "client0", spec)
    assert machine.cpu.speed == 0.6

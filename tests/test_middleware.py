"""Tests for AppContext, the PHP module, and the servlet engine."""

import pytest

from repro.db import Column, ColumnType, Database, TableSchema
from repro.middleware import LockingPolicy, PhpModule, ServletEngine
from repro.middleware.context import AppContext, SyncLockRegistry
from repro.web.html import Page
from repro.web.http import HttpRequest


def make_db():
    db = Database()
    db.create_table(TableSchema(
        name="counters",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("value", ColumnType.INT)],
        primary_key="id", auto_increment=True))
    db.execute("INSERT INTO counters (value) VALUES (0)")
    return db


def bump_page(ctx):
    """Shared interaction logic: read-modify-write under exclusion."""
    with ctx.exclusive(["counters"]):
        current = ctx.query(
            "SELECT value FROM counters WHERE id = 1").scalar()
        ctx.update("UPDATE counters SET value = ? WHERE id = 1",
                   (current + 1,))
    page = Page("Counter")
    page.paragraph(f"value={current + 1}")
    return ctx.respond(page)


def read_page(ctx):
    value = ctx.query("SELECT value FROM counters WHERE id = 1").scalar()
    page = Page("Counter")
    page.paragraph(f"value={value}")
    return ctx.respond(page)


# ---------------------------------------------------------------- PHP module

def test_php_executes_script_and_traces_queries():
    db = make_db()
    php = PhpModule(db)
    php.register("/PHP/bump.php", bump_page)
    response, trace = php.handle(HttpRequest("/PHP/bump.php"))
    assert response.ok()
    assert "value=1" in response.body
    # LOCK + SELECT + UPDATE + UNLOCK
    kinds = [q.kind for q in trace.queries()]
    assert kinds == ["lock", "select", "update", "unlock"]
    assert trace.sync_spans() == 0


def test_php_unknown_path_is_404():
    php = PhpModule(make_db())
    response, trace = php.handle(HttpRequest("/PHP/ghost.php"))
    assert response.status == 404


def test_php_duplicate_registration_rejected():
    php = PhpModule(make_db())
    php.register("/p", read_page)
    with pytest.raises(ValueError):
        php.register("/p", read_page)


def test_php_requires_colocation_flag():
    assert PhpModule.requires_colocation is True
    assert ServletEngine.requires_colocation is False


def test_php_response_embeds_images():
    db = make_db()
    php = PhpModule(db)
    php.register("/p", read_page)
    response, __ = php.handle(HttpRequest("/p"))
    assert "/images/logo.gif" in response.embedded_images
    assert response.body_bytes > 200


# ------------------------------------------------------------- servlet engine

def test_servlet_same_queries_as_php():
    """The paper: PHP and non-sync servlets issue exactly the same SQL."""
    db1, db2 = make_db(), make_db()
    php = PhpModule(db1)
    php.register("/bump", bump_page)
    engine = ServletEngine(db2, sync_locking=False)
    engine.register("/bump", bump_page)
    __, php_trace = php.handle(HttpRequest("/bump"))
    __, servlet_trace = engine.handle(HttpRequest("/bump"))
    assert [q.sql for q in php_trace.queries()] == \
        [q.sql for q in servlet_trace.queries()]


def test_servlet_sync_drops_lock_statements():
    """(sync) variants: same queries minus LOCK/UNLOCK TABLES."""
    db1, db2 = make_db(), make_db()
    plain = ServletEngine(db1, sync_locking=False)
    plain.register("/bump", bump_page)
    sync = ServletEngine(db2, sync_locking=True)
    sync.register("/bump", bump_page)
    __, plain_trace = plain.handle(HttpRequest("/bump"))
    __, sync_trace = sync.handle(HttpRequest("/bump"))
    assert plain_trace.lock_statement_count() == 2
    assert sync_trace.lock_statement_count() == 0
    assert sync_trace.sync_spans() == 1
    # The data queries themselves are identical.
    plain_sql = [q.sql for q in plain_trace.queries()
                 if q.kind not in ("lock", "unlock")]
    sync_sql = [q.sql for q in sync_trace.queries()]
    assert plain_sql == sync_sql


def test_servlet_sync_functional_equivalence():
    """Both locking policies compute the same result."""
    db1, db2 = make_db(), make_db()
    plain = ServletEngine(db1, sync_locking=False)
    plain.register("/bump", bump_page)
    sync = ServletEngine(db2, sync_locking=True)
    sync.register("/bump", bump_page)
    for __ in range(5):
        r1, __t1 = plain.handle(HttpRequest("/bump"))
        r2, __t2 = sync.handle(HttpRequest("/bump"))
        assert r1.body == r2.body


def test_servlet_connection_pool_reuse():
    db = make_db()
    engine = ServletEngine(db, pool_size=2)
    engine.register("/r", read_page)
    for __ in range(10):
        response, __t = engine.handle(HttpRequest("/r"))
        assert response.ok()
    assert engine.pool._outstanding == 0


def test_servlet_class_api():
    from repro.middleware.servlet import HttpServlet

    class MyServlet(HttpServlet):
        def service(self, ctx):
            page = Page("S")
            page.paragraph("hi")
            return ctx.respond(page)

    engine = ServletEngine(make_db())
    engine.register("/s", MyServlet())
    response, __ = engine.handle(HttpRequest("/s"))
    assert "hi" in response.body


# ------------------------------------------------------------------ AppContext

def test_context_sync_policy_requires_registry():
    db = make_db()
    from repro.db.driver import NativeDriver
    conn = NativeDriver(db).connect()
    with pytest.raises(ValueError):
        AppContext(HttpRequest("/x"), conn,
                   policy=LockingPolicy.CONTAINER_SYNC)


def test_sync_registry_validates_usage():
    reg = SyncLockRegistry()
    reg.acquire("items", "WRITE")
    with pytest.raises(RuntimeError):
        reg.acquire("items", "READ")
    reg.release("items")
    with pytest.raises(RuntimeError):
        reg.release("items")
    with pytest.raises(ValueError):
        reg.acquire("items", "EXCLUSIVE")


def test_exclusive_read_tables_mode():
    db = make_db()
    php = PhpModule(db)

    def handler(ctx):
        with ctx.exclusive(["counters"], read_tables=["counters"]):
            pass  # write wins over read for the same table
        page = Page("x")
        return ctx.respond(page)

    php.register("/x", handler)
    __, trace = php.handle(HttpRequest("/x"))
    lock_sql = trace.queries()[0].sql
    assert lock_sql == "LOCK TABLES counters WRITE"


def test_context_param_helpers():
    db = make_db()
    conn = __import__("repro.db.driver", fromlist=["NativeDriver"]) \
        .NativeDriver(db).connect()
    request = HttpRequest("/x", params={"a": "5", "b": "txt"})
    ctx = AppContext(request, conn)
    assert ctx.int_param("a") == 5
    assert ctx.int_param("missing", 7) == 7
    assert ctx.str_param("b") == "txt"
    assert ctx.param("missing") is None


def test_context_error_response():
    db = make_db()
    from repro.db.driver import NativeDriver
    ctx = AppContext(HttpRequest("/x"), NativeDriver(db).connect())
    response = ctx.error("bad input", status=422)
    assert response.status == 422
    assert not response.ok()


# ------------------------------------------------------------ http sessions

def test_servlet_engine_provides_http_sessions():
    db = make_db()
    engine = ServletEngine(db)
    seen = []

    def handler(ctx):
        session = ctx.http_session
        if session is not None:
            visits = session.get("visits", 0) + 1
            session.set("visits", visits)
            seen.append(visits)
        page = Page("S")
        return ctx.respond(page)

    engine.register("/s", handler)
    for __ in range(3):
        engine.handle(HttpRequest("/s", session_id="client-A"))
    engine.handle(HttpRequest("/s", session_id="client-B"))
    engine.handle(HttpRequest("/s"))          # no cookie -> no session
    assert seen == [1, 2, 3, 1]
    assert len(engine.sessions) == 2


def test_http_session_expiry_and_invalidate():
    from repro.middleware.servlet.sessions import SessionManager
    clock = [0.0]
    manager = SessionManager(timeout=10.0, clock=lambda: clock[0])
    session = manager.get_session("sid")
    session.set("k", 1)
    clock[0] = 5.0
    assert manager.get_session("sid").get("k") == 1
    clock[0] = 20.0   # idle > timeout since last access at t=5
    fresh = manager.get_session("sid")
    assert fresh.get("k") is None            # expired, re-created
    assert manager.expired == 1
    fresh.invalidate()
    with __import__("pytest").raises(RuntimeError):
        fresh.get("k")
    assert manager.get_session("sid", create=False) is None


def test_session_manager_sweep():
    from repro.middleware.servlet.sessions import SessionManager
    clock = [0.0]
    manager = SessionManager(timeout=10.0, clock=lambda: clock[0])
    for i in range(5):
        manager.get_session(f"s{i}")
    clock[0] = 100.0
    assert manager.sweep() == 5
    assert len(manager) == 0


def test_session_manager_rejects_bad_timeout():
    from repro.middleware.servlet.sessions import SessionManager
    with pytest.raises(ValueError):
        SessionManager(timeout=0)

"""Tests for the client emulator and interaction selection."""

import pytest

from repro.sim import Simulator
from repro.sim.rng import RngStreams
from repro.workload.client import ClientPopulation, ClientStats, ThinkTimeSpec
from repro.workload.markov import choose_interaction, stationary_distribution


class FakeSite:
    """Instant site: records calls, costs a fixed virtual service time."""

    def __init__(self, sim, service=0.0):
        self.sim = sim
        self.service = service
        self.calls = []
        self.sessions = []

    def new_session(self, client_id, rng):
        self.sessions.append(client_id)

    def perform(self, client_id, name, rng):
        self.calls.append((self.sim.now, client_id, name))
        if self.service:
            yield self.service
        return
        yield  # pragma: no cover - generator marker


MIX = {"a": 50.0, "b": 30.0, "c": 20.0}


def run_population(n_clients, duration, think=None, service=0.0, seed=1):
    sim = Simulator()
    site = FakeSite(sim, service=service)
    population = ClientPopulation(
        sim, n_clients, MIX, site, RngStreams(seed), choose_interaction,
        think=think or ThinkTimeSpec())
    population.start()
    population.begin_measurement()
    sim.run(until=duration)
    return sim, site, population


def test_throughput_matches_little_law():
    """Closed loop with zero service: X = N / think_mean."""
    think = ThinkTimeSpec(think_mean=7.0, session_mean=1e9)
    sim, site, population = run_population(100, 700.0, think=think)
    rate = population.stats.interactions_completed / 700.0
    assert rate == pytest.approx(100 / 7.0, rel=0.05)


def test_interaction_frequencies_follow_mix():
    think = ThinkTimeSpec(think_mean=1.0, session_mean=1e9)
    __, __site, population = run_population(50, 400.0, think=think)
    counts = population.stats.per_interaction
    total = sum(counts.values())
    assert counts["a"] / total == pytest.approx(0.5, abs=0.03)
    assert counts["b"] / total == pytest.approx(0.3, abs=0.03)


def test_sessions_restart_after_expiry():
    think = ThinkTimeSpec(think_mean=1.0, session_mean=10.0)
    sim, site, population = run_population(10, 300.0, think=think)
    # ~10 clients x 300s / 10s per session ~ 300 sessions.
    assert population.stats.sessions_started > 100
    assert len(site.sessions) > 100


def test_measurement_window_zeroes_counts():
    sim = Simulator()
    site = FakeSite(sim)
    population = ClientPopulation(sim, 10, MIX, site, RngStreams(2),
                                  choose_interaction)
    population.start()
    sim.run(until=50.0)
    population.begin_measurement()
    assert population.stats.interactions_completed == 0
    sim.run(until=100.0)
    measured = population.end_measurement()
    assert measured.interactions_completed > 0
    # After end_measurement, the returned stats object stops growing.
    frozen = measured.interactions_completed
    sim.run(until=150.0)
    assert measured.interactions_completed == frozen


def test_response_time_recorded():
    think = ThinkTimeSpec(think_mean=5.0, session_mean=1e9)
    __, __site, population = run_population(
        5, 200.0, think=think, service=0.5)
    assert population.stats.mean_response_time() == pytest.approx(0.5,
                                                                  rel=0.01)


def test_population_requires_clients():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClientPopulation(sim, 0, MIX, FakeSite(sim), RngStreams(1),
                         choose_interaction)


def test_client_stats_record():
    stats = ClientStats()
    stats.record("x", 1.0)
    stats.record("x", 3.0)
    assert stats.per_interaction == {"x": 2}
    assert stats.mean_response_time() == 2.0
    assert ClientStats().mean_response_time() == 0.0


# ------------------------------------------------------------------ markov

def test_choose_interaction_covers_all():
    import random
    rng = random.Random(3)
    seen = {choose_interaction(MIX, rng) for __ in range(500)}
    assert seen == {"a", "b", "c"}


def test_choose_interaction_rejects_empty_mix():
    import random
    with pytest.raises(ValueError):
        choose_interaction({"a": 0.0}, random.Random(1))


def test_stationary_distribution_normalizes():
    dist = stationary_distribution(MIX)
    assert sum(dist.values()) == pytest.approx(1.0)
    assert dist["a"] == pytest.approx(0.5)

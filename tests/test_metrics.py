"""Tests for the sysstat sampler and report structures."""

import pytest

from repro.machine import Machine
from repro.metrics.report import (
    ConfigurationSeries,
    CpuUtilization,
    ExperimentReport,
    ThroughputPoint,
)
from repro.metrics.sampler import SysstatSampler
from repro.net import Lan
from repro.sim import Simulator


def test_sampler_measures_cpu_utilization():
    sim = Simulator()
    machine = Machine(sim, "m")
    sampler = SysstatSampler(sim, {"m": machine}, interval=1.0)
    sampler.start()

    def load():
        # 50% duty cycle: 0.5 s busy, 0.5 s idle.
        for __ in range(10):
            yield from machine.cpu.execute(0.5)
            yield 0.5

    sim.spawn(load())
    sim.run(until=10.0)
    mean = sampler.mean_cpu("m", 0.0, 10.0)
    assert mean == pytest.approx(0.5, abs=0.05)


def test_sampler_window_selection():
    sim = Simulator()
    machine = Machine(sim, "m")
    sampler = SysstatSampler(sim, {"m": machine}, interval=1.0)
    sampler.start()

    def load():
        yield 5.0
        yield from machine.cpu.execute(5.0)

    sim.spawn(load())
    sim.run(until=10.0)
    assert sampler.mean_cpu("m", 0.0, 5.0) == pytest.approx(0.0)
    assert sampler.mean_cpu("m", 5.0, 10.0) == pytest.approx(1.0)


def test_sampler_nic_rates():
    sim = Simulator()
    lan = Lan(sim)
    a, b = Machine(sim, "a"), Machine(sim, "b")
    lan.attach(a)
    lan.attach(b)
    sampler = SysstatSampler(sim, {"a": a}, interval=1.0)
    sampler.start()

    def flow():
        for __ in range(10):
            yield from lan.transfer(a, b, 125_000)  # 1 Mb each
            yield 0.9

    sim.spawn(flow())
    sim.run(until=10.0)
    assert sampler.mean_nic_tx_mbps("a", 0.0, 10.0) == pytest.approx(
        1.0, rel=0.15)


def test_sampler_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        SysstatSampler(sim, {}, interval=0)


def test_empty_window_is_zero():
    sim = Simulator()
    machine = Machine(sim, "m")
    sampler = SysstatSampler(sim, {"m": machine})
    assert sampler.mean_cpu("m", 0.0) == 0.0


# ------------------------------------------------------------------ reports

def make_point(clients, ipm, web=0.5, db=0.9):
    return ThroughputPoint(
        clients=clients, throughput_ipm=ipm,
        cpu=CpuUtilization(web_server=web, database=db))


def test_series_peak():
    series = ConfigurationSeries("X")
    series.add(make_point(100, 500))
    series.add(make_point(200, 700))
    series.add(make_point(300, 600))
    assert series.peak().clients == 200


def test_series_peak_empty_raises():
    with pytest.raises(ValueError):
        ConfigurationSeries("X").peak()


def test_report_renders_tables():
    report = ExperimentReport(title="T", workload="w")
    series = report.series_for("WsPhp-DB")
    series.add(make_point(100, 520))
    series.add(make_point(200, 480))
    text = report.render_throughput_table()
    assert "WsPhp-DB" in text
    assert "520" in text
    assert "peaks:" in text
    cpu_text = report.render_cpu_table()
    assert "Database" in cpu_text
    assert "90.0" in cpu_text


def test_cpu_utilization_row_includes_optional_roles():
    cpu = CpuUtilization(web_server=0.1, database=0.2,
                         servlet_container=0.3, ejb_server=0.4)
    row = cpu.as_row()
    assert row["Servlet Container"] == 30.0
    assert row["EJB Server"] == 40.0
    bare = CpuUtilization(web_server=0.1, database=0.2).as_row()
    assert "EJB Server" not in bare


def test_report_peaks_mapping():
    report = ExperimentReport(title="T", workload="w")
    report.series_for("A").add(make_point(10, 100))
    report.series_for("B").add(make_point(10, 200))
    peaks = report.peaks()
    assert peaks["B"].throughput_ipm == 200


def test_report_csv_export(tmp_path):
    report = ExperimentReport(title="T", workload="w")
    series = report.series_for("WsPhp-DB")
    series.add(make_point(100, 520))
    series.add(make_point(50, 300))
    csv_text = report.to_csv()
    lines = csv_text.splitlines()
    assert lines[0].startswith("configuration,clients")
    # Points come out sorted by client count.
    assert lines[1].startswith("WsPhp-DB,50,")
    assert lines[2].startswith("WsPhp-DB,100,520.0")
    path = tmp_path / "fig.csv"
    report.save_csv(path)
    assert path.read_text().strip() == csv_text

"""Tests for the bookstore application across all three architectures."""

import random

import pytest

from repro.apps.bookstore import (
    BROWSING_MIX,
    ORDERING_MIX,
    SHOPPING_MIX,
    BookstoreApp,
    build_bookstore_database,
)
from repro.apps.bookstore.logic import INTERACTIONS
from repro.apps.bookstore.mixes import (
    BookstoreState,
    choose_interaction,
    make_request,
    read_only_fraction,
)
from repro.web.http import HttpRequest


@pytest.fixture(scope="module")
def app():
    return BookstoreApp(build_bookstore_database(scale=0.005, tiny=True))


@pytest.fixture(scope="module")
def php(app):
    return app.deploy_php()


def _state(app):
    return BookstoreState.from_database(app.database, random.Random(3))


def test_database_has_eight_tables(app):
    assert sorted(app.database.tables) == sorted([
        "countries", "address", "customers", "orders", "order_line",
        "credit_info", "items", "authors"])


def test_scaling_keeps_relation_sizes(app):
    db = app.database
    orders = len(db.table("orders"))
    lines = len(db.table("order_line"))
    assert lines == 3 * orders
    assert len(db.table("countries")) == 92


def test_all_fourteen_interactions_render_on_php(app, php):
    rng = random.Random(1)
    state = _state(app)
    for name in INTERACTIONS:
        request = make_request(name, rng, state)
        response, trace = php.handle(request)
        assert response.ok(), f"{name} failed: {response.status}"
        assert response.body_bytes > 300, name
        if name != "search_request":
            assert trace.query_count() >= 1, name


def test_search_request_is_static(app, php):
    __, trace = php.handle(HttpRequest("/search_request"))
    assert trace.query_count() == 0


def test_read_only_interactions_do_not_write(app, php):
    rng = random.Random(2)
    state = _state(app)
    for name, (handler, read_only) in INTERACTIONS.items():
        if not read_only:
            continue
        __, trace = php.handle(make_request(name, rng, state))
        assert not trace.tables_written(), name


def test_read_write_interactions_write(app, php):
    rng = random.Random(3)
    state = _state(app)
    for name in ("shopping_cart", "buy_request", "order_inquiry",
                 "customer_registration", "admin_confirm"):
        __, trace = php.handle(make_request(name, rng, state))
        assert trace.tables_written(), name


def test_purchase_pipeline_end_to_end(app, php):
    state = _state(app)
    c_id = state.c_id
    # Add two items to the cart.
    for i_id in (1, 2):
        response, __ = php.handle(HttpRequest(
            "/shopping_cart", params={"c_id": c_id, "i_id": i_id, "qty": 2}))
        assert response.ok()
    # Buy.
    response, trace = php.handle(HttpRequest(
        "/buy_confirm", params={"c_id": c_id}))
    assert response.ok()
    assert "placed" in response.body
    assert {"orders", "order_line", "credit_info", "items", "customers"} \
        <= {t for q in trace.queries() for t in q.tables_written} | \
        {t for q in trace.queries() if q.kind == "lock"
         for t, m in q.lock_set}
    # The cart is gone (status flipped to pending).
    again, __ = php.handle(HttpRequest("/buy_confirm", params={"c_id": c_id}))
    assert again.status == 409


def test_buy_confirm_decrements_stock(app, php):
    db = app.database
    state = _state(app)
    c_id = state.c_id + 1
    stock_before = db.execute(
        "SELECT stock FROM items WHERE id = 5").scalar()
    php.handle(HttpRequest("/shopping_cart",
                           params={"c_id": c_id, "i_id": 5, "qty": 1}))
    php.handle(HttpRequest("/buy_confirm", params={"c_id": c_id}))
    stock_after = db.execute("SELECT stock FROM items WHERE id = 5").scalar()
    expected = stock_before - 1
    if expected < 10:
        expected += 21
    assert stock_after == expected


def test_registration_creates_customer(app, php):
    before = app.database.execute("SELECT COUNT(*) FROM customers").scalar()
    response, __ = php.handle(HttpRequest(
        "/customer_registration", params={"new_uname": "brand_new_user_xyz"}))
    assert response.ok()
    after = app.database.execute("SELECT COUNT(*) FROM customers").scalar()
    assert after == before + 1


def test_best_sellers_ranks_by_quantity(app, php):
    response, trace = php.handle(HttpRequest(
        "/best_sellers", params={"subject": "SUBJECT01"}))
    assert response.ok()
    # The heavy aggregate touched orders, order_line, items, authors.
    tables = set()
    for q in trace.queries():
        tables.update(q.tables_read)
    assert {"orders", "order_line", "items", "authors"} <= tables


def test_php_and_servlet_issue_identical_sql():
    # Two identical, independent databases: both passes see the same state.
    app1 = BookstoreApp(build_bookstore_database(scale=0.005, tiny=True))
    app2 = BookstoreApp(build_bookstore_database(scale=0.005, tiny=True))
    php = app1.deploy_php()
    servlet = app2.deploy_servlet(sync_locking=False)
    rng1, rng2 = random.Random(7), random.Random(7)
    s1 = BookstoreState.from_database(app1.database, random.Random(5))
    s2 = BookstoreState.from_database(app2.database, random.Random(5))
    for name in INTERACTIONS:
        r1 = make_request(name, rng1, s1)
        r2 = make_request(name, rng2, s2)
        __, t1 = php.handle(r1)
        __, t2 = servlet.handle(r2)
        assert [q.sql for q in t1.queries()] == \
            [q.sql for q in t2.queries()], name


def test_sync_servlet_drops_all_lock_statements(app):
    sync = app.deploy_servlet(sync_locking=True)
    rng = random.Random(11)
    state = _state(app)
    for name in INTERACTIONS:
        __, trace = sync.handle(make_request(name, rng, state))
        assert trace.lock_statement_count() == 0, name
        read_only = INTERACTIONS[name][1]
        if name in ("shopping_cart", "buy_confirm", "order_inquiry",
                    "buy_request", "customer_registration", "admin_confirm"):
            assert trace.sync_spans() >= 1, name
        elif read_only:
            assert trace.sync_spans() == 0, name


def test_ejb_all_interactions_render(app):
    presentation, container = app.deploy_ejb()
    rng = random.Random(13)
    state = _state(app)
    for name in INTERACTIONS:
        response, trace = presentation.handle(make_request(name, rng, state))
        assert response.ok(), name
        if name not in ("search_request",):
            # Every dynamic page went through RMI at least once...
            if name == "customer_registration":
                continue  # form display path has no RMI
            assert trace.rmi_calls(), name


def test_ejb_issues_many_more_queries_than_php(app):
    """The paper's EJB pathology: short-query flood per interaction."""
    php = app.deploy_php()
    presentation, container = app.deploy_ejb()
    rng1, rng2 = random.Random(17), random.Random(17)
    s1 = BookstoreState.from_database(app.database, random.Random(19))
    s2 = BookstoreState.from_database(app.database, random.Random(19))
    php_total = ejb_total = 0
    for name in ("new_products", "product_detail", "best_sellers",
                 "order_display"):
        __, t1 = php.handle(make_request(name, rng1, s1))
        __, t2 = presentation.handle(make_request(name, rng2, s2))
        php_total += t1.query_count()
        ejb_total += t2.query_count()
    assert ejb_total > 5 * php_total


def test_ejb_never_issues_lock_tables(app):
    presentation, __ = app.deploy_ejb()
    rng = random.Random(23)
    state = _state(app)
    for name in INTERACTIONS:
        __, trace = presentation.handle(make_request(name, rng, state))
        assert trace.lock_statement_count() == 0, name


def test_ejb_purchase_matches_php_semantics(app):
    """EJB and PHP implement the same business rules."""
    presentation, __ = app.deploy_ejb()
    db = app.database
    c_id = 3
    stock_before = db.execute("SELECT stock FROM items WHERE id = 9").scalar()
    presentation.handle(HttpRequest(
        "/shopping_cart", params={"c_id": c_id, "i_id": 9, "qty": 1}))
    response, __t = presentation.handle(
        HttpRequest("/buy_confirm", params={"c_id": c_id}))
    assert response.ok()
    stock_after = db.execute("SELECT stock FROM items WHERE id = 9").scalar()
    expected = stock_before - 1
    if expected < 10:
        expected += 21
    assert stock_after == expected


# ------------------------------------------------------------------- mixes

def test_mix_read_only_fractions_match_tpcw():
    assert read_only_fraction(BROWSING_MIX) == pytest.approx(0.95, abs=0.005)
    assert read_only_fraction(SHOPPING_MIX) == pytest.approx(0.80, abs=0.005)
    assert read_only_fraction(ORDERING_MIX) == pytest.approx(0.50, abs=0.005)


def test_mixes_cover_all_interactions():
    for mix in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX):
        assert set(mix) == set(INTERACTIONS)
        assert sum(mix.values()) == pytest.approx(100.0, abs=0.5)


def test_choose_interaction_follows_frequencies():
    rng = random.Random(0)
    counts = {name: 0 for name in SHOPPING_MIX}
    n = 20_000
    for __ in range(n):
        counts[choose_interaction(SHOPPING_MIX, rng)] += 1
    assert counts["home"] / n == pytest.approx(0.16, abs=0.01)
    assert counts["search_request"] / n == pytest.approx(0.20, abs=0.01)


def test_make_request_unknown_interaction():
    with pytest.raises(KeyError):
        make_request("ghost", random.Random(0), None)

"""Unit tests for the resilience layer: fault plans, the injector,
admission control, client retry/backoff, and availability metrics."""

import random

import pytest

from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.faults import (
    AdmissionReject,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    TierDown,
    TransientDbError,
)
from repro.harness.profiles import profile_application
from repro.machine.machine import Machine
from repro.metrics.availability import (
    AvailabilitySampler,
    AvailabilityWindow,
    summarize_failover,
)
from repro.net.lan import Lan
from repro.sim import Interrupt, Simulator
from repro.sim.rng import RngStreams
from repro.topology.configs import WS_PHP_DB, WS_SEP_SERVLET_DB
from repro.topology.simulation import SimulatedSite
from repro.web.server import WebServerConfig
from repro.workload.client import ClientPopulation, ClientStats, RetryPolicy
from repro.workload.markov import choose_interaction


@pytest.fixture(scope="module")
def app():
    return BookstoreApp(build_bookstore_database(scale=0.002, tiny=True))


@pytest.fixture(scope="module")
def php_profile(app):
    return profile_application(app, app.deploy_php(), "php", repetitions=2)


@pytest.fixture(scope="module")
def servlet_profile(app):
    return profile_application(app, app.deploy_servlet(), "servlet",
                               repetitions=2)


def _no_dangling_locks(site) -> bool:
    for lock in site._table_locks.values():
        if lock.writer or lock.readers or lock.waiting_writers or \
                lock.waiting_readers:
            return False
    for lock in site._sync_locks.values():
        if lock.writer or lock.readers:
            return False
    return True


# -- FaultPlan -----------------------------------------------------------------


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultPlan((FaultEvent("meteor", "db", 0.0, 1.0),))
    with pytest.raises(ValueError):
        FaultPlan((FaultEvent("crash", "mainframe", 0.0, 1.0),))
    with pytest.raises(ValueError):
        FaultPlan((FaultEvent("crash", "db", -1.0, 1.0),))
    with pytest.raises(ValueError):
        FaultPlan((FaultEvent("crash", "db", 0.0, -1.0),))
    with pytest.raises(ValueError):
        FaultPlan((FaultEvent("lan_degrade", at=0.0, duration=1.0,
                              factor=1.5),))


def test_fault_plan_builders_and_algebra():
    plan = FaultPlan.single_crash("db", at=10.0, duration=5.0) + \
        FaultPlan.db_conn_glitch(at=20.0, duration=2.0)
    assert len(plan.events) == 2
    assert plan.horizon() == 22.0
    assert bool(plan)
    assert not FaultPlan()
    assert FaultPlan().horizon() == 0.0


def test_stochastic_plan_is_reproducible_and_bounded():
    a = FaultPlan.stochastic(random.Random(7), horizon=1000.0,
                             tiers=("db", "servlet"), mtbf=200.0, mttr=20.0)
    b = FaultPlan.stochastic(random.Random(7), horizon=1000.0,
                             tiers=("db", "servlet"), mtbf=200.0, mttr=20.0)
    assert a.events == b.events
    assert a.events  # MTBF 200 over 1000 s: effectively always >= 1 crash
    for event in a.events:
        assert 0.0 <= event.at < 1000.0
        assert event.clears_at <= 1000.0 + 1e-9


# -- crash mechanics -----------------------------------------------------------


def test_crash_aborts_inflight_and_releases_locks(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    injector = FaultInjector(
        sim, site, FaultPlan.single_crash("db", at=0.004, duration=0.1))
    injector.start()

    outcomes = []

    def attempt(i):
        try:
            yield from site.perform(i, "buy_confirm", random.Random(i))
            outcomes.append("ok")
        except Interrupt:
            outcomes.append("aborted")
        except TierDown:
            outcomes.append("refused")

    procs = [sim.spawn(attempt(i)) for i in range(4)]
    sim.run()
    assert all(p.finished for p in procs)
    assert len(outcomes) == 4
    assert "aborted" in outcomes or "refused" in outcomes
    assert _no_dangling_locks(site)
    assert site.web_processes.in_use == 0
    assert not site.inflight_processes()
    assert [entry[3] for entry in injector.log] == ["down", "up"]


def test_down_tier_fails_fast(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    site.mark_down("db")
    outcomes = []

    def attempt():
        try:
            yield from site.perform(0, "product_detail", random.Random(1))
            outcomes.append("ok")
        except TierDown as exc:
            outcomes.append(exc.machine)

    sim.spawn(attempt())
    sim.run()
    assert outcomes == ["db"]
    assert sim.now < 0.1          # an error, not a hang
    assert site.interactions_done == 0
    site.mark_up("db")
    sim.spawn(attempt())
    sim.run()
    assert outcomes[-1] == "ok"


def test_mark_down_unknown_machine_raises(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    with pytest.raises(KeyError):
        site.mark_down("servlet")   # WsPhp-DB has no servlet machine


def test_crash_of_absent_tier_is_contained(php_profile):
    """Crashing the dedicated servlet machine cannot touch WsPhp-DB."""
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    injector = FaultInjector(
        sim, site, FaultPlan.single_crash("servlet", at=0.001, duration=1.0))
    injector.start()
    procs = [sim.spawn(site.perform(i, "product_detail", random.Random(i)))
             for i in range(3)]
    sim.run()
    assert all(p.finished for p in procs)
    assert site.interactions_done == 3
    assert injector.log == [(0.001, "crash", "servlet", "skipped")]


def test_db_conn_glitch_aborts_queries_transiently(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    FaultInjector(sim, site,
                  FaultPlan.db_conn_glitch(at=0.0, duration=1.0)).start()
    outcomes = []

    def attempt(delay):
        yield delay
        try:
            yield from site.perform(0, "product_detail", random.Random(3))
            outcomes.append("ok")
        except TransientDbError:
            outcomes.append("glitch")

    sim.spawn(attempt(0.01))
    sim.spawn(attempt(1.5))
    sim.run()
    assert outcomes == ["glitch", "ok"]
    assert _no_dangling_locks(site)


def test_lan_degrade_scales_transfer_time():
    sim = Simulator()
    lan = Lan(sim, latency=0.0)
    a, b = Machine(sim, "a"), Machine(sim, "b")
    lan.attach(a)
    lan.attach(b)
    durations = []

    def move():
        start = sim.now
        yield from lan.transfer(a, b, 125_000)   # 10 ms at 100 Mb/s
        durations.append(sim.now - start)

    sim.spawn(move())
    sim.run()
    lan.set_bandwidth_factor(0.1)
    sim.spawn(move())
    sim.run()
    lan.set_bandwidth_factor(1.0)
    sim.spawn(move())
    sim.run()
    assert durations[0] == pytest.approx(0.02)       # tx + rx serialised
    assert durations[1] == pytest.approx(0.2)
    assert durations[2] == pytest.approx(durations[0])


# -- admission control ---------------------------------------------------------


def test_admission_control_sheds_load(php_profile):
    sim = Simulator()
    site = SimulatedSite(
        sim, WS_PHP_DB, php_profile,
        web_config=WebServerConfig(max_processes=1, accept_queue_limit=1))
    outcomes = []

    def attempt(i):
        try:
            yield from site.perform(i, "product_detail", random.Random(i))
            outcomes.append("ok")
        except AdmissionReject:
            outcomes.append("rejected")

    procs = [sim.spawn(attempt(i)) for i in range(6)]
    sim.run()
    assert all(p.finished for p in procs)
    assert site.rejections > 0
    assert outcomes.count("rejected") == site.rejections
    assert outcomes.count("ok") == site.interactions_done
    assert site.interactions_done + site.rejections == 6
    assert site.web_processes.in_use == 0
    assert site.web_processes.queue_length == 0


def test_unbounded_accept_queue_never_rejects(php_profile):
    """Default config (accept_queue_limit=None) keeps the paper's
    queue-forever Apache behaviour."""
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile,
                         web_config=WebServerConfig(max_processes=1))
    procs = [sim.spawn(site.perform(i, "product_detail", random.Random(i)))
             for i in range(6)]
    sim.run()
    assert all(p.finished for p in procs)
    assert site.interactions_done == 6
    assert site.rejections == 0


# -- client retry / backoff / deadline -----------------------------------------


def _drive_population(profile, config, plan, n_clients=5, until=60.0,
                      retry=None, window=5.0):
    sim = Simulator()
    site = SimulatedSite(sim, config, profile)
    app_mix = {"product_detail": 0.5, "home": 0.3, "buy_confirm": 0.2}
    population = ClientPopulation(
        sim, n_clients, app_mix, site, RngStreams(11), choose_interaction,
        retry=retry)
    FaultInjector(sim, site, plan).start()
    population.start()
    population.begin_measurement()
    sampler = AvailabilitySampler(sim, population, interval=window)
    sampler.start()
    sim.run(until=until)
    return sim, site, population, sampler


def test_clients_retry_through_outage_and_recover(php_profile):
    plan = FaultPlan.single_crash("db", at=20.0, duration=10.0)
    retry = RetryPolicy(deadline=6.0, max_retries=3, backoff_base=0.25,
                        backoff_cap=2.0, retry_budget=40)
    sim, site, population, sampler = _drive_population(
        php_profile, WS_PHP_DB, plan, until=60.0, retry=retry)
    stats = population.stats
    assert stats.interactions_completed > 0
    assert stats.rejections + stats.aborts > 0   # the outage was felt
    assert stats.retries > 0                     # and retried against
    # The outage windows saw errors; the tail windows saw service again.
    outage = [w for w in sampler.windows if w.start >= 20.0 and w.end <= 30.0]
    tail = [w for w in sampler.windows if w.start >= 40.0]
    assert sum(w.errors for w in outage) > 0
    assert sum(w.completions for w in tail) > 0
    assert _no_dangling_locks(site)


def test_retry_budget_bounds_retries(php_profile):
    # Site down for the whole run: every interaction fails; with a
    # budget of 3 the session may spend exactly 3 retries in total.
    plan = FaultPlan.single_crash("db", at=0.0, duration=500.0)
    retry = RetryPolicy(deadline=5.0, max_retries=5, backoff_base=0.1,
                        backoff_cap=0.5, retry_budget=3)
    __, __, population, __ = _drive_population(
        php_profile, WS_PHP_DB, plan, n_clients=1, until=120.0, retry=retry)
    stats = population.stats
    assert stats.interactions_completed == 0
    assert stats.retries == 3
    assert stats.abandoned > 1


def test_deadline_times_out_hung_attempt(servlet_profile):
    """A request stuck behind a crashed-but-not-detected dependency is
    cut off by the client deadline, not waited on forever."""
    sim = Simulator()
    site = SimulatedSite(sim, WS_SEP_SERVLET_DB, servlet_profile)
    population = ClientPopulation(
        sim, 1, {"product_detail": 1.0}, site, RngStreams(5),
        choose_interaction,
        retry=RetryPolicy(deadline=2.0, max_retries=0, backoff_base=0.1))
    # Hold the web process pool so the attempt queues forever.
    for __ in range(site.web_processes.capacity):
        assert site.web_processes.try_acquire()
    population.start()
    population.begin_measurement()
    sim.run(until=30.0)
    assert population.stats.timeouts >= 2
    assert population.stats.interactions_completed == 0
    # Timed-out attempts withdrew their queued acquire requests: at most
    # the one currently in-flight attempt may still be waiting.
    assert site.web_processes.queue_length <= 1


def test_client_stats_error_accounting():
    stats = ClientStats()
    stats.record_error("timeout")
    stats.record_error("rejection")
    stats.record_error("abort")
    stats.record_error("abort")
    assert (stats.timeouts, stats.rejections, stats.aborts) == (1, 1, 2)
    assert stats.errors == 4


def test_population_stop_drains_to_quiescence(php_profile):
    sim = Simulator()
    site = SimulatedSite(sim, WS_PHP_DB, php_profile)
    population = ClientPopulation(
        sim, 4, {"product_detail": 1.0}, site, RngStreams(2),
        choose_interaction, retry=RetryPolicy(deadline=5.0))
    population.start()
    sim.run(until=30.0)
    population.stop()
    sim.run()
    assert all(p.finished for p in population._procs)
    assert not site.inflight_processes()
    assert _no_dangling_locks(site)
    assert sim.quiescent()


# -- availability metrics ------------------------------------------------------


def test_availability_window_goodput():
    window = AvailabilityWindow(start=10.0, end=20.0, completions=30,
                                timeouts=1, aborts=2, rejections=3)
    assert window.goodput_ipm == pytest.approx(180.0)
    assert window.errors == 6


def test_summarize_failover_recovery_math():
    def window(i, completions):
        return AvailabilityWindow(start=i * 10.0, end=(i + 1) * 10.0,
                                  completions=completions)
    # Steady at 100/window, dead during the fault, limping at 40, then
    # back at 95 from t=60.
    windows = [window(0, 100), window(1, 100), window(2, 100),  # pre
               window(3, 0), window(4, 0),                      # fault 30-50
               window(5, 40), window(6, 95), window(7, 100)]    # post
    summary = summarize_failover("C1", "db", windows,
                                 fault_start=30.0, fault_end=50.0,
                                 stats=ClientStats())
    assert summary.pre_goodput_ipm == pytest.approx(600.0)
    assert summary.during_goodput_ipm == pytest.approx(0.0)
    assert summary.post_goodput_ipm == pytest.approx((40 + 95 + 100) * 2.0)
    # First window back at >= 90% of pre ends at t=70 -> 20 s to recover.
    assert summary.recovery_time_s == pytest.approx(20.0)
    assert not summary.contained


def test_summarize_failover_never_recovers():
    windows = [AvailabilityWindow(0.0, 10.0, completions=100),
               AvailabilityWindow(10.0, 20.0, completions=0),
               AvailabilityWindow(20.0, 30.0, completions=10)]
    summary = summarize_failover("C1", "db", windows, 10.0, 20.0,
                                 stats=ClientStats())
    assert summary.recovery_time_s is None
    assert summary.during_over_pre == pytest.approx(0.0)
    assert summary.post_over_pre == pytest.approx(0.1)

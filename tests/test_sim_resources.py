"""Tests for resources, stores, and the readers/writer lock."""

import pytest

from repro.sim import Resource, RWLock, Simulator, Store
from repro.sim.kernel import SimulationError


# ---------------------------------------------------------------- Resource

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    assert res.acquire().triggered
    assert res.acquire().triggered
    third = res.acquire()
    assert not third.triggered
    assert res.queue_length == 1
    res.release()
    assert third.triggered


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(i):
        yield res.acquire()
        order.append(i)
        yield 1.0
        res.release()

    for i in range(4):
        sim.spawn(worker(i))
    sim.run()
    assert order == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_resource_try_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    assert res.try_acquire()
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_handoff_keeps_in_use_stable():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire()
    waiting = res.acquire()
    assert res.in_use == 1
    res.release()
    assert waiting.triggered
    assert res.in_use == 1
    res.release()
    assert res.in_use == 0


# ------------------------------------------------------------------- Store

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    ev = store.get()
    assert ev.triggered and ev.value == "a"


def test_store_get_then_put_wakes_getter():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield 2.0
        store.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(2.0, "x")]


def test_store_fifo_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.get().value == 1
    assert store.get().value == 2
    assert len(store) == 0


# ------------------------------------------------------------------ RWLock

def test_rwlock_readers_share():
    sim = Simulator()
    lock = RWLock(sim)
    assert lock.acquire_read().triggered
    assert lock.acquire_read().triggered
    assert lock.readers == 2


def test_rwlock_writer_excludes_readers():
    sim = Simulator()
    lock = RWLock(sim)
    assert lock.acquire_write().triggered
    r = lock.acquire_read()
    assert not r.triggered
    lock.release_write()
    assert r.triggered


def test_rwlock_write_priority_blocks_new_readers():
    """With writer priority (MyISAM policy), a waiting writer holds off
    newly arriving readers even while current readers are active."""
    sim = Simulator()
    lock = RWLock(sim, write_priority=True)
    lock.acquire_read()
    w = lock.acquire_write()
    assert not w.triggered
    late_reader = lock.acquire_read()
    assert not late_reader.triggered  # queued behind the writer
    lock.release_read()
    assert w.triggered
    assert not late_reader.triggered
    lock.release_write()
    assert late_reader.triggered


def test_rwlock_no_write_priority_lets_readers_through():
    sim = Simulator()
    lock = RWLock(sim, write_priority=False)
    lock.acquire_read()
    w = lock.acquire_write()
    assert not w.triggered
    late_reader = lock.acquire_read()
    assert late_reader.triggered  # reader priority: joins current readers


def test_rwlock_batch_wakes_all_waiting_readers():
    sim = Simulator()
    lock = RWLock(sim, write_priority=True)
    lock.acquire_write()
    readers = [lock.acquire_read() for _ in range(5)]
    assert not any(r.triggered for r in readers)
    lock.release_write()
    assert all(r.triggered for r in readers)
    assert lock.readers == 5


def test_rwlock_writers_fifo():
    sim = Simulator()
    lock = RWLock(sim)
    order = []

    def writer(i):
        yield lock.acquire_write()
        order.append(i)
        yield 1.0
        lock.release_write()

    for i in range(3):
        sim.spawn(writer(i))
    sim.run()
    assert order == [0, 1, 2]


def test_rwlock_release_unheld_raises():
    sim = Simulator()
    lock = RWLock(sim)
    with pytest.raises(SimulationError):
        lock.release_read()
    with pytest.raises(SimulationError):
        lock.release_write()


def test_rwlock_write_then_write_queues():
    sim = Simulator()
    lock = RWLock(sim)
    lock.acquire_write()
    w2 = lock.acquire_write()
    assert not w2.triggered
    lock.release_write()
    assert w2.triggered

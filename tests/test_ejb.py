"""Tests for the EJB container: CMP entities, session façades, RMI stubs."""

import pytest

from repro.db import Column, ColumnType, Database, IndexDef, TableSchema
from repro.middleware.ejb import EjbContainer, SessionBean
from repro.middleware.trace import InteractionTrace


def make_db():
    db = Database()
    db.create_table(TableSchema(
        name="accounts",
        columns=[Column("id", ColumnType.INT, nullable=False),
                 Column("owner", ColumnType.VARCHAR),
                 Column("balance", ColumnType.FLOAT),
                 Column("region", ColumnType.INT)],
        primary_key="id", auto_increment=True,
        indexes=[IndexDef("idx_region", ("region",))]))
    for i in range(1, 6):
        db.execute("INSERT INTO accounts (owner, balance, region) "
                   "VALUES (?, ?, ?)", (f"user{i}", 100.0 * i, i % 2))
    return db


@pytest.fixture
def container():
    db = make_db()
    ejb = EjbContainer(db)
    ejb.deploy_entity("accounts")
    return ejb


def test_find_by_primary_key_and_lazy_load(container):
    """Default (row) mode: the first field access loads the whole row."""
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(3)
        assert container.entity_loads == 0    # not loaded yet
        assert bean.owner == "user3"          # first access triggers ejbLoad
        assert container.entity_loads == 1
        assert bean.balance == 300.0
        assert container.entity_loads == 1    # whole row came in one query


def test_field_load_mode_issues_query_per_field():
    """JOnAS-style per-field lazy loading (ablation mode)."""
    db = make_db()
    ejb = EjbContainer(db, load_mode="field")
    ejb.deploy_entity("accounts")
    trace = InteractionTrace()
    with ejb.transaction(trace=trace):
        bean = ejb.home("accounts").find_by_primary_key(3)
        assert bean.owner == "user3"
        assert ejb.entity_loads == 1
        assert bean.balance == 300.0
        assert ejb.entity_loads == 2          # one query per field
    sqls = [q.sql for q in trace.queries()]
    assert any(s.startswith("SELECT owner FROM accounts") for s in sqls)
    assert any(s.startswith("SELECT balance FROM accounts") for s in sqls)


def test_find_by_primary_key_missing(container):
    with container.transaction():
        with pytest.raises(KeyError):
            container.home("accounts").find_by_primary_key(999)


def test_finder_generates_pk_only_select_then_n_plus_one(container):
    trace = InteractionTrace()
    with container.transaction(trace=trace):
        beans = container.home("accounts").find_by("region", 1)
        assert len(beans) == 3
        owners = sorted(b.owner for b in beans)
        assert owners == ["user1", "user3", "user5"]
    sqls = [q.sql for q in trace.queries()]
    # 1 finder + 3 individual ejbLoads: the N+1 pattern.
    assert sqls[0].startswith("SELECT id FROM accounts WHERE region")
    assert sum("SELECT * FROM accounts" in s for s in sqls) == 3


def test_field_store_mode_issues_update_per_field(container):
    trace = InteractionTrace()
    with container.transaction(trace=trace):
        bean = container.home("accounts").find_by_primary_key(1)
        bean.balance = 500.0
        bean.owner = "renamed"
    updates = [q for q in trace.queries() if q.kind == "update"]
    assert len(updates) == 2     # one short UPDATE per dirty field
    db = container.database
    assert db.execute("SELECT balance FROM accounts WHERE id = 1").scalar() \
        == 500.0
    assert db.execute("SELECT owner FROM accounts WHERE id = 1").scalar() \
        == "renamed"


def test_row_store_mode_issues_single_update():
    db = make_db()
    ejb = EjbContainer(db, store_mode="row")
    ejb.deploy_entity("accounts")
    trace = InteractionTrace()
    with ejb.transaction(trace=trace):
        bean = ejb.home("accounts").find_by_primary_key(1)
        bean.balance = 500.0
        bean.owner = "renamed"
    updates = [q for q in trace.queries() if q.kind == "update"]
    assert len(updates) == 1
    assert db.execute("SELECT owner FROM accounts WHERE id = 1").scalar() \
        == "renamed"


def test_stores_flush_only_at_commit(container):
    db = container.database
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(1)
        bean.balance = 999.0
        # Not yet visible: ejbStore runs at commit.
        assert db.execute(
            "SELECT balance FROM accounts WHERE id = 1").scalar() == 100.0
    assert db.execute(
        "SELECT balance FROM accounts WHERE id = 1").scalar() == 999.0


def test_create_inserts_immediately(container):
    with container.transaction():
        bean = container.home("accounts").create(
            owner="fresh", balance=1.0, region=0)
        assert bean.primary_key == 6
        assert bean.owner == "fresh"
    assert container.database.execute(
        "SELECT COUNT(*) FROM accounts").scalar() == 6


def test_remove_deletes_row(container):
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(2)
        bean.remove()
        with pytest.raises(RuntimeError):
            __ = bean.owner
    assert container.database.execute(
        "SELECT COUNT(*) FROM accounts").scalar() == 4


def test_identity_map_within_transaction(container):
    with container.transaction():
        home = container.home("accounts")
        a = home.find_by_primary_key(1)
        b = home.find_by_primary_key(1)
        assert a is b


def test_instances_do_not_survive_transactions(container):
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(1)
        assert bean.owner == "user1"
    loads_before = container.entity_loads
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(1)
        assert bean.owner == "user1"
    assert container.entity_loads == loads_before + 1  # re-loaded


def test_entity_access_outside_transaction_rejected(container):
    with pytest.raises(RuntimeError):
        container.home("accounts").find_by_primary_key(1)


def test_pk_is_immutable(container):
    from repro.db.errors import SqlError
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(1)
        with pytest.raises(SqlError):
            bean.id = 99


def test_unknown_field_rejected(container):
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(1)
        with pytest.raises(AttributeError):
            __ = bean.ghost
        with pytest.raises(AttributeError):
            bean.ghost = 1


def test_session_facade_via_rmi_stub(container):
    class AccountFacade(SessionBean):
        def transfer(self, src, dst, amount):
            home = self.home("accounts")
            a = home.find_by_primary_key(src)
            b = home.find_by_primary_key(dst)
            a.balance = a.balance - amount
            b.balance = b.balance + amount
            return {"src": a.balance, "dst": b.balance}

    container.deploy_session("AccountFacade", AccountFacade)
    trace = InteractionTrace()
    stub = container.lookup("AccountFacade", trace=trace)
    result = stub.transfer(1, 2, 25.0)
    assert result == {"src": 75.0, "dst": 225.0}
    assert len(trace.rmi_calls()) == 1
    method, req_bytes, reply_bytes = trace.rmi_calls()[0]
    assert method == "transfer"
    assert req_bytes > 300 and reply_bytes > 300
    # Queries from inside the transaction landed on the same trace.
    assert trace.query_count() >= 4
    db = container.database
    assert db.execute("SELECT balance FROM accounts WHERE id = 1").scalar() \
        == 75.0


def test_nested_transactions_join(container):
    class Facade(SessionBean):
        def outer(self):
            with self.ejb.transaction():
                bean = self.home("accounts").find_by_primary_key(1)
                bean.balance = 1.0
            return "ok"

    container.deploy_session("F", Facade)
    stub = container.lookup("F")
    assert stub.outer() == "ok"
    assert container.database.execute(
        "SELECT balance FROM accounts WHERE id = 1").scalar() == 1.0


def test_deploy_all_entities():
    db = make_db()
    ejb = EjbContainer(db)
    ejb.deploy_all_entities()
    assert ejb.home("accounts") is not None


def test_unknown_session_bean(container):
    with pytest.raises(KeyError):
        container.lookup("Ghost")


def test_duplicate_deploys_rejected(container):
    with pytest.raises(ValueError):
        container.deploy_entity("accounts")
    container.deploy_session("X", lambda c: SessionBean(c))
    with pytest.raises(ValueError):
        container.deploy_session("X", lambda c: SessionBean(c))


def test_bad_store_mode_rejected():
    with pytest.raises(ValueError):
        EjbContainer(make_db(), store_mode="eager")
    with pytest.raises(ValueError):
        EjbContainer(make_db(), load_mode="eager")


def test_find_where_and_find_all(container):
    with container.transaction():
        home = container.home("accounts")
        rich = home.find_where("balance >= ?", (300.0,),
                               order_by="balance", descending=True)
        assert [b.primary_key for b in rich] == [5, 4, 3]
        all_beans = home.find_all(limit=2)
        assert len(all_beans) == 2


def test_field_access_counter(container):
    with container.transaction():
        bean = container.home("accounts").find_by_primary_key(1)
        __ = bean.owner
        __ = bean.balance
        bean.balance = 1.0
    assert container.field_accesses == 3


def test_stateful_session_bean_keeps_conversational_state(container):
    from repro.middleware.ejb.session import StatefulSessionBean

    class CartBean(StatefulSessionBean):
        def ejb_activate(self):
            self.items = []
            self.active = True

        def ejb_passivate(self):
            self.active = False

        def add(self, item):
            self.items.append(item)
            return len(self.items)

        def contents(self):
            return list(self.items)

    container.deploy_session("StatefulCart", CartBean)
    stub = container.create_stateful("StatefulCart")
    assert stub.add("book") == 1
    assert stub.add("cd") == 2
    assert stub.contents() == ["book", "cd"]       # state survived calls
    # A second conversation gets its own instance.
    other = container.create_stateful("StatefulCart")
    assert other.contents() == []
    container.release_stateful(stub)
    assert stub._bean.active is False


def test_stateless_lookup_gives_fresh_instance_per_lookup(container):
    class Sticky(SessionBean):
        def poke(self):
            self.touched = getattr(self, "touched", 0) + 1
            return self.touched

    container.deploy_session("Sticky", Sticky)
    assert container.lookup("Sticky").poke() == 1
    assert container.lookup("Sticky").poke() == 1  # new instance each time

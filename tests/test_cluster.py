"""Unit and property tests for the scale-out subsystem (repro.cluster):
cluster specs/naming, the load balancer, and primary/replica
replication with read-your-writes routing."""

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cluster import (
    ClusterSpec,
    DbInstance,
    LoadBalancer,
    ReplicatedDb,
    SessionState,
    clustered,
    parse_cluster_name,
    resolve_configuration,
)
from repro.faults.errors import TierDown
from repro.machine.machine import Machine
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.topology.configs import ALL_CONFIGURATIONS, Configuration

# -- spec and naming -----------------------------------------------------------


def test_cluster_name_spells_out_the_shape():
    config = clustered("Ws-Servlet-DB(sync)", web=2, gen=4, db_replicas=2)
    assert config.name == "Ws{2}-Servlet{4}-DB(sync)(1+2)"
    assert config.base_name == "Ws-Servlet-DB(sync)"
    assert config.flavor == "servlet_sync"


def test_trivial_cluster_keeps_paper_machines():
    for base in ALL_CONFIGURATIONS:
        config = clustered(base)
        assert config.cluster.trivial
        assert config.name == base.name + "(1+0)"
        assert config.machine_names() == base.machine_names()
        assert config.base_configuration == base


def test_pool_members_and_replica_names():
    config = clustered("Ws-Servlet-DB", web=2, gen=3, db_replicas=2)
    assert config.pool("web") == ["web", "web#2"]
    assert config.pool("gen") == ["servlet", "servlet#2", "servlet#3"]
    assert config.pool("db") == ["db"]          # writes: primary only
    assert config.db_replica_names() == ["db.r1", "db.r2"]
    assert config.machine_names() == [
        "web", "web#2", "servlet", "servlet#2", "servlet#3",
        "db", "db.r1", "db.r2"]


def test_colocated_pool_sized_by_web():
    config = clustered("WsPhp-DB", web=3)
    assert config.cluster.gen == 3              # auto-matched
    assert config.pool("gen") == ["web", "web#2", "web#3"]
    with pytest.raises(ValueError, match="colocates"):
        clustered("WsServlet-DB", web=3, gen=2)


def test_ejb_machine_is_never_pooled():
    config = clustered("Ws-Servlet-EJB-DB", web=2, gen=2, db_replicas=1)
    assert config.machine_names().count("ejb") == 1
    assert "ejb#2" not in config.machine_names()
    with pytest.raises(KeyError, match="cannot be pooled"):
        parse_cluster_name("Ws-Servlet-EJB{2}-DB(1+0)")


def test_cluster_name_round_trip():
    for base in ALL_CONFIGURATIONS:
        for kwargs in ({}, {"web": 2, "db_replicas": 1},
                       {"web": 2, "gen": 4, "db_replicas": 3}):
            if base.colocated("web", "gen") and "gen" in kwargs:
                continue
            config = clustered(base, **kwargs)
            parsed = parse_cluster_name(config.name)
            assert parsed.name == config.name
            assert parsed.cluster == config.cluster
            assert parsed.base_name == base.name


def test_resolve_configuration_spans_both_namespaces():
    paper = resolve_configuration("WsPhp-DB")
    assert isinstance(paper, Configuration)
    assert not hasattr(paper, "cluster")
    cluster = resolve_configuration("Ws-Servlet-DB(1+2)")
    assert cluster.cluster.db_replicas == 2
    with pytest.raises(KeyError):
        resolve_configuration("NoSuchThing")


def test_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(web=0).validate()
    with pytest.raises(ValueError):
        ClusterSpec(db_replicas=-1).validate()
    with pytest.raises(ValueError):
        ClusterSpec(web_policy="random").validate()
    ClusterSpec(web=2, gen=2, db_replicas=4).validate()


# -- load balancer units -------------------------------------------------------


def test_round_robin_rotates_and_skips_down():
    down = set()
    lb = LoadBalancer("web", ["a", "b", "c"], policy="round_robin",
                      is_up=lambda name: name not in down)
    assert [lb.pick() for __ in range(4)] == ["a", "b", "c", "a"]
    down.add("b")
    # rotation continues from where it left off, skipping the dead member
    assert [lb.pick() for __ in range(3)] == ["c", "a", "c"]


def test_least_connections_picks_emptiest():
    lb = LoadBalancer("web", ["a", "b"], policy="least_connections")
    first = lb.acquire()
    second = lb.acquire()
    assert {first, second} == {"a", "b"}
    lb.release(first)
    assert lb.pick() == first                  # the emptier one
    with pytest.raises(ValueError):
        lb.release(first)                      # idle: nothing to release


def test_affinity_sticks_until_crash_then_rebinds():
    down = set()
    lb = LoadBalancer("web", ["a", "b"], policy="affinity",
                      is_up=lambda name: name not in down)
    bound = lb.pick(session_key=7)
    assert all(lb.pick(session_key=7) == bound for __ in range(5))
    down.add(bound)
    rebound = lb.pick(session_key=7)
    assert rebound != bound
    down.clear()
    assert lb.pick(session_key=7) == rebound    # binding moved for good
    lb.forget_session(7)
    # after forget, the session binds afresh (rotation continues)
    assert lb.pick(session_key=7) in ("a", "b")


def test_all_backends_down_raises_tierdown():
    lb = LoadBalancer("web", ["a", "b"], is_up=lambda __: False)
    with pytest.raises(TierDown):
        lb.pick()


# -- balancer properties -------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 5),
       downs=st.sets(st.integers(0, 4)),
       policy=st.sampled_from(["round_robin", "least_connections",
                               "affinity"]),
       picks=st.lists(st.integers(0, 9), min_size=1, max_size=30),
       seed=st.integers(0, 2**16))
def test_balancer_never_routes_to_crashed_member(n, downs, policy,
                                                 picks, seed):
    """Whatever the policy, crash set, and session keys: a pick is
    always a live backend, or TierDown when none is live."""
    backends = [f"m{i}" for i in range(n)]
    down = {f"m{i}" for i in downs if i < n}
    lb = LoadBalancer("pool", backends, policy=policy,
                      rng=RngStreams(seed).stream("test.lb"),
                      is_up=lambda name: name not in down)
    for key in picks:
        if len(down) == n:
            with pytest.raises(TierDown):
                lb.pick(session_key=key)
        else:
            assert lb.pick(session_key=key) not in down


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.integers(0, 6), min_size=1, max_size=60),
       seed=st.integers(0, 2**16))
def test_least_connections_counts_are_conserved(ops, seed):
    """acquire/release bookkeeping: in_flight totals always equal
    outstanding acquisitions and never go negative."""
    lb = LoadBalancer("pool", ["a", "b", "c"],
                      policy="least_connections",
                      rng=RngStreams(seed).stream("test.lb"))
    held = []
    for op in ops:
        if op % 3 == 0 and held:
            lb.release(held.pop())
        else:
            held.append(lb.acquire(session_key=op))
        assert lb.total_in_flight == len(held)
        assert all(count >= 0 for count in lb.in_flight.values())
        # least-connections keeps the pool balanced within one request
        counts = sorted(lb.in_flight.values())
        assert counts[-1] - counts[0] <= 1
    for backend in held:
        lb.release(backend)
    assert lb.total_in_flight == 0


# -- replication: read-your-writes under random lag ----------------------------


def _replicated_db(sim, n_replicas, lag, apply_cost_factor=0.5):
    class _Site:
        down = set()
    primary = DbInstance(sim, Machine(sim, "db"), write_priority=True,
                         table_locks={}, is_primary=True)
    replicas = [DbInstance(sim, Machine(sim, f"db.r{i + 1}"),
                           write_priority=True)
                for i in range(n_replicas)]
    balancer = LoadBalancer(
        "db.read", [r.machine.name for r in replicas] or ["db"],
        policy="least_connections",
        rng=RngStreams(1).stream("cluster.lb.db"),
        is_up=lambda __: True)
    return ReplicatedDb(sim, _Site(), primary, replicas,
                        replication_lag=lag,
                        apply_cost_factor=apply_cost_factor,
                        balancer=balancer)


@settings(max_examples=40, deadline=None)
@given(script=st.lists(
           st.tuples(st.floats(min_value=0.0, max_value=2.0),   # gap
                     st.booleans()),                            # write?
           min_size=1, max_size=25),
       lag=st.floats(min_value=0.0, max_value=3.0),
       n_replicas=st.integers(1, 3))
def test_read_your_writes_holds_under_random_lag(script, lag, n_replicas):
    """However writes, reads, and replication lag interleave, a session
    read never lands on an instance that has not applied the session's
    last write -- and all replicas converge once the run drains."""
    sim = Simulator()
    repl = _replicated_db(sim, n_replicas, lag)
    session = SessionState(client_id=0)
    violations = []

    def driver():
        for gap, is_write in script:
            if gap:
                yield gap
            if is_write:
                repl.commit_write(session, ("items",), db_cpu=0.001)
            else:
                instance, token = repl.route_read(session)
                if instance.applied_seq < session.last_write_seq:
                    violations.append((sim.now, instance.machine.name))
                if token is not None:
                    repl.release_read(token)

    proc = sim.spawn(driver())
    horizon = sum(gap for gap, __ in script) + lag + 10.0
    sim.run(until=horizon)
    assert proc.finished
    assert not violations
    for replica in repl.replicas:
        assert replica.applied_seq == repl.commit_seq
        assert replica.applied_writes == repl.commit_seq
    assert repl.balancer.total_in_flight == 0


def test_zero_replicas_is_pure_bookkeeping():
    """The identity guarantee's core: with no replicas, commits and
    read routing schedule no events and spawn no processes."""
    sim = Simulator()
    repl = _replicated_db(sim, 0, lag=0.5)
    session = SessionState(client_id=3)
    repl.commit_write(session, ("items", "orders"), db_cpu=0.01)
    instance, token = repl.route_read(session)
    assert instance is repl.primary
    assert token is None
    assert session.last_write_seq == 1
    assert sim.events_processed == 0
    assert repl.lag_fallbacks == 0 and repl.down_fallbacks == 0


def test_lagging_replicas_fall_back_to_primary():
    sim = Simulator()
    repl = _replicated_db(sim, 2, lag=5.0)
    session = SessionState(client_id=0)
    seen = []

    def driver():
        repl.commit_write(session, ("items",), db_cpu=0.001)
        instance, token = repl.route_read(session)   # replicas lag: primary
        seen.append(instance.machine.name)
        if token is not None:
            repl.release_read(token)
        yield 6.0                                    # lag passes
        instance, token = repl.route_read(session)
        seen.append(instance.machine.name)
        if token is not None:
            repl.release_read(token)

    sim.spawn(driver())
    sim.run(until=20.0)
    assert seen[0] == "db"
    assert seen[1].startswith("db.r")
    assert repl.lag_fallbacks == 1


def test_fresh_session_reads_spread_over_replicas():
    sim = Simulator()
    repl = _replicated_db(sim, 2, lag=0.1)
    session = SessionState(client_id=0)

    def driver():
        for __ in range(10):
            instance, token = repl.route_read(session)
            assert not instance.is_primary
            repl.release_read(token)
            yield 0.01

    sim.spawn(driver())
    sim.run(until=1.0)
    assert all(r.reads_served > 0 for r in repl.replicas)

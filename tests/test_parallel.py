"""Parallel sweep runner: jobs semantics and serial equivalence.

The acceptance bar for the parallel path is *bit-identical* output: a
``jobs=4`` report must equal the ``jobs=1`` (exact legacy serial path)
report field-for-field under pinned seeds.  The equivalence tests below
run one real bookstore figure point and one real auction figure point
through both paths and compare the full dataclass trees -- throughput,
WIRT compliance, CPU-utilization samples, kernel event counts, all of it.
"""

from dataclasses import asdict, replace

import pytest

from repro.experiments.common import get_app, get_profiles
from repro.harness.experiment import ExperimentSpec, run_figure, run_sweep
from repro.harness.parallel import (
    _rehydrate_spec,
    _strip_spec,
    default_jobs,
    effective_jobs,
    parallel_map,
    run_points,
)
from repro.metrics.wirt import BOOKSTORE_WIRT_LIMITS
from repro.topology.configs import WS_PHP_DB, WS_SERVLET_DB


# ----------------------------------------------------------- jobs resolution

def test_effective_jobs_none_means_serial():
    assert effective_jobs(None, 10) == 1


def test_effective_jobs_clamps_to_task_count():
    assert effective_jobs(8, 3) == 3
    assert effective_jobs(2, 10) == 2


def test_effective_jobs_zero_means_cpu_count(monkeypatch):
    import repro.harness.parallel as par
    monkeypatch.setattr(par.os, "cpu_count", lambda: 6)
    assert effective_jobs(0, 100) == 6
    assert effective_jobs(-1, 100) == 6


def test_default_jobs_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "zebra")
    with pytest.raises(ValueError):
        default_jobs()
    monkeypatch.delenv("REPRO_JOBS")
    assert default_jobs() >= 1


# ----------------------------------------------------------- task plumbing

def _double(x):
    return 2 * x  # module-level: must be picklable for pool workers


def test_parallel_map_preserves_order():
    tasks = list(range(12))
    assert parallel_map(_double, tasks, jobs=1) == [2 * x for x in tasks]
    assert parallel_map(_double, tasks, jobs=4) == [2 * x for x in tasks]


def _bookstore_spec(**overrides):
    profiles = get_profiles("bookstore")
    app = get_app("bookstore")
    spec = ExperimentSpec(
        config=WS_SERVLET_DB,
        profile=profiles[WS_SERVLET_DB.profile_flavor],
        mix=app.mix("shopping"), clients=40,
        ramp_up=30.0, measure=60.0, ramp_down=5.0,
        ssl_interactions=app.SSL_INTERACTIONS,
        wirt_limits=dict(BOOKSTORE_WIRT_LIMITS),
        app_name="bookstore")
    return replace(spec, **overrides) if overrides else spec


def _auction_spec(**overrides):
    profiles = get_profiles("auction")
    app = get_app("auction")
    spec = ExperimentSpec(
        config=WS_PHP_DB,
        profile=profiles[WS_PHP_DB.profile_flavor],
        mix=app.mix("bidding"), clients=40,
        ramp_up=30.0, measure=60.0, ramp_down=5.0,
        ssl_interactions=app.SSL_INTERACTIONS,
        app_name="auction")
    return replace(spec, **overrides) if overrides else spec


def test_strip_and_rehydrate_roundtrip():
    spec = _bookstore_spec()
    stripped = _strip_spec(spec)
    assert stripped.profile is None
    assert stripped.app_name == "bookstore"
    restored = _rehydrate_spec(stripped)
    assert restored.profile is spec.profile  # same cached object
    # A spec with no app name is shipped whole -- nothing to strip.
    anonymous = replace(spec, app_name=None)
    assert _strip_spec(anonymous) is anonymous


def test_rehydrate_without_app_name_raises():
    spec = replace(_bookstore_spec(), profile=None, app_name=None)
    with pytest.raises(ValueError):
        _rehydrate_spec(spec)


# ------------------------------------------------- serial/parallel equality

def test_bookstore_point_jobs4_equals_jobs1():
    spec = _bookstore_spec()
    serial = run_points([spec], jobs=1)[0]
    parallel = run_points([spec], jobs=4)[0]
    assert asdict(parallel) == asdict(serial)
    # Spell out the fields the paper's figures are built from.
    assert parallel.throughput_ipm == serial.throughput_ipm
    assert asdict(parallel.cpu) == asdict(serial.cpu)
    assert parallel.wirt is not None
    assert asdict(parallel.wirt) == asdict(serial.wirt)
    assert parallel.kernel_events == serial.kernel_events


def test_auction_point_jobs4_equals_jobs1():
    spec = _auction_spec()
    serial = run_points([spec], jobs=1)[0]
    parallel = run_points([spec], jobs=4)[0]
    assert asdict(parallel) == asdict(serial)
    assert parallel.throughput_ipm == serial.throughput_ipm
    assert asdict(parallel.cpu) == asdict(serial.cpu)


def test_run_sweep_jobs_parity_and_order():
    base = _bookstore_spec()
    counts = (20, 40)
    serial = run_sweep(base, counts, jobs=1)
    parallel = run_sweep(base, counts, jobs=4)
    assert asdict(parallel) == asdict(serial)
    assert [p.clients for p in parallel.points] == list(counts)


def test_run_figure_jobs_parity_and_series_order():
    book = _bookstore_spec()
    php = replace(book, config=WS_PHP_DB,
                  profile=get_profiles("bookstore")[WS_PHP_DB.profile_flavor])
    specs = {WS_SERVLET_DB.name: book, WS_PHP_DB.name: php}
    counts = {WS_SERVLET_DB.name: (20,), WS_PHP_DB.name: (20, 40)}
    serial = run_figure("t", "bookstore/shopping", specs, counts, jobs=1)
    parallel = run_figure("t", "bookstore/shopping", specs, counts, jobs=3)
    assert asdict(parallel) == asdict(serial)
    assert list(parallel.series) == list(serial.series)

"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Delay, Event, Interrupt, Simulator
from repro.sim.kernel import SimulationError


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_callback_runs_at_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_callbacks_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_callbacks_run_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_yield_delay():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 2.5
        trace.append(sim.now)
        yield Delay(1.5)
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [0.0, 2.5, 4.0]


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield 1.0
        return 99

    p = sim.spawn(proc())
    sim.run()
    assert p.finished
    assert p.result == 99


def test_process_waits_on_event_and_gets_value():
    sim = Simulator()
    got = []
    ev = sim.event()

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    def firer():
        yield 3.0
        ev.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [(3.0, "payload")]


def test_waiting_on_already_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(7)
    got = []

    def proc():
        value = yield ev
        got.append(value)

    sim.spawn(proc())
    sim.run()
    assert got == [7]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()


def test_process_join():
    sim = Simulator()
    log = []

    def child():
        yield 5.0
        return "done"

    def parent():
        result = yield sim.spawn(child())
        log.append((sim.now, result))

    sim.spawn(parent())
    sim.run()
    assert log == [(5.0, "done")]


def test_join_already_finished_process():
    sim = Simulator()
    log = []

    def child():
        yield 1.0
        return 42

    child_proc = sim.spawn(child())

    def parent():
        yield 10.0
        result = yield child_proc
        log.append((sim.now, result))

    sim.spawn(parent())
    sim.run()
    assert log == [(10.0, 42)]


def test_interrupt_while_sleeping():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    victim = sim.spawn(sleeper())

    def killer():
        yield 2.0
        victim.interrupt("wake up")

    sim.spawn(killer())
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_while_on_event():
    sim = Simulator()
    ev = sim.event()
    log = []

    def waiter():
        try:
            yield ev
        except Interrupt:
            log.append(sim.now)

    victim = sim.spawn(waiter())

    def killer():
        yield 1.0
        victim.interrupt()

    sim.spawn(killer())
    sim.run()
    assert log == [1.0]
    # The interrupted process must not be resumed again if the event fires.
    ev.trigger()
    sim.run()
    assert log == [1.0]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def proc():
        yield 1.0

    p = sim.spawn(proc())
    sim.run()
    p.interrupt()  # must not raise


def test_run_until_bound():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_run_until_advances_time_even_with_empty_heap():
    sim = Simulator()
    sim.run(until=30.0)
    assert sim.now == 30.0


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_yield_bad_value_raises():
    sim = Simulator()

    def proc():
        yield "not a waitable"

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_all_detects_deadlock():
    sim = Simulator()
    ev = sim.event()

    def stuck():
        yield ev

    p = sim.spawn(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_all([p])


def test_many_processes_fifo_and_flat_stack():
    sim = Simulator()
    ev = sim.event()
    order = []

    def waiter(i):
        yield ev
        order.append(i)

    for i in range(5000):
        sim.spawn(waiter(i))

    def firer():
        yield 1.0
        ev.trigger()

    sim.spawn(firer())
    sim.run()
    assert order == list(range(5000))


def test_nested_spawn_cascade():
    sim = Simulator()
    depth_reached = []

    def recurse(depth):
        if depth == 0:
            depth_reached.append(sim.now)
            return
        yield 1.0
        yield sim.spawn(recurse(depth - 1))

    sim.spawn(recurse(50))
    sim.run()
    assert depth_reached == [50.0]


def test_timeout_event_fires():
    sim = Simulator()
    ev = sim.timeout_event(4.0)
    seen = []

    def proc():
        yield ev
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [4.0]


# -- interrupt vs pending timeouts (regression: stale heap entries) -----------


def test_interrupt_during_timeout_resumes_exactly_once():
    """An interrupted sleeper's pending timeout is cancelled: it must not
    be woken a second time when the stale heap entry surfaces."""
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield 10.0
            resumes.append(("woke", sim.now))
        except Interrupt:
            resumes.append(("interrupted", sim.now))
            yield 1.0
            resumes.append(("slept-again", sim.now))

    proc = sim.spawn(sleeper())

    def killer():
        yield 2.0
        assert proc.interrupt("chaos")

    sim.spawn(killer())
    sim.run()
    assert resumes == [("interrupted", 2.0), ("slept-again", 3.0)]
    assert proc.finished
    # The stale 10 s entry was skipped without advancing virtual time.
    assert sim.now == 3.0


def test_stale_timeout_does_not_cut_a_newer_wait_short():
    sim = Simulator()
    wake = []

    def sleeper():
        try:
            yield 10.0
        except Interrupt:
            yield 20.0          # newer, longer wait
            wake.append(sim.now)

    proc = sim.spawn(sleeper())

    def killer():
        yield 2.0
        proc.interrupt()

    sim.spawn(killer())
    sim.run()
    # The dead 10 s entry must not wake the process at t=10.
    assert wake == [22.0]


def test_interrupt_of_completed_process_returns_false():
    sim = Simulator()

    def quick():
        yield 1.0

    proc = sim.spawn(quick())
    sim.run()
    assert proc.finished
    assert proc.interrupt("late") is False
    sim.run()
    assert sim.quiescent()


def test_interrupt_of_ready_process_returns_false():
    """A process sitting on the ready queue (spawned, not yet run) cannot
    take an interrupt -- callers get False and may re-arm."""
    sim = Simulator()

    def sleeper():
        yield 1.0

    proc = sim.spawn(sleeper())
    assert proc.interrupt("too-early") is False   # still on the ready queue
    sim.run()
    assert proc.finished


def test_quiescent_reflects_pending_and_stale_work():
    sim = Simulator()
    assert sim.quiescent()                        # fresh kernel

    def sleeper():
        try:
            yield 10.0
        except Interrupt:
            return

    proc = sim.spawn(sleeper())
    assert not sim.quiescent()                    # ready queue occupied
    sim.run(until=1.0)
    assert not sim.quiescent()                    # live timeout at t=10

    def killer():
        yield 2.0
        proc.interrupt()

    sim.spawn(killer())
    sim.run(until=5.0)
    assert proc.finished
    # The heap still holds the sleeper's cancelled t=10 entry; it is
    # stale, so the kernel is quiescent anyway.
    assert sim._heap
    assert sim.quiescent()

    sim.schedule(1.0, lambda: None)
    assert not sim.quiescent()                    # real callback pending
    sim.run()
    assert sim.quiescent()


def test_cancelled_timeout_leaves_no_live_heap_entry():
    """Lazy deletion: interrupting a timed wait clears the process's
    timeout key, so the stale heap entry is skipped without resuming
    anyone and without perturbing virtual time ordering."""
    sim = Simulator()
    wakeups = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt:
            wakeups.append(("interrupt", sim.now))

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, lambda: proc.interrupt())
    sim.run(until=2.0)
    assert wakeups == [("interrupt", 1.0)]
    # The stale entry may still sit in the heap, but it is dead: no
    # process claims its key, so the kernel reports quiescence.
    assert proc._timeout_key is None
    assert all(
        entry[3] is None or entry[3]._timeout_key != entry[1]
        for entry in sim._heap)
    assert sim.quiescent()
    # Draining past the stale entry's deadline must not resume anything.
    before = sim.events_processed
    sim.run(until=200.0)
    assert sim.events_processed == before


def test_new_timeout_after_interrupt_ignores_stale_entry():
    """A process that re-sleeps after an interrupt gets a fresh key;
    the old heap entry popping first must not wake it early."""
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield 50.0        # key A: deadline 50
        except Interrupt:
            trace.append(("interrupted", sim.now))
        yield 100.0           # key B: deadline 101, after stale A pops
        trace.append(("woke", sim.now))

    proc = sim.spawn(sleeper())
    sim.schedule(1.0, lambda: proc.interrupt())
    sim.run()
    assert trace == [("interrupted", 1.0), ("woke", 101.0)]


def test_events_processed_counts_resumes():
    sim = Simulator()

    def proc():
        yield 1.0
        yield 1.0

    sim.spawn(proc())
    sim.run()
    # Initial spawn resume plus two timeout wakeups.
    assert sim.events_processed == 3

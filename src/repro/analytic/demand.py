"""Expected per-interaction service demands, per machine.

Mirrors the charging rules of :class:`repro.topology.simulation.SimulatedSite`
analytically: for a (configuration, profile, mix) triple it computes the
mix-weighted mean CPU seconds each machine spends per interaction, and
the mean bytes each NIC moves.  ``tests/test_analytic.py`` locks the two
implementations together by comparing DES utilizations against these
demands at moderate load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.harness.profiles import AppProfile, InteractionVariant
from repro.middleware.ejb.container import EjbCosts
from repro.middleware.ejb.session import RmiCosts
from repro.middleware.phpmod.module import PhpCosts
from repro.middleware.servlet.ajp import AjpCosts
from repro.middleware.servlet.engine import ServletCosts
from repro.db.driver import (
    EJB_JDBC_OVERHEADS,
    JDBC_OVERHEADS,
    NATIVE_OVERHEADS,
)
from repro.topology.configs import Configuration
from repro.topology.simulation import SimCosts
from repro.web.server import WebServerConfig


@dataclass
class DemandTable:
    """Mean seconds of CPU per interaction, keyed by machine name, plus
    NIC byte flows keyed by (src, dst) machine names."""

    config_name: str
    cpu_seconds: Dict[str, float] = field(default_factory=dict)
    wire_bytes: Dict[tuple, float] = field(default_factory=dict)

    def add_cpu(self, machine: str, seconds: float) -> None:
        self.cpu_seconds[machine] = self.cpu_seconds.get(machine, 0.0) \
            + seconds

    def add_wire(self, src: str, dst: str, nbytes: float) -> None:
        if src == dst:
            return
        key = (src, dst)
        self.wire_bytes[key] = self.wire_bytes.get(key, 0.0) + nbytes

    def bottleneck(self) -> str:
        return max(self.cpu_seconds, key=self.cpu_seconds.get)

    def max_throughput(self) -> float:
        """Saturation throughput (interactions/second) from CPU demands."""
        return 1.0 / max(self.cpu_seconds.values())

    def nic_tx_bytes(self, machine: str) -> float:
        return sum(v for (src, __), v in self.wire_bytes.items()
                   if src == machine)


def _variant_demand(table: DemandTable, config: Configuration,
                    variant: InteractionVariant, weight: float,
                    ssl: bool, web_cfg: WebServerConfig, php: PhpCosts,
                    servlet: ServletCosts, ejb: EjbCosts, ajp: AjpCosts,
                    rmi: RmiCosts, sim_costs: SimCosts) -> None:
    web = config.machine_of("web")
    gen = config.machine_of("gen")
    db = config.machine_of("db")
    ejb_machine = config.placement.get("ejb")
    db_client = ejb_machine if config.flavor == "ejb" else gen
    if config.flavor == "php":
        driver = NATIVE_OVERHEADS
    elif config.flavor == "ejb":
        driver = EJB_JDBC_OVERHEADS
    else:
        driver = JDBC_OVERHEADS
    w = weight

    # Web front end.
    web_cpu = (web_cfg.per_request_cpu +
               sim_costs.request_bytes * web_cfg.per_net_byte_cpu)
    if ssl:
        web_cpu += web_cfg.per_ssl_request_cpu
    web_cpu += (variant.response_bytes + variant.image_bytes) * \
        web_cfg.per_net_byte_cpu + \
        variant.image_count * web_cfg.per_static_hit_cpu
    table.add_cpu(web, w * web_cpu)
    table.add_wire("clients", web, w * (
        sim_costs.request_bytes +
        variant.image_count * sim_costs.image_request_bytes))
    table.add_wire(web, "clients",
                   w * (variant.response_bytes + variant.image_bytes))

    # Generator.
    if config.flavor == "php":
        table.add_cpu(gen, w * (
            php.per_request +
            variant.response_bytes * php.per_output_byte +
            variant.query_count * php.per_query_call))
    else:
        request_ipc = ajp.request_overhead_bytes + 80
        reply_ipc = ajp.reply_overhead_bytes + variant.response_bytes
        crossing = (2 * ajp.per_message +
                    (request_ipc + reply_ipc) * ajp.per_byte)
        table.add_cpu(web, w * crossing)
        table.add_cpu(gen, w * crossing)
        table.add_wire(web, gen, w * request_ipc)
        table.add_wire(gen, web, w * reply_ipc)
        gen_cpu = (servlet.per_request +
                   variant.response_bytes * servlet.per_output_byte)
        if config.flavor != "ejb":
            gen_cpu += variant.query_count * servlet.per_query_call
        table.add_cpu(gen, w * gen_cpu)

    # Steps.
    for step in variant.steps:
        kind = step[0]
        if kind == "query":
            __, db_cpu, request_bytes, reply_bytes, __r, __w, count = step
            table.add_cpu(db_client, w * (
                count * driver.per_call +
                reply_bytes * driver.per_result_byte))
            table.add_cpu(db, w * db_cpu)
            table.add_wire(db_client, db, w * request_bytes)
            table.add_wire(db, db_client, w * reply_bytes)
        elif kind in ("lock", "unlock"):
            table.add_cpu(db, w * sim_costs.db_lock_statement_cpu)
        elif kind == "sync_acquire":
            table.add_cpu(gen, w * len(step[1]) * servlet.per_sync_lock)
        elif kind == "rmi":
            __, request_bytes, reply_bytes = step
            each = (2 * rmi.per_call +
                    (request_bytes + reply_bytes) * rmi.per_byte)
            table.add_cpu(gen, w * each)
            table.add_cpu(ejb_machine, w * each)
            table.add_wire(gen, ejb_machine, w * request_bytes)
            table.add_wire(ejb_machine, gen, w * reply_bytes)
        elif kind == "ejb_work":
            __, loads, stores, fields = (step[0], step[1], step[2], step[3])
            table.add_cpu(ejb_machine, w * (
                ejb.per_method + loads * ejb.per_entity_load +
                stores * ejb.per_entity_store +
                fields * ejb.per_field_access))


def expected_demands(config: Configuration, profile: AppProfile,
                     mix: Dict[str, float],
                     ssl_interactions: frozenset = frozenset(),
                     web_cfg: WebServerConfig = None,
                     php: PhpCosts = None, servlet: ServletCosts = None,
                     ejb: EjbCosts = None, ajp: AjpCosts = None,
                     rmi: RmiCosts = None,
                     sim_costs: SimCosts = None) -> DemandTable:
    """Mix-weighted mean demands per machine for one configuration."""
    web_cfg = web_cfg or WebServerConfig()
    php = php or PhpCosts()
    servlet = servlet or ServletCosts()
    ejb = ejb or EjbCosts()
    ajp = ajp or AjpCosts()
    rmi = rmi or RmiCosts()
    sim_costs = sim_costs or SimCosts()
    total_weight = sum(mix.values())
    table = DemandTable(config_name=config.name)
    for name, weight in mix.items():
        interaction = profile.profile(name)
        if not interaction.variants:
            continue
        w = (weight / total_weight) / len(interaction.variants)
        for variant in interaction.variants:
            _variant_demand(table, config, variant, w,
                            name in ssl_interactions, web_cfg, php,
                            servlet, ejb, ajp, rmi, sim_costs)
    return table

"""Operational bounds analysis for closed networks.

Asymptotic bounds (Denning & Buzen) complement MVA: from nothing but
the service demands they bracket every possible throughput curve,

    X(N) <= min(N / (Z + R0), 1 / Dmax)
    X(N) >= N / (Z + N * R0)            (pessimistic, no overlap)

with ``R0 = sum of demands``, ``Dmax`` the bottleneck demand and ``Z``
the think time, and they locate the knee population

    N* = (Z + R0) / Dmax

-- the client count where a configuration *must* start saturating.  The
paper's figures bend exactly there (e.g. WsPhp-DB on the auction
bidding mix has N* near the 1,100 clients at which it peaks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BoundsPoint:
    clients: int
    lower: float           # interactions/second
    upper: float


@dataclass(frozen=True)
class OperationalBounds:
    """Bounds derived from demands + think time."""

    demands: Dict[str, float]
    think_time: float

    @property
    def total_demand(self) -> float:
        return sum(self.demands.values())

    @property
    def bottleneck_demand(self) -> float:
        return max(self.demands.values())

    @property
    def bottleneck(self) -> str:
        return max(self.demands, key=self.demands.get)

    @property
    def saturation_throughput(self) -> float:
        """1 / Dmax, in interactions per second."""
        return 1.0 / self.bottleneck_demand

    @property
    def knee_population(self) -> float:
        """N*: the population where the two upper bounds cross."""
        return (self.think_time + self.total_demand) / \
            self.bottleneck_demand

    def upper(self, clients: int) -> float:
        return min(clients / (self.think_time + self.total_demand),
                   self.saturation_throughput)

    def lower(self, clients: int) -> float:
        return clients / (self.think_time + clients * self.total_demand)

    def curve(self, client_counts) -> List[BoundsPoint]:
        return [BoundsPoint(n, self.lower(n), self.upper(n))
                for n in sorted(client_counts)]


def bounds_for(table, think_time: float = 7.0) -> OperationalBounds:
    """Bounds from a :class:`~repro.analytic.demand.DemandTable`."""
    if not table.cpu_seconds:
        raise ValueError("demand table has no CPU demands")
    if think_time < 0:
        raise ValueError("think time must be >= 0")
    return OperationalBounds(demands=dict(table.cpu_seconds),
                             think_time=think_time)

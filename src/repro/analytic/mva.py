"""Exact Mean Value Analysis for the closed queueing network.

Stations are the machines' CPUs (queueing centers) plus the clients'
think time (a delay center).  Single-class exact MVA:

    R_k(n) = D_k * (1 + Q_k(n - 1))
    X(n)   = n / (Z + sum_k R_k(n))
    Q_k(n) = X(n) * R_k(n)

MVA captures the saturation curves of CPU-bound workloads (the auction
site, the bookstore browsing mix) but -- by construction -- not database
lock contention; comparing MVA to the DES quantifies how much of each
configuration's behaviour is queueing versus locking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analytic.demand import DemandTable


@dataclass
class MvaResult:
    """Solution at one population size."""

    clients: int
    throughput: float                 # interactions per second
    response_time: float
    utilization: Dict[str, float]
    queue_lengths: Dict[str, float]

    @property
    def throughput_ipm(self) -> float:
        return self.throughput * 60.0


def solve_mva(demands: Dict[str, float], clients: int,
              think_time: float = 7.0) -> MvaResult:
    """Exact single-class MVA up to ``clients`` customers."""
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if think_time < 0:
        raise ValueError("think time must be >= 0")
    stations = list(demands)
    queue = {k: 0.0 for k in stations}
    throughput = 0.0
    response = 0.0
    for n in range(1, clients + 1):
        residence = {k: demands[k] * (1.0 + queue[k]) for k in stations}
        response = sum(residence.values())
        throughput = n / (think_time + response)
        queue = {k: throughput * residence[k] for k in stations}
    utilization = {k: min(1.0, throughput * demands[k]) for k in stations}
    return MvaResult(clients=clients, throughput=throughput,
                     response_time=response, utilization=utilization,
                     queue_lengths=queue)


def throughput_curve(table: DemandTable, client_counts,
                     think_time: float = 7.0) -> List[MvaResult]:
    """MVA throughput at each population in ``client_counts``."""
    results = []
    for n in sorted(client_counts):
        results.append(solve_mva(dict(table.cpu_seconds), n, think_time))
    return results

"""Analytic performance models: service demands and closed-network MVA.

These provide a fast, queueing-theoretic cross-check on the simulator:
for workloads without lock contention the DES and MVA must agree (a
consistency test enforces this), and demand tables explain *why* each
configuration saturates where it does.
"""

from repro.analytic.bounds import OperationalBounds, bounds_for
from repro.analytic.demand import DemandTable, expected_demands
from repro.analytic.mva import MvaResult, solve_mva, throughput_curve

__all__ = ["DemandTable", "expected_demands", "MvaResult", "solve_mva",
           "throughput_curve", "OperationalBounds", "bounds_for"]

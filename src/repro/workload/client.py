"""The client-browser emulator.

Per the paper (and TPC-W clauses 5.3.1.1 / 6.2.1.2):

* a fixed number of emulated clients run concurrent sessions;
* think time between interactions is negative-exponential, mean 7 s;
* session duration is negative-exponential, mean 15 min -- when a
  session ends a new one begins immediately (the client count is the
  controlled variable);
* the next interaction is drawn from the workload mix's transition
  probabilities.

Each client is one simulator process; the site under test is any object
with a ``perform(client_id, interaction_name, sim_process_context)``
generator method (the topology layer provides it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class ThinkTimeSpec:
    """Think/session time parameters (seconds)."""

    think_mean: float = 7.0
    session_mean: float = 900.0


@dataclass
class ClientStats:
    """Counts gathered by the population; windowed by the experiment."""

    interactions_completed: int = 0
    interactions_started: int = 0
    sessions_started: int = 0
    per_interaction: Dict[str, int] = field(default_factory=dict)
    response_time_sum: float = 0.0
    # Per-interaction response-time samples, for WIRT-style percentile
    # constraints (TPC-W clause 5.1).
    response_times: Dict[str, list] = field(default_factory=dict)

    def completed_in_window(self) -> int:
        return self.interactions_completed

    def record(self, name: str, response_time: float) -> None:
        self.interactions_completed += 1
        self.response_time_sum += response_time
        self.per_interaction[name] = self.per_interaction.get(name, 0) + 1
        self.response_times.setdefault(name, []).append(response_time)

    def mean_response_time(self) -> float:
        if not self.interactions_completed:
            return 0.0
        return self.response_time_sum / self.interactions_completed

    def percentile(self, name: str, fraction: float = 0.9) -> Optional[float]:
        """The ``fraction`` response-time percentile of one interaction
        (None if it never completed in the window)."""
        samples = self.response_times.get(name)
        if not samples:
            return None
        ordered = sorted(samples)
        index = min(len(ordered) - 1,
                    max(0, int(fraction * len(ordered)) - 1))
        return ordered[index]


class ClientPopulation:
    """Spawns and drives ``n_clients`` closed-loop clients."""

    def __init__(self, sim: Simulator, n_clients: int,
                 mix: Dict[str, float],
                 site,                      # object with .perform(...)
                 rng: RngStreams,
                 choose: Callable,          # choose(mix, rng) -> name
                 think: Optional[ThinkTimeSpec] = None):
        if n_clients < 1:
            raise ValueError("need at least one client")
        self.sim = sim
        self.n_clients = n_clients
        self.mix = mix
        self.site = site
        self.rng = rng
        self.choose = choose
        self.think = think or ThinkTimeSpec()
        self.stats = ClientStats()
        self.recording = False
        self._procs = []

    def start(self) -> None:
        for client_id in range(self.n_clients):
            proc = self.sim.spawn(self._client(client_id),
                                  name=f"client{client_id}")
            self._procs.append(proc)

    def _client(self, client_id: int):
        sim = self.sim
        rng = self.rng.stream(f"client.{client_id}")
        think_mean = self.think.think_mean
        session_mean = self.think.session_mean
        # Stagger arrivals over one mean think time to avoid a thundering
        # herd at t=0.
        yield rng.random() * think_mean
        while True:
            self.stats.sessions_started += 1
            session_end = sim.now + rng.expovariate(1.0 / session_mean)
            self.site.new_session(client_id, rng)
            while sim.now < session_end:
                name = self.choose(self.mix, rng)
                started = sim.now
                self.stats.interactions_started += 1
                yield from self.site.perform(client_id, name, rng)
                if self.recording:
                    self.stats.record(name, sim.now - started)
                yield rng.expovariate(1.0 / think_mean)

    def begin_measurement(self) -> None:
        """Zero the counters and start recording (end of ramp-up)."""
        self.stats = ClientStats()
        self.recording = True

    def end_measurement(self) -> ClientStats:
        self.recording = False
        return self.stats

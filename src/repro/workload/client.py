"""The client-browser emulator.

Per the paper (and TPC-W clauses 5.3.1.1 / 6.2.1.2):

* a fixed number of emulated clients run concurrent sessions;
* think time between interactions is negative-exponential, mean 7 s;
* session duration is negative-exponential, mean 15 min -- when a
  session ends a new one begins immediately (the client count is the
  controlled variable);
* the next interaction is drawn from the workload mix's transition
  probabilities.

Each client is one simulator process; the site under test is any object
with a ``perform(client_id, interaction_name, sim_process_context)``
generator method (the topology layer provides it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.faults.errors import AdmissionReject, RequestError, TierDown
from repro.sim.kernel import Interrupt, Simulator
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class ThinkTimeSpec:
    """Think/session time parameters (seconds)."""

    think_mean: float = 7.0
    session_mean: float = 900.0

    def __post_init__(self):
        if self.think_mean <= 0:
            raise ValueError(f"think_mean must be positive, "
                             f"got {self.think_mean}")
        if self.session_mean <= 0:
            raise ValueError(f"session_mean must be positive, "
                             f"got {self.session_mean}")


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side robustness: per-attempt deadlines, jittered
    exponential backoff, and a bounded per-session retry budget.

    When a population has no policy (the default), interactions run on
    the exact legacy code path -- no extra processes, no extra RNG draws
    -- so steady-state results are untouched.
    """

    # Abort an attempt that has not answered within this many seconds
    # (None disables the watchdog).
    deadline: Optional[float] = 8.0
    # Additional attempts after the first failed one.
    max_retries: int = 3
    # Backoff before retry k is base * 2**(k-1), capped, then jittered
    # uniformly over [0.5x, 1.5x].
    backoff_base: float = 0.5
    backoff_cap: float = 10.0
    # Total retries one session may spend before failures are abandoned
    # immediately (a dead site must not be retried forever).
    retry_budget: int = 50

    def __post_init__(self):
        # A nonsense policy must fail here, loudly, not produce a silent
        # no-retry (or retry-forever) schedule deep inside a run.
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive (or None to "
                             f"disable), got {self.deadline}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, "
                             f"got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, "
                             f"got {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, "
                             f"got {self.backoff_cap}")
        if self.retry_budget < 1:
            raise ValueError(f"retry_budget must be >= 1 (a zero budget "
                             f"silently disables every retry; use "
                             f"max_retries=0 for that), "
                             f"got {self.retry_budget}")


@dataclass
class ClientStats:
    """Counts gathered by the population; windowed by the experiment."""

    interactions_completed: int = 0
    interactions_started: int = 0
    sessions_started: int = 0
    per_interaction: Dict[str, int] = field(default_factory=dict)
    response_time_sum: float = 0.0
    # Per-interaction response-time samples, for WIRT-style percentile
    # constraints (TPC-W clause 5.1).
    response_times: Dict[str, list] = field(default_factory=dict)
    # Error accounting (only populated when a RetryPolicy is active):
    # deadline expiries, mid-flight aborts (faults / transient DB
    # errors), fast rejections (503s, connection refused), retries
    # spent, and interactions abandoned after the budget ran out.
    timeouts: int = 0
    aborts: int = 0
    rejections: int = 0
    retries: int = 0
    abandoned: int = 0

    def completed_in_window(self) -> int:
        return self.interactions_completed

    def record_error(self, kind: str) -> None:
        if kind == "timeout":
            self.timeouts += 1
        elif kind == "rejection":
            self.rejections += 1
        else:
            self.aborts += 1

    @property
    def errors(self) -> int:
        return self.timeouts + self.aborts + self.rejections

    def record(self, name: str, response_time: float) -> None:
        self.interactions_completed += 1
        self.response_time_sum += response_time
        self.per_interaction[name] = self.per_interaction.get(name, 0) + 1
        self.response_times.setdefault(name, []).append(response_time)

    def mean_response_time(self) -> float:
        if not self.interactions_completed:
            return 0.0
        return self.response_time_sum / self.interactions_completed

    def percentile(self, name: str, fraction: float = 0.9) -> Optional[float]:
        """The ``fraction`` response-time percentile of one interaction
        (None if it never completed in the window)."""
        samples = self.response_times.get(name)
        if not samples:
            return None
        ordered = sorted(samples)
        index = min(len(ordered) - 1,
                    max(0, int(fraction * len(ordered)) - 1))
        return ordered[index]


class ClientPopulation:
    """Spawns and drives ``n_clients`` closed-loop clients."""

    def __init__(self, sim: Simulator, n_clients: int,
                 mix: Dict[str, float],
                 site,                      # object with .perform(...)
                 rng: RngStreams,
                 choose: Callable,          # choose(mix, rng) -> name
                 think: Optional[ThinkTimeSpec] = None,
                 retry: Optional[RetryPolicy] = None):
        if n_clients < 1:
            raise ValueError("need at least one client")
        self.sim = sim
        self.n_clients = n_clients
        self.mix = mix
        self.site = site
        self.rng = rng
        self.choose = choose
        self.think = think or ThinkTimeSpec()
        self.retry = retry
        self.stats = ClientStats()
        self.recording = False
        self._procs = []

    def start(self) -> None:
        for client_id in range(self.n_clients):
            proc = self.sim.spawn(self._client(client_id),
                                  name=f"client{client_id}")
            self._procs.append(proc)

    def _client(self, client_id: int):
        sim = self.sim
        rng = self.rng.stream(f"client.{client_id}")
        think_mean = self.think.think_mean
        session_mean = self.think.session_mean
        retry = self.retry
        # Session-end hook: clustered sites drop the session's sticky
        # balancer bindings here (duck-typed so bare test doubles with
        # only perform()/new_session() keep working).
        end_session = getattr(self.site, "end_session", None)
        try:
            # Stagger arrivals over one mean think time to avoid a
            # thundering herd at t=0.
            yield rng.random() * think_mean
            while True:
                self.stats.sessions_started += 1
                session_end = sim.now + rng.expovariate(1.0 / session_mean)
                self.site.new_session(client_id, rng)
                budget = retry.retry_budget if retry else 0
                while sim.now < session_end:
                    name = self.choose(self.mix, rng)
                    started = sim.now
                    self.stats.interactions_started += 1
                    if retry is None:
                        yield from self.site.perform(client_id, name, rng)
                        ok = True
                    else:
                        ok, budget = yield from self._perform_with_retries(
                            client_id, name, rng, retry, budget)
                    if ok and self.recording:
                        self.stats.record(name, sim.now - started)
                    yield rng.expovariate(1.0 / think_mean)
                if end_session is not None:
                    end_session(client_id)
        except Interrupt:
            # stop() tears the population down at end of run.
            return

    # -- resilience: attempts, deadlines, retries ----------------------------

    def _attempt(self, client_id: int, name: str, rng, outcome: list):
        """One attempt as its own process: failures become data, not
        exceptions escaping into the kernel."""
        try:
            yield from self.site.perform(client_id, name, rng)
            outcome.append("ok")
        except Interrupt as exc:
            outcome.append("timeout" if exc.cause == "deadline" else "abort")
        except (AdmissionReject, TierDown):
            outcome.append("rejection")
        except RequestError:
            outcome.append("abort")

    def _arm_deadline(self, proc, deadline: float) -> None:
        """Interrupt ``proc`` with cause "deadline" once it expires.
        Re-arms at the same instant if the process briefly sat on the
        ready queue (where interrupts cannot land)."""
        sim = self.sim

        def fire(tries: int) -> None:
            if proc.finished:
                return
            if not proc.interrupt("deadline") and tries > 0:
                sim.schedule(0.0, lambda: fire(tries - 1))

        sim.timeout_event(deadline).add_callback(lambda __: fire(3))

    def _perform_with_retries(self, client_id: int, name: str, rng,
                              retry: RetryPolicy, budget: int):
        """Returns (succeeded, remaining_budget) via StopIteration."""
        sim = self.sim
        attempt = 0
        while True:
            outcome: list = []
            proc = sim.spawn(
                self._attempt(client_id, name, rng, outcome),
                name=f"attempt.{client_id}.{name}")
            if retry.deadline is not None:
                self._arm_deadline(proc, retry.deadline)
            yield proc
            kind = outcome[0] if outcome else "abort"
            if kind == "ok":
                return True, budget
            if self.recording:
                self.stats.record_error(kind)
            if attempt >= retry.max_retries or budget <= 0:
                if self.recording:
                    self.stats.abandoned += 1
                return False, budget
            attempt += 1
            budget -= 1
            if self.recording:
                self.stats.retries += 1
            pause = min(retry.backoff_cap,
                        retry.backoff_base * (2 ** (attempt - 1)))
            yield pause * (0.5 + rng.random())

    def stop(self) -> None:
        """Interrupt every client so a bounded run can drain to a
        quiescent kernel (used by tests and the failover experiment)."""
        for proc in self._procs:
            if not proc.finished:
                proc.interrupt("stop")

    def begin_measurement(self) -> None:
        """Zero the counters and start recording (end of ramp-up)."""
        self.stats = ClientStats()
        self.recording = True

    def end_measurement(self) -> ClientStats:
        self.recording = False
        return self.stats

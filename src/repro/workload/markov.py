"""Interaction selection from a workload mix.

Both benchmarks draw the next interaction from a transition model whose
stationary distribution equals the mix's declared frequencies; with
memoryless rows (every state shares the same transition vector) the draw
reduces to sampling the frequencies directly, which is what the paper's
mixes specify (TPC-W tables give exactly these stationary percentages).
"""

from __future__ import annotations

import random
from typing import Dict


def choose_interaction(mix: Dict[str, float], rng: random.Random) -> str:
    """Draw one interaction name proportionally to its mix weight."""
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("mix has no positive weights")
    pick = rng.random() * total
    acc = 0.0
    for name, weight in mix.items():
        acc += weight
        if pick <= acc:
            return name
    return next(reversed(mix))


def stationary_distribution(mix: Dict[str, float]) -> Dict[str, float]:
    """The normalized mix (the Markov chain's stationary distribution)."""
    total = sum(mix.values())
    return {name: weight / total for name, weight in mix.items()}

"""Closed-loop client emulation in virtual time."""

from repro.workload.client import ClientPopulation, ClientStats, ThinkTimeSpec

__all__ = ["ClientPopulation", "ClientStats", "ThinkTimeSpec"]

"""PHP-analogue: scripts executing inside the web server process."""

from repro.middleware.phpmod.module import PhpModule, PhpScript

__all__ = ["PhpModule", "PhpScript"]

"""The PHP module: in-process scripts over a native database driver.

Structural properties reproduced from the paper:

* scripts run in the web server's address space -> zero IPC between the
  web server and the generator, and the generator *must* be co-located
  with the web server (`requires_colocation`);
* the database driver is the native one (cheap calls);
* locking is always done in the database (`LOCK TABLES`): System-V
  semaphore locking exists in PHP but the paper explicitly does not use
  it, so the module rejects a sync policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.db.driver import NativeDriver
from repro.db.engine import Database
from repro.middleware.context import AppContext, LockingPolicy
from repro.middleware.trace import InteractionTrace
from repro.web.http import HttpRequest, HttpResponse


@dataclass(frozen=True)
class PhpCosts:
    """CPU prices of the interpreter, charged to the web server machine."""

    # PHP4 without an opcode cache re-parses the script on every hit,
    # so the per-request price dominates.
    per_request: float = 3.5e-3       # interpreter startup + script parse
    per_query_call: float = 0.12e-3   # native driver call
    per_output_byte: float = 120.0e-9  # interpreted string assembly
    # Serving the degraded/static fallback page under load shedding
    # (repro.overload): no script parse, no database work.
    per_degraded_script: float = 0.25e-3


@dataclass
class PhpScript:
    """A registered script: path plus the page function."""

    path: str
    handler: Callable[[AppContext], HttpResponse]


class PhpModule:
    """mod_php: a script registry bound to a database via native driver."""

    name = "php"
    requires_colocation = True
    costs = PhpCosts()

    def __init__(self, database: Database):
        self.database = database
        self.driver = NativeDriver(database)
        self.scripts: Dict[str, PhpScript] = {}
        self.requests_served = 0

    def register(self, path: str,
                 handler: Callable[[AppContext], HttpResponse]) -> None:
        if path in self.scripts:
            raise ValueError(f"script already registered at {path!r}")
        self.scripts[path] = PhpScript(path=path, handler=handler)

    def register_app(self, pages: Dict[str, Callable]) -> None:
        for path, handler in pages.items():
            self.register(path, handler)

    def handle(self, request: HttpRequest) \
            -> Tuple[HttpResponse, InteractionTrace]:
        """Execute the script for ``request.path``."""
        script = self.scripts.get(request.path)
        if script is None:
            trace = InteractionTrace(interaction=request.path)
            response = HttpResponse(body="<html>404</html>", status=404)
            trace.response = response
            return response, trace
        trace = InteractionTrace(interaction=request.path)
        conn = self.driver.connect()
        ctx = AppContext(request, conn, policy=LockingPolicy.DB_LOCKS,
                         trace=trace)
        trace.push_origin(f"php:{request.path}")
        try:
            response = script.handler(ctx)
        finally:
            trace.pop_origin()
            conn.close()
        if trace.response is None:
            trace.response = response
        self.requests_served += 1
        return response, trace

"""Stateless session beans and RMI stubs.

The paper uses the session façade pattern: presentation servlets call
stateless session beans over RMI; the façade methods drive entity beans.
The stub counts every call with estimated request/reply serialization
sizes so the profiling pass can charge RMI CPU and wire bytes on both
endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RmiCosts:
    """Serialization/marshalling prices, charged on both endpoints."""

    per_call: float = 1.8e-3
    per_byte: float = 110.0e-9
    request_overhead_bytes: int = 380
    reply_overhead_bytes: int = 340


def estimate_serialized_bytes(obj) -> int:
    """Approximate Java-serialization size of a method argument/result."""
    if obj is None:
        return 8
    if isinstance(obj, bool):
        return 4
    if isinstance(obj, (int, float)):
        return 10
    if isinstance(obj, str):
        return 24 + len(obj)
    if isinstance(obj, dict):
        return 32 + sum(estimate_serialized_bytes(k) +
                        estimate_serialized_bytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set)):
        return 24 + sum(estimate_serialized_bytes(v) for v in obj)
    return 48


class SessionBean:
    """Base class for stateless session façades.

    Subclasses receive the container as ``self.ejb`` and reach entity
    homes via ``self.ejb.home("table")``.  Public methods (not starting
    with ``_``) become remote methods on the stub, each wrapped in a
    container transaction (transaction-attribute REQUIRED).
    """

    def __init__(self, container):
        self.ejb = container

    def home(self, table: str):
        return self.ejb.home(table)


class StatefulSessionBean(SessionBean):
    """Base class for *stateful* session beans.

    The paper: session beans "are used either to perform temporary
    operations (stateless session beans) or represent temporary objects
    (stateful session beans)".  A stateful bean keeps conversational
    state across calls from the same client; the container binds one
    instance per stub (see :meth:`EjbContainer.create_stateful`) instead
    of handing calls to an anonymous pooled instance.  Entity-bean state
    still does not survive transactions -- only the bean's own
    attributes do.
    """

    def ejb_activate(self) -> None:
        """Called when the instance is bound to a client stub."""

    def ejb_passivate(self) -> None:
        """Called when the client releases the stub."""


class RmiStub:
    """Client-side proxy: counts calls, sizes payloads, runs the
    container transaction around every invocation."""

    def __init__(self, bean: SessionBean, container, costs: RmiCosts,
                 trace_sink: Optional[object] = None):
        self._bean = bean
        self._container = container
        self._costs = costs
        self._trace_sink = trace_sink
        self.calls = 0

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        method = getattr(self._bean, name, None)
        if method is None or not callable(method):
            raise AttributeError(
                f"session bean {type(self._bean).__name__} has no remote "
                f"method {name!r}")

        def remote_call(*args, **kwargs):
            self.calls += 1
            request_bytes = (self._costs.request_overhead_bytes +
                             estimate_serialized_bytes(args) +
                             estimate_serialized_bytes(kwargs))
            sink = self._trace_sink
            origin = f"{type(self._bean).__name__}.{name}"
            if sink is not None:
                sink.push_origin(origin)
            try:
                with self._container.transaction(trace=sink):
                    result = method(*args, **kwargs)
            finally:
                if sink is not None:
                    sink.pop_origin()
            reply_bytes = (self._costs.reply_overhead_bytes +
                           estimate_serialized_bytes(result))
            if sink is not None:
                sink.add_rmi_call(name, request_bytes, reply_bytes)
            return result

        return remote_call

"""EJB-analogue: session façades + container-managed-persistence entities."""

from repro.middleware.ejb.container import EjbContainer, EjbCosts
from repro.middleware.ejb.entity import EntityBean, EntityHome
from repro.middleware.ejb.session import SessionBean, RmiStub, RmiCosts

__all__ = ["EjbContainer", "EjbCosts", "EntityBean", "EntityHome",
           "SessionBean", "RmiStub", "RmiCosts"]

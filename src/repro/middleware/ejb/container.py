"""The EJB container: homes, transactions, pooling, query generation.

The container owns a JDBC connection pool, an identity map of entity
instances per transaction, and the commit protocol: at commit every
dirty bean is stored (ejbStore) and the identity map is cleared
(commit-option C, instances do not survive transactions -- JOnAS's
default for this kind of deployment and the behaviour that forces
re-loads on every request).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.db.driver import ConnectionPool, JdbcLikeDriver, RecordingConnection
from repro.db.engine import Database, ResultSet
from repro.middleware.ejb.entity import EntityBean, EntityHome
from repro.middleware.ejb.session import RmiCosts, RmiStub, SessionBean
from repro.middleware.trace import InteractionTrace, TraceStep


@dataclass(frozen=True)
class EjbCosts:
    """Container CPU prices (the EJB server machine's budget)."""

    per_method: float = 4.5e-3        # dispatch, tx begin/commit, security
    per_entity_load: float = 0.12e-3  # activation + state population
    per_entity_store: float = 0.08e-3
    per_field_access: float = 6.0e-6  # accessor indirection
    per_query_call: float = 0.10e-3   # pooled prepared-statement JDBC call
    per_output_byte: float = 40.0e-9
    # Fast busy rejection when the container backlog (repro.overload
    # backpressure) is full.
    per_busy_reject: float = 0.08e-3


class EjbContainer:
    """One deployed EJB server instance over one database."""

    name = "ejb"
    requires_colocation = False
    costs = EjbCosts()
    rmi_costs = RmiCosts()

    def __init__(self, database: Database, store_mode: str = "field",
                 load_mode: str = "row", pool_size: int = 32):
        if store_mode not in ("field", "row"):
            raise ValueError(f"unknown CMP store mode {store_mode!r}")
        if load_mode not in ("field", "row"):
            raise ValueError(f"unknown CMP load mode {load_mode!r}")
        self.database = database
        self.store_mode = store_mode
        self.load_mode = load_mode
        self.driver = JdbcLikeDriver(database)
        self.pool = ConnectionPool(self.driver, size=pool_size)
        self._homes: Dict[str, EntityHome] = {}
        self._session_beans: Dict[str, Callable] = {}
        # Transaction state:
        self._tx_depth = 0
        self._identity: Dict[Tuple[str, object], EntityBean] = {}
        self._dirty: list = []
        self._conn: Optional[RecordingConnection] = None
        self._trace: Optional[InteractionTrace] = None
        # Counters (exposed for tests and metrics):
        self.entity_loads = 0
        self.entity_stores = 0
        self.field_accesses = 0
        self.queries_issued = 0
        self.transactions = 0

    # -- deployment -----------------------------------------------------------------

    def deploy_entity(self, table_name: str) -> EntityHome:
        """Deploy a CMP entity bean over an existing table."""
        if table_name in self._homes:
            raise ValueError(f"entity for {table_name!r} already deployed")
        home = EntityHome(self, table_name)
        self._homes[table_name] = home
        return home

    def deploy_all_entities(self) -> None:
        for table_name in self.database.tables:
            if table_name not in self._homes:
                self.deploy_entity(table_name)

    def home(self, table_name: str) -> EntityHome:
        home = self._homes.get(table_name)
        if home is None:
            raise KeyError(f"no entity deployed for table {table_name!r}")
        return home

    def deploy_session(self, name: str, factory: Callable[["EjbContainer"],
                                                          SessionBean]) -> None:
        if name in self._session_beans:
            raise ValueError(f"session bean {name!r} already deployed")
        self._session_beans[name] = factory

    def lookup(self, name: str,
               trace: Optional[InteractionTrace] = None) -> RmiStub:
        """JNDI-ish lookup: returns an RMI stub for a stateless bean."""
        factory = self._session_beans.get(name)
        if factory is None:
            raise KeyError(f"no session bean bound to {name!r}")
        bean = factory(self)
        return RmiStub(bean, self, self.rmi_costs, trace_sink=trace)

    def create_stateful(self, name: str,
                        trace: Optional[InteractionTrace] = None) -> RmiStub:
        """Create a *stateful* session bean instance and its stub.

        Unlike :meth:`lookup`, the returned stub is bound to one live
        instance whose attributes persist across remote calls -- the
        "temporary object" flavour the paper describes.  Call
        :meth:`release_stateful` when the conversation ends.
        """
        stub = self.lookup(name, trace=trace)
        bean = stub._bean
        activate = getattr(bean, "ejb_activate", None)
        if activate is not None:
            activate()
        return stub

    def release_stateful(self, stub: RmiStub) -> None:
        """End a stateful conversation (ejbPassivate + discard)."""
        passivate = getattr(stub._bean, "ejb_passivate", None)
        if passivate is not None:
            passivate()

    # -- transactions ------------------------------------------------------------------

    @contextmanager
    def transaction(self, trace: Optional[InteractionTrace] = None):
        """REQUIRED semantics: join the active transaction or start one."""
        if self._tx_depth > 0:
            self._tx_depth += 1
            try:
                yield
            finally:
                self._tx_depth -= 1
            return
        self._tx_depth = 1
        if trace is not None:
            self._trace = trace
        conn = self.pool.acquire()
        self._conn = RecordingConnection(conn)
        self.transactions += 1
        loads0, stores0 = self.entity_loads, self.entity_stores
        fields0 = self.field_accesses
        try:
            yield
            self._commit()
            if self._trace is not None:
                # Container bookkeeping for this transaction: the
                # profiling pass prices it as EJB-server CPU.
                self._trace.steps.append(TraceStep(
                    "ejb_work",
                    (self.entity_loads - loads0,
                     self.entity_stores - stores0,
                     self.field_accesses - fields0),
                    origin=self._trace.origin))
        finally:
            self._tx_depth = 0
            self._identity.clear()
            self._dirty.clear()
            self.pool.release(conn)
            self._conn = None
            self._trace = None

    def _commit(self) -> None:
        # ejbStore every dirty bean, then drop all instances (option C).
        for bean in self._dirty:
            home = object.__getattribute__(bean, "_home")
            home._ejb_store(bean)
            self.entity_stores += 1
        self._dirty.clear()

    def attach_trace(self, trace: InteractionTrace) -> None:
        """Route this container's queries to an interaction trace."""
        self._trace = trace

    # -- services used by homes/beans ------------------------------------------------------

    def execute(self, sql: str, params=()) -> ResultSet:
        if self._conn is None:
            raise RuntimeError(
                "entity access outside a container transaction")
        before = len(self._conn.records)
        result = self._conn.execute(sql, params)
        self.queries_issued += 1
        if self._trace is not None:
            for record in self._conn.records[before:]:
                self._trace.add_query(record)
        return result

    def materialize(self, home: EntityHome, pk,
                    values: Optional[dict] = None) -> EntityBean:
        key = (home.table_name, pk)
        bean = self._identity.get(key)
        if bean is None or values is not None:
            bean = EntityBean(home, pk, values=values)
            self._identity[key] = bean
        return bean

    def forget(self, home: EntityHome, pk) -> None:
        self._identity.pop((home.table_name, pk), None)

    def register_dirty(self, bean: EntityBean) -> None:
        if bean not in self._dirty:
            self._dirty.append(bean)

    def count_entity_load(self) -> None:
        self.entity_loads += 1

    def count_field_access(self) -> None:
        self.field_accesses += 1

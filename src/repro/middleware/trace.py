"""Interaction traces: the ordered record of everything one dynamic
request did -- queries, lock spans, RMI calls -- plus the response.

Traces serve two purposes: tests assert on them (e.g. "the sync variant
issues no LOCK TABLES"), and the profiling pass compiles them into the
simulator's interaction profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.db.driver import QueryRecord
from repro.web.http import HttpResponse


@dataclass
class TraceStep:
    """One event inside an interaction.

    kind is one of:
      "query"        -- payload is a QueryRecord
      "sync_acquire" -- payload is ((name, mode), ...) container locks
      "sync_release" -- payload is (name, ...)
      "rmi_call"     -- payload is (method_name, request_bytes, reply_bytes)
    """

    kind: str
    payload: object


@dataclass
class InteractionTrace:
    steps: List[TraceStep] = field(default_factory=list)
    response: Optional[HttpResponse] = None
    interaction: str = ""

    def add_query(self, record: QueryRecord) -> None:
        self.steps.append(TraceStep("query", record))

    def add_sync_acquire(self, locks: Tuple[Tuple[str, str], ...]) -> None:
        self.steps.append(TraceStep("sync_acquire", locks))

    def add_sync_release(self, names: Tuple[str, ...]) -> None:
        self.steps.append(TraceStep("sync_release", names))

    def add_rmi_call(self, method: str, request_bytes: int,
                     reply_bytes: int) -> None:
        self.steps.append(TraceStep("rmi_call",
                                    (method, request_bytes, reply_bytes)))

    # -- inspection helpers (used heavily by tests) ------------------------------

    def queries(self) -> List[QueryRecord]:
        return [s.payload for s in self.steps if s.kind == "query"]

    def query_count(self, kind: Optional[str] = None) -> int:
        records = self.queries()
        if kind is None:
            return len(records)
        return sum(1 for r in records if r.kind == kind)

    def lock_statement_count(self) -> int:
        return sum(1 for r in self.queries() if r.kind in ("lock", "unlock"))

    def sync_spans(self) -> int:
        return sum(1 for s in self.steps if s.kind == "sync_acquire")

    def rmi_calls(self) -> List[tuple]:
        return [s.payload for s in self.steps if s.kind == "rmi_call"]

    def db_cpu_seconds(self) -> float:
        return sum(r.cpu_seconds for r in self.queries())

    def tables_written(self) -> set:
        out: set = set()
        for record in self.queries():
            out.update(record.tables_written)
        return out

"""Interaction traces: the ordered record of everything one dynamic
request did -- queries, lock spans, RMI calls -- plus the response.

Traces serve two purposes: tests assert on them (e.g. "the sync variant
issues no LOCK TABLES"), and the profiling pass compiles them into the
simulator's interaction profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.db.driver import QueryRecord
from repro.web.http import HttpResponse


@dataclass
class TraceStep:
    """One event inside an interaction.

    kind is one of:
      "query"        -- payload is a QueryRecord
      "sync_acquire" -- payload is ((name, mode), ...) container locks
      "sync_release" -- payload is (name, ...)
      "rmi_call"     -- payload is (method_name, request_bytes, reply_bytes)

    ``origin`` names the code site that produced the step (e.g.
    "php:/order.php" or "Cart.checkOut") -- the attribution layer uses
    it to label lock-wait sites in bottleneck reports.
    """

    kind: str
    payload: object
    origin: str = ""


@dataclass
class InteractionTrace:
    steps: List[TraceStep] = field(default_factory=list)
    response: Optional[HttpResponse] = None
    interaction: str = ""
    # Stack of code-site labels; the middleware pushes one per
    # script/servlet/bean-method so every recorded step knows where it
    # came from.  The top of the stack is stamped onto new steps.
    origin_stack: List[str] = field(default_factory=list)

    @property
    def origin(self) -> str:
        return self.origin_stack[-1] if self.origin_stack else ""

    def push_origin(self, label: str) -> None:
        self.origin_stack.append(label)

    def pop_origin(self) -> None:
        if self.origin_stack:
            self.origin_stack.pop()

    def add_query(self, record: QueryRecord) -> None:
        if not record.origin:
            record.origin = self.origin
        self.steps.append(TraceStep("query", record, origin=record.origin))

    def add_sync_acquire(self, locks: Tuple[Tuple[str, str], ...]) -> None:
        self.steps.append(TraceStep("sync_acquire", locks,
                                    origin=self.origin))

    def add_sync_release(self, names: Tuple[str, ...]) -> None:
        self.steps.append(TraceStep("sync_release", names,
                                    origin=self.origin))

    def add_rmi_call(self, method: str, request_bytes: int,
                     reply_bytes: int) -> None:
        self.steps.append(TraceStep("rmi_call",
                                    (method, request_bytes, reply_bytes),
                                    origin=self.origin))

    # -- inspection helpers (used heavily by tests) ------------------------------

    def queries(self) -> List[QueryRecord]:
        return [s.payload for s in self.steps if s.kind == "query"]

    def query_count(self, kind: Optional[str] = None) -> int:
        records = self.queries()
        if kind is None:
            return len(records)
        return sum(1 for r in records if r.kind == kind)

    def lock_statement_count(self) -> int:
        return sum(1 for r in self.queries() if r.kind in ("lock", "unlock"))

    def sync_spans(self) -> int:
        return sum(1 for s in self.steps if s.kind == "sync_acquire")

    def rmi_calls(self) -> List[tuple]:
        return [s.payload for s in self.steps if s.kind == "rmi_call"]

    def db_cpu_seconds(self) -> float:
        return sum(r.cpu_seconds for r in self.queries())

    def tables_written(self) -> set:
        out: set = set()
        for record in self.queries():
            out.update(record.tables_written)
        return out

"""Servlet-analogue: a container in its own process, JDBC, sync locks."""

from repro.middleware.servlet.engine import ServletEngine
from repro.middleware.servlet.api import HttpServlet
from repro.middleware.servlet.ajp import AjpConnector

__all__ = ["ServletEngine", "HttpServlet", "AjpConnector"]

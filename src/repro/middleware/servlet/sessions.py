"""HTTP session management for the servlet container.

The paper lists "client session management" among the container's
responsibilities.  Sessions are keyed by the request's ``session_id``
(the client emulator holds one per session, like a JSESSIONID cookie),
expire after an idle timeout, and store arbitrary attributes.  The
benchmark applications keep their state in the database (TPC-W carries
the customer id in the request), so sessions are an offered container
service rather than something the figures depend on.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional


class HttpSession:
    """One client's conversational state inside the container."""

    def __init__(self, session_id: str, created_at: float):
        self.id = session_id
        self.created_at = created_at
        self.last_accessed = created_at
        self._attributes: Dict[str, Any] = {}
        self.valid = True

    def _check(self) -> None:
        if not self.valid:
            raise RuntimeError(f"session {self.id!r} was invalidated")

    def get(self, name: str, default: Any = None) -> Any:
        self._check()
        return self._attributes.get(name, default)

    def set(self, name: str, value: Any) -> None:
        self._check()
        self._attributes[name] = value

    def remove(self, name: str) -> None:
        self._check()
        self._attributes.pop(name, None)

    def attribute_names(self):
        self._check()
        return tuple(self._attributes)

    def invalidate(self) -> None:
        self._attributes.clear()
        self.valid = False


class SessionManager:
    """Container-level registry of HTTP sessions with idle expiry."""

    def __init__(self, timeout: float = 1800.0, clock=time.monotonic):
        if timeout <= 0:
            raise ValueError("session timeout must be positive")
        self.timeout = timeout
        self._clock = clock
        self._sessions: Dict[str, HttpSession] = {}
        self.created = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def get_session(self, session_id: Optional[str],
                    create: bool = True) -> Optional[HttpSession]:
        """The session for ``session_id``, creating or renewing it.

        Expired or invalidated sessions are discarded; with
        ``create=False`` a missing session yields None.
        """
        now = self._clock()
        session = self._sessions.get(session_id) if session_id else None
        if session is not None:
            if not session.valid or \
                    now - session.last_accessed > self.timeout:
                del self._sessions[session.id]
                if session.valid:
                    session.invalidate()
                    self.expired += 1
                session = None
        if session is None:
            if not create or not session_id:
                return None
            session = HttpSession(session_id, now)
            self._sessions[session_id] = session
            self.created += 1
        session.last_accessed = now
        return session

    def invalidate(self, session_id: str) -> None:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.invalidate()

    def sweep(self) -> int:
        """Drop every idle-expired session; returns how many."""
        now = self._clock()
        stale = [sid for sid, s in self._sessions.items()
                 if now - s.last_accessed > self.timeout or not s.valid]
        for sid in stale:
            session = self._sessions.pop(sid)
            if session.valid:
                session.invalidate()
                self.expired += 1
        return len(stale)

"""The AJP12-like connector between the web server and the servlet engine.

The servlet engine runs in its own process (JVM in the paper), so every
dynamic request crosses a process boundary twice: request forward and
response return.  The paper measured this cost directly ("on average,
the cost of sending one character of dynamic content between the servlet
engine and the Web server is 191 microseconds" -- an amortized figure
dominated by per-message overhead at the small message sizes involved).
We model the connector as a per-message cost plus a per-byte cost on
*both* endpoints, and a wire transfer when the endpoints sit on
different machines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AjpCosts:
    """CPU charged per crossing; split between the two endpoints."""

    per_message: float = 0.35e-3      # syscall + framing per crossing
    per_byte: float = 90.0e-9         # copy + encode per payload byte
    request_overhead_bytes: int = 420  # forwarded headers + attributes
    reply_overhead_bytes: int = 260


@dataclass(frozen=True)
class AjpConnector:
    """Connector descriptor consumed by the profiling pass."""

    costs: AjpCosts = AjpCosts()

    def crossing_bytes(self, body_bytes: int, direction: str) -> int:
        if direction == "request":
            return self.costs.request_overhead_bytes + body_bytes
        return self.costs.reply_overhead_bytes + body_bytes

    def endpoint_cpu(self, payload_bytes: int) -> float:
        """CPU burned at *each* endpoint for one crossing."""
        return self.costs.per_message + payload_bytes * self.costs.per_byte

"""The servlet container.

Runs servlets over a JDBC-like driver with a connection pool.  With
``sync_locking=True`` the container supplies a :class:`SyncLockRegistry`
and interactions executed through it use container locks instead of
``LOCK TABLES`` -- the paper's ``(sync)`` configurations.  Because the
container is a separate process, it can be deployed on its own machine;
the topology layer decides where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

from repro.db.driver import ConnectionPool, JdbcLikeDriver
from repro.db.engine import Database
from repro.middleware.context import AppContext, LockingPolicy, SyncLockRegistry
from repro.middleware.servlet.ajp import AjpConnector
from repro.middleware.servlet.api import FunctionServlet, HttpServlet
from repro.middleware.servlet.sessions import SessionManager
from repro.middleware.trace import InteractionTrace
from repro.web.http import HttpRequest, HttpResponse


@dataclass(frozen=True)
class ServletCosts:
    """CPU prices of the JVM-hosted container (its own machine budget)."""

    per_request: float = 2.2e-3       # dispatch, request/response objects
    per_query_call: float = 0.70e-3   # interpreted JDBC statement handling
    per_output_byte: float = 250.0e-9  # string building + encoding
    # Container sync locking is cheap (in-process monitor):
    per_sync_lock: float = 0.02e-3
    # Turning a request away because the container's bounded backlog is
    # full (repro.overload backpressure): build and send a busy page.
    per_busy_reject: float = 0.08e-3


class ServletEngine:
    """A Tomcat-like container bound to one database."""

    name = "servlet"
    requires_colocation = False
    costs = ServletCosts()

    def __init__(self, database: Database, sync_locking: bool = False,
                 pool_size: int = 32,
                 connector: AjpConnector | None = None):
        self.database = database
        self.driver = JdbcLikeDriver(database)
        self.pool = ConnectionPool(self.driver, size=pool_size)
        self.sync_locking = sync_locking
        self.sync_registry = SyncLockRegistry() if sync_locking else None
        self.connector = connector or AjpConnector()
        self.servlets: Dict[str, HttpServlet] = {}
        self.sessions = SessionManager()
        self.requests_served = 0

    @property
    def policy(self) -> LockingPolicy:
        return LockingPolicy.CONTAINER_SYNC if self.sync_locking \
            else LockingPolicy.DB_LOCKS

    def register(self, path: str,
                 servlet: Union[HttpServlet, Callable]) -> None:
        if path in self.servlets:
            raise ValueError(f"servlet already registered at {path!r}")
        if not isinstance(servlet, HttpServlet):
            servlet = FunctionServlet(servlet)
        servlet.init(self)
        self.servlets[path] = servlet

    def register_app(self, pages: Dict[str, Callable]) -> None:
        for path, handler in pages.items():
            self.register(path, handler)

    def handle(self, request: HttpRequest) \
            -> Tuple[HttpResponse, InteractionTrace]:
        servlet = self.servlets.get(request.path)
        trace = InteractionTrace(interaction=request.path)
        if servlet is None:
            response = HttpResponse(body="<html>404</html>", status=404)
            trace.response = response
            return response, trace
        conn = self.pool.acquire()
        session = self.sessions.get_session(request.session_id) \
            if request.session_id else None
        ctx = AppContext(request, conn, policy=self.policy,
                         sync_registry=self.sync_registry, trace=trace,
                         http_session=session)
        trace.push_origin(f"servlet:{request.path}")
        try:
            response = servlet.service(ctx)
        finally:
            trace.pop_origin()
            self.pool.release(conn)
        if trace.response is None:
            trace.response = response
        self.requests_served += 1
        return response, trace

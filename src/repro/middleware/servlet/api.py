"""The servlet programming interface.

A servlet is a class with a ``service`` method; the engine also accepts
plain functions (the shared interaction logic) and wraps them.
"""

from __future__ import annotations

from typing import Callable

from repro.middleware.context import AppContext
from repro.web.http import HttpResponse


class HttpServlet:
    """Base class: subclass and override :meth:`service`."""

    def init(self, engine) -> None:
        """Called once when the engine loads the servlet."""

    def service(self, ctx: AppContext) -> HttpResponse:
        raise NotImplementedError

    def destroy(self) -> None:
        """Called when the engine unloads the servlet."""


class FunctionServlet(HttpServlet):
    """Adapts a plain ``fn(ctx) -> HttpResponse`` to the servlet API."""

    def __init__(self, fn: Callable[[AppContext], HttpResponse]):
        self.fn = fn

    def service(self, ctx: AppContext) -> HttpResponse:
        return self.fn(ctx)

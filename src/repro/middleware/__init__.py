"""The three dynamic-content middleware architectures.

* :mod:`repro.middleware.phpmod` -- the PHP analogue: scripts run inside
  the web server process over a native driver, ad hoc SQL.
* :mod:`repro.middleware.servlet` -- the servlet analogue: a container in
  its own process (AJP connector to the web server), JDBC-like driver,
  optional container-level sync locking replacing ``LOCK TABLES``.
* :mod:`repro.middleware.ejb` -- the EJB analogue: stateless session
  façade beans plus container-managed-persistence entity beans whose SQL
  is generated automatically, reached from servlets over RMI stubs.
"""

from repro.middleware.context import AppContext, LockingPolicy
from repro.middleware.trace import InteractionTrace, TraceStep
from repro.middleware.phpmod import PhpModule
from repro.middleware.servlet import ServletEngine
from repro.middleware.ejb import EjbContainer

__all__ = [
    "AppContext",
    "LockingPolicy",
    "InteractionTrace",
    "TraceStep",
    "PhpModule",
    "ServletEngine",
    "EjbContainer",
]

"""Deterministic load balancing across a pool of tier instances.

The balancer is control plane only: picking a backend schedules no
simulator events, transfers no bytes, and -- crucially for the
trivial-cluster identity guarantee -- draws no random numbers unless a
least-connections pick is genuinely tied between two live backends.
Ties break through a dedicated :class:`~repro.sim.rng.RngStreams`
stream, so balanced runs stay bit-reproducible under pinned seeds and
independent of the client population's draws.

This mirrors the Fermilab flexible-server result (arXiv:cs/0307001):
a pool of stateless servers behind a dispatcher scales query
throughput until a shared downstream resource saturates.

Policies
--------
``round_robin``        rotate over the pool, skipping crashed members;
                       the rotation cursor keeps its place across
                       crashes and rejoins.
``least_connections``  pick the live member with the fewest in-flight
                       requests; RNG tie-break.
``affinity``           sessions stick to their first backend and only
                       re-bind (round-robin) when it crashes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Set

from repro.faults.errors import TierDown

POLICIES = ("round_robin", "least_connections", "affinity")


class LoadBalancer:
    """Routes requests over named backends; all state is bookkeeping."""

    __slots__ = ("name", "policy", "backends", "in_flight", "served",
                 "_cursor", "_rng", "_bindings", "_is_up")

    def __init__(self, name: str, backends: Sequence[str],
                 policy: str = "round_robin", rng=None,
                 is_up: Optional[Callable[[str], bool]] = None):
        if policy not in POLICIES:
            raise ValueError(f"unknown balancing policy {policy!r}; "
                             f"have {POLICIES}")
        if not backends:
            raise ValueError(f"balancer {name!r} needs at least one backend")
        self.name = name
        self.policy = policy
        self.backends = tuple(backends)
        self.in_flight: Dict[str, int] = {b: 0 for b in self.backends}
        self.served: Dict[str, int] = {b: 0 for b in self.backends}
        self._cursor = 0
        self._rng = rng
        self._bindings: Dict[object, str] = {}
        self._is_up = is_up if is_up is not None else (lambda __: True)

    # -- picking --------------------------------------------------------------

    def _live(self, eligible: Optional[Set[str]]) -> list:
        is_up = self._is_up
        if eligible is None:
            return [b for b in self.backends if is_up(b)]
        return [b for b in self.backends if b in eligible and is_up(b)]

    def _rotate(self, live) -> str:
        live = set(live)
        n = len(self.backends)
        for __ in range(n):
            candidate = self.backends[self._cursor % n]
            self._cursor += 1
            if candidate in live:
                return candidate
        raise AssertionError("unreachable: live pool was non-empty")

    def pick(self, session_key=None,
             eligible: Optional[Set[str]] = None) -> str:
        """Choose a live backend (optionally restricted to ``eligible``).

        Raises :class:`~repro.faults.errors.TierDown` when every backend
        is down -- the pool as a whole is the failed "machine".
        """
        live = self._live(eligible)
        if not live:
            raise TierDown(self.backends[0])
        if self.policy == "affinity" and session_key is not None:
            bound = self._bindings.get(session_key)
            if bound is None or bound not in live:
                bound = live[0] if len(live) == 1 else self._rotate(live)
                self._bindings[session_key] = bound
            return bound
        if len(live) == 1:
            return live[0]
        if self.policy == "least_connections":
            in_flight = self.in_flight
            low = min(in_flight[b] for b in live)
            tied = [b for b in live if in_flight[b] == low]
            if len(tied) == 1 or self._rng is None:
                return tied[0]
            return tied[self._rng.randrange(len(tied))]
        return self._rotate(live)

    # -- request lifecycle ----------------------------------------------------

    def acquire(self, session_key=None,
                eligible: Optional[Set[str]] = None) -> str:
        """Pick a backend and count the request against it."""
        backend = self.pick(session_key, eligible)
        self.in_flight[backend] += 1
        self.served[backend] += 1
        return backend

    def release(self, backend: str) -> None:
        count = self.in_flight[backend]
        if count <= 0:
            raise ValueError(f"balancer {self.name!r}: release of idle "
                             f"backend {backend!r}")
        self.in_flight[backend] = count - 1

    def forget_session(self, session_key) -> None:
        """Drop a session's sticky binding (session end / logout)."""
        self._bindings.pop(session_key, None)

    @property
    def total_in_flight(self) -> int:
        return sum(self.in_flight.values())

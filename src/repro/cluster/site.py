"""A :class:`SimulatedSite` with replicated tiers behind load balancers.

:class:`ClusteredSite` keeps every mechanism of the base site -- the
same cost tables, lock semantics, fault surface and tracing hooks --
and adds the scale-out plumbing of a :class:`ClusterConfiguration`:

* per-request routing: the web and servlet pools sit behind
  :class:`~repro.cluster.balancer.LoadBalancer` instances, and the
  route (which machines, which Apache process pool, which sync-lock
  registry) travels with the request;
* a :class:`~repro.cluster.replication.ReplicatedDb`: writes and
  explicit ``LOCK TABLES`` spans go to the primary, plain reads go to
  caught-up replicas (read-your-writes per session), and committed
  writes ship asynchronously to every replica;
* crash containment: when a pool member crashes, only the requests
  routed *through that member* are interrupted, and interrupted
  requests re-route through the balancer instead of aborting (unless
  they already committed a write -- those surface the error so the
  client's retry policy decides).

A trivial cluster (1 web, 1 gen, 0 replicas) takes none of the new
paths that schedule events or draw RNG, so its reports are field-for-
field identical to the paper configuration it wraps -- tests assert
this, and the ``scale-smoke`` CI job guards it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.balancer import LoadBalancer
from repro.cluster.replication import DbInstance, ReplicatedDb, SessionState
from repro.cluster.spec import ClusterConfiguration
from repro.faults.errors import TierDown
from repro.harness.profiles import AppProfile
from repro.sim.kernel import Interrupt, Simulator
from repro.sim.resources import Resource, RWLock
from repro.sim.rng import RngStreams
from repro.topology.simulation import SimulatedSite
from repro.web.server import SPAN_LB_ROUTE


class ClusterRoute:
    """The machines (and bookkeeping) serving one request."""

    __slots__ = ("web", "gen", "ejb", "db", "db_client", "web_processes",
                 "session", "client_id", "web_token", "gen_token",
                 "db_busy_on", "writes_committed")

    def __init__(self, web, gen, ejb, db, db_client, web_processes,
                 session, client_id, web_token, gen_token):
        self.web = web
        self.gen = gen
        self.ejb = ejb
        self.db = db                  # the write primary
        self.db_client = db_client
        self.web_processes = web_processes
        self.session = session
        self.client_id = client_id
        self.web_token = web_token    # balancer slots to release
        self.gen_token = gen_token
        self.db_busy_on = None        # replica currently serving a read
        self.writes_committed = 0     # commits by *this* attempt


class ClusteredSite(SimulatedSite):
    """A deployed cluster configuration under simulation."""

    def __init__(self, sim: Simulator, config: ClusterConfiguration,
                 profile: AppProfile, rng: Optional[RngStreams] = None,
                 **kwargs):
        if not isinstance(config, ClusterConfiguration):
            raise TypeError(f"ClusteredSite needs a ClusterConfiguration, "
                            f"got {config.name!r}; wrap it with "
                            f"repro.cluster.clustered()")
        super().__init__(sim, config, profile, **kwargs)
        spec = config.cluster
        rng = rng if rng is not None else RngStreams(42)
        is_up = lambda name: name not in self.down   # noqa: E731

        # -- web / gen pools ------------------------------------------------
        web_names = config.pool("web")
        self.web_pool = [self.machines[n] for n in web_names]
        # One Apache process pool per front end; member 1 *is* the base
        # site's pool object, so tests and admission control see it.
        self._web_processes: Dict[str, Resource] = {
            self.web.name: self.web_processes}
        for machine in self.web_pool[1:]:
            self._web_processes[machine.name] = Resource(
                sim, capacity=self.web_config.max_processes,
                name=f"httpd@{machine.name}")
        self.web_lb = LoadBalancer(
            "lb.web", web_names, policy=spec.web_policy,
            rng=rng.stream("cluster.lb.web"), is_up=is_up)

        if config.colocated("web", "gen"):
            self.gen_pool = self.web_pool
            self.gen_lb = None        # the web pick is the gen pick
        else:
            gen_names = config.pool("gen")
            self.gen_pool = [self.machines[n] for n in gen_names]
            self.gen_lb = LoadBalancer(
                "lb.gen", gen_names, policy=spec.gen_policy,
                rng=rng.stream("cluster.lb.gen"), is_up=is_up)
        # Each servlet engine is its own JVM: private sync-lock
        # registry per pool member (member 1 shares the base site's, so
        # the trivial cluster and the tests see the same dict).
        self._sync_registries: Dict[str, Dict[str, RWLock]] = {
            machine.name: {} for machine in self.gen_pool}
        self._sync_registries[self.gen.name] = self._sync_locks

        # -- replicated database -------------------------------------------
        primary = DbInstance(sim, self.db,
                             write_priority=self.costs.db_write_priority,
                             table_locks=self._table_locks, is_primary=True)
        replica_names = config.db_replica_names()
        replicas = [DbInstance(sim, self.machines[n],
                               write_priority=self.costs.db_write_priority)
                    for n in replica_names]
        read_lb = LoadBalancer(
            "lb.db", replica_names or [self.db.name],
            policy=spec.db_read_policy,
            rng=rng.stream("cluster.lb.db"), is_up=is_up)
        self.repl = ReplicatedDb(
            sim, self, primary, replicas,
            replication_lag=spec.replication_lag,
            apply_cost_factor=spec.apply_cost_factor, balancer=read_lb)
        self._db_instances: Dict[str, DbInstance] = {
            self.db.name: primary}
        self._db_instances.update(
            (r.machine.name, r) for r in replicas)
        self._db_replica_names = frozenset(replica_names)

        # -- routing state --------------------------------------------------
        self._sessions: Dict[int, SessionState] = {}
        self._routes: Dict[object, ClusterRoute] = {}
        self._pool_names: Dict[str, tuple] = {}
        if len(web_names) > 1:
            members = tuple(web_names)
            for name in members:
                self._pool_names[name] = members
        if self.gen_lb is not None and len(self.gen_pool) > 1:
            members = tuple(m.name for m in self.gen_pool)
            for name in members:
                self._pool_names[name] = members
        self.reroutes = 0             # requests resubmitted by a balancer

    # -- sessions -------------------------------------------------------------

    def _session(self, client_id: int) -> SessionState:
        session = self._sessions.get(client_id)
        if session is None:
            session = SessionState(client_id)
            self._sessions[client_id] = session
        return session

    def new_session(self, client_id: int, rng) -> None:
        """Session start: fresh consistency watermark, fresh affinity."""
        self._session(client_id).reset()
        self.web_lb.forget_session(client_id)
        if self.gen_lb is not None:
            self.gen_lb.forget_session(client_id)
        self.repl.balancer.forget_session(client_id)

    def end_session(self, client_id: int) -> None:
        """Session end: release the sticky balancer bindings so an
        affinity pool re-spreads when the client comes back."""
        self.web_lb.forget_session(client_id)
        if self.gen_lb is not None:
            self.gen_lb.forget_session(client_id)
        self.repl.balancer.forget_session(client_id)

    # -- routing --------------------------------------------------------------

    def _route(self, client_id: int, rng) -> ClusterRoute:
        session = self._session(client_id)
        web_token = self._acquire_member(self.web_lb, client_id)
        web = self.machines[web_token] if web_token is not None \
            else self.web_pool[0]
        if self.gen_lb is None:
            gen, gen_token = web, None
        else:
            try:
                gen_token = self._acquire_member(self.gen_lb, client_id)
            except BaseException:
                if web_token is not None:
                    self.web_lb.release(web_token)
                raise
            gen = self.machines[gen_token] if gen_token is not None \
                else self.gen_pool[0]
        db_client = self.ejb if self.config.flavor == "ejb" else gen
        route = ClusterRoute(
            web=web, gen=gen, ejb=self.ejb, db=self.db,
            db_client=db_client,
            web_processes=self._web_processes[web.name],
            session=session, client_id=client_id,
            web_token=web_token, gen_token=gen_token)
        if self._track_inflight:
            proc = self.sim.current_process
            if proc is not None:
                self._routes[proc] = route
        tracer = self.sim.tracer
        if tracer is not None and len(self.web_pool) > 1:
            rc = tracer.current()
            if rc is not None:
                span = rc.push(SPAN_LB_ROUTE, "lb", web.name,
                               meta={"web": web.name, "gen": gen.name,
                                     "policy": self.web_lb.policy})
                rc.pop(span)
        return route

    @staticmethod
    def _acquire_member(balancer: LoadBalancer,
                        client_id: int) -> Optional[str]:
        """Pick a pool member; with the whole pool down, fall back to
        member 1 un-acquired so the request fails at exactly the point
        the single-machine site would fail (down-check in the replay
        path), keeping trivial-cluster fault runs identical."""
        try:
            return balancer.acquire(session_key=client_id)
        except TierDown:
            return None

    def _end_route(self, route: ClusterRoute) -> None:
        if route.web_token is not None:
            self.web_lb.release(route.web_token)
        if route.gen_token is not None:
            self.gen_lb.release(route.gen_token)
        if self._routes:
            proc = self.sim.current_process
            if proc is not None and self._routes.get(proc) is route:
                del self._routes[proc]

    def _dispatch(self, variant, name, client_id, rng):
        attempts = 0
        while True:
            route = self._route(client_id, rng)
            try:
                yield from self._perform(variant, name, rng, route)
                return
            except Interrupt as exc:
                cause = exc.cause
                machine = cause.machine if isinstance(cause, TierDown) \
                    else None
                if machine is None \
                        or not self._reroutable(machine, route, attempts):
                    raise
            except TierDown as exc:
                if not self._reroutable(exc.machine, route, attempts):
                    raise
            finally:
                self._end_route(route)
            attempts += 1
            self.reroutes += 1

    def _reroutable(self, machine: str, route: ClusterRoute,
                    attempts: int) -> bool:
        """Can the balancer resubmit this attempt elsewhere?  Only when
        the failed machine belongs to a replicated pool with a live
        sibling and the attempt has not committed a write (resubmitting
        a committed purchase would double it; the client retry policy
        owns that decision)."""
        if route.writes_committed:
            return False
        pool = self._pool_names.get(machine)
        if pool is None:
            return False
        if attempts + 1 >= len(pool):
            return False
        return any(m not in self.down for m in pool)

    # -- database routing -----------------------------------------------------

    def _db_query(self, step, held_explicit, route, rc=None, label=""):
        repl = self.repl
        writes = step[5]
        # Writes and LOCK TABLES spans always execute on the primary;
        # so does everything when there are no replicas (identity).
        if held_explicit or writes or not repl.replicas:
            yield from self._db_access(step, held_explicit, route,
                                       self.db, rc, label)
            return
        while True:
            instance, token = repl.route_read(route.session, rc)
            if token is not None:
                route.db_busy_on = instance.machine.name
            try:
                yield from self._db_access(step, held_explicit, route,
                                           instance.machine, rc, label)
                return
            except Interrupt as exc:
                cause = exc.cause
                if token is None or not isinstance(cause, TierDown) \
                        or cause.machine != instance.machine.name:
                    raise
                # The crashed replica is marked down before the
                # interrupt lands, so the next route excludes it and
                # the read resubmits on a survivor (or the primary).
                self.reroutes += 1
            finally:
                if token is not None:
                    repl.release_read(token)
                    route.db_busy_on = None

    def _instance_table_lock(self, db, table: str) -> RWLock:
        instance = self._db_instances.get(db.name)
        if instance is None or instance.is_primary:
            return self.table_lock(table)
        return instance.table_lock(table)

    def _note_commit(self, route: ClusterRoute, writes,
                     db_cpu: float) -> None:
        self.repl.commit_write(route.session, writes, db_cpu)
        route.writes_committed += 1

    # -- fault surface --------------------------------------------------------

    def mark_up(self, machine_name: str) -> None:
        super().mark_up(machine_name)
        self.repl.notify_up(machine_name)

    def crash_victims(self, machine_name: str) -> list:
        pool = self._pool_names.get(machine_name)
        if pool is not None \
                and any(m != machine_name and m not in self.down
                        for m in pool):
            return [proc for proc, route in self._routes.items()
                    if not proc.finished
                    and (route.web.name == machine_name
                         or route.gen.name == machine_name)]
        if machine_name in self._db_replica_names \
                and self.db.name not in self.down:
            return [proc for proc, route in self._routes.items()
                    if not proc.finished
                    and route.db_busy_on == machine_name]
        return self.inflight_processes()

    # -- sync locks -----------------------------------------------------------

    def _sync_registry(self, route) -> Dict[str, RWLock]:
        if route is None or route is self:
            return self._sync_locks
        return self._sync_registries[route.gen.name]

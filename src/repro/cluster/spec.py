"""The cluster axis: replica counts layered over a paper configuration.

A :class:`ClusterSpec` says how many instances each tier runs --
``web`` Apache front ends, ``gen`` dynamic-content generators (servlet
containers or PHP-capable web boxes), and ``db_replicas`` read-only
database replicas behind one write primary -- plus the replication and
balancing parameters.  :func:`clustered` combines a spec with one of the
six paper configurations into a :class:`ClusterConfiguration` whose name
spells out the shape, e.g.::

    Ws{2}-Servlet{4}-DB(1+2)     2 Apaches, 4 servlet engines,
                                 1 primary + 2 read replicas
    Ws-Servlet-DB(sync)(1+0)     the paper configuration, spelled as a
                                 trivial cluster (identical behavior)

The six paper configurations themselves are untouched: a
``ClusterConfiguration`` is a separate object, and a trivial spec
(one instance everywhere, zero replicas) reproduces the paper
configuration's reports field for field.

Machine naming: instance 1 of a pool keeps the paper machine name
("web", "servlet", "db") so the trivial cluster builds the exact same
machines; extra pool members are "web#2", "servlet#3", ...; database
read replicas are "db.r1", "db.r2", ....
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.topology.configs import Configuration, configuration_by_name

#: Balancing policies understood by :class:`repro.cluster.balancer.LoadBalancer`.
POLICIES: Tuple[str, ...] = ("round_robin", "least_connections", "affinity")


@dataclass(frozen=True)
class ClusterSpec:
    """Replica counts and scale-out parameters for one deployment."""

    web: int = 1                    # Apache front ends
    gen: int = 1                    # servlet containers / PHP web boxes
    db_replicas: int = 0            # read replicas behind the primary
    # Async log shipping: a committed write becomes visible on a replica
    # this many (virtual) seconds after commit.
    replication_lag: float = 0.1
    # Replaying a write on a replica costs this fraction of the
    # statement's primary CPU time.  Statement-based shipping (the
    # C-JDBC/RAIDb model for this stack) re-executes the statement in
    # full, so the default is 1.0; row-based shipping would discount it.
    apply_cost_factor: float = 1.0
    web_policy: str = "least_connections"
    gen_policy: str = "round_robin"
    db_read_policy: str = "least_connections"

    def validate(self) -> None:
        if self.web < 1:
            raise ValueError(f"web pool needs >= 1 instance, got {self.web}")
        if self.gen < 1:
            raise ValueError(f"gen pool needs >= 1 instance, got {self.gen}")
        if self.db_replicas < 0:
            raise ValueError(f"db_replicas must be >= 0, "
                             f"got {self.db_replicas}")
        if self.replication_lag < 0:
            raise ValueError(f"replication_lag must be >= 0, "
                             f"got {self.replication_lag}")
        if self.apply_cost_factor < 0:
            raise ValueError(f"apply_cost_factor must be >= 0, "
                             f"got {self.apply_cost_factor}")
        for role, policy in (("web", self.web_policy),
                             ("gen", self.gen_policy),
                             ("db", self.db_read_policy)):
            if policy not in POLICIES:
                raise ValueError(f"unknown {role} balancing policy "
                                 f"{policy!r}; have {POLICIES}")

    @property
    def trivial(self) -> bool:
        """One instance per tier, no replicas: the paper configuration."""
        return self.web == 1 and self.gen == 1 and self.db_replicas == 0


def _pool_member_names(base: str, count: int) -> List[str]:
    return [base] + [f"{base}#{i}" for i in range(2, count + 1)]


def _replica_names(base: str, count: int) -> List[str]:
    return [f"{base}.r{i}" for i in range(1, count + 1)]


@dataclass(frozen=True)
class ClusterConfiguration(Configuration):
    """A paper configuration extended with a cluster axis.

    ``placement`` still maps roles to the *first* pool member, so every
    role accessor of the base class keeps working; :meth:`pool` lists a
    role's full pool.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    base_name: str = ""   # the underlying paper configuration's name

    def machine_names(self) -> List[str]:
        spec = self.cluster
        web_m = self.placement["web"]
        db_m = self.placement["db"]
        gen_m = self.placement["gen"]
        names: List[str] = []
        for name in super().machine_names():
            if name == web_m:
                # colocated web+gen pools are the same machines
                names.extend(_pool_member_names(name, spec.web))
            elif name == gen_m:
                names.extend(_pool_member_names(name, spec.gen))
            elif name == db_m:
                names.append(name)
                names.extend(_replica_names(name, spec.db_replicas))
            else:
                names.append(name)      # the EJB server is not pooled
        return names

    def pool(self, role: str) -> List[str]:
        """Machine names of ``role``'s pool, first member first."""
        base = self.machine_of(role)
        if role == "web" or (role == "gen" and self.colocated("web", "gen")):
            return _pool_member_names(base, self.cluster.web)
        if role == "gen":
            return _pool_member_names(base, self.cluster.gen)
        if role == "db":
            return [base]               # writes go to the primary only
        return [base]

    def db_replica_names(self) -> List[str]:
        return _replica_names(self.machine_of("db"), self.cluster.db_replicas)

    @property
    def base_configuration(self) -> Configuration:
        return configuration_by_name(self.base_name)


def _cluster_name(base: Configuration, spec: ClusterSpec) -> str:
    """``Ws{2}-Servlet{4}-DB(1+2)`` style names from base + spec."""
    parts = base.name.split("-")
    out = []
    for i, part in enumerate(parts):
        if part.startswith("DB"):
            part = f"{part}(1+{spec.db_replicas})"
        elif i == 0 and spec.web > 1:
            part = f"{part}{{{spec.web}}}"
        elif part == "Servlet" and spec.gen > 1:
            part = f"{part}{{{spec.gen}}}"
        out.append(part)
    return "-".join(out)


def clustered(base, spec: ClusterSpec = None,
              **kwargs) -> ClusterConfiguration:
    """Build a :class:`ClusterConfiguration` over a paper configuration.

    ``base`` is a :class:`Configuration` or its name; ``spec`` or the
    keyword arguments parameterize the cluster (``clustered("Ws-Servlet-DB",
    db_replicas=2, gen=4)``).  When web and gen share a machine (the
    colocated configurations) the shared pool is sized by ``web``; a
    conflicting explicit ``gen`` count is an error.
    """
    if isinstance(base, str):
        base = configuration_by_name(base)
    if isinstance(base, ClusterConfiguration):
        raise ValueError(f"{base.name!r} is already a cluster configuration")
    if spec is None:
        spec = ClusterSpec(**kwargs)
    elif kwargs:
        raise ValueError("pass either a ClusterSpec or keyword arguments, "
                         "not both")
    spec.validate()
    if base.colocated("web", "gen") and spec.gen != spec.web:
        if spec.gen == 1:
            spec = replace(spec, gen=spec.web)
        else:
            raise ValueError(
                f"configuration {base.name!r} colocates web and gen; "
                f"their pool is sized by 'web' (web={spec.web}, "
                f"gen={spec.gen} conflict)")
    return ClusterConfiguration(
        name=_cluster_name(base, spec), flavor=base.flavor,
        placement=dict(base.placement), cluster=spec, base_name=base.name)


_DB_SUFFIX_RE = re.compile(r"^(?P<head>.+?-)?(?P<db>DB(\(sync\))?)"
                           r"\((?P<primary>\d+)\+(?P<replicas>\d+)\)$")
_POOL_RE = re.compile(r"^(?P<stem>.+?)\{(?P<count>\d+)\}$")


def parse_cluster_name(name: str) -> ClusterConfiguration:
    """Round-trip a ``Ws{2}-Servlet{4}-DB(1+2)`` name back to its
    configuration (with default lag/policy parameters)."""
    m = _DB_SUFFIX_RE.match(name)
    if m is None:
        raise KeyError(f"{name!r} is not a cluster configuration name "
                       f"(expected a ...-DB(1+N) suffix)")
    if m.group("primary") != "1":
        raise KeyError(f"{name!r}: only one write primary is supported")
    replicas = int(m.group("replicas"))
    head = (m.group("head") or "").rstrip("-")
    segments = head.split("-") if head else []
    web = gen = 1
    stripped = []
    for i, segment in enumerate(segments):
        pm = _POOL_RE.match(segment)
        count = 1
        if pm is not None:
            segment, count = pm.group("stem"), int(pm.group("count"))
        if i == 0:
            web = count
        elif segment == "Servlet":
            gen = count
        elif count != 1:
            raise KeyError(f"{name!r}: tier {segment!r} cannot be pooled")
        stripped.append(segment)
    base_name = "-".join(stripped + [m.group("db")])
    try:
        base = configuration_by_name(base_name)
    except KeyError:
        raise KeyError(f"{name!r}: no paper configuration named "
                       f"{base_name!r} to cluster") from None
    return clustered(base, ClusterSpec(web=web, gen=gen,
                                       db_replicas=replicas))


def resolve_configuration(name: str):
    """A configuration from either namespace: one of the six paper
    names, or a cluster name like ``Ws{2}-Servlet{4}-DB(1+2)``."""
    try:
        return configuration_by_name(name)
    except KeyError:
        return parse_cluster_name(name)

"""Primary/replica database tier: read/write splitting + log shipping.

One write primary, N read-only replicas.  Writes always execute on the
primary (its table locks are the site's own registry, so the trivial
cluster is byte-identical to the paper configuration).  Each committed
write statement is appended to every replica's ship log with an
``apply_at`` timestamp ``commit + replication_lag``; a per-replica
applier process drains the log in order, takes the replica's *own*
table write locks, and replays the statement at
``apply_cost_factor`` of the primary CPU cost.  Replication is
therefore asynchronous, ordered, and contends with the replica's
readers exactly like MyISAM write-priority locking on the primary.

Read-your-writes consistency is enforced at routing time: a session
remembers the commit sequence number of its last write, and
:meth:`ReplicatedDb.route_read` only offers replicas that have applied
at least that sequence -- falling back to the primary when every
replica lags (counted in ``lag_fallbacks``, surfaced as a zero-duration
trace span so `--trace` attributes the wait).

With zero replicas every method degenerates to pure integer
bookkeeping: no processes, no events, no RNG -- the identity guarantee.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.balancer import LoadBalancer
from repro.sim.kernel import Event
from repro.sim.resources import RWLock, Store, safe_acquire_write


class SessionState:
    """Per-client session bookkeeping for consistency and affinity."""

    __slots__ = ("client_id", "last_write_seq")

    def __init__(self, client_id: int):
        self.client_id = client_id
        self.last_write_seq = 0

    def reset(self) -> None:
        """New session: no writes observed yet."""
        self.last_write_seq = 0


class DbInstance:
    """One database machine: the primary or one read replica.

    The primary *shares* the site's table-lock registry (``table_locks``
    is the same dict object), so single-database behavior is untouched;
    replicas get private registries because their lock traffic is
    physically separate.
    """

    __slots__ = ("sim", "machine", "write_priority", "table_locks",
                 "is_primary", "applied_seq", "applied_writes",
                 "reads_served", "log", "rejoin_event")

    def __init__(self, sim, machine, write_priority: bool,
                 table_locks: Optional[Dict[str, RWLock]] = None,
                 is_primary: bool = False):
        self.sim = sim
        self.machine = machine
        self.write_priority = write_priority
        self.table_locks = {} if table_locks is None else table_locks
        self.is_primary = is_primary
        self.applied_seq = 0          # last write sequence applied here
        self.applied_writes = 0
        self.reads_served = 0
        self.log: Optional[Store] = None    # set for replicas
        self.rejoin_event = None      # armed while crashed (applier waits)

    def table_lock(self, table: str) -> RWLock:
        lock = self.table_locks.get(table)
        if lock is None:
            lock = RWLock(self.sim, write_priority=self.write_priority,
                          name=f"{self.machine.name}.{table}")
            self.table_locks[table] = lock
        return lock


class ReplicatedDb:
    """The database tier as the cluster sees it."""

    def __init__(self, sim, site, primary: DbInstance,
                 replicas: List[DbInstance], replication_lag: float,
                 apply_cost_factor: float, balancer: LoadBalancer):
        self.sim = sim
        self.site = site
        self.primary = primary
        self.replicas = tuple(replicas)
        self.replication_lag = replication_lag
        self.apply_cost_factor = apply_cost_factor
        self.balancer = balancer              # read balancer over replicas
        self.commit_seq = 0
        self.lag_fallbacks = 0       # reads sent to the primary for RYW
        self.down_fallbacks = 0      # reads sent to the primary: all down
        self._by_name = {r.machine.name: r for r in self.replicas}
        for replica in self.replicas:
            replica.log = Store(sim, name=f"shiplog.{replica.machine.name}")
            sim.spawn(self._applier(replica),
                      name=f"db.applier.{replica.machine.name}")

    # -- write path -----------------------------------------------------------

    def commit_write(self, session: Optional[SessionState], writes,
                     db_cpu: float) -> int:
        """A write statement committed on the primary: bump the global
        sequence, remember it for the session's read-your-writes, and
        ship it to every replica."""
        self.commit_seq += 1
        seq = self.commit_seq
        self.primary.applied_seq = seq
        if session is not None:
            session.last_write_seq = seq
        if self.replicas:
            apply_at = self.sim.now + self.replication_lag
            entry = (seq, tuple(sorted(set(writes))),
                     db_cpu * self.apply_cost_factor, apply_at)
            for replica in self.replicas:
                replica.log.put(entry)
        return seq

    def _applier(self, replica: DbInstance):
        """Drain one replica's ship log in commit order."""
        sim = self.sim
        down = self.site.down
        while True:
            seq, tables, apply_cpu, apply_at = yield replica.log.get()
            if apply_at > sim.now:
                yield apply_at - sim.now
            # A crashed replica stops applying; the log keeps queueing,
            # so after mark_up it catches up in order (and readers stay
            # away until applied_seq passes their session's watermark).
            while replica.machine.name in down:
                if replica.rejoin_event is None \
                        or replica.rejoin_event.triggered:
                    replica.rejoin_event = Event(sim)
                yield replica.rejoin_event
            taken = []
            try:
                for table in tables:
                    lock = replica.table_lock(table)
                    yield from safe_acquire_write(lock)
                    taken.append(lock)
                if apply_cpu > 0.0:
                    yield from replica.machine.cpu.execute(apply_cpu)
            finally:
                for lock in taken:
                    lock.release_write()
            replica.applied_seq = seq
            replica.applied_writes += 1

    def notify_up(self, machine_name: str) -> None:
        """A crashed replica restarted: resume its applier."""
        replica = self._by_name.get(machine_name)
        if replica is not None and replica.rejoin_event is not None \
                and not replica.rejoin_event.triggered:
            replica.rejoin_event.trigger(None)

    # -- read path ------------------------------------------------------------

    def route_read(self, session: Optional[SessionState],
                   rc=None) -> Tuple[DbInstance, Optional[str]]:
        """Choose the database instance for a read statement.

        Returns ``(instance, token)``; a non-None token must be passed
        to :meth:`release_read` when the statement finishes.  Falls back
        to the primary when no replica is both up and caught up to the
        session's last write (read-your-writes).
        """
        if not self.replicas:
            return self.primary, None
        down = self.site.down
        need = session.last_write_seq if session is not None else 0
        eligible = {r.machine.name for r in self.replicas
                    if r.machine.name not in down and r.applied_seq >= need}
        if not eligible:
            any_up = any(r.machine.name not in down for r in self.replicas)
            if any_up:
                self.lag_fallbacks += 1
            else:
                self.down_fallbacks += 1
            if rc is not None:
                span = rc.push("db.route", "lb", "db",
                               meta={"backend": "db",
                                     "fallback": "lag" if any_up
                                     else "down"})
                rc.pop(span)
            return self.primary, None
        key = session.client_id if session is not None else None
        token = self.balancer.acquire(session_key=key, eligible=eligible)
        if rc is not None:
            span = rc.push("db.route", "lb", "db",
                           meta={"backend": token,
                                 "policy": self.balancer.policy})
            rc.pop(span)
        instance = self._by_name[token]
        instance.reads_served += 1
        return instance, token

    def release_read(self, token: str) -> None:
        self.balancer.release(token)

"""Horizontal scale-out: load-balanced tier pools + a replicated DB.

The paper stops at one machine per tier; this package grows each tier
sideways.  :func:`clustered` wraps one of the six paper configurations
with a :class:`ClusterSpec` (web pool size, servlet pool size, DB read
replicas, replication lag, balancing policies) into a
:class:`ClusterConfiguration` -- e.g. ``Ws{2}-Servlet{4}-DB(1+2)`` --
and :class:`~repro.cluster.site.ClusteredSite` simulates it.  The
``python -m repro scale`` CLI sweeps replica counts over the bookstore
mixes (``repro.experiments.ext_scaleout``).

A trivial cluster (``web=1, gen=1, db_replicas=0``) reproduces its
paper configuration's reports field for field; the six paper
configurations themselves never touch this package.
"""

from repro.cluster.balancer import LoadBalancer
from repro.cluster.replication import DbInstance, ReplicatedDb, SessionState
from repro.cluster.spec import (
    POLICIES,
    ClusterConfiguration,
    ClusterSpec,
    clustered,
    parse_cluster_name,
    resolve_configuration,
)

__all__ = [
    "POLICIES",
    "ClusterConfiguration",
    "ClusterSpec",
    "DbInstance",
    "LoadBalancer",
    "ReplicatedDb",
    "SessionState",
    "clustered",
    "parse_cluster_name",
    "resolve_configuration",
]

"""The web server's functional configuration and cost constants.

Apache-like behaviour that matters to the study: a bounded process pool
(512 processes, never the limit in the paper -- we keep the knob and the
assertion), per-request HTTP handling CPU, per-byte network-processing
CPU (interrupts + TCP), and dispatch either to an in-process module
(PHP) or over a connector (AJP) to an external container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Canonical span names for the web tier (repro.obs traces).  Kept here
# so the simulation, the exporters, and the tests agree on the labels.
SPAN_ACCEPT_QUEUE = "web.accept"      # waiting for an Apache process slot
SPAN_HTTP = "web.http"                # request handling + SSL
SPAN_REPLY = "web.reply"              # response + embedded images
SPAN_AJP_REQUEST = "ajp.request"      # web -> container crossing
SPAN_AJP_REPLY = "ajp.reply"          # container -> web crossing
SPAN_LB_ROUTE = "lb.route"            # balancer pick (zero duration)
SPAN_DEGRADED = "web.degraded"        # degraded/static response under shed


@dataclass(frozen=True)
class WebServerConfig:
    """CPU prices for the front-end, calibrated in harness/calibrate.py."""

    max_processes: int = 512
    # Admission control: once every process is busy, at most this many
    # requests may queue at the accept point; beyond it the server sheds
    # load with a fast 503 instead of queueing unboundedly.  ``None``
    # (the default) is the paper's Apache behaviour: queue forever.
    accept_queue_limit: Optional[int] = None
    # Emitting the 503 page: a trivial static error body.
    per_reject_cpu: float = 0.05e-3
    reject_response_bytes: int = 180
    # Per dynamic request: accept, parse headers, route. (seconds)
    per_request_cpu: float = 0.45e-3
    # Per static hit: stat + sendfile-ish path.
    per_static_hit_cpu: float = 0.10e-3
    # Network processing (TCP/interrupt) per byte moved to/from clients.
    per_net_byte_cpu: float = 46.0e-9
    # SSL is enabled in the paper's Apache build; purchases interactions
    # use it. Extra per-secure-request cost:
    per_ssl_request_cpu: float = 1.2e-3
    # Degraded/static fallback page served when the overload layer
    # (repro.overload) sheds a browse-class interaction: a cached page,
    # no container or database work.  Unused unless degradation is
    # installed.
    per_degraded_cpu: float = 0.15e-3
    degraded_response_bytes: int = 2048

"""Minimal HTTP request/response objects for the functional layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class HttpRequest:
    """A dynamic-content request as the web server hands it onward."""

    path: str
    params: Dict[str, object] = field(default_factory=dict)
    method: str = "GET"
    session_id: Optional[str] = None

    def param(self, name: str, default=None):
        return self.params.get(name, default)

    def int_param(self, name: str, default: Optional[int] = None) -> Optional[int]:
        value = self.params.get(name)
        if value is None:
            return default
        return int(value)

    def str_param(self, name: str, default: str = "") -> str:
        value = self.params.get(name)
        return default if value is None else str(value)


@dataclass
class HttpResponse:
    """The generated reply plus the static objects it embeds."""

    body: str = ""
    status: int = 200
    content_type: str = "text/html"
    # Paths of embedded images the client will fetch next (served by the
    # web server from its file system, as in the paper).
    embedded_images: List[str] = field(default_factory=list)

    @property
    def body_bytes(self) -> int:
        return len(self.body.encode("utf-8", errors="replace"))

    def ok(self) -> bool:
        return 200 <= self.status < 300

"""Web-server layer: HTTP plumbing, HTML rendering, static content."""

from repro.web.http import HttpRequest, HttpResponse
from repro.web.static import StaticContentStore
from repro.web.server import WebServerConfig

__all__ = ["HttpRequest", "HttpResponse", "StaticContentStore", "WebServerConfig"]

"""Static content: the web server's file system of images.

The paper stores item images (183 MB for the bookstore) and navigation
art in the web server's file system.  Sizes matter -- most client-side
network traffic is images -- so the store generates deterministic sizes
per path and the data generators register item images explicitly.
"""

from __future__ import annotations

import hashlib
from typing import Dict


class StaticContentStore:
    """Maps request paths to object sizes in bytes."""

    # Navigation art is small; item images are a few KB (thumbnails) to
    # tens of KB (detail images), per TPC-W's image size distribution.
    DEFAULT_NAV_BYTES = 1_800

    def __init__(self):
        self._objects: Dict[str, int] = {}
        self.hits = 0
        self.bytes_served = 0

    def register(self, path: str, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"negative object size for {path!r}")
        self._objects[path] = size_bytes

    def register_item_images(self, prefix: str, item_count: int,
                             thumb_bytes: int = 5_000,
                             detail_bytes: int = 25_000) -> None:
        """Register thumbnail + detail image pairs for a range of items."""
        for item_id in range(1, item_count + 1):
            self.register(f"{prefix}/thumb_{item_id}.gif", thumb_bytes)
            self.register(f"{prefix}/image_{item_id}.gif", detail_bytes)

    def size_of(self, path: str) -> int:
        """Size of an object; unknown /images/ paths get nav-art size."""
        size = self._objects.get(path)
        if size is None:
            if path.startswith("/images/"):
                # Deterministic small size for unregistered nav art.
                digest = hashlib.md5(path.encode()).digest()
                return self.DEFAULT_NAV_BYTES + digest[0] * 8
            raise KeyError(f"no static object at {path!r}")
        return size

    def serve(self, path: str) -> int:
        """Account one GET of the object; returns its size."""
        size = self.size_of(path)
        self.hits += 1
        self.bytes_served += size
        return size

    def total_bytes(self) -> int:
        return sum(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

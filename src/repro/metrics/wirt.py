"""TPC-W Web Interaction Response Time (WIRT) constraints.

TPC-W clause 5.1 requires that 90% of each web interaction type complete
within a per-type limit.  The paper implements "all the functionality
specified in TPC-W that has an impact on performance"; WIRT compliance
is how a run's operating point is judged valid.  This module evaluates
the constraints against :class:`~repro.workload.client.ClientStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.workload.client import ClientStats

# 90th-percentile limits (seconds) per TPC-W's Table 5.1, mapped to the
# bookstore's interaction names.
BOOKSTORE_WIRT_LIMITS: Dict[str, float] = {
    "home": 3.0,
    "new_products": 5.0,
    "best_sellers": 5.0,
    "product_detail": 3.0,
    "search_request": 3.0,
    "search_results": 10.0,
    "shopping_cart": 3.0,
    "customer_registration": 3.0,
    "buy_request": 3.0,
    "buy_confirm": 5.0,
    "order_inquiry": 3.0,
    "order_display": 5.0,
    "admin_request": 3.0,
    "admin_confirm": 20.0,
}


@dataclass(frozen=True)
class WirtResult:
    """One interaction type's constraint evaluation."""

    interaction: str
    limit: float
    observed_p90: Optional[float]   # None when no samples in the window
    samples: int

    @property
    def passed(self) -> bool:
        if self.observed_p90 is None:
            return True          # nothing observed, nothing violated
        return self.observed_p90 <= self.limit


@dataclass
class WirtReport:
    """Full WIRT evaluation of one measurement window."""

    results: List[WirtResult]

    @property
    def compliant(self) -> bool:
        return all(r.passed for r in self.results)

    def violations(self) -> List[WirtResult]:
        return [r for r in self.results if not r.passed]

    def render(self) -> str:
        lines = ["WIRT compliance (90th percentile response times)", ""]
        lines.append(f"{'interaction':<24} {'limit':>8} {'p90':>10} "
                     f"{'n':>7}  status")
        for result in self.results:
            observed = f"{result.observed_p90:.2f}s" \
                if result.observed_p90 is not None else "-"
            status = "ok" if result.passed else "VIOLATED"
            lines.append(f"{result.interaction:<24} "
                         f"{result.limit:>7.0f}s {observed:>10} "
                         f"{result.samples:>7}  {status}")
        lines.append("")
        lines.append("run is " + ("WIRT-compliant" if self.compliant
                                  else "NOT WIRT-compliant"))
        return "\n".join(lines)


def evaluate_wirt(stats: ClientStats,
                  limits: Optional[Dict[str, float]] = None) -> WirtReport:
    """Evaluate the 90th-percentile constraints over a stats window."""
    limits = limits if limits is not None else BOOKSTORE_WIRT_LIMITS
    results = []
    for interaction, limit in limits.items():
        samples = stats.response_times.get(interaction, ())
        results.append(WirtResult(
            interaction=interaction, limit=limit,
            observed_p90=stats.percentile(interaction, 0.9),
            samples=len(samples)))
    return WirtReport(results=results)

"""Windowed SLO metrics for open-loop (offered-load) runs.

Closed-loop experiments need one throughput number; an overload run
needs the *shape over time*: per-window throughput and latency
percentiles, the fraction of windows violating a latency objective, and
goodput-vs-offered-load curves whose points come only from *stable*
windows (after warmup, before the final partial window).

Recording is event-driven -- :meth:`SloSeries.record` computes the
window index from the virtual clock -- so attaching a series schedules
no simulator events and draws no RNG: the machinery costs nothing when
unused and perturbs nothing when used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


def percentile(samples: List[float], fraction: float) -> Optional[float]:
    """The ``fraction`` percentile of ``samples`` (nearest-rank on the
    sorted list, the same convention as ``ClientStats.percentile``);
    None when there are no samples."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered)) - 1))
    return ordered[index]


@dataclass(frozen=True)
class SloSpec:
    """The objective: latency bound (seconds) checked at a percentile,
    over fixed-width windows."""

    latency_bound: float = 2.0    # seconds; WIRT-style bound
    percentile: float = 0.95      # fraction of requests that must meet it
    window: float = 1.0           # window width, virtual seconds

    def __post_init__(self):
        if self.latency_bound <= 0:
            raise ValueError(f"latency_bound must be positive, "
                             f"got {self.latency_bound}")
        if not 0 < self.percentile < 1:
            raise ValueError(f"percentile must be in (0, 1), "
                             f"got {self.percentile}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")


@dataclass
class SloWindow:
    """One window's aggregates (latencies kept until :meth:`seal`)."""

    index: int
    start: float
    end: float
    completions: int = 0
    errors: int = 0
    arrivals: int = 0
    latencies: List[float] = field(default_factory=list)
    # Filled by seal():
    p50: Optional[float] = None
    p95: Optional[float] = None
    p99: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Completions per second in this window."""
        if self.duration <= 0:
            return 0.0
        return self.completions / self.duration

    @property
    def offered(self) -> float:
        """Arrivals per second in this window."""
        if self.duration <= 0:
            return 0.0
        return self.arrivals / self.duration

    def seal(self) -> None:
        """Compute the percentile digests and drop the raw samples."""
        self.p50 = percentile(self.latencies, 0.50)
        self.p95 = percentile(self.latencies, 0.95)
        self.p99 = percentile(self.latencies, 0.99)
        self.latencies = []

    def violates(self, spec: SloSpec) -> bool:
        """Whether this window misses the objective.  An empty window
        (no completions) violates only if requests arrived -- silence
        under offered load is an outage, idle silence is not."""
        if self.completions == 0:
            return self.arrivals > 0 or self.errors > 0
        bound = percentile(self.latencies, spec.percentile) \
            if self.latencies else self._sealed_percentile(spec.percentile)
        return bound is not None and bound > spec.latency_bound

    def _sealed_percentile(self, fraction: float) -> Optional[float]:
        if fraction <= 0.50:
            return self.p50
        if fraction <= 0.95:
            return self.p95
        return self.p99


class SloSeries:
    """Accumulates per-window aggregates as requests finish.

    The recorder never schedules events: each :meth:`record` call files
    the sample under ``int(now / window)``.  Windows with no traffic at
    all are materialized lazily on read (:meth:`windows`), so a long
    quiet stretch costs nothing.
    """

    def __init__(self, sim, spec: SloSpec):
        self.sim = sim
        self.spec = spec
        self._origin: Optional[float] = None
        self._by_index: Dict[int, SloWindow] = {}

    def start(self) -> None:
        """Anchor window 0 at the current virtual time (call this at
        begin_measurement)."""
        self._origin = self.sim.now

    def _window_at(self, now: float) -> SloWindow:
        origin = self._origin if self._origin is not None else 0.0
        width = self.spec.window
        index = max(0, int((now - origin) / width))
        win = self._by_index.get(index)
        if win is None:
            win = SloWindow(index=index, start=origin + index * width,
                            end=origin + (index + 1) * width)
            self._by_index[index] = win
        return win

    def record_arrival(self) -> None:
        self._window_at(self.sim.now).arrivals += 1

    def record(self, latency: float) -> None:
        """A request completed now, having taken ``latency`` seconds."""
        win = self._window_at(self.sim.now)
        win.completions += 1
        win.latencies.append(latency)

    def record_error(self) -> None:
        self._window_at(self.sim.now).errors += 1

    def windows(self) -> List[SloWindow]:
        """The contiguous, sealed window series from 0 to the highest
        touched index (gaps filled with empty windows).  Safe on an
        empty series and on runs shorter than one window."""
        if not self._by_index:
            return []
        origin = self._origin if self._origin is not None else 0.0
        width = self.spec.window
        top = max(self._by_index)
        out: List[SloWindow] = []
        for index in range(top + 1):
            win = self._by_index.get(index)
            if win is None:
                win = SloWindow(index=index, start=origin + index * width,
                                end=origin + (index + 1) * width)
                self._by_index[index] = win
            if win.latencies:
                win.seal()
            elif win.p50 is None and win.completions == 0:
                win.seal()
            out.append(win)
        return out


def select_stable_windows(windows: List[SloWindow], warmup: int = 0,
                          drop_last_partial: bool = True,
                          horizon: Optional[float] = None) -> List[SloWindow]:
    """The windows a load-curve point should aggregate over.

    Drops the first ``warmup`` windows (queues filling) and, when
    ``drop_last_partial``, a final window that ``horizon`` (the
    measurement end time) cuts short -- a partial tail understates
    throughput exactly like the availability-sampler bug this PR fixes.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    stable = list(windows[warmup:])
    if stable and drop_last_partial and horizon is not None \
            and stable[-1].end > horizon + 1e-9:
        stable.pop()
    return stable


@dataclass
class SloSummary:
    """One run folded against the objective."""

    spec: SloSpec
    windows_total: int = 0
    windows_violating: int = 0
    offered_per_s: float = 0.0
    goodput_per_s: float = 0.0
    error_per_s: float = 0.0
    p50: Optional[float] = None
    p95: Optional[float] = None
    p99: Optional[float] = None

    @property
    def violation_fraction(self) -> float:
        if self.windows_total == 0:
            return 0.0
        return self.windows_violating / self.windows_total

    @property
    def compliant_fraction(self) -> float:
        return 1.0 - self.violation_fraction


def summarize_slo(windows: List[SloWindow], spec: SloSpec) -> SloSummary:
    """Aggregate a (stable) window series into one summary.

    Percentiles are recomputed across all unsealed samples when
    available; for sealed windows they fall back to a completions-
    weighted mean of the per-window digests (the per-window numbers are
    already nearest-rank exact; the cross-window fold is the standard
    approximation)."""
    total = len(windows)
    violating = sum(1 for w in windows if w.violates(spec))
    seconds = sum(w.duration for w in windows)
    completions = sum(w.completions for w in windows)
    arrivals = sum(w.arrivals for w in windows)
    errors = sum(w.errors for w in windows)
    raw: List[float] = []
    for w in windows:
        raw.extend(w.latencies)
    if raw:
        p50 = percentile(raw, 0.50)
        p95 = percentile(raw, 0.95)
        p99 = percentile(raw, 0.99)
    else:
        p50 = _weighted_digest(windows, "p50")
        p95 = _weighted_digest(windows, "p95")
        p99 = _weighted_digest(windows, "p99")
    return SloSummary(
        spec=spec, windows_total=total, windows_violating=violating,
        offered_per_s=arrivals / seconds if seconds > 0 else 0.0,
        goodput_per_s=completions / seconds if seconds > 0 else 0.0,
        error_per_s=errors / seconds if seconds > 0 else 0.0,
        p50=p50, p95=p95, p99=p99)


def _weighted_digest(windows: List[SloWindow],
                     attr: str) -> Optional[float]:
    weight = 0
    total = 0.0
    for w in windows:
        value = getattr(w, attr)
        if value is not None and w.completions > 0:
            weight += w.completions
            total += value * w.completions
    if weight == 0:
        return None
    return total / weight


def time_to_recover(windows: List[SloWindow], spec: SloSpec,
                    disturbance_end: float,
                    settle: int = 3) -> Optional[float]:
    """Seconds from ``disturbance_end`` until the start of the first run
    of ``settle`` consecutive compliant windows; None if the run never
    re-settles.  Windows wholly before the disturbance end are ignored."""
    if settle < 1:
        raise ValueError(f"settle must be >= 1, got {settle}")
    streak = 0
    for w in windows:
        if w.end <= disturbance_end:
            continue
        if w.violates(spec):
            streak = 0
            continue
        streak += 1
        if streak >= settle:
            first = w.index - settle + 1
            origin = w.start - w.index * (w.end - w.start)
            start = origin + first * (w.end - w.start)
            return max(0.0, start - disturbance_end)
    return None

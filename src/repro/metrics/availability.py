"""Availability metrics: windowed goodput, error breakdown, recovery time.

The steady-state figures need one number per run (throughput over the
whole measurement window); a failover run needs a *time series* -- the
throughput dip while a tier is down and the time it takes to climb back
are the results.  :class:`AvailabilitySampler` snapshots the client
population's cumulative counters every few virtual seconds;
:func:`summarize_failover` folds the windows against the fault timeline
into the numbers the ``ext_failover`` report prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.kernel import Simulator

# A window counts as "recovered" when its goodput is back to this
# fraction of the pre-fault mean.
RECOVERY_FRACTION = 0.9


@dataclass
class AvailabilityWindow:
    """Per-window deltas of the population's counters."""

    start: float
    end: float
    completions: int = 0
    timeouts: int = 0
    aborts: int = 0
    rejections: int = 0
    retries: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def goodput_ipm(self) -> float:
        """Successful interactions per minute in this window."""
        if self.duration <= 0:
            return 0.0
        return self.completions * 60.0 / self.duration

    @property
    def errors(self) -> int:
        return self.timeouts + self.aborts + self.rejections


class AvailabilitySampler:
    """Samples a :class:`~repro.workload.client.ClientPopulation` every
    ``interval`` virtual seconds; the baseline snapshot is taken at
    :meth:`start`, so start it right after ``begin_measurement()``."""

    def __init__(self, sim: Simulator, population, interval: float = 10.0):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.population = population
        self.interval = interval
        self.windows: List[AvailabilityWindow] = []
        self._last = None

    def start(self) -> None:
        self._last = self._snapshot()
        self.sim.spawn(self._run(), name="availability-sampler")

    def _snapshot(self) -> tuple:
        stats = self.population.stats
        return (self.sim.now, stats.interactions_completed, stats.timeouts,
                stats.aborts, stats.rejections, stats.retries)

    def _run(self):
        while True:
            yield self.interval
            self._close_window()

    def _close_window(self) -> None:
        now = self._snapshot()
        last = self._last
        self.windows.append(AvailabilityWindow(
            start=last[0], end=now[0],
            completions=now[1] - last[1], timeouts=now[2] - last[2],
            aborts=now[3] - last[3], rejections=now[4] - last[4],
            retries=now[5] - last[5]))
        self._last = now

    def flush(self) -> None:
        """Close the partial window between the last sample and now.

        Runs shorter than one interval -- or whose measurement ends
        mid-window -- would otherwise drop the tail silently.  Call at
        end of measurement, before summarizing.  A zero-length tail
        (measurement ended exactly on a sample) is not recorded.
        """
        if self._last is None:
            return
        if self.sim.now > self._last[0]:
            self._close_window()


@dataclass
class FailoverSummary:
    """One configuration's behaviour through one crash/restart cycle."""

    configuration: str
    tier: str
    fault_start: float
    fault_end: float
    pre_goodput_ipm: float
    during_goodput_ipm: float
    post_goodput_ipm: float
    # Seconds from fault clearing until the first window back at
    # RECOVERY_FRACTION of the pre-fault goodput; None = never in run.
    recovery_time_s: Optional[float]
    timeouts: int = 0
    aborts: int = 0
    rejections: int = 0
    retries: int = 0
    abandoned: int = 0
    # True when the fault did not apply to this configuration (the tier
    # has no machine there) -- the containment case.
    contained: bool = False

    @property
    def post_over_pre(self) -> float:
        if self.pre_goodput_ipm <= 0:
            return 0.0
        return self.post_goodput_ipm / self.pre_goodput_ipm

    @property
    def during_over_pre(self) -> float:
        if self.pre_goodput_ipm <= 0:
            return 0.0
        return self.during_goodput_ipm / self.pre_goodput_ipm


def _mean_goodput(windows: List[AvailabilityWindow]) -> float:
    seconds = sum(w.duration for w in windows)
    if seconds <= 0:
        return 0.0
    return sum(w.completions for w in windows) * 60.0 / seconds


def summarize_failover(configuration: str, tier: str,
                       windows: List[AvailabilityWindow],
                       fault_start: float, fault_end: float,
                       stats, contained: bool = False) -> FailoverSummary:
    """Fold a window series + the fault timeline into a summary.

    ``stats`` is the population's :class:`ClientStats` over the whole
    measurement (for the error-rate breakdown).
    """
    pre = [w for w in windows if w.end <= fault_start]
    during = [w for w in windows if w.start >= fault_start
              and w.end <= fault_end]
    post = [w for w in windows if w.start >= fault_end]
    pre_ipm = _mean_goodput(pre)
    recovery: Optional[float] = None
    if pre_ipm > 0:
        for w in post:
            if w.goodput_ipm >= RECOVERY_FRACTION * pre_ipm:
                recovery = max(0.0, w.end - fault_end)
                break
    return FailoverSummary(
        configuration=configuration, tier=tier,
        fault_start=fault_start, fault_end=fault_end,
        pre_goodput_ipm=pre_ipm,
        during_goodput_ipm=_mean_goodput(during),
        post_goodput_ipm=_mean_goodput(post),
        recovery_time_s=recovery,
        timeouts=stats.timeouts, aborts=stats.aborts,
        rejections=stats.rejections, retries=stats.retries,
        abandoned=stats.abandoned, contained=contained)


@dataclass
class FailoverReport:
    """The ext_failover experiment's result: one summary per config."""

    title: str
    tier: str
    summaries: List[FailoverSummary] = field(default_factory=list)

    def summary_for(self, configuration: str) -> FailoverSummary:
        for summary in self.summaries:
            if summary.configuration == configuration:
                return summary
        raise KeyError(f"no summary for {configuration!r}")

    def render(self) -> str:
        lines = [self.title,
                 f"fault: crash of tier {self.tier!r}", ""]
        header = (f"{'configuration':<22} {'pre':>8} {'during':>8} "
                  f"{'post':>8} {'recover':>8}  "
                  f"{'timeout':>7} {'abort':>6} {'reject':>6} "
                  f"{'retry':>6} {'lost':>5}")
        lines.append(header)
        lines.append("-" * len(header))
        for s in self.summaries:
            if s.contained:
                recover = "n/a"
            elif s.recovery_time_s is None:
                recover = "never"
            else:
                recover = f"{s.recovery_time_s:.0f}s"
            note = "  [not deployed: fault contained]" if s.contained else ""
            lines.append(
                f"{s.configuration:<22} {s.pre_goodput_ipm:>8.0f} "
                f"{s.during_goodput_ipm:>8.0f} {s.post_goodput_ipm:>8.0f} "
                f"{recover:>8}  {s.timeouts:>7} {s.aborts:>6} "
                f"{s.rejections:>6} {s.retries:>6} {s.abandoned:>5}{note}")
        lines.append("")
        lines.append("goodput in interactions/minute; pre / during / post "
                     "= before, while, and after the tier is down; "
                     "recover = time from restart back to "
                     f"{RECOVERY_FRACTION:.0%} of pre-fault goodput.")
        return "\n".join(lines)

"""A sysstat-like sampler.

The paper collects CPU, memory, network and disk usage every second with
sysstat and analyzes the files post-mortem; this sampler does the same in
virtual time, so utilization numbers come from the same kind of windowed
averages the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.machine.machine import Machine
from repro.sim.kernel import Simulator


@dataclass
class MachineSample:
    """One per-second observation of one machine."""

    time: float
    cpu_utilization: float        # busy fraction over the last interval
    nic_tx_bps: float
    nic_rx_bps: float
    disk_tps: float
    memory_used_mb: float


@dataclass
class _State:
    busy: float = 0.0
    tx: int = 0
    rx: int = 0
    transfers: int = 0


class SysstatSampler:
    """Samples a set of machines every ``interval`` virtual seconds."""

    def __init__(self, sim: Simulator, machines: Dict[str, Machine],
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.machines = machines
        self.interval = interval
        self.samples: Dict[str, List[MachineSample]] = {
            name: [] for name in machines}
        self._last: Dict[str, _State] = {name: _State() for name in machines}
        self._proc = None

    def start(self) -> None:
        self._proc = self.sim.spawn(self._run(), name="sysstat")

    def _run(self):
        while True:
            yield self.interval
            self._take_sample()

    def _take_sample(self) -> None:
        for name, machine in self.machines.items():
            last = self._last[name]
            busy = machine.cpu.busy_time()
            nic = machine.nic
            tx = nic.bytes_sent if nic else 0
            rx = nic.bytes_received if nic else 0
            transfers = machine.disk.transfers
            self.samples[name].append(MachineSample(
                time=self.sim.now,
                cpu_utilization=min(1.0, (busy - last.busy) / self.interval),
                nic_tx_bps=(tx - last.tx) * 8.0 / self.interval,
                nic_rx_bps=(rx - last.rx) * 8.0 / self.interval,
                disk_tps=(transfers - last.transfers) / self.interval,
                memory_used_mb=machine.memory_used_mb))
            last.busy = busy
            last.tx = tx
            last.rx = rx
            last.transfers = transfers

    # -- post-mortem analysis ------------------------------------------------------

    def window(self, name: str, start: float,
               end: Optional[float] = None) -> List[MachineSample]:
        return [s for s in self.samples[name]
                if s.time > start and (end is None or s.time <= end)]

    def mean_cpu(self, name: str, start: float,
                 end: Optional[float] = None) -> float:
        window = self.window(name, start, end)
        if not window:
            return 0.0
        return sum(s.cpu_utilization for s in window) / len(window)

    def mean_nic_tx_mbps(self, name: str, start: float,
                         end: Optional[float] = None) -> float:
        window = self.window(name, start, end)
        if not window:
            return 0.0
        return sum(s.nic_tx_bps for s in window) / len(window) / 1e6

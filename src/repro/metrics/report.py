"""Experiment result structures and text rendering.

The figure-regeneration harness prints the same artifacts the paper
shows: throughput-vs-clients series (Figures 5, 7, 9, 11, 13) and
per-machine CPU-utilization bars at the peak (Figures 6, 8, 10, 12, 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CpuUtilization:
    """Per-role CPU utilization (fractions in [0, 1])."""

    web_server: float = 0.0
    database: float = 0.0
    servlet_container: Optional[float] = None
    ejb_server: Optional[float] = None

    def as_row(self) -> dict:
        row = {"WebServer": round(100 * self.web_server, 1),
               "Database": round(100 * self.database, 1)}
        if self.servlet_container is not None:
            row["Servlet Container"] = round(100 * self.servlet_container, 1)
        if self.ejb_server is not None:
            row["EJB Server"] = round(100 * self.ejb_server, 1)
        return row


@dataclass
class ThroughputPoint:
    """One (clients, throughput) observation."""

    clients: int
    throughput_ipm: float           # interactions per minute
    cpu: CpuUtilization = field(default_factory=CpuUtilization)
    mean_response_time: float = 0.0
    web_nic_tx_mbps: float = 0.0
    # Mean virtual seconds spent waiting for locks, per interaction
    # completed in the window (database table locks vs container locks).
    db_lock_wait_per_interaction: float = 0.0
    sync_lock_wait_per_interaction: float = 0.0
    # WIRT compliance report (set when the spec declares limits).
    wirt: Optional[object] = None
    # Kernel events (process resumptions) the run consumed -- fully
    # deterministic under pinned seeds; the perf harness divides by
    # wall-clock for its events/sec figure.
    kernel_events: int = 0
    # Trace-derived bottleneck verdict (e.g. "db cpu 98%"); None unless
    # the run was traced (repro.obs).  Traced points additionally carry
    # undeclared ``tracer`` / ``bottleneck_report`` attributes.
    bottleneck: Optional[str] = None


@dataclass
class ConfigurationSeries:
    """A full throughput-vs-clients curve for one configuration."""

    configuration: str
    points: List[ThroughputPoint] = field(default_factory=list)

    def peak(self) -> ThroughputPoint:
        if not self.points:
            raise ValueError(f"no points for {self.configuration}")
        return max(self.points, key=lambda p: p.throughput_ipm)

    def add(self, point: ThroughputPoint) -> None:
        self.points.append(point)


@dataclass
class ExperimentReport:
    """Everything one figure needs: series per configuration."""

    title: str
    workload: str
    series: Dict[str, ConfigurationSeries] = field(default_factory=dict)

    def series_for(self, configuration: str) -> ConfigurationSeries:
        if configuration not in self.series:
            self.series[configuration] = ConfigurationSeries(configuration)
        return self.series[configuration]

    def render_throughput_table(self) -> str:
        """The throughput figure as a text table (clients as rows)."""
        configs = list(self.series)
        clients = sorted({p.clients for s in self.series.values()
                          for p in s.points})
        lines = [self.title, f"workload: {self.workload}", ""]
        header = ["clients"] + configs
        lines.append("  ".join(f"{h:>22}" for h in header))
        for count in clients:
            row = [f"{count:>22}"]
            for config in configs:
                match = [p for p in self.series[config].points
                         if p.clients == count]
                row.append(f"{match[0].throughput_ipm:>22.0f}"
                           if match else " " * 22)
            lines.append("  ".join(row))
        lines.append("")
        lines.append("peaks:")
        for config in configs:
            peak = self.series[config].peak()
            lines.append(f"  {config:<24} {peak.throughput_ipm:8.0f} ipm "
                         f"at {peak.clients} clients")
        return "\n".join(lines)

    def render_cpu_table(self) -> str:
        """The CPU-utilization figure (at each configuration's peak)."""
        lines = [f"{self.title} -- CPU utilization at peak throughput",
                 f"workload: {self.workload}", ""]
        roles = ["WebServer", "Database", "Servlet Container", "EJB Server"]
        header = ["configuration"] + roles
        lines.append("  ".join(f"{h:>20}" for h in header))
        for config, series in self.series.items():
            peak = series.peak()
            row = peak.cpu.as_row()
            cells = [f"{config:>20}"]
            for role in roles:
                value = row.get(role)
                cells.append(f"{value:>20.1f}" if value is not None
                             else " " * 20)
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def peaks(self) -> Dict[str, ThroughputPoint]:
        return {config: series.peak()
                for config, series in self.series.items()}

    def to_csv(self) -> str:
        """The full sweep as CSV (one row per configuration x point)."""
        lines = ["configuration,clients,throughput_ipm,"
                 "mean_response_time_s,cpu_web,cpu_db,cpu_servlet,"
                 "cpu_ejb,web_nic_tx_mbps"]
        for config, series in self.series.items():
            for p in sorted(series.points, key=lambda p: p.clients):
                servlet = "" if p.cpu.servlet_container is None \
                    else f"{p.cpu.servlet_container:.4f}"
                ejb = "" if p.cpu.ejb_server is None \
                    else f"{p.cpu.ejb_server:.4f}"
                lines.append(
                    f"{config},{p.clients},{p.throughput_ipm:.1f},"
                    f"{p.mean_response_time:.3f},{p.cpu.web_server:.4f},"
                    f"{p.cpu.database:.4f},{servlet},{ejb},"
                    f"{p.web_nic_tx_mbps:.2f}")
        return "\n".join(lines)

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        from pathlib import Path
        Path(path).write_text(self.to_csv() + "\n")

"""Measurement: the sysstat-like sampler, experiment reports, and the
availability metrics the fault-injection experiments use."""

from repro.metrics.availability import (
    AvailabilitySampler,
    AvailabilityWindow,
    FailoverReport,
    FailoverSummary,
    summarize_failover,
)
from repro.metrics.sampler import MachineSample, SysstatSampler
from repro.metrics.report import CpuUtilization, ExperimentReport, ThroughputPoint
from repro.metrics.slo import (
    SloSeries,
    SloSpec,
    SloSummary,
    SloWindow,
    select_stable_windows,
    summarize_slo,
    time_to_recover,
)

__all__ = ["SysstatSampler", "MachineSample", "ExperimentReport",
           "CpuUtilization", "ThroughputPoint", "AvailabilitySampler",
           "AvailabilityWindow", "FailoverReport", "FailoverSummary",
           "summarize_failover", "SloSpec", "SloWindow", "SloSeries",
           "SloSummary", "select_stable_windows", "summarize_slo",
           "time_to_recover"]

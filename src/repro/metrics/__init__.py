"""Measurement: the sysstat-like sampler and experiment reports."""

from repro.metrics.sampler import MachineSample, SysstatSampler
from repro.metrics.report import CpuUtilization, ExperimentReport, ThroughputPoint

__all__ = ["SysstatSampler", "MachineSample", "ExperimentReport",
           "CpuUtilization", "ThroughputPoint"]

"""Declarative fault schedules.

A :class:`FaultPlan` is an immutable list of :class:`FaultEvent`\\ s; the
:class:`repro.faults.injector.FaultInjector` executes one against a
running :class:`~repro.topology.simulation.SimulatedSite`.  Plans are
data, so an experiment spec can carry one, tests can generate them with
hypothesis, and the CLI can build one from flags.

Event kinds
-----------
``crash``          a tier's machine goes down at ``at`` and comes back
                   ``duration`` seconds later; in-flight interactions
                   through it abort, locks release, new requests fail fast.
``db_conn_glitch`` new database connections fail for the window (the
                   database machine itself stays up; queries already past
                   connection setup complete normally).
``lan_degrade``    every NIC's bandwidth is multiplied by ``factor`` for
                   the window (congested or renegotiated-down links).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

# Tier names double as the machine names the six configurations use
# (topology/configs.py): a tier absent from a configuration is simply
# not crashable there -- that *is* the failure-containment question.
TIERS: Tuple[str, ...] = ("web", "servlet", "ejb", "db")
KINDS: Tuple[str, ...] = ("crash", "db_conn_glitch", "lan_degrade")

# Cluster configurations (repro.cluster) add pool members "web#2",
# "servlet#3", ... and database read replicas "db.r1", "db.r2", ...;
# those are crashable machines too.
_MEMBER_RE = re.compile(r"^(web|servlet|ejb|db)(#[0-9]+|\.r[0-9]+)?$")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what, where, when, and for how long."""

    kind: str                 # one of KINDS
    tier: str = "db"          # target tier (ignored for lan_degrade)
    at: float = 0.0           # virtual time the fault starts
    duration: float = 0.0     # seconds until it clears
    factor: float = 1.0       # lan_degrade bandwidth multiplier

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"have {KINDS}")
        if self.kind != "lan_degrade" and not _MEMBER_RE.match(self.tier):
            raise ValueError(f"unknown tier {self.tier!r}; have {TIERS} "
                             f"plus pool members like 'web#2' and "
                             f"replicas like 'db.r1'")
        if self.at < 0:
            raise ValueError(f"fault start must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, "
                             f"got {self.duration}")
        if self.kind == "lan_degrade" and not 0 < self.factor <= 1.0:
            raise ValueError(f"lan_degrade factor must be in (0, 1], "
                             f"got {self.factor}")

    @property
    def clears_at(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        for event in self.events:
            event.validate()

    def __bool__(self) -> bool:
        return bool(self.events)

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.events + other.events)

    def horizon(self) -> float:
        """Virtual time by which every fault has cleared."""
        return max((e.clears_at for e in self.events), default=0.0)

    # -- builders ------------------------------------------------------------

    @staticmethod
    def single_crash(tier: str, at: float, duration: float) -> "FaultPlan":
        """Kill one tier at ``at``, restart it ``duration`` later."""
        return FaultPlan((FaultEvent("crash", tier, at, duration),))

    @staticmethod
    def db_conn_glitch(at: float, duration: float) -> "FaultPlan":
        return FaultPlan((FaultEvent("db_conn_glitch", "db", at, duration),))

    @staticmethod
    def lan_degrade(at: float, duration: float,
                    factor: float) -> "FaultPlan":
        return FaultPlan((FaultEvent("lan_degrade", at=at,
                                     duration=duration, factor=factor),))

    @staticmethod
    def stochastic(rng, horizon: float, tiers: Iterable[str] = ("db",),
                   mtbf: float = 300.0, mttr: float = 30.0,
                   max_events: Optional[int] = None) -> "FaultPlan":
        """Crash/repair each tier on exponential MTBF/MTTR clocks.

        ``rng`` is a ``random.Random``-like source; the draw order is
        fixed (per tier, alternating up/down intervals), so the plan is
        reproducible from the seed.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        if mttr <= 0:
            raise ValueError(f"mttr must be positive, got {mttr}")
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1 (or None for "
                             f"unbounded), got {max_events}")
        events = []
        for tier in tiers:
            t = rng.expovariate(1.0 / mtbf)
            while t < horizon:
                if max_events is not None and len(events) >= max_events:
                    break
                down_for = rng.expovariate(1.0 / mttr)
                # Clip repair to the horizon so the plan always ends
                # with every tier back up.
                down_for = min(down_for, max(0.0, horizon - t))
                events.append(FaultEvent("crash", tier, t, down_for))
                t += down_for + rng.expovariate(1.0 / mtbf)
        events.sort(key=lambda e: (e.at, e.tier))
        return FaultPlan(tuple(events))


EMPTY_PLAN = FaultPlan()

"""Fault injection and resilience: crash/restart schedules, transient
database-connection failures, LAN degradation -- plus the request-failure
exceptions the client emulator's timeout/retry/backoff machinery handles.

The layer is strictly opt-in: with no plan attached and no retry policy,
the simulator's happy path is byte-for-byte the steady-state benchmark.
"""

from repro.faults.errors import (
    AdmissionReject,
    BackpressureError,
    CircuitOpenError,
    RequestError,
    TierDown,
    TransientDbError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import EMPTY_PLAN, KINDS, TIERS, FaultEvent, FaultPlan

__all__ = [
    "AdmissionReject",
    "BackpressureError",
    "CircuitOpenError",
    "RequestError",
    "TierDown",
    "TransientDbError",
    "FaultInjector",
    "FaultEvent",
    "FaultPlan",
    "EMPTY_PLAN",
    "TIERS",
    "KINDS",
]

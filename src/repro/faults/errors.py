"""Request-failure exceptions the resilience layer raises and clients retry.

These are *simulated* outcomes, not kernel errors: a request that hits a
crashed tier, a saturated accept queue, or a transient database
connection failure ends with one of these, the holding process releases
everything it acquired (the ``finally`` blocks in the replay path), and
the emulated browser decides whether to back off and retry.
"""

from __future__ import annotations


class RequestError(Exception):
    """Base class for failures of one simulated interaction attempt."""


class TierDown(RequestError):
    """The request reached a tier whose machine is crashed: the client
    sees a fast connection-refused / 5xx error, not a hang."""

    def __init__(self, machine: str):
        super().__init__(f"machine {machine!r} is down")
        self.machine = machine


class TransientDbError(RequestError):
    """A database connection could not be established for this query
    (transient: the database machine itself is up)."""


class AdmissionReject(RequestError):
    """Load shedding: the web server's accept queue is past its bound,
    the request got a fast 503 instead of queueing unboundedly."""


class BackpressureError(AdmissionReject):
    """A bounded downstream queue (servlet container backlog, database
    connection gate) is full: the request is turned away with a fast 5xx
    *before* it can pile onto the saturated tier.  Subclasses
    :class:`AdmissionReject` so clients account it as a rejection."""

    def __init__(self, tier: str):
        super().__init__(f"tier {tier!r} backlog full")
        self.tier = tier


class CircuitOpenError(TransientDbError):
    """The database circuit breaker is open: the call fails fast without
    touching the database.  Subclasses :class:`TransientDbError` because
    to the caller it is exactly a transient database failure -- retry
    after backoff (by which time the breaker may have closed)."""

"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live site.

One simulator process per fault event.  A ``crash`` marks the tier's
machine down (new requests fail fast at that tier), then interrupts every
in-flight interaction so the existing cancellation-safe acquire paths
release table locks, sync locks, CPU slots and Apache processes; after
``duration`` seconds the tier is marked up again and backed-off clients
find it on their next retry.

Crashing a tier whose machine does not exist in the configuration is a
no-op -- that is exactly the failure-containment property the
``ext_failover`` experiment measures (a dedicated-servlet crash cannot
touch ``WsPhp-DB``, which has no such machine).
"""

from __future__ import annotations

from typing import List

from repro.faults.errors import TierDown
from repro.faults.plan import FaultEvent, FaultPlan
from repro.sim.kernel import Simulator

# Extra same-instant passes to catch interactions that sat on the ready
# queue (uninterruptible) when the crash landed.
_INTERRUPT_PASSES = 3


class FaultInjector:
    """Drives one plan against one site; inert until :meth:`start`."""

    def __init__(self, sim: Simulator, site, plan: FaultPlan):
        self.sim = sim
        self.site = site
        self.plan = plan
        # (time, kind, tier, "down"/"up"/"skipped") -- for reports/tests.
        self.log: List[tuple] = []

    def start(self) -> None:
        """Spawn one driver process per event (no-op for empty plans)."""
        if not self.plan:
            return
        self.site.enable_fault_tracking()
        for event in self.plan.events:
            handler = {"crash": self._crash,
                       "db_conn_glitch": self._db_conn_glitch,
                       "lan_degrade": self._lan_degrade}[event.kind]
            self.sim.spawn(handler(event),
                           name=f"fault.{event.kind}.{event.tier}")

    # -- event drivers -------------------------------------------------------

    def _crash(self, event: FaultEvent):
        sim, site = self.sim, self.site
        yield max(0.0, event.at - sim.now)
        if event.tier not in site.machines:
            # Contained: this configuration has no such machine.
            self.log.append((sim.now, "crash", event.tier, "skipped"))
            return
        site.mark_down(event.tier)
        self.log.append((sim.now, "crash", event.tier, "down"))
        # Abort everything exposed to the crash: the first pass
        # interrupts the waiters, the zero-delay yields let their
        # cleanup run and make ready-queue stragglers interruptible for
        # the next pass.  The site decides who is exposed: with a single
        # machine per tier that is every in-flight interaction, while a
        # clustered site only surrenders the requests routed through the
        # crashed pool member (the rest re-route via the balancer).
        for __ in range(_INTERRUPT_PASSES):
            for proc in site.crash_victims(event.tier):
                proc.interrupt(TierDown(event.tier))
            yield 0.0
        yield event.duration
        site.mark_up(event.tier)
        self.log.append((sim.now, "crash", event.tier, "up"))

    def _db_conn_glitch(self, event: FaultEvent):
        sim, site = self.sim, self.site
        yield max(0.0, event.at - sim.now)
        site.begin_db_glitch()
        self.log.append((sim.now, "db_conn_glitch", event.tier, "down"))
        yield event.duration
        site.end_db_glitch()
        self.log.append((sim.now, "db_conn_glitch", event.tier, "up"))

    def _lan_degrade(self, event: FaultEvent):
        sim, site = self.sim, self.site
        yield max(0.0, event.at - sim.now)
        site.lan.set_bandwidth_factor(event.factor)
        self.log.append((sim.now, "lan_degrade", event.tier, "down"))
        yield event.duration
        site.lan.set_bandwidth_factor(1.0)
        self.log.append((sim.now, "lan_degrade", event.tier, "up"))

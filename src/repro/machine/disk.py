"""A simple disk model: FCFS queue, per-transfer seek plus streaming rate.

Disks are never the bottleneck in the paper's experiments (steady-state
I/O stays under 20 transfers/s), but the model exists so that the metrics
layer can report transfer rates and so that cold-cache effects (the
auction site's initial working-set load) can be exercised.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.sim.resources import Resource


class Disk:
    """5400 rpm commodity disk by default (~9 ms access, ~35 MB/s)."""

    __slots__ = ("sim", "_res", "access_time", "transfer_rate",
                 "transfers", "bytes_moved", "name")

    def __init__(self, sim: Simulator, access_time: float = 0.009,
                 transfer_rate: float = 35e6, name: str = "disk"):
        self.sim = sim
        self._res = Resource(sim, capacity=1, name=name)
        self.access_time = access_time
        self.transfer_rate = transfer_rate
        self.transfers = 0
        self.bytes_moved = 0
        self.name = name

    def io(self, nbytes: int):
        """Process-style: one I/O of ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"negative I/O size: {nbytes}")
        from repro.sim.resources import safe_acquire
        yield from safe_acquire(self._res)
        try:
            yield self.access_time + nbytes / self.transfer_rate
            self.transfers += 1
            self.bytes_moved += nbytes
        finally:
            self._res.release()

"""A round-robin time-slicing CPU with busy-time accounting.

Jobs longer than one quantum are preempted and requeued, approximating
the processor sharing a real OS scheduler provides.  This matters for
the lock results: a 2 ms UPDATE that holds a MyISAM table lock must not
sit behind a full one-second best-sellers aggregation before running --
on real hardware both progress together and the lock is released in
milliseconds.  Short jobs (demand <= quantum, the common case) take the
fast non-preempting path.  A ``speed`` factor scales demands so machines
of different clock rates can share calibrated service demands.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.sim.resources import Resource

DEFAULT_QUANTUM = 0.001


class Cpu:
    """One processor; ``speed`` is relative to the paper's 1.33 GHz box."""

    __slots__ = ("sim", "speed", "quantum", "_res", "_busy_accum",
                 "_busy_since", "name")

    def __init__(self, sim: Simulator, speed: float = 1.0, name: str = "cpu",
                 quantum: float = DEFAULT_QUANTUM):
        if speed <= 0:
            raise ValueError(f"cpu speed must be positive, got {speed}")
        if quantum <= 0:
            raise ValueError(f"cpu quantum must be positive, got {quantum}")
        self.sim = sim
        self.speed = speed
        self.quantum = quantum
        self._res = Resource(sim, capacity=1, name=name)
        self._busy_accum = 0.0
        self._busy_since: float | None = None
        self.name = name

    @property
    def queue_length(self) -> int:
        return self._res.queue_length

    @property
    def busy(self) -> bool:
        return self._res.in_use > 0

    def busy_time(self) -> float:
        """Total virtual seconds this CPU has been executing so far."""
        accum = self._busy_accum
        if self._busy_since is not None:
            accum += self.sim.now - self._busy_since
        return accum

    def execute(self, demand_seconds: float):
        """Process-style: run ``demand_seconds`` of work, preempted every
        quantum if longer.

        Usage: ``yield from cpu.execute(0.005)``.

        With a tracer attached to the simulator and a request in flight,
        the execution is wrapped in a cpu span whose ``demand`` metadata
        carries the deterministic execution time (demand/speed); the
        span's wall time additionally includes run-queue waits, so
        attribution can split service time from CPU queueing.
        """
        tracer = self.sim.tracer
        if tracer is not None:
            rc = tracer.current()
            if rc is not None:
                return self._execute_traced(demand_seconds, rc)
        return self._execute(demand_seconds)

    def _execute_traced(self, demand_seconds: float, rc):
        span = rc.push(self.name, "cpu", self.name.rsplit(".", 1)[0],
                       meta={"demand": demand_seconds / self.speed})
        try:
            yield from self._execute(demand_seconds)
        finally:
            rc.pop(span)

    def _execute(self, demand_seconds: float):
        if demand_seconds < 0:
            raise ValueError(f"negative CPU demand: {demand_seconds}")
        remaining = demand_seconds / self.speed
        while True:
            # try_acquire() first: an idle core is the common case on
            # every grid point below saturation, and it grants the slot
            # without allocating an Event.
            if not self._res.try_acquire():
                ev = self._res.acquire()
                try:
                    yield ev
                except BaseException:
                    # Interrupted while queued: withdraw the request (or
                    # release if the slot was handed over meanwhile).
                    if ev.triggered:
                        self._release()
                    else:
                        self._res.cancel(ev)
                    raise
            if self._busy_since is None:
                self._busy_since = self.sim.now
            this_slice = remaining if remaining <= self.quantum \
                else self.quantum
            try:
                yield this_slice
            except BaseException:
                # Interrupted mid-slice: the slot must not stay busy.
                self._release()
                raise
            remaining -= this_slice
            self._release()
            if remaining <= 0:
                return

    def _release(self) -> None:
        self._res.release()
        if self._res.in_use == 0 and not self._res.queue_length:
            if self._busy_since is not None:
                self._busy_accum += self.sim.now - self._busy_since
                self._busy_since = None

"""A machine bundles a CPU, disk, memory gauge, and network interfaces."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cpu import Cpu
from repro.machine.disk import Disk
from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class MachineSpec:
    """Static capacities of a server machine."""

    cpu_speed: float = 1.0          # relative to the paper's 1.33 GHz Athlon
    memory_mb: int = 768
    disk_access_time: float = 0.009
    disk_transfer_rate: float = 35e6
    nic_bandwidth_bps: float = 100e6  # switched 100 Mbps Ethernet


def paper_machine_spec() -> MachineSpec:
    """The paper's server box: Athlon 1.33 GHz, 768 MB, 5400 rpm, 100 Mbps."""
    return MachineSpec()


class Machine:
    """A simulated host.  NICs are attached when the machine joins a LAN."""

    def __init__(self, sim: Simulator, name: str, spec: MachineSpec | None = None):
        self.sim = sim
        self.name = name
        self.spec = spec or paper_machine_spec()
        self.cpu = Cpu(sim, speed=self.spec.cpu_speed, name=f"{name}.cpu")
        self.disk = Disk(sim, access_time=self.spec.disk_access_time,
                         transfer_rate=self.spec.disk_transfer_rate,
                         name=f"{name}.disk")
        self.memory_used_mb: float = 0.0
        # Set by Lan.attach().
        self.nic = None

    def allocate_memory(self, mb: float) -> None:
        """Record a resident-memory allocation (a gauge, not a constraint:
        the paper verifies memory is never the bottleneck, and so do we via
        the metrics layer)."""
        if mb < 0:
            raise ValueError(f"negative allocation: {mb}")
        self.memory_used_mb += mb

    def free_memory(self, mb: float) -> None:
        self.memory_used_mb = max(0.0, self.memory_used_mb - mb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Machine {self.name}>"

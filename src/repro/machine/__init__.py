"""Simulated hardware: machines with a CPU, a disk, memory and NICs.

The paper's testbed is four identical commodity boxes (1.33 GHz Athlon,
768 MB RAM, 5400 rpm disk) on switched 100 Mbps Ethernet; a
:class:`MachineSpec` captures exactly those capacities and
:func:`paper_machine_spec` returns them.
"""

from repro.machine.cpu import Cpu
from repro.machine.disk import Disk
from repro.machine.machine import Machine, MachineSpec, paper_machine_spec

__all__ = ["Cpu", "Disk", "Machine", "MachineSpec", "paper_machine_spec"]

"""Extension experiment: availability under tier crash-and-restart.

The paper compares the six configurations only in steady state; this
experiment asks the production question the placement choice also
decides: *what happens when a machine dies?*  For every configuration it
runs a closed-loop population with client-side deadlines/retries and
admission control, kills one tier mid-measurement, restarts it, and
reports per configuration:

* goodput (successful interactions/minute) before, during, and after
  the outage,
* the error-rate breakdown -- deadline timeouts, mid-flight aborts,
  fast rejections,
* the time from restart until goodput is back to 90% of its pre-fault
  level,
* whether the fault was *contained*: crashing the dedicated servlet
  machine cannot touch ``WsPhp-DB`` or the co-located servlet
  configurations, because no such machine exists there -- tier
  separation trades peak throughput for a larger failure blast radius.

Run:  python -m repro.experiments.ext_failover [--tier db|servlet|web|ejb]
                                               [--scale tiny|quick|full]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.common import get_app, get_profiles
from repro.faults.injector import FaultInjector
from repro.faults.plan import TIERS, FaultPlan
from repro.metrics.availability import (
    AvailabilitySampler,
    FailoverReport,
    FailoverSummary,
    summarize_failover,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.topology.configs import ALL_CONFIGURATIONS
from repro.topology.simulation import SimulatedSite
from repro.web.server import WebServerConfig
from repro.workload.client import ClientPopulation, RetryPolicy
from repro.workload.markov import choose_interaction


@dataclass(frozen=True)
class FailoverScale:
    """Timeline and load for one failover run (virtual seconds)."""

    clients: int          # non-EJB configurations
    ejb_clients: int      # the EJB configuration runs at lower load
    ramp_up: float
    pre: float            # steady measurement before the crash
    outage: float         # how long the tier stays down
    post: float           # measurement after the restart
    window: float         # availability sampling window


SCALES = {
    "tiny": FailoverScale(clients=60, ejb_clients=20, ramp_up=80.0,
                          pre=80.0, outage=40.0, post=160.0, window=10.0),
    "quick": FailoverScale(clients=100, ejb_clients=30, ramp_up=120.0,
                           pre=120.0, outage=60.0, post=240.0, window=10.0),
    "full": FailoverScale(clients=200, ejb_clients=60, ramp_up=300.0,
                          pre=240.0, outage=120.0, post=480.0, window=15.0),
}

# The resilience knobs the availability runs use (the steady-state
# figures keep running without any of this).  The 20 s deadline tracks
# TPC-W's loosest WIRT limits: tight enough to cut off a hung tier,
# loose enough that the bookstore's natural lock-contention tail (and
# the EJB flavor's slow pages) are not killed pre-fault.
RETRY_POLICY = RetryPolicy(deadline=20.0, max_retries=3, backoff_base=0.5,
                           backoff_cap=10.0, retry_budget=50)
WEB_CONFIG = WebServerConfig(accept_queue_limit=256)


def run_failover_point(config, profile, mix, ssl_interactions,
                       tier: str, scale: FailoverScale,
                       seed: int = 42) -> FailoverSummary:
    """One configuration through one crash/restart cycle."""
    sim = Simulator()
    site = SimulatedSite(sim, config, profile,
                         ssl_interactions=ssl_interactions,
                         web_config=WEB_CONFIG)
    contained = tier not in site.machines
    clients = scale.ejb_clients if config.flavor == "ejb" else scale.clients
    population = ClientPopulation(
        sim, clients, mix, site, RngStreams(seed), choose_interaction,
        retry=RETRY_POLICY)
    fault_start = scale.ramp_up + scale.pre
    fault_end = fault_start + scale.outage
    plan = FaultPlan.single_crash(tier, at=fault_start,
                                  duration=scale.outage)
    FaultInjector(sim, site, plan).start()
    population.start()

    sim.run(until=scale.ramp_up)
    population.begin_measurement()
    sampler = AvailabilitySampler(sim, population, interval=scale.window)
    sampler.start()
    sim.run(until=fault_end + scale.post)
    stats = population.end_measurement()
    sampler.flush()

    return summarize_failover(config.name, tier, sampler.windows,
                              fault_start, fault_end, stats,
                              contained=contained)


def _failover_task(task) -> FailoverSummary:
    """Worker entry for the parallel path: profiles come from the
    worker's warm cache, so tasks ship only names and scalars."""
    config, app_name, mix_name, tier, scale, seed = task
    app = get_app(app_name)
    profile = get_profiles(app_name)[config.profile_flavor]
    return run_failover_point(config, profile, app.mix(mix_name),
                              app.SSL_INTERACTIONS, tier, scale, seed=seed)


def run_failover(tier: str = "db", scale: str = "tiny",
                 app_name: str = "bookstore", mix_name: str = "shopping",
                 seed: int = 42,
                 configurations: Optional[Tuple[str, ...]] = None,
                 jobs: Optional[int] = None) -> FailoverReport:
    """The full experiment: all six configurations through one cycle.

    ``jobs`` > 1 runs the per-configuration crash/restart cycles in
    parallel (they are independent simulations); summaries are merged
    in configuration order, identical to the serial output.
    """
    if tier not in TIERS:
        raise KeyError(f"unknown tier {tier!r}; have {TIERS}")
    timeline = SCALES[scale]
    report = FailoverReport(
        title=f"Availability under {tier} crash/restart "
              f"({app_name}/{mix_name}, scale={scale})",
        tier=tier)
    todo = configurations or tuple(c.name for c in ALL_CONFIGURATIONS)
    tasks = [(config, app_name, mix_name, tier, timeline, seed)
             for config in ALL_CONFIGURATIONS if config.name in todo]
    from repro.harness.parallel import parallel_map
    report.summaries.extend(
        parallel_map(_failover_task, tasks, jobs=jobs,
                     app_names=(app_name,)))
    return report


def render(tier: str = "db", scale: str = "tiny", **kwargs) -> str:
    return run_failover(tier=tier, scale=scale, **kwargs).render()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Failover experiment: crash and restart one tier "
                    "mid-run for all six configurations")
    parser.add_argument("--tier", default="db", choices=TIERS,
                        help="which tier to crash (default: db)")
    parser.add_argument("--scale", default="quick", choices=sorted(SCALES),
                        help="load level and timeline (default: quick)")
    parser.add_argument("--app", default="bookstore",
                        choices=("bookstore", "auction", "bboard"))
    parser.add_argument("--mix", default=None,
                        help="workload mix (default: app's headline mix)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the per-configuration "
                             "runs (default: serial; 0 = one per CPU)")
    args = parser.parse_args(argv)
    mix_name = args.mix or {"bookstore": "shopping", "auction": "bidding",
                            "bboard": "submission"}[args.app]
    print(render(tier=args.tier, scale=args.scale, app_name=args.app,
                 mix_name=mix_name, seed=args.seed, jobs=args.jobs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Regenerate the bookstore CPU utilization at peak, ordering mix (Figure 10)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig10"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

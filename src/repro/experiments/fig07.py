"""Regenerate the bookstore throughput vs clients, browsing mix (Figure 7)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig07"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

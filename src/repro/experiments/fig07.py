"""Regenerate the bookstore throughput vs clients, browsing mix (Figure 7)."""

from repro.experiments.registry import main, render_figure, run_figure

FIGURE_ID = "fig07"


def run(full: bool = False):
    """Run the sweep and return the ExperimentReport."""
    return run_figure(FIGURE_ID, full=full)


def render(full: bool = False) -> str:
    """The figure as printable text."""
    return render_figure(FIGURE_ID, full=full)


if __name__ == "__main__":
    main(FIGURE_ID)

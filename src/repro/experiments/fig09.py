"""Regenerate the bookstore throughput vs clients, ordering mix (Figure 9)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig09"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

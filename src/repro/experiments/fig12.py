"""Regenerate the auction CPU utilization at peak, bidding mix (Figure 12)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig12"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

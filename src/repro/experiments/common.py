"""Shared machinery for figure experiments: profile caches, grids, runs.

The declarative figure entries themselves (BOOKSTORE_SHOPPING, ...) live
in :mod:`repro.experiments.registry`; this module holds the engine that
interprets them.  The old spec-constant names are still importable from
here for back compatibility (module ``__getattr__`` forwards them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.apps import build_app
from repro.harness.experiment import ExperimentSpec, run_figure
from repro.harness.profiles import AppProfile, profile_all_flavors
from repro.metrics.report import ExperimentReport
from repro.topology.configs import ALL_CONFIGURATIONS, Configuration

# Profiles are expensive to capture (the EJB best-sellers walk in
# particular), so they are cached per process.  Apps themselves are
# cached inside repro.apps.build_app.
_PROFILE_CACHE: Dict[str, Dict[str, AppProfile]] = {}
_REPORT_CACHE: Dict[tuple, ExperimentReport] = {}


def get_app(app_name: str):
    return build_app(app_name)


def get_profiles(app_name: str, repetitions: int = 3) -> Dict[str, AppProfile]:
    profiles = _PROFILE_CACHE.get(app_name)
    if profiles is None:
        profiles = profile_all_flavors(get_app(app_name),
                                       repetitions=repetitions)
        _PROFILE_CACHE[app_name] = profiles
    return profiles


@dataclass(frozen=True)
class Phases:
    """Experiment phase durations (virtual seconds)."""

    ramp_up: float
    measure: float
    ramp_down: float


# The paper's phases are 1/20/1 min (bookstore) and 5/30/5 min (auction).
# Because simulated response times grow long past saturation, ramp-up is
# what actually needs to be generous; these defaults were validated to
# reach steady state on every grid point.
PAPER_PHASES = {"bookstore": Phases(500.0, 1200.0, 30.0),
                "auction": Phases(300.0, 1800.0, 30.0),
                "bboard": Phases(300.0, 1800.0, 30.0)}
QUICK_PHASES = {"bookstore": Phases(400.0, 450.0, 10.0),
                "auction": Phases(120.0, 180.0, 10.0),
                "bboard": Phases(120.0, 180.0, 10.0)}


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one throughput/CPU figure pair."""

    throughput_figure: str          # e.g. "fig05"
    cpu_figure: str                 # e.g. "fig06"
    title: str
    app_name: str
    mix_name: str
    # Client grids: per configuration name, (quick grid, full grid).
    grids: Dict[str, Tuple[tuple, tuple]] = field(default_factory=dict)

    def grid_for(self, config_name: str, full: bool) -> tuple:
        quick, complete = self.grids[config_name]
        return complete if full else quick


def _grids(main_quick, main_full, ejb_quick, ejb_full) -> Dict[str, tuple]:
    grids = {}
    for config in ALL_CONFIGURATIONS:
        if config.flavor == "ejb":
            grids[config.name] = (ejb_quick, ejb_full)
        else:
            grids[config.name] = (main_quick, main_full)
    return grids


def normalize_configurations(configurations: Optional[tuple]) \
        -> Optional[tuple]:
    """Sort + dedupe a configuration-name subset (None stays None).

    Cache keys use the normalized form, so permuted or repeated subsets
    hit the same entry instead of re-running the sweep.
    """
    if configurations is None:
        return None
    return tuple(sorted(set(configurations)))


def build_figure_specs(spec: FigureSpec, full: bool = False,
                       configurations: Optional[tuple] = None,
                       phases: Optional[Phases] = None,
                       seed: int = 42):
    """Materialize one figure's (specs, client grids) per configuration.

    Shared by :func:`run_figure_spec` and the tracing CLI, which needs
    the per-configuration ExperimentSpec to re-run individual points.
    """
    app = get_app(spec.app_name)
    profiles = get_profiles(spec.app_name)
    mix = app.mix(spec.mix_name)
    if phases is None:
        phases = (PAPER_PHASES if full else QUICK_PHASES)[spec.app_name]
    todo = configurations or tuple(c.name for c in ALL_CONFIGURATIONS)
    specs_by_config = {}
    counts_by_config = {}
    for config in ALL_CONFIGURATIONS:
        if config.name not in todo:
            continue
        specs_by_config[config.name] = ExperimentSpec(
            config=config, profile=profiles[config.profile_flavor],
            mix=mix, clients=1,
            ramp_up=phases.ramp_up, measure=phases.measure,
            ramp_down=phases.ramp_down, seed=seed,
            ssl_interactions=app.SSL_INTERACTIONS,
            app_name=spec.app_name)
        counts_by_config[config.name] = spec.grid_for(config.name, full)
    return specs_by_config, counts_by_config


def run_figure_spec(spec: FigureSpec, full: bool = False,
                    configurations: Optional[tuple] = None,
                    phases: Optional[Phases] = None,
                    seed: int = 42,
                    jobs: Optional[int] = None) -> ExperimentReport:
    """Run (or reuse) the sweep behind one figure pair.

    ``jobs`` selects the sweep runner: None/1 is the serial legacy
    path, > 1 fans the whole figure grid out over a process pool
    (repro.harness.parallel).  Both produce bit-identical reports
    under pinned seeds, so the cache key ignores ``jobs``.
    """
    configurations = normalize_configurations(configurations)
    cache_key = (spec.throughput_figure, full, configurations, phases, seed)
    cached = _REPORT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    specs_by_config, counts_by_config = build_figure_specs(
        spec, full=full, configurations=configurations, phases=phases,
        seed=seed)
    report = run_figure(
        title=spec.title,
        workload=f"{spec.app_name}/{spec.mix_name}",
        specs_by_config=specs_by_config,
        client_counts_by_config=counts_by_config, jobs=jobs)
    _REPORT_CACHE[cache_key] = report
    return report


def clear_caches() -> None:
    """Forget cached apps/profiles/reports (tests use this)."""
    from repro.apps import clear_app_cache
    _PROFILE_CACHE.clear()
    _REPORT_CACHE.clear()
    clear_app_cache()


# -- back compatibility --------------------------------------------------------
#
# The declarative spec constants moved to repro.experiments.registry;
# importing them from here keeps working (lazily, so the two modules
# can import each other without a cycle).

_MOVED_TO_REGISTRY = ("BOOKSTORE_SHOPPING", "BOOKSTORE_BROWSING",
                      "BOOKSTORE_ORDERING", "AUCTION_BIDDING",
                      "AUCTION_BROWSING", "BBOARD_SUBMISSION",
                      "ALL_FIGURE_SPECS")


def __getattr__(name: str):
    if name in _MOVED_TO_REGISTRY:
        from repro.experiments import registry
        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

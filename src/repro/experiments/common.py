"""Shared machinery for figure experiments: profile caches, grids, runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.apps.auction import AuctionApp, build_auction_database
from repro.apps.bboard import BulletinBoardApp, build_bboard_database
from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.harness.experiment import ExperimentSpec, run_figure
from repro.harness.profiles import AppProfile, profile_all_flavors
from repro.metrics.report import ExperimentReport
from repro.topology.configs import ALL_CONFIGURATIONS, Configuration

# Profiles are expensive to capture (the EJB best-sellers walk in
# particular), so they are cached per process.
_PROFILE_CACHE: Dict[str, Dict[str, AppProfile]] = {}
_APP_CACHE: Dict[str, object] = {}
_REPORT_CACHE: Dict[tuple, ExperimentReport] = {}


def get_app(app_name: str):
    app = _APP_CACHE.get(app_name)
    if app is None:
        if app_name == "bookstore":
            app = BookstoreApp(build_bookstore_database())
        elif app_name == "auction":
            app = AuctionApp(build_auction_database())
        elif app_name == "bboard":
            app = BulletinBoardApp(build_bboard_database())
        else:
            raise KeyError(f"unknown application {app_name!r}")
        _APP_CACHE[app_name] = app
    return app


def get_profiles(app_name: str, repetitions: int = 3) -> Dict[str, AppProfile]:
    profiles = _PROFILE_CACHE.get(app_name)
    if profiles is None:
        profiles = profile_all_flavors(get_app(app_name),
                                       repetitions=repetitions)
        _PROFILE_CACHE[app_name] = profiles
    return profiles


@dataclass(frozen=True)
class Phases:
    """Experiment phase durations (virtual seconds)."""

    ramp_up: float
    measure: float
    ramp_down: float


# The paper's phases are 1/20/1 min (bookstore) and 5/30/5 min (auction).
# Because simulated response times grow long past saturation, ramp-up is
# what actually needs to be generous; these defaults were validated to
# reach steady state on every grid point.
PAPER_PHASES = {"bookstore": Phases(500.0, 1200.0, 30.0),
                "auction": Phases(300.0, 1800.0, 30.0),
                "bboard": Phases(300.0, 1800.0, 30.0)}
QUICK_PHASES = {"bookstore": Phases(400.0, 450.0, 10.0),
                "auction": Phases(120.0, 180.0, 10.0),
                "bboard": Phases(120.0, 180.0, 10.0)}


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one throughput/CPU figure pair."""

    throughput_figure: str          # e.g. "fig05"
    cpu_figure: str                 # e.g. "fig06"
    title: str
    app_name: str
    mix_name: str
    # Client grids: per configuration name, (quick grid, full grid).
    grids: Dict[str, Tuple[tuple, tuple]] = field(default_factory=dict)

    def grid_for(self, config_name: str, full: bool) -> tuple:
        quick, complete = self.grids[config_name]
        return complete if full else quick


def _grids(main_quick, main_full, ejb_quick, ejb_full) -> Dict[str, tuple]:
    grids = {}
    for config in ALL_CONFIGURATIONS:
        if config.flavor == "ejb":
            grids[config.name] = (ejb_quick, ejb_full)
        else:
            grids[config.name] = (main_quick, main_full)
    return grids


BOOKSTORE_SHOPPING = FigureSpec(
    throughput_figure="fig05", cpu_figure="fig06",
    title="Online bookstore throughput (interactions/minute), shopping mix",
    app_name="bookstore", mix_name="shopping",
    grids=_grids((200, 600, 1400), (100, 200, 400, 600, 1000, 1400),
                 (100, 350), (50, 100, 200, 350, 500)))

BOOKSTORE_BROWSING = FigureSpec(
    throughput_figure="fig07", cpu_figure="fig08",
    title="Online bookstore throughput (interactions/minute), browsing mix",
    app_name="bookstore", mix_name="browsing",
    grids=_grids((150, 400, 1000), (75, 150, 300, 600, 1000, 1400),
                 (60, 200), (30, 60, 120, 200, 300)))

BOOKSTORE_ORDERING = FigureSpec(
    throughput_figure="fig09", cpu_figure="fig10",
    title="Online bookstore throughput (interactions/minute), ordering mix",
    app_name="bookstore", mix_name="ordering",
    grids=_grids((600, 1500, 3000), (300, 600, 1000, 1500, 2200, 3000),
                 (150, 500), (75, 150, 300, 500, 800)))

AUCTION_BIDDING = FigureSpec(
    throughput_figure="fig11", cpu_figure="fig12",
    title="Auction site throughput (interactions/minute), bidding mix",
    app_name="auction", mix_name="bidding",
    grids=_grids((400, 1100, 1600), (200, 400, 700, 1100, 1400, 1700),
                 (200, 600), (100, 200, 350, 500, 700)))

AUCTION_BROWSING = FigureSpec(
    throughput_figure="fig13", cpu_figure="fig14",
    title="Auction site throughput (interactions/minute), browsing mix",
    app_name="auction", mix_name="browsing",
    grids=_grids((800, 2500, 7000), (500, 1000, 2500, 5000, 8000, 12000),
                 (200, 600), (100, 250, 400, 600)))

ALL_FIGURE_SPECS = (BOOKSTORE_SHOPPING, BOOKSTORE_BROWSING,
                    BOOKSTORE_ORDERING, AUCTION_BIDDING, AUCTION_BROWSING)

# Extension (not a paper figure): the bulletin-board benchmark the paper
# predicts would behave like the auction site.  Used by
# repro.experiments.ext_bboard.
BBOARD_SUBMISSION = FigureSpec(
    throughput_figure="extB1", cpu_figure="extB2",
    title="Bulletin board throughput (interactions/minute), submission mix "
          "(extension)",
    app_name="bboard", mix_name="submission",
    grids=_grids((400, 1100, 1600), (200, 400, 700, 1100, 1400, 1700),
                 (200, 600), (100, 200, 350, 500, 700)))


def normalize_configurations(configurations: Optional[tuple]) \
        -> Optional[tuple]:
    """Sort + dedupe a configuration-name subset (None stays None).

    Cache keys use the normalized form, so permuted or repeated subsets
    hit the same entry instead of re-running the sweep.
    """
    if configurations is None:
        return None
    return tuple(sorted(set(configurations)))


def run_figure_spec(spec: FigureSpec, full: bool = False,
                    configurations: Optional[tuple] = None,
                    phases: Optional[Phases] = None,
                    seed: int = 42,
                    jobs: Optional[int] = None) -> ExperimentReport:
    """Run (or reuse) the sweep behind one figure pair.

    ``jobs`` selects the sweep runner: None/1 is the serial legacy
    path, > 1 fans the whole figure grid out over a process pool
    (repro.harness.parallel).  Both produce bit-identical reports
    under pinned seeds, so the cache key ignores ``jobs``.
    """
    configurations = normalize_configurations(configurations)
    cache_key = (spec.throughput_figure, full, configurations, phases, seed)
    cached = _REPORT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    app = get_app(spec.app_name)
    profiles = get_profiles(spec.app_name)
    mix = app.mix(spec.mix_name)
    if phases is None:
        phases = (PAPER_PHASES if full else QUICK_PHASES)[spec.app_name]
    todo = configurations or tuple(c.name for c in ALL_CONFIGURATIONS)
    specs_by_config = {}
    counts_by_config = {}
    for config in ALL_CONFIGURATIONS:
        if config.name not in todo:
            continue
        specs_by_config[config.name] = ExperimentSpec(
            config=config, profile=profiles[config.profile_flavor],
            mix=mix, clients=1,
            ramp_up=phases.ramp_up, measure=phases.measure,
            ramp_down=phases.ramp_down, seed=seed,
            ssl_interactions=app.SSL_INTERACTIONS,
            app_name=spec.app_name)
        counts_by_config[config.name] = spec.grid_for(config.name, full)
    report = run_figure(
        title=spec.title,
        workload=f"{spec.app_name}/{spec.mix_name}",
        specs_by_config=specs_by_config,
        client_counts_by_config=counts_by_config, jobs=jobs)
    _REPORT_CACHE[cache_key] = report
    return report


def clear_caches() -> None:
    """Forget cached apps/profiles/reports (tests use this)."""
    _PROFILE_CACHE.clear()
    _APP_CACHE.clear()
    _REPORT_CACHE.clear()

"""Extension experiment: SLOs under open-loop overload.

The paper's closed loop can never offer the site more load than its
clients generate; this experiment drives each of the six configurations
with *open-loop* session arrivals (:mod:`repro.overload`) and sweeps the
arrival rate through saturation, reporting per offered-load point the
goodput, latency percentiles, windowed SLO-violation fraction, and the
work the graceful-degradation layer did (backpressure rejections,
degraded pages).  The knee of the goodput curve -- the highest rate
still meeting the SLO -- is the open-loop counterpart of the paper's
closed-loop saturation client count.

A second scenario composes overload with :mod:`repro.faults`: a flash
crowd hits a clustered ``Ws-Servlet-DB`` deployment (2 web front ends,
2 servlet containers, 1 DB read replica) and the read replica crashes
mid-burst.  The run reports the SLO-compliance fraction through the
incident and the time from the disturbance clearing until the site is
back in compliance.

Run:  python -m repro slo [--scale tiny|quick|full] [--jobs N]
      python -m repro slo --chaos-only
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import get_app, get_profiles
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.metrics.slo import SloSpec, SloSummary, time_to_recover
from repro.overload.arrivals import (
    AbandonmentSpec,
    FlashCrowdProfile,
    PoissonProfile,
    ThinkTimeModel,
)
from repro.overload.degradation import DegradationPolicy
from repro.overload.openloop import OverloadSpec
from repro.topology.configs import ALL_CONFIGURATIONS, configuration_by_name
from repro.web.server import WebServerConfig
from repro.workload.client import RetryPolicy


@dataclass(frozen=True)
class SloScale:
    """Offered-load grid and timeline for one sweep (virtual seconds)."""

    rates: Tuple[float, ...]       # session arrivals/s, non-EJB configs
    ejb_rates: Tuple[float, ...]   # the EJB flavor saturates earlier
    ramp_up: float
    measure: float
    ramp_down: float
    session_mean: float            # mean session duration
    window: float = 1.0            # SLO window width
    # Chaos scenario: flash crowd + replica crash on a clustered site.
    chaos_rate: float = 2.0        # baseline session arrivals/s
    chaos_pre: float = 40.0        # steady time before the burst
    chaos_burst: float = 40.0      # burst duration
    chaos_multiplier: float = 8.0  # burst rate / baseline rate
    chaos_crash_delay: float = 10.0   # burst start -> replica crash
    chaos_outage: float = 20.0     # replica downtime
    chaos_post: float = 120.0      # measurement after the disturbance


SCALES: Dict[str, SloScale] = {
    "tiny": SloScale(rates=(0.5, 1.5), ejb_rates=(0.2, 0.6),
                     ramp_up=30.0, measure=60.0, ramp_down=5.0,
                     session_mean=30.0, chaos_pre=30.0,
                     chaos_burst=30.0, chaos_post=80.0),
    "quick": SloScale(rates=(0.5, 1.0, 2.0, 4.0),
                      ejb_rates=(0.2, 0.5, 1.0),
                      ramp_up=60.0, measure=120.0, ramp_down=10.0,
                      session_mean=60.0),
    "full": SloScale(rates=(0.5, 1.0, 2.0, 4.0, 8.0, 12.0),
                     ejb_rates=(0.2, 0.5, 1.0, 2.0, 4.0),
                     ramp_up=120.0, measure=300.0, ramp_down=15.0,
                     session_mean=90.0, chaos_pre=60.0, chaos_burst=60.0,
                     chaos_outage=30.0, chaos_post=240.0),
}

# Shared resilience knobs.  The SLO is TPC-W-flavored: 95% of requests
# inside 2 s, judged per 1 s window.
SLO = SloSpec(latency_bound=2.0, percentile=0.95, window=1.0)
RETRY_POLICY = RetryPolicy(deadline=10.0, max_retries=2, backoff_base=0.25,
                           backoff_cap=4.0, retry_budget=20)
WEB_CONFIG = WebServerConfig(accept_queue_limit=256)
ABANDONMENT = AbandonmentSpec(patience=8.0, probability=0.5)


def _overload_spec(arrivals, scale: SloScale,
                   think: Optional[ThinkTimeModel] = None) -> OverloadSpec:
    return OverloadSpec(
        arrivals=arrivals,
        think=think or ThinkTimeModel(),   # the paper's 7 s exponential
        session_mean=scale.session_mean,
        abandonment=ABANDONMENT,
        max_concurrent_sessions=4096)


def _point_spec(config, profile, mix, ssl_interactions, overload,
                scale: SloScale, seed: int, measure: Optional[float] = None,
                ramp_down: Optional[float] = None) -> ExperimentSpec:
    return ExperimentSpec(
        config=config, profile=profile, mix=mix, clients=0,
        ramp_up=scale.ramp_up,
        measure=scale.measure if measure is None else measure,
        ramp_down=scale.ramp_down if ramp_down is None else ramp_down,
        seed=seed, ssl_interactions=ssl_interactions,
        retry=RETRY_POLICY, web_config=WEB_CONFIG,
        overload=overload,
        degradation=DegradationPolicy(),
        slo=SloSpec(latency_bound=SLO.latency_bound,
                    percentile=SLO.percentile, window=scale.window))


@dataclass
class SloPoint:
    """One (configuration, offered rate) result."""

    configuration: str
    rate: float                    # session arrivals/s asked for
    summary: SloSummary
    rejections: int = 0            # fast 5xx the client saw
    degraded_served: int = 0       # browse pages served degraded
    breaker_trips: int = 0
    turned_away: int = 0           # arrivals over the connection cap


def run_slo_point(config, profile, mix, ssl_interactions, rate: float,
                  scale: SloScale, seed: int = 42) -> SloPoint:
    """One configuration at one offered session-arrival rate."""
    overload = _overload_spec(PoissonProfile(rate=rate), scale)
    spec = _point_spec(config, profile, mix, ssl_interactions, overload,
                       scale, seed)
    point = run_experiment(spec)
    stats = point.overload_stats
    degradation = getattr(point, "degradation", None)
    return SloPoint(
        configuration=config.name, rate=rate, summary=point.slo,
        rejections=stats.rejections,
        degraded_served=degradation.degraded_served if degradation else 0,
        breaker_trips=(degradation.breaker.trips
                       if degradation and degradation.breaker else 0),
        turned_away=stats.turned_away)


def _slo_task(task) -> SloPoint:
    """Worker entry: profiles rehydrate from the worker's warm cache."""
    config, app_name, mix_name, rate, scale, seed = task
    app = get_app(app_name)
    profile = get_profiles(app_name)[config.profile_flavor]
    return run_slo_point(config, profile, app.mix(mix_name),
                         app.SSL_INTERACTIONS, rate, scale, seed=seed)


@dataclass
class ChaosSummary:
    """The flash-crowd + replica-crash incident, folded."""

    configuration: str
    burst_start: float
    burst_end: float
    crash_start: float
    crash_end: float
    summary: SloSummary                  # over the whole measurement
    recovery_time_s: Optional[float]     # disturbance end -> compliant
    degraded_served: int = 0
    breaker_trips: int = 0
    rejections: int = 0
    abandoned_sessions: int = 0


def run_chaos(scale: SloScale, seed: int = 42,
              app_name: str = "bookstore",
              mix_name: str = "shopping") -> ChaosSummary:
    """Flash crowd + read-replica crash on a clustered Ws-Servlet-DB."""
    from repro.cluster import ClusterSpec, clustered
    from repro.faults.plan import FaultPlan

    app = get_app(app_name)
    profiles = get_profiles(app_name)
    base = configuration_by_name("Ws-Servlet-DB")
    config = clustered(base, ClusterSpec(web=2, gen=2, db_replicas=1))

    burst_start = scale.ramp_up + scale.chaos_pre
    burst_end = burst_start + scale.chaos_burst
    crash_start = burst_start + scale.chaos_crash_delay
    crash_end = crash_start + scale.chaos_outage
    disturbance_end = max(burst_end, crash_end)
    measure = scale.chaos_pre + scale.chaos_burst + \
        max(0.0, crash_end - burst_end) + scale.chaos_post

    overload = _overload_spec(
        FlashCrowdProfile(base_rate=scale.chaos_rate,
                          burst_start=burst_start,
                          burst_duration=scale.chaos_burst,
                          multiplier=scale.chaos_multiplier),
        scale,
        # Heavy-tailed dwell: the crowd lingers after the burst.
        think=ThinkTimeModel(distribution="lognormal", mean=7.0,
                             sigma=1.5))
    spec = _point_spec(config, profiles[base.profile_flavor],
                       app.mix(mix_name), app.SSL_INTERACTIONS, overload,
                       scale, seed, measure=measure,
                       ramp_down=scale.ramp_down)
    spec.fault_plan = FaultPlan.single_crash("db.r1", at=crash_start,
                                             duration=scale.chaos_outage)
    point = run_experiment(spec)
    stats = point.overload_stats
    degradation = getattr(point, "degradation", None)
    recovery = time_to_recover(point.slo_windows, spec.slo,
                               disturbance_end)
    return ChaosSummary(
        configuration=config.name,
        burst_start=burst_start, burst_end=burst_end,
        crash_start=crash_start, crash_end=crash_end,
        summary=point.slo, recovery_time_s=recovery,
        degraded_served=degradation.degraded_served if degradation else 0,
        breaker_trips=(degradation.breaker.trips
                       if degradation and degradation.breaker else 0),
        rejections=stats.rejections,
        abandoned_sessions=stats.sessions_abandoned)


@dataclass
class SloReport:
    """Everything ``python -m repro slo`` prints."""

    title: str
    scale: str
    points: Dict[str, List[SloPoint]] = field(default_factory=dict)
    chaos: Optional[ChaosSummary] = None

    def render(self) -> str:
        lines = [self.title, ""]
        header = (f"  {'rate/s':>7} {'offered/s':>9} {'goodput/s':>9} "
                  f"{'p50ms':>7} {'p95ms':>7} {'p99ms':>7} {'viol%':>6} "
                  f"{'rej':>6} {'degr':>6} {'trips':>5}")
        for name, points in self.points.items():
            lines.append(f"{name}")
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            best = max((p.summary.goodput_per_s for p in points),
                       default=0.0)
            for p in points:
                s = p.summary
                knee = " *" if s.goodput_per_s == best and best > 0 else ""
                lines.append(
                    f"  {p.rate:>7.2f} {s.offered_per_s:>9.2f} "
                    f"{s.goodput_per_s:>9.2f} "
                    f"{_ms(s.p50):>7} {_ms(s.p95):>7} {_ms(s.p99):>7} "
                    f"{100 * s.violation_fraction:>6.1f} "
                    f"{p.rejections:>6} {p.degraded_served:>6} "
                    f"{p.breaker_trips:>5}{knee}")
            lines.append("")
        if self.points:
            lines.append("offered/goodput in interactions/s over stable "
                         "1 s windows; viol% = windows missing the "
                         f"{SLO.percentile:.0%} < {SLO.latency_bound:.0f} s "
                         "objective; * marks the goodput knee.")
            lines.append("")
        if self.chaos is not None:
            c = self.chaos
            lines.append(f"chaos: flash crowd + replica crash on "
                         f"{c.configuration}")
            lines.append(f"  burst  {c.burst_start:.0f}s -> "
                         f"{c.burst_end:.0f}s, replica db.r1 down "
                         f"{c.crash_start:.0f}s -> {c.crash_end:.0f}s")
            recover = ("never (within the run)"
                       if c.recovery_time_s is None
                       else f"{c.recovery_time_s:.0f}s after the "
                            f"disturbance cleared")
            lines.append(f"  SLO compliance through the incident: "
                         f"{100 * c.summary.compliant_fraction:.1f}% of "
                         f"windows; goodput {c.summary.goodput_per_s:.2f}"
                         f"/s of {c.summary.offered_per_s:.2f}/s offered")
            lines.append(f"  back in compliance: {recover}")
            lines.append(f"  degraded pages {c.degraded_served}, breaker "
                         f"trips {c.breaker_trips}, rejections "
                         f"{c.rejections}, sessions abandoned "
                         f"{c.abandoned_sessions}")
        return "\n".join(lines)


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{1000 * seconds:.0f}"


def run_slo(scale: str = "tiny", app_name: str = "bookstore",
            mix_name: str = "shopping", seed: int = 42,
            configurations: Optional[Tuple[str, ...]] = None,
            jobs: Optional[int] = None, chaos: bool = True,
            sweep: bool = True) -> SloReport:
    """The full experiment: offered-load sweeps plus the chaos run."""
    timeline = SCALES[scale]
    report = SloReport(
        title=f"Open-loop SLO sweep ({app_name}/{mix_name}, "
              f"scale={scale}, SLO: p{100 * SLO.percentile:.0f} < "
              f"{SLO.latency_bound:.0f}s per {timeline.window:.0f}s "
              f"window)",
        scale=scale)
    if sweep:
        todo = configurations or tuple(c.name for c in ALL_CONFIGURATIONS)
        tasks = []
        for config in ALL_CONFIGURATIONS:
            if config.name not in todo:
                continue
            rates = timeline.ejb_rates if config.flavor == "ejb" \
                else timeline.rates
            for rate in rates:
                tasks.append((config, app_name, mix_name, rate, timeline,
                              seed))
        from repro.harness.parallel import parallel_map
        for point in parallel_map(_slo_task, tasks, jobs=jobs,
                                  app_names=(app_name,)):
            report.points.setdefault(point.configuration, []).append(point)
    if chaos:
        report.chaos = run_chaos(timeline, seed=seed, app_name=app_name,
                                 mix_name=mix_name)
    return report


def render(**kwargs) -> str:
    return run_slo(**kwargs).render()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Open-loop overload experiment: offered-load sweep "
                    "through saturation plus a flash-crowd + replica-"
                    "crash chaos run")
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument("--app", default="bookstore",
                        choices=("bookstore", "auction", "bboard"))
    parser.add_argument("--mix", default=None,
                        help="workload mix (default: app's headline mix)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--no-chaos", action="store_true",
                        help="skip the flash-crowd + crash scenario")
    parser.add_argument("--chaos-only", action="store_true",
                        help="run only the chaos scenario")
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args(argv)
    mix_name = args.mix or {"bookstore": "shopping", "auction": "bidding",
                            "bboard": "submission"}[args.app]
    print(render(scale=args.scale, app_name=args.app, mix_name=mix_name,
                 seed=args.seed, jobs=args.jobs,
                 chaos=not args.no_chaos, sweep=not args.chaos_only))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

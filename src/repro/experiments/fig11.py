"""Regenerate the auction throughput vs clients, bidding mix (Figure 11)."""

from repro.experiments.registry import main, render_figure, run_figure

FIGURE_ID = "fig11"


def run(full: bool = False):
    """Run the sweep and return the ExperimentReport."""
    return run_figure(FIGURE_ID, full=full)


def render(full: bool = False) -> str:
    """The figure as printable text."""
    return render_figure(FIGURE_ID, full=full)


if __name__ == "__main__":
    main(FIGURE_ID)

"""Regenerate the auction throughput vs clients, bidding mix (Figure 11)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig11"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

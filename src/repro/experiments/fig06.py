"""Regenerate the bookstore CPU utilization at peak, shopping mix (Figure 6)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig06"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

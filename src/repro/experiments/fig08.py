"""Regenerate the bookstore CPU utilization at peak, browsing mix (Figure 8)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig08"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

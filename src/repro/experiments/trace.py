"""Trace figure points and attribute their bottlenecks.

``python -m repro trace <figure> [--config NAME] [--clients N]`` re-runs
one or more points of a registered figure with request-level tracing
(:mod:`repro.obs`) switched on, then prints each point's
bottleneck-attribution report.  By default every configuration is
traced at its *peak-throughput* client count -- the sweep behind the
figure runs first (cached, optionally parallel) to find the peaks, and
only the peak points are re-run serially with tracing.

Optional artifacts: ``--chrome PATH`` writes the retained span trees as
Chrome trace-event JSON (load in ``chrome://tracing`` / Perfetto), and
``--flame`` prints a text flame summary of where virtual time went.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Dict, Optional

from repro.experiments.common import build_figure_specs, run_figure_spec
from repro.experiments.registry import FIGURES, normalize_figure_id
from repro.harness.experiment import run_experiment
from repro.metrics.report import ThroughputPoint
from repro.obs import flame_summary, render_report, write_chrome_trace


def trace_figure_point(figure_id: str, config_name: str,
                       clients: Optional[int] = None,
                       full: bool = False,
                       jobs: Optional[int] = None,
                       configurations: Optional[tuple] = None) \
        -> ThroughputPoint:
    """Re-run one figure grid point with tracing on.

    ``clients`` of None means the configuration's peak: the figure's
    sweep is run (or fetched from the report cache, restricted to
    ``configurations`` when given) to find it.  The traced re-run
    itself is always serial -- span aggregation lives in the simulator
    process.  The returned point carries ``bottleneck`` (verdict
    string), ``bottleneck_report`` and ``tracer`` attributes.
    """
    figure_id = normalize_figure_id(figure_id)
    spec, __ = FIGURES[figure_id]
    specs_by_config, counts = build_figure_specs(spec, full=full)
    if config_name not in specs_by_config:
        raise KeyError(f"unknown configuration {config_name!r}; "
                       f"have {sorted(specs_by_config)}")
    if clients is None:
        report = run_figure_spec(spec, full=full, jobs=jobs,
                                 configurations=configurations)
        clients = report.series[config_name].peak().clients
    base = specs_by_config[config_name]
    return run_experiment(replace(base, clients=clients, trace=True))


def trace_figure_peaks(figure_id: str, full: bool = False,
                       jobs: Optional[int] = None,
                       configurations: Optional[tuple] = None) \
        -> Dict[str, ThroughputPoint]:
    """Trace every configuration of a figure at its peak point.

    With ``configurations`` given, only those sweeps run at all -- the
    peak-finding sweep is restricted the same way as the traced set.
    """
    figure_id = normalize_figure_id(figure_id)
    spec, __ = FIGURES[figure_id]
    report = run_figure_spec(spec, full=full, jobs=jobs,
                             configurations=configurations)
    out: Dict[str, ThroughputPoint] = {}
    for config_name in report.series:
        if configurations and config_name not in configurations:
            continue
        out[config_name] = trace_figure_point(
            figure_id, config_name, full=full, jobs=jobs,
            configurations=configurations)
    return out


def render_figure_bottlenecks(figure_id: str, full: bool = False,
                              jobs: Optional[int] = None,
                              configurations: Optional[tuple] = None) -> str:
    """Bottleneck-attribution text for every configuration's peak.

    This is what ``--trace`` on the figure CLI appends below the
    throughput/CPU table.
    """
    points = trace_figure_peaks(figure_id, full=full, jobs=jobs,
                                configurations=configurations)
    lines = [f"bottleneck attribution at peak throughput "
             f"({normalize_figure_id(figure_id)})"]
    for config_name, point in points.items():
        lines.append("")
        lines.append(render_report(point.bottleneck_report))
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Re-run figure points with request-level tracing and "
                    "print bottleneck attribution.")
    parser.add_argument("figure",
                        help="figure id (5, 05, fig05 ... accepted)")
    parser.add_argument("--config", action="append", default=None,
                        metavar="NAME",
                        help="configuration to trace (repeatable; "
                             "default: all six)")
    parser.add_argument("--clients", type=int, default=None,
                        help="client count to trace (default: each "
                             "configuration's peak)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale client grid and phase durations")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the untraced peak-"
                             "finding sweep (default: serial; 0 = one "
                             "per CPU)")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write retained span trees as Chrome "
                             "trace-event JSON")
    parser.add_argument("--flame", action="store_true",
                        help="also print a flame summary (where virtual "
                             "time went, by span path)")
    args = parser.parse_args(argv)

    if args.config:
        # Validate before the (expensive) peak-finding sweep: a typo
        # costs milliseconds and prints the valid names, not a run.
        from repro.topology.configs import configuration_names
        known = configuration_names()
        unknown = [name for name in args.config if name not in known]
        if unknown:
            for name in unknown:
                print(f"unknown configuration {name!r}", file=sys.stderr)
            print(f"known configurations: {', '.join(known)}",
                  file=sys.stderr)
            raise SystemExit(2)
    figure_id = normalize_figure_id(args.figure)
    spec, __ = FIGURES[figure_id]
    configurations = tuple(args.config) if args.config else None
    if args.clients is not None:
        names = configurations
        if names is None:
            specs_by_config, __counts = build_figure_specs(
                spec, full=args.full)
            names = tuple(specs_by_config)
        points = {name: trace_figure_point(figure_id, name,
                                           clients=args.clients,
                                           full=args.full, jobs=args.jobs)
                  for name in names}
    else:
        points = trace_figure_peaks(figure_id, full=args.full,
                                    jobs=args.jobs,
                                    configurations=configurations)

    for i, (config_name, point) in enumerate(points.items()):
        if i:
            print()
        print(render_report(point.bottleneck_report))
        if args.flame:
            print()
            print(flame_summary(point.tracer.requests))

    if args.chrome:
        # One file; when several configurations were traced the last one
        # wins (a merged export would interleave unrelated runs).
        last = list(points.values())[-1]
        n = write_chrome_trace(last.tracer, args.chrome)
        print(f"\n[chrome trace: {n} events -> {args.chrome}]")


if __name__ == "__main__":
    main()

"""Extension experiment: the bulletin-board prediction.

The paper's related-work section explains why its third benchmark was
left out: "the Web server CPU is the bottleneck for the bulletin board.
Therefore, we expect the results for the bulletin board to be similar
to the auction site."  This module runs the bulletin board through the
same six configurations and prints the comparison, so the prediction is
checked rather than assumed.

Run:  python -m repro.experiments.ext_bboard [--full]
"""

from __future__ import annotations

from repro.experiments.common import (
    AUCTION_BIDDING,
    BBOARD_SUBMISSION,
    run_figure_spec,
)


def run(full: bool = False, jobs=None):
    """Run both sweeps; returns (bboard_report, auction_report)."""
    bboard = run_figure_spec(BBOARD_SUBMISSION, full=full, jobs=jobs)
    auction = run_figure_spec(AUCTION_BIDDING, full=full, jobs=jobs)
    return bboard, auction


def render(full: bool = False, jobs=None) -> str:
    bboard, auction = run(full=full, jobs=jobs)
    lines = [bboard.render_throughput_table(), "",
             bboard.render_cpu_table(), "",
             "--- prediction check: same ordering as the auction site? ---"]
    b_peaks = bboard.peaks()
    a_peaks = auction.peaks()
    b_order = sorted(b_peaks, key=lambda k: -b_peaks[k].throughput_ipm)
    a_order = sorted(a_peaks, key=lambda k: -a_peaks[k].throughput_ipm)
    lines.append(f"bulletin board ranking: {b_order}")
    lines.append(f"auction site ranking:   {a_order}")
    agree = b_order[0] in a_order[:2] and b_order[-1] == a_order[-1]
    lines.append("prediction " + ("HOLDS" if agree else "DOES NOT HOLD") +
                 ": dedicated-servlet placements lead, EJB trails, and "
                 "the front end (not the database) saturates.")
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Bulletin-board extension experiment")
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: "
                             "serial; 0 = one per CPU)")
    args = parser.parse_args()
    print(render(full=args.full, jobs=args.jobs))

"""Extension experiment: horizontal scale-out with read replicas.

The paper scales each configuration *up* (one machine per tier); this
experiment scales *out* (:mod:`repro.cluster`): for a growing number of
database read replicas it sizes the front pools to match, sweeps a
client grid, and reports peak throughput per replica count -- once for
a CPU-bound mix and once for a lock-bound one.  The contrast is the
point:

* the bookstore **shopping** mix is read-heavy and CPU-bound on the
  database, so read replicas buy near-linear throughput (0.92-0.97x
  per added database box, measured) until every box -- the write
  primary included -- pins at 100% CPU;
* the bookstore **ordering** mix is dominated by write-lock convoys:
  replicas still help (they split the reader herd that the writers
  convoy behind), but each one replays the full write stream under its
  own table locks and lagging replicas bounce read-your-writes
  sessions back to the primary, so the marginal gain *decays* as
  replicas are added and the traced bottleneck stays ``db locks``.

``--trace`` re-runs the peak point of each replica count with
request-level tracing (:mod:`repro.obs`) and appends the
bottleneck-attribution verdict, showing where the residual bottleneck
went (db CPU -> primary writes / lock wait).

Run:  python -m repro scale [--scale tiny|quick|full] [--trace]
      (or python -m repro.experiments.ext_scaleout)

Heads-up: ``--scale quick`` simulates client populations up to
``(1 + max replicas) x`` the base grid and takes tens of minutes
serially on one CPU; ``--jobs 0`` fans the independent runs out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterSpec, clustered
from repro.experiments.common import get_app, get_profiles
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.metrics.report import ThroughputPoint
from repro.topology.configs import configuration_by_name

#: Default base configuration per bookstore mix: the shopping mix is
#: database-CPU-bound on the dedicated-servlet configurations, the
#: ordering mix is write-lock-bound on the explicit-locking flavor.
DEFAULT_BASES = {"shopping": "Ws-Servlet-DB(sync)",
                 "ordering": "Ws-Servlet-DB"}
DEFAULT_MIXES = ("shopping", "ordering")


@dataclass(frozen=True)
class ScaleoutScale:
    """Grids and phase durations for one scale level.

    ``grids`` holds the zero-replica client grid per mix, bracketing
    that mix's saturation point (probed: the shopping mix saturates the
    database CPU below 240 clients, the ordering mix saturates on table
    locks near 800).  For ``r`` replicas a grid is multiplied by
    ``1 + r`` -- a scaled-out deployment must be driven past its larger
    saturation point -- and clamped to ``max_clients`` to bound the
    wall-clock cost of the biggest deployments.
    """

    replica_counts: Tuple[int, ...]
    grids: Dict[str, Tuple[int, ...]]
    default_grid: Tuple[int, ...]
    max_clients: int
    ramp_up: float
    measure: float
    ramp_down: float

    def clients_for(self, mix_name: str, replicas: int) -> Tuple[int, ...]:
        grid = self.grids.get(mix_name, self.default_grid)
        out: List[int] = []
        for clients in grid:
            clients = min(self.max_clients, clients * (1 + replicas))
            if clients not in out:
                out.append(clients)
        return tuple(out)


SCALES = {
    "tiny": ScaleoutScale(replica_counts=(0, 1),
                          grids={"shopping": (60,), "ordering": (60,)},
                          default_grid=(60,), max_clients=240,
                          ramp_up=120.0, measure=150.0, ramp_down=10.0),
    "quick": ScaleoutScale(replica_counts=(0, 1, 2, 4),
                           grids={"shopping": (160, 240),
                                  "ordering": (600, 1000)},
                           default_grid=(160, 240), max_clients=2400,
                           ramp_up=400.0, measure=450.0, ramp_down=10.0),
    "full": ScaleoutScale(replica_counts=(0, 1, 2, 4, 8),
                          grids={"shopping": (160, 240, 320),
                                 "ordering": (600, 1000, 1500)},
                          default_grid=(160, 240, 320), max_clients=4000,
                          ramp_up=500.0, measure=1200.0, ramp_down=30.0),
}


def cluster_for(base_name: str, replicas: int) -> object:
    """The deployment for ``replicas`` read replicas over ``base_name``.

    Front pools are sized to ``1 + replicas`` so the web/servlet tiers
    never cap the curve -- the experiment isolates the database axis.
    Zero replicas is the trivial cluster, which reproduces the paper
    configuration field for field.
    """
    base = configuration_by_name(base_name)
    front = 1 + replicas
    spec = ClusterSpec(web=front, gen=front, db_replicas=replicas)
    return clustered(base, spec)


@dataclass
class ScalePoint:
    """Peak observation for one (mix, replica count)."""

    replicas: int
    configuration: str
    points: List[ThroughputPoint] = field(default_factory=list)
    bottleneck: Optional[str] = None    # trace verdict (None if untraced)

    @property
    def peak(self) -> ThroughputPoint:
        return max(self.points, key=lambda p: p.throughput_ipm)


@dataclass
class ScaleoutReport:
    """One table per mix: replica count vs peak throughput."""

    title: str
    app_name: str
    scale: str
    mixes: Dict[str, List[ScalePoint]] = field(default_factory=dict)

    def render(self) -> str:
        lines = [self.title]
        for mix_name, rows in self.mixes.items():
            base = rows[0].peak.throughput_ipm or 1.0
            lines.append("")
            lines.append(f"{self.app_name}/{mix_name} "
                         f"(scale={self.scale})")
            header = (f"{'replicas':>8}  {'configuration':<32} "
                      f"{'peak ipm':>9}  {'at':>6}  {'gain':>6}  "
                      f"{'primary cpu':>11}")
            lines.append(header)
            for row in rows:
                peak = row.peak
                lines.append(
                    f"{row.replicas:>8}  {row.configuration:<32} "
                    f"{peak.throughput_ipm:>9.0f}  {peak.clients:>6}  "
                    f"{peak.throughput_ipm / base:>5.2f}x  "
                    f"{peak.cpu.database:>11.2f}")
            last = rows[-1]
            gain = last.peak.throughput_ipm / base
            lines.append(f"  -> x{gain:.2f} peak throughput with "
                         f"{last.replicas} read replicas")
            for row in rows:
                if row.bottleneck:
                    lines.append(f"  bottleneck at {row.replicas} "
                                 f"replica(s): {row.bottleneck}")
        return "\n".join(lines)


def _scale_task(task) -> ThroughputPoint:
    """Worker entry for the parallel path (profiles come from the
    worker's warm cache; tasks ship only names and scalars)."""
    (app_name, mix_name, base_name, replicas, clients,
     ramp_up, measure, ramp_down, seed, trace) = task
    app = get_app(app_name)
    config = cluster_for(base_name, replicas)
    profile = get_profiles(app_name)[config.profile_flavor]
    spec = ExperimentSpec(
        config=config, profile=profile, mix=app.mix(mix_name),
        clients=clients, ramp_up=ramp_up, measure=measure,
        ramp_down=ramp_down, seed=seed,
        ssl_interactions=app.SSL_INTERACTIONS, app_name=app_name,
        trace=trace)
    return run_experiment(spec)


def run_scaleout(app_name: str = "bookstore",
                 mix_names: Tuple[str, ...] = DEFAULT_MIXES,
                 base_configs: Optional[Dict[str, str]] = None,
                 scale: str = "quick",
                 replica_counts: Optional[Tuple[int, ...]] = None,
                 seed: int = 42,
                 jobs: Optional[int] = None,
                 trace: bool = False) -> ScaleoutReport:
    """The full experiment: every mix through the replica grid.

    ``base_configs`` maps mix name to the paper configuration to
    cluster (defaults: :data:`DEFAULT_BASES`, falling back to
    ``Ws-Servlet-DB(sync)``).  ``jobs`` > 1 fans the independent
    (mix, replicas, clients) simulations over a process pool; results
    are merged in serial order, bit-identical to the serial path.
    ``trace`` additionally re-runs each replica count's peak point
    with request-level tracing (serial) and records the verdict.
    """
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; have {sorted(SCALES)}")
    timeline = SCALES[scale]
    if replica_counts is not None:
        timeline = replace(timeline,
                           replica_counts=tuple(replica_counts))
    bases = dict(DEFAULT_BASES)
    if base_configs:
        bases.update(base_configs)

    tasks = []
    index = []      # (mix_name, replicas) per task, same order
    for mix_name in mix_names:
        base_name = bases.get(mix_name, "Ws-Servlet-DB(sync)")
        for replicas in timeline.replica_counts:
            for clients in timeline.clients_for(mix_name, replicas):
                tasks.append((app_name, mix_name, base_name, replicas,
                              clients, timeline.ramp_up,
                              timeline.measure, timeline.ramp_down,
                              seed, False))
                index.append((mix_name, replicas))

    from repro.harness.parallel import parallel_map
    points = parallel_map(_scale_task, tasks, jobs=jobs,
                          app_names=(app_name,))

    report = ScaleoutReport(
        title=f"Scale-out: peak throughput vs database read replicas "
              f"({app_name}, scale={scale})",
        app_name=app_name, scale=scale)
    for (mix_name, replicas), task, point in zip(index, tasks, points):
        rows = report.mixes.setdefault(mix_name, [])
        if not rows or rows[-1].replicas != replicas:
            rows.append(ScalePoint(
                replicas=replicas,
                configuration=cluster_for(task[2], replicas).name))
        rows[-1].points.append(point)

    if trace:
        # Serial traced re-runs of each row's peak point (span
        # aggregation lives in the simulator process).
        for mix_name, rows in report.mixes.items():
            base_name = bases.get(mix_name, "Ws-Servlet-DB(sync)")
            for row in rows:
                traced = _scale_task((
                    app_name, mix_name, base_name, row.replicas,
                    row.peak.clients, timeline.ramp_up,
                    timeline.measure, timeline.ramp_down, seed, True))
                row.bottleneck = traced.bottleneck
    return report


def render(scale: str = "quick", **kwargs) -> str:
    return run_scaleout(scale=scale, **kwargs).render()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Scale-out experiment: peak throughput vs database "
                    "read replicas for CPU-bound and lock-bound mixes")
    parser.add_argument("--app", default="bookstore",
                        choices=("bookstore", "auction", "bboard"))
    parser.add_argument("--mix", action="append", default=None,
                        metavar="NAME",
                        help="workload mix (repeatable; default: "
                             "shopping and ordering for the bookstore)")
    parser.add_argument("--config", default=None, metavar="NAME",
                        help="base paper configuration to cluster for "
                             "every mix (default: per-mix choices)")
    parser.add_argument("--replicas", action="append", type=int,
                        default=None, metavar="N",
                        help="replica count to sweep (repeatable; "
                             "default: the scale level's grid)")
    parser.add_argument("--scale", default="quick",
                        choices=sorted(SCALES))
    parser.add_argument("--trace", action="store_true",
                        help="re-run each replica count's peak with "
                             "request tracing; append the bottleneck "
                             "verdict")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: "
                             "serial; 0 = one per CPU)")
    args = parser.parse_args(argv)

    if args.config is not None:
        try:
            configuration_by_name(args.config)  # fail fast on typos
        except KeyError as exc:
            import sys
            print(exc.args[0], file=sys.stderr)
            return 2
    mixes = tuple(args.mix) if args.mix else (
        DEFAULT_MIXES if args.app == "bookstore"
        else ({"auction": ("bidding",),
               "bboard": ("submission",)}[args.app]))
    bases = ({mix: args.config for mix in mixes}
             if args.config is not None else None)
    print(render(scale=args.scale, app_name=args.app, mix_names=mixes,
                 base_configs=bases,
                 replica_counts=(tuple(args.replicas)
                                 if args.replicas else None),
                 seed=args.seed, jobs=args.jobs, trace=args.trace))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

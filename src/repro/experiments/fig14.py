"""Regenerate the auction CPU utilization at peak, browsing mix (Figure 14)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig14"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

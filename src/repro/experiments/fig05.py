"""Regenerate the bookstore throughput vs clients, shopping mix (Figure 5)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig05"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

"""Figure registry: map figure ids to runnable experiments."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import (
    ALL_FIGURE_SPECS,
    FigureSpec,
    run_figure_spec,
)
from repro.metrics.report import ExperimentReport

# figure id -> (spec, kind) where kind is "throughput" or "cpu".
FIGURES: Dict[str, Tuple[FigureSpec, str]] = {}
for _spec in ALL_FIGURE_SPECS:
    FIGURES[_spec.throughput_figure] = (_spec, "throughput")
    FIGURES[_spec.cpu_figure] = (_spec, "cpu")


def figure_spec(figure_id: str) -> FigureSpec:
    try:
        return FIGURES[figure_id][0]
    except KeyError:
        raise KeyError(f"unknown figure {figure_id!r}; have "
                       f"{sorted(FIGURES)}") from None


def run_figure(figure_id: str, full: bool = False,
               configurations=None, jobs=None) -> ExperimentReport:
    """Run the sweep behind a figure and return its report."""
    spec, __ = FIGURES[figure_id]
    return run_figure_spec(spec, full=full, configurations=configurations,
                           jobs=jobs)


def render_figure(figure_id: str, full: bool = False, jobs=None) -> str:
    """The figure as printable text (throughput table or CPU bars)."""
    spec, kind = FIGURES[figure_id]
    report = run_figure_spec(spec, full=full, jobs=jobs)
    if kind == "cpu":
        return report.render_cpu_table()
    return report.render_throughput_table()


def main(figure_id: str, argv=None) -> None:
    """CLI entry point shared by the figNN modules."""
    import argparse

    parser = argparse.ArgumentParser(
        description=f"Regenerate {figure_id} of Cecchet et al. 2003")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale client grid and phase durations")
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the sweep data as CSV")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: "
                             "serial; 0 = one per CPU)")
    args = parser.parse_args(argv)
    print(render_figure(figure_id, full=args.full, jobs=args.jobs))
    if args.csv:
        spec, __ = FIGURES[figure_id]
        run_figure_spec(spec, full=args.full, jobs=args.jobs) \
            .save_csv(args.csv)
        print(f"\n[csv written to {args.csv}]")

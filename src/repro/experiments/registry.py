"""The figure registry: every paper figure as a declarative entry.

One :class:`~repro.experiments.common.FigureSpec` describes a
throughput/CPU figure pair completely -- application, interaction mix,
and per-configuration client grids -- so regenerating a figure is pure
interpretation: ``python -m repro figure 5`` (or ``fig05``, ``05``)
looks the spec up here and runs it.  The ``repro.experiments.figNN``
modules are thin back-compat shims over this registry.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.common import (
    FigureSpec,
    _grids,
    run_figure_spec,
)
from repro.metrics.report import ExperimentReport

# -- declarative figure entries ------------------------------------------------

BOOKSTORE_SHOPPING = FigureSpec(
    throughput_figure="fig05", cpu_figure="fig06",
    title="Online bookstore throughput (interactions/minute), shopping mix",
    app_name="bookstore", mix_name="shopping",
    grids=_grids((200, 600, 1400), (100, 200, 400, 600, 1000, 1400),
                 (100, 350), (50, 100, 200, 350, 500)))

BOOKSTORE_BROWSING = FigureSpec(
    throughput_figure="fig07", cpu_figure="fig08",
    title="Online bookstore throughput (interactions/minute), browsing mix",
    app_name="bookstore", mix_name="browsing",
    grids=_grids((150, 400, 1000), (75, 150, 300, 600, 1000, 1400),
                 (60, 200), (30, 60, 120, 200, 300)))

BOOKSTORE_ORDERING = FigureSpec(
    throughput_figure="fig09", cpu_figure="fig10",
    title="Online bookstore throughput (interactions/minute), ordering mix",
    app_name="bookstore", mix_name="ordering",
    grids=_grids((600, 1500, 3000), (300, 600, 1000, 1500, 2200, 3000),
                 (150, 500), (75, 150, 300, 500, 800)))

AUCTION_BIDDING = FigureSpec(
    throughput_figure="fig11", cpu_figure="fig12",
    title="Auction site throughput (interactions/minute), bidding mix",
    app_name="auction", mix_name="bidding",
    grids=_grids((400, 1100, 1600), (200, 400, 700, 1100, 1400, 1700),
                 (200, 600), (100, 200, 350, 500, 700)))

AUCTION_BROWSING = FigureSpec(
    throughput_figure="fig13", cpu_figure="fig14",
    title="Auction site throughput (interactions/minute), browsing mix",
    app_name="auction", mix_name="browsing",
    grids=_grids((800, 2500, 7000), (500, 1000, 2500, 5000, 8000, 12000),
                 (200, 600), (100, 250, 400, 600)))

ALL_FIGURE_SPECS = (BOOKSTORE_SHOPPING, BOOKSTORE_BROWSING,
                    BOOKSTORE_ORDERING, AUCTION_BIDDING, AUCTION_BROWSING)

# Extension (not a paper figure): the bulletin-board benchmark the paper
# predicts would behave like the auction site.  Used by
# repro.experiments.ext_bboard.
BBOARD_SUBMISSION = FigureSpec(
    throughput_figure="extB1", cpu_figure="extB2",
    title="Bulletin board throughput (interactions/minute), submission mix "
          "(extension)",
    app_name="bboard", mix_name="submission",
    grids=_grids((400, 1100, 1600), (200, 400, 700, 1100, 1400, 1700),
                 (200, 600), (100, 200, 350, 500, 700)))

# figure id -> (spec, kind) where kind is "throughput" or "cpu".
FIGURES: Dict[str, Tuple[FigureSpec, str]] = {}
for _spec in ALL_FIGURE_SPECS:
    FIGURES[_spec.throughput_figure] = (_spec, "throughput")
    FIGURES[_spec.cpu_figure] = (_spec, "cpu")


def normalize_figure_id(figure_id: str) -> str:
    """Accept "5", "05", "fig5", and "fig05" alike; returns "fig05".

    Raises KeyError (listing valid ids) for anything not registered.
    """
    raw = str(figure_id).strip().lower()
    candidate = raw
    if candidate.startswith("fig"):
        candidate = candidate[3:]
    if candidate.isdigit():
        candidate = f"fig{int(candidate):02d}"
    else:
        candidate = raw
    if candidate in FIGURES:
        return candidate
    if raw in FIGURES:
        return raw
    raise KeyError(f"unknown figure {figure_id!r}; have "
                   f"{sorted(FIGURES)}")


def figure_spec(figure_id: str) -> FigureSpec:
    return FIGURES[normalize_figure_id(figure_id)][0]


def run_figure(figure_id: str, full: bool = False,
               configurations=None, jobs=None) -> ExperimentReport:
    """Run the sweep behind a figure and return its report."""
    spec = figure_spec(figure_id)
    return run_figure_spec(spec, full=full, configurations=configurations,
                           jobs=jobs)


def render_figure(figure_id: str, full: bool = False, jobs=None,
                  trace: bool = False, configurations=None) -> str:
    """The figure as printable text (throughput table or CPU bars).

    ``trace`` additionally re-runs each configuration's peak point with
    request-level tracing and appends the bottleneck attribution lines.
    ``configurations`` restricts the sweep to a subset of the six names.
    """
    figure_id = normalize_figure_id(figure_id)
    spec, kind = FIGURES[figure_id]
    report = run_figure_spec(spec, full=full, jobs=jobs,
                             configurations=configurations)
    text = report.render_cpu_table() if kind == "cpu" \
        else report.render_throughput_table()
    if trace:
        from repro.experiments.trace import render_figure_bottlenecks
        text += "\n\n" + render_figure_bottlenecks(
            figure_id, full=full, configurations=configurations)
    return text


def figure_shim(figure_id: str):
    """Build the (run, render) pair a ``figNN`` back-compat module
    exports; both close over the registered figure id."""

    def run(full: bool = False):
        """Run the sweep and return the ExperimentReport."""
        return run_figure(figure_id, full=full)

    def render(full: bool = False) -> str:
        """The figure as printable text."""
        return render_figure(figure_id, full=full)

    return run, render


def main(figure_id: str, argv=None) -> None:
    """CLI entry point shared by the figNN modules and ``repro figure``."""
    import argparse

    figure_id = normalize_figure_id(figure_id)
    parser = argparse.ArgumentParser(
        description=f"Regenerate {figure_id} of Cecchet et al. 2003")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale client grid and phase durations")
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the sweep data as CSV")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: "
                             "serial; 0 = one per CPU)")
    parser.add_argument("--trace", action="store_true",
                        help="re-run each configuration's peak point with "
                             "request tracing; append bottleneck "
                             "attribution")
    args = parser.parse_args(argv)
    print(render_figure(figure_id, full=args.full, jobs=args.jobs,
                        trace=args.trace))
    if args.csv:
        spec, __ = FIGURES[figure_id]
        run_figure_spec(spec, full=args.full, jobs=args.jobs) \
            .save_csv(args.csv)
        print(f"\n[csv written to {args.csv}]")

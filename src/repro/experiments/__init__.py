"""Per-figure experiment modules.

Each ``figNN`` module regenerates one figure of the paper's evaluation
(Figures 5-14).  Throughput figures (5, 7, 9, 11, 13) and their
CPU-utilization companions (6, 8, 10, 12, 14) share the same sweep, so
companion modules reuse the cached report of their throughput sibling.

Run one directly::

    python -m repro.experiments.fig05           # quick grid
    python -m repro.experiments.fig05 --full    # paper-scale grid

or use :func:`repro.experiments.registry.run_figure`.
"""

from repro.experiments.registry import FIGURES, figure_spec, run_figure

__all__ = ["FIGURES", "figure_spec", "run_figure"]

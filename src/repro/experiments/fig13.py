"""Regenerate the auction throughput vs clients, browsing mix (Figure 13)."""

from repro.experiments.registry import figure_shim, main

FIGURE_ID = "fig13"

run, render = figure_shim(FIGURE_ID)

if __name__ == "__main__":
    main(FIGURE_ID)

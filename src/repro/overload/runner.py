"""Open-loop experiment execution.

:func:`run_open_loop` is the open-loop twin of
:func:`repro.harness.experiment.run_experiment`: same ramp-up /
measurement / ramp-down phases, same samplers, same
:class:`~repro.metrics.report.ThroughputPoint` result -- but driven by
an :class:`~repro.overload.openloop.OpenLoopPopulation` and carrying the
windowed SLO series as undeclared point attributes (the ``point.tracer``
idiom): ``point.slo`` (the :class:`~repro.metrics.slo.SloSummary` over
stable windows), ``point.slo_windows``, ``point.overload_stats``, and
``point.degradation`` when the layer is installed.

``run_experiment`` delegates here when a spec carries an
``overload`` field, so sweeps, the parallel runner, and the CLI all
work unchanged.
"""

from __future__ import annotations

from repro.metrics.report import CpuUtilization, ThroughputPoint
from repro.metrics.sampler import SysstatSampler
from repro.metrics.slo import (
    SloSeries,
    SloSpec,
    percentile,
    select_stable_windows,
    summarize_slo,
)
from repro.overload.openloop import OpenLoopPopulation
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.workload.markov import choose_interaction


def run_open_loop(spec) -> ThroughputPoint:
    """Run one open-loop point (``spec.overload`` must be set)."""
    from repro.harness.experiment import build_site
    from repro.faults.injector import FaultInjector

    if spec.overload is None:
        raise ValueError("run_open_loop needs an ExperimentSpec with "
                         "an OverloadSpec in .overload")
    sim = Simulator()
    site = build_site(sim, spec)
    tracer = None
    if spec.trace:
        from repro.obs import Tracer
        tracer = Tracer(sim, window=(spec.ramp_up,
                                     spec.ramp_up + spec.measure))
        sim.tracer = tracer
    rng = RngStreams(spec.seed)
    slo_spec = spec.slo if spec.slo is not None else SloSpec()
    series = SloSeries(sim, slo_spec)
    population = OpenLoopPopulation(
        sim, spec.overload, spec.mix, site, rng, choose_interaction,
        retry=spec.retry, slo=series)
    sampler = SysstatSampler(sim, site.machines,
                             interval=spec.sample_interval)
    if spec.fault_plan:
        FaultInjector(sim, site, spec.fault_plan).start()
    population.start()
    sampler.start()

    sim.run(until=spec.ramp_up)
    population.begin_measurement()
    db_wait0 = site.db_lock_wait_time
    sync_wait0 = site.sync_lock_wait_time
    measure_start = sim.now
    sim.run(until=spec.ramp_up + spec.measure)
    stats = population.end_measurement()
    measure_end = sim.now
    # Stop the open loop before ramp-down: unlike closed-loop clients,
    # sessions keep *arriving*, so an un-stopped drain never ends.
    population.stop()
    sim.run(until=spec.ramp_up + spec.measure + spec.ramp_down)

    minutes = (measure_end - measure_start) / 60.0
    throughput = stats.interactions_completed / minutes if minutes else 0.0

    windows = series.windows()
    stable = select_stable_windows(windows, horizon=measure_end)
    summary = summarize_slo(stable, slo_spec)
    # The per-window digests aggregate approximately across windows;
    # the population kept every successful latency sample, so make the
    # run-level percentiles exact.
    samples = [t for times in stats.response_times.values()
               for t in times]
    if samples:
        summary.p50 = percentile(samples, 0.50)
        summary.p95 = percentile(samples, 0.95)
        summary.p99 = percentile(samples, 0.99)

    roles = site.role_machines()
    cpu = CpuUtilization(
        web_server=sampler.mean_cpu(roles["web"].name, measure_start,
                                    measure_end),
        database=sampler.mean_cpu(roles["db"].name, measure_start,
                                  measure_end),
        servlet_container=sampler.mean_cpu(
            roles["servlet"].name, measure_start, measure_end)
        if "servlet" in roles else None,
        ejb_server=sampler.mean_cpu(roles["ejb"].name, measure_start,
                                    measure_end)
        if "ejb" in roles else None)
    completed = max(1, stats.interactions_completed)
    point = ThroughputPoint(
        clients=spec.clients, throughput_ipm=throughput, cpu=cpu,
        mean_response_time=stats.mean_response_time(),
        web_nic_tx_mbps=sampler.mean_nic_tx_mbps(
            roles["web"].name, measure_start, measure_end),
        db_lock_wait_per_interaction=(
            (site.db_lock_wait_time - db_wait0) / completed),
        sync_lock_wait_per_interaction=(
            (site.sync_lock_wait_time - sync_wait0) / completed),
        kernel_events=sim.events_processed)
    # Undeclared attributes, following the point.tracer idiom: ignored
    # by asdict()-based equality, never shipped across the process pool
    # boundary unpickled (the parallel runner round-trips fine).
    point.slo = summary
    point.slo_windows = stable
    point.overload_stats = stats
    degradation = getattr(site, "degradation", None)
    if degradation is not None:
        point.degradation = degradation
    if tracer is not None:
        from repro.obs import build_report
        tracer.finalize()
        nic = site.web.nic
        nic_util = (point.web_nic_tx_mbps * 1e6) / nic.base_bandwidth
        bottleneck = build_report(
            tracer, configuration=spec.config.name,
            interaction_mix=spec.app_name or spec.profile.app_name,
            clients=spec.clients, web_nic_utilization=nic_util)
        point.bottleneck = bottleneck.bottleneck
        point.tracer = tracer
        point.bottleneck_report = bottleneck
    return point

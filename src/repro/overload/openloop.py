"""Open-loop session population: arrivals the site does not control.

The closed-loop :class:`~repro.workload.client.ClientPopulation` keeps a
fixed number of browsers alive forever; here sessions *arrive* on a rate
process (:mod:`repro.overload.arrivals`), run a think-time loop for an
exponential session duration, and leave -- or abandon early when the
site gets slow.  Offered load is the arrival rate times the session
length, independent of how the site performs: past saturation, queues
grow and the goodput-vs-offered-load curve bends.

The population reuses the closed-loop machinery wholesale: the retry /
deadline / backoff path, error classification, and stats windowing all
come from the base class.  Each session draws from its own named RNG
stream, so runs are bit-reproducible under a pinned seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Optional

from repro.faults.errors import AdmissionReject, RequestError, TierDown
from repro.overload.arrivals import (
    AbandonmentSpec,
    PoissonProfile,
    ThinkTimeModel,
)
from repro.sim.kernel import Interrupt, Simulator
from repro.sim.rng import RngStreams
from repro.workload.client import ClientPopulation, ClientStats, RetryPolicy


@dataclass(frozen=True)
class OverloadSpec:
    """Open-loop run parameters carried by an ``ExperimentSpec``."""

    # Session arrival process: any profile from repro.overload.arrivals.
    arrivals: object = dataclass_field(
        default_factory=lambda: PoissonProfile(rate=1.0))
    think: ThinkTimeModel = dataclass_field(default_factory=ThinkTimeModel)
    # Session duration stays negative-exponential (the paper's model);
    # abandonment can end it early.
    session_mean: float = 900.0
    abandonment: Optional[AbandonmentSpec] = None
    # Hard cap on live sessions (the front end's connection table);
    # arrivals beyond it are turned away before touching the site.
    max_concurrent_sessions: Optional[int] = None

    def __post_init__(self):
        if not hasattr(self.arrivals, "arrivals"):
            raise TypeError(f"arrivals must expose an arrivals(rng) "
                            f"generator, got {self.arrivals!r}")
        if self.session_mean <= 0:
            raise ValueError(f"session_mean must be positive, "
                             f"got {self.session_mean}")
        if self.max_concurrent_sessions is not None \
                and self.max_concurrent_sessions < 1:
            raise ValueError(f"max_concurrent_sessions must be >= 1 (or "
                             f"None), got {self.max_concurrent_sessions}")


@dataclass
class OpenLoopStats(ClientStats):
    """Closed-loop counters plus the open-loop-only ones."""

    sessions_abandoned: int = 0
    turned_away: int = 0


class OpenLoopPopulation(ClientPopulation):
    """Drives sessions arriving on ``spec.arrivals``.

    ``slo`` is an optional :class:`~repro.metrics.slo.SloSeries`; when
    present, every interaction's start, completion latency, and failure
    are filed into its windows during the measurement phase.
    """

    def __init__(self, sim: Simulator, spec: OverloadSpec,
                 mix: Dict[str, float], site, rng: RngStreams,
                 choose, retry: Optional[RetryPolicy] = None, slo=None):
        super().__init__(sim, 1, mix, site, rng, choose, retry=retry)
        self.spec = spec
        self.slo = slo
        self.stats: OpenLoopStats = OpenLoopStats()
        self.live_sessions = 0
        self._next_session = 0

    # Closed-loop start() spawns n_clients loops; here one arrival
    # process spawns a session process per arrival instead.
    def start(self) -> None:
        proc = self.sim.spawn(self._arrivals(), name="openloop.arrivals")
        self._procs.append(proc)

    def _arrivals(self):
        spec = self.spec
        rng = self.rng.stream("openloop.arrivals")
        try:
            for gap in spec.arrivals.arrivals(rng):
                yield gap
                cap = spec.max_concurrent_sessions
                if cap is not None and self.live_sessions >= cap:
                    self.stats.turned_away += 1
                    continue
                session_id = self._next_session
                self._next_session += 1
                proc = self.sim.spawn(self._session(session_id),
                                      name=f"session{session_id}")
                self._procs.append(proc)
                # Keep the teardown list from growing unboundedly.
                if len(self._procs) % 256 == 0:
                    self._procs = [p for p in self._procs
                                   if not p.finished]
        except Interrupt:
            return

    def _session(self, session_id: int):
        sim = self.sim
        spec = self.spec
        rng = self.rng.stream(f"session.{session_id}")
        retry = self.retry
        abandon = spec.abandonment
        end_session = getattr(self.site, "end_session", None)
        self.live_sessions += 1
        try:
            self.stats.sessions_started += 1
            self.site.new_session(session_id, rng)
            session_end = sim.now + rng.expovariate(1.0 / spec.session_mean)
            budget = retry.retry_budget if retry else 0
            while sim.now < session_end:
                name = self.choose(self.mix, rng)
                started = sim.now
                self.stats.interactions_started += 1
                if self.recording and self.slo is not None:
                    self.slo.record_arrival()
                if retry is None:
                    ok = yield from self._bare_attempt(session_id, name,
                                                       rng)
                else:
                    ok, budget = yield from self._perform_with_retries(
                        session_id, name, rng, retry, budget)
                latency = sim.now - started
                if self.recording:
                    if ok:
                        self.stats.record(name, latency)
                        if self.slo is not None:
                            self.slo.record(latency)
                    elif self.slo is not None:
                        self.slo.record_error()
                if abandon is not None:
                    impatient = latency > abandon.patience or \
                        (not ok and abandon.on_error)
                    if impatient and rng.random() < abandon.probability:
                        if self.recording:
                            self.stats.sessions_abandoned += 1
                        break
                yield spec.think.draw(rng)
            if end_session is not None:
                end_session(session_id)
        except Interrupt:
            return
        finally:
            self.live_sessions -= 1

    def _bare_attempt(self, session_id: int, name: str, rng):
        """One attempt without the retry subprocess: open-loop sessions
        must survive rejections/faults even with no RetryPolicy."""
        try:
            yield from self.site.perform(session_id, name, rng)
            return True
        except (AdmissionReject, TierDown):
            if self.recording:
                self.stats.record_error("rejection")
            return False
        except RequestError:
            if self.recording:
                self.stats.record_error("abort")
            return False

    def begin_measurement(self) -> None:
        turned_away = self.stats.turned_away
        self.stats = OpenLoopStats()
        # turned_away is a whole-run tally (it has no per-window
        # meaning); carry it across the reset.
        self.stats.turned_away = turned_away
        self.recording = True
        if self.slo is not None:
            self.slo.start()

"""Graceful degradation: per-tier backpressure, a DB circuit breaker,
and priority load shedding with degraded responses.

The mechanisms (motivated by the three-tier separation argument of
arXiv:1405.1618 -- keep one saturated tier from collapsing the others):

* **Bounded tier queues.**  The servlet/EJB container and the database
  driver each get an admission gate (a :class:`~repro.sim.resources.
  Resource` of ``concurrency`` slots with a bounded waiting line).  A
  request arriving when every slot is busy *and* the backlog is at its
  bound is turned away with a fast busy page and
  :class:`~repro.faults.errors.BackpressureError` -- which subclasses
  ``AdmissionReject``, so the client machinery already accounts it as a
  rejection and backs off.

* **Circuit breaker on the database driver.**  Outcomes of the last
  ``window`` DB calls are kept in a ring; when the failure fraction
  crosses ``trip_threshold`` the breaker opens and calls fail fast with
  :class:`~repro.faults.errors.CircuitOpenError` (a transient DB error
  to the caller).  After ``reset_timeout`` the next calls are let
  through as half-open probes; a probe success closes the breaker, a
  probe failure re-opens it.  All transitions happen on access -- the
  breaker schedules no simulator events and draws no RNG.

* **Priority load shedding.**  When the front end is under pressure
  (accept backlog past ``shed_queue_threshold``, or the breaker is
  open), browse-class interactions are served a small degraded/static
  page straight from the web tier -- no container, no database -- while
  order-class interactions keep their full path.  The degraded reply is
  a *successful* (if lesser) interaction: it counts toward goodput and
  is tallied separately.

Installation (:func:`install_degradation`) wraps the site's
``_perform`` / ``_run_container`` / ``_run_php`` / ``_db_query``
methods as *instance attributes* capturing the class-level originals,
so a site without a policy runs byte-for-byte the unwrapped hot path --
zero extra frames, zero RNG, zero events -- and ``ClusteredSite``'s
class-level overrides keep working underneath the wrappers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults.errors import (
    BackpressureError,
    CircuitOpenError,
    TierDown,
    TransientDbError,
)
from repro.sim.resources import Resource, safe_acquire
from repro.web.server import SPAN_DEGRADED

# TPC-W's browse class: the read-only storefront pages a degraded cache
# can serve.  Order-class interactions (cart, buy, admin) are never
# degraded -- they carry the revenue.
DEFAULT_BROWSE_CLASS = frozenset({
    "home", "new_products", "best_sellers", "product_detail",
    "search_request", "search_results",
})


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker tuning for the database driver."""

    window: int = 20              # outcomes kept in the sliding ring
    min_calls: int = 10           # don't trip on a tiny sample
    trip_threshold: float = 0.5   # failure fraction that opens the breaker
    reset_timeout: float = 5.0    # seconds open before probing
    half_open_probes: int = 2     # concurrent probes allowed half-open

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, "
                             f"got {self.min_calls}")
        if not 0 < self.trip_threshold <= 1:
            raise ValueError(f"trip_threshold must be in (0, 1], "
                             f"got {self.trip_threshold}")
        if self.reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be positive, "
                             f"got {self.reset_timeout}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, "
                             f"got {self.half_open_probes}")


@dataclass(frozen=True)
class DegradationPolicy:
    """What the graceful-degradation layer bounds and sheds."""

    # Container (servlet/EJB) gate: concurrent requests in the tier,
    # plus how many may wait.  None disables the gate.
    container_concurrency: Optional[int] = 64
    container_backlog: int = 64
    # Database gate: concurrent driver calls plus bounded backlog.
    db_concurrency: Optional[int] = 96
    db_backlog: int = 128
    # Circuit breaker on the DB driver.  None disables it.
    breaker: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)
    # Priority shedding: serve these interactions a degraded page when
    # the accept backlog reaches the threshold (or the breaker is open).
    degradable: frozenset = DEFAULT_BROWSE_CLASS
    shed_queue_threshold: Optional[int] = 32

    def __post_init__(self):
        if self.container_concurrency is not None \
                and self.container_concurrency < 1:
            raise ValueError(f"container_concurrency must be >= 1 (or "
                             f"None), got {self.container_concurrency}")
        if self.container_backlog < 0:
            raise ValueError(f"container_backlog must be >= 0, "
                             f"got {self.container_backlog}")
        if self.db_concurrency is not None and self.db_concurrency < 1:
            raise ValueError(f"db_concurrency must be >= 1 (or None), "
                             f"got {self.db_concurrency}")
        if self.db_backlog < 0:
            raise ValueError(f"db_backlog must be >= 0, "
                             f"got {self.db_backlog}")
        if self.shed_queue_threshold is not None \
                and self.shed_queue_threshold < 1:
            raise ValueError(f"shed_queue_threshold must be >= 1 (or "
                             f"None), got {self.shed_queue_threshold}")


class CircuitBreaker:
    """Count-based sliding-window breaker; clock-driven, event-free."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, sim, policy: BreakerPolicy):
        self.sim = sim
        self.policy = policy
        self.state = self.CLOSED
        self._outcomes: deque = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        # Counters for reports.
        self.trips = 0
        self.fast_fails = 0

    @property
    def is_open(self) -> bool:
        """Open *right now* (does not consume a probe slot)."""
        self._maybe_half_open()
        return self.state == self.OPEN

    def _maybe_half_open(self) -> None:
        if self.state == self.OPEN and \
                self.sim.now >= self._opened_at + self.policy.reset_timeout:
            self.state = self.HALF_OPEN
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """May this call proceed?  Half-open calls consume probe slots;
        balance each True with record_success/record_failure."""
        self._maybe_half_open()
        if self.state == self.CLOSED:
            return True
        if self.state == self.HALF_OPEN:
            if self._probes_in_flight < self.policy.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.fast_fails += 1
            return False
        self.fast_fails += 1
        return False

    def record_success(self) -> None:
        if self.state == self.HALF_OPEN:
            # The database answered: close and start a fresh window.
            self.state = self.CLOSED
            self._outcomes.clear()
            self._probes_in_flight = 0
            return
        if self.state == self.CLOSED:
            self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._trip()
            return
        if self.state == self.CLOSED:
            self._outcomes.append(False)
            p = self.policy
            if len(self._outcomes) >= p.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= p.trip_threshold:
                    self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self._opened_at = self.sim.now
        self._outcomes.clear()
        self.trips += 1


class DegradationState:
    """Gates, breaker, and tallies attached to one site."""

    def __init__(self, sim, policy: DegradationPolicy):
        self.policy = policy
        self.container_gate = (
            Resource(sim, capacity=policy.container_concurrency,
                     name="overload.container")
            if policy.container_concurrency is not None else None)
        self.db_gate = (
            Resource(sim, capacity=policy.db_concurrency,
                     name="overload.db")
            if policy.db_concurrency is not None else None)
        self.breaker = CircuitBreaker(sim, policy.breaker) \
            if policy.breaker is not None else None
        self.degraded_served = 0
        self.backpressure_rejects: Dict[str, int] = {"servlet": 0, "db": 0}

    def shedding(self, route) -> bool:
        """Is the site under enough pressure to degrade browses?

        Three deterministic signals, no RNG: the web accept backlog past
        its threshold, the container gate saturated with half its
        backlog waiting (degrade browses *before* order-class requests
        start bouncing off the full backlog), or the DB breaker open
        (serve cached pages while the database recovers)."""
        threshold = self.policy.shed_queue_threshold
        if threshold is not None \
                and route.web_processes.queue_length >= threshold:
            return True
        gate = self.container_gate
        if gate is not None and gate.in_use >= gate.capacity \
                and gate.queue_length >= max(
                    1, self.policy.container_backlog // 2):
            return True
        return self.breaker is not None and self.breaker.is_open


def _gate_full(gate: Resource, backlog: int) -> bool:
    return gate.in_use >= gate.capacity and gate.queue_length >= backlog


def install_degradation(site, policy: DegradationPolicy) -> DegradationState:
    """Wrap ``site`` (a :class:`~repro.topology.simulation.SimulatedSite`
    or subclass) with the degradation layer; returns the state object
    (also exposed as ``site.degradation``)."""
    sim = site.sim
    state = DegradationState(sim, policy)
    site.degradation = state

    cls = type(site)
    base_perform = cls._perform
    base_container = cls._run_container
    base_php = cls._run_php
    base_db_query = cls._db_query

    def degraded_reply(name, route, rc):
        """Serve the static fallback from the web tier alone."""
        web = route.web
        cfg = site.web_config
        span = rc.push(SPAN_DEGRADED, "phase", "web",
                       meta={"origin": name}) if rc is not None else None
        try:
            cpu = cfg.per_degraded_cpu + \
                cfg.degraded_response_bytes * cfg.per_net_byte_cpu
            if site.config.flavor == "php":
                cpu += site.php_costs.per_degraded_script
            yield from web.cpu.execute(cpu)
            yield from site.lan.transfer(web, site.client_machine,
                                         cfg.degraded_response_bytes)
            state.degraded_served += 1
        finally:
            if span is not None:
                rc.pop(span)

    def perform_wrapper(variant, name, rng, route):
        if name in policy.degradable and state.shedding(route):
            if site.down:
                site._check_up(route.web)
            yield from site.lan.transfer(site.client_machine, route.web,
                                         site.costs.request_bytes)
            tracer = sim.tracer
            rc = tracer.current() if tracer is not None else None
            yield from degraded_reply(name, route, rc)
            return
        yield from base_perform(site, variant, name, rng, route)

    def busy_reject(route, tier, reject_cpu):
        """Fast busy page: charge the rejecting tier, answer the client
        through the web machine, raise backpressure."""
        state.backpressure_rejects[tier] += 1
        cfg = site.web_config
        yield from route.web.cpu.execute(
            reject_cpu + cfg.reject_response_bytes * cfg.per_net_byte_cpu)
        yield from site.lan.transfer(route.web, site.client_machine,
                                     cfg.reject_response_bytes)
        raise BackpressureError(tier)

    def container_wrapper(variant, rng, route, rc=None):
        gate = state.container_gate
        if gate is None:
            yield from base_container(site, variant, rng, route, rc)
            return
        if _gate_full(gate, policy.container_backlog):
            reject_cpu = site.ejb_costs.per_busy_reject \
                if site.config.flavor == "ejb" \
                else site.servlet_costs.per_busy_reject
            yield from busy_reject(route, "servlet", reject_cpu)
        yield from safe_acquire(gate)
        try:
            yield from base_container(site, variant, rng, route, rc)
        finally:
            gate.release()

    def php_wrapper(variant, rng, route, rc=None):
        # PHP runs inside the web process: the container gate bounds the
        # scripts executing concurrently, exactly like the servlet tier.
        gate = state.container_gate
        if gate is None:
            yield from base_php(site, variant, rng, route, rc)
            return
        if _gate_full(gate, policy.container_backlog):
            yield from busy_reject(route, "servlet",
                                   site.web_config.per_reject_cpu)
        yield from safe_acquire(gate)
        try:
            yield from base_php(site, variant, rng, route, rc)
        finally:
            gate.release()

    def db_query_wrapper(step, held_explicit, route, rc=None, label=""):
        breaker = state.breaker
        if breaker is not None and not breaker.allow():
            # Fail fast at the driver: one call's worth of client CPU.
            yield from route.db_client.cpu.execute(site._driver.per_call)
            raise CircuitOpenError("database circuit open")
        gate = state.db_gate
        if gate is not None and _gate_full(gate, policy.db_backlog):
            state.backpressure_rejects["db"] += 1
            yield from route.db_client.cpu.execute(site._driver.per_call)
            raise BackpressureError("db")
        if gate is not None:
            yield from safe_acquire(gate)
        try:
            yield from base_db_query(site, step, held_explicit, route,
                                     rc, label)
        except (TierDown, TransientDbError):
            if breaker is not None:
                breaker.record_failure()
            raise
        except BaseException:
            # Interrupts (deadline expiry mid-query) and anything else:
            # give the probe slot back without biasing the window.
            if breaker is not None and breaker.state == breaker.HALF_OPEN:
                breaker._probes_in_flight = max(
                    0, breaker._probes_in_flight - 1)
            raise
        else:
            if breaker is not None:
                breaker.record_success()
        finally:
            if gate is not None:
                gate.release()

    site._perform = perform_wrapper
    site._run_container = container_wrapper
    site._run_php = php_wrapper
    site._db_query = db_query_wrapper
    return state

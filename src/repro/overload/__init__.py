"""Overload resilience: open-loop traffic, backpressure, degradation.

The paper's workload is closed-loop and therefore *cannot* overload the
site; this package adds everything overload needs -- open-loop arrival
processes and heavy-tailed think times (:mod:`~repro.overload.arrivals`),
the open-loop session population (:mod:`~repro.overload.openloop`), the
graceful-degradation layer of bounded tier queues, a DB circuit breaker
and priority load shedding (:mod:`~repro.overload.degradation`), and the
open-loop experiment runner (:mod:`~repro.overload.runner`).  Windowed
SLO metrics live in :mod:`repro.metrics.slo`.

Everything is opt-in: a closed-loop run never imports this package, and
an installed-but-idle degradation layer adds no RNG draws and schedules
no simulator events.
"""

from repro.overload.arrivals import (
    AbandonmentSpec,
    DiurnalProfile,
    FlashCrowdProfile,
    MmppProfile,
    PoissonProfile,
    ThinkTimeModel,
)
from repro.overload.degradation import (
    DEFAULT_BROWSE_CLASS,
    BreakerPolicy,
    CircuitBreaker,
    DegradationPolicy,
    DegradationState,
    install_degradation,
)
from repro.overload.openloop import (
    OpenLoopPopulation,
    OpenLoopStats,
    OverloadSpec,
)
from repro.overload.runner import run_open_loop

__all__ = [
    "PoissonProfile", "FlashCrowdProfile", "MmppProfile",
    "DiurnalProfile", "ThinkTimeModel", "AbandonmentSpec",
    "BreakerPolicy", "DegradationPolicy", "CircuitBreaker",
    "DegradationState", "install_degradation", "DEFAULT_BROWSE_CLASS",
    "OverloadSpec", "OpenLoopStats", "OpenLoopPopulation",
    "run_open_loop",
]

"""Open-loop arrival processes and heavy-tailed think-time models.

The paper's workload is closed-loop: N emulated browsers, each waiting
for its response before thinking again, so offered load can never exceed
what the clients generate and overload is impossible by construction.
Real overload is open-loop -- sessions arrive at a rate the site does
not control.  This module provides the rate processes:

``PoissonProfile``     constant-rate Poisson arrivals.
``FlashCrowdProfile``  baseline Poisson with a burst window at a
                       multiplied rate (a slashdotting).
``MmppProfile``        2-state Markov-modulated Poisson process --
                       exponentially distributed dwell in a calm and a
                       busy state, each with its own rate.
``DiurnalProfile``     sinusoidal day/night rate curve.

All profiles are frozen dataclasses exposing ``arrivals(rng)``, a
generator of inter-arrival gaps.  Variable-rate profiles use
Lewis-Shedler thinning against the peak rate, so the draw sequence is a
pure function of (seed, profile) and runs are bit-reproducible.

Think times between a session's interactions can stay exponential (the
paper's 7 s) or go heavy-tailed -- lognormal or bounded Pareto -- which
is what measured browser dwell times look like and what makes flash
crowds hurt: a heavy tail keeps sessions alive long after the burst.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional


# -- arrival-rate profiles ----------------------------------------------------

@dataclass(frozen=True)
class PoissonProfile:
    """Constant-rate Poisson session arrivals (``rate`` per second)."""

    rate: float

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @property
    def peak_rate(self) -> float:
        return self.rate

    def rate_at(self, t: float) -> float:
        return self.rate

    def arrivals(self, rng) -> Iterator[float]:
        """Yield inter-arrival gaps forever."""
        rate = self.rate
        while True:
            yield rng.expovariate(rate)


@dataclass(frozen=True)
class _VariableRateProfile:
    """Shared thinning machinery: subclasses define ``rate_at`` and
    ``peak_rate``; arrivals are Lewis-Shedler thinned against the peak,
    so every candidate costs exactly two draws regardless of shape."""

    def arrivals(self, rng) -> Iterator[float]:
        peak = self.peak_rate
        t = 0.0
        last = 0.0
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self.rate_at(t):
                yield t - last
                last = t


@dataclass(frozen=True)
class FlashCrowdProfile(_VariableRateProfile):
    """Baseline Poisson rate with one burst window at ``multiplier``
    times the baseline -- the flash-crowd scenario."""

    base_rate: float
    burst_start: float
    burst_duration: float
    multiplier: float = 5.0

    def __post_init__(self):
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, "
                             f"got {self.base_rate}")
        if self.burst_start < 0:
            raise ValueError(f"burst_start must be >= 0, "
                             f"got {self.burst_start}")
        if self.burst_duration <= 0:
            raise ValueError(f"burst_duration must be positive, "
                             f"got {self.burst_duration}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, "
                             f"got {self.multiplier}")

    @property
    def burst_end(self) -> float:
        return self.burst_start + self.burst_duration

    @property
    def peak_rate(self) -> float:
        return self.base_rate * self.multiplier

    def rate_at(self, t: float) -> float:
        if self.burst_start <= t < self.burst_end:
            return self.base_rate * self.multiplier
        return self.base_rate


@dataclass(frozen=True)
class MmppProfile(_VariableRateProfile):
    """2-state Markov-modulated Poisson process.

    The modulating chain is *pre-sampled* deterministically from its own
    draws inside ``arrivals`` -- state changes are part of the same
    stream, so the whole arrival sequence is reproducible.
    """

    calm_rate: float
    busy_rate: float
    calm_dwell_mean: float = 120.0
    busy_dwell_mean: float = 30.0

    def __post_init__(self):
        if self.calm_rate <= 0 or self.busy_rate <= 0:
            raise ValueError(f"rates must be positive, got "
                             f"{self.calm_rate}/{self.busy_rate}")
        if self.calm_dwell_mean <= 0 or self.busy_dwell_mean <= 0:
            raise ValueError(f"dwell means must be positive, got "
                             f"{self.calm_dwell_mean}/"
                             f"{self.busy_dwell_mean}")

    @property
    def peak_rate(self) -> float:
        return max(self.calm_rate, self.busy_rate)

    def arrivals(self, rng) -> Iterator[float]:
        # The modulating chain cannot be expressed as a pure rate_at(t)
        # (it is itself random), so override thinning with the exact
        # two-clock construction: hold a state, emit Poisson arrivals at
        # its rate, switch after an exponential dwell.
        busy = False
        t = 0.0
        last = 0.0
        switch = t + rng.expovariate(1.0 / self.calm_dwell_mean)
        while True:
            rate = self.busy_rate if busy else self.calm_rate
            gap = rng.expovariate(rate)
            if t + gap < switch:
                t += gap
                yield t - last
                last = t
            else:
                # Memorylessness: discard the partial gap and redraw in
                # the new state.
                t = switch
                busy = not busy
                dwell = self.busy_dwell_mean if busy \
                    else self.calm_dwell_mean
                switch = t + rng.expovariate(1.0 / dwell)

    def rate_at(self, t: float) -> float:  # pragma: no cover - unused
        raise NotImplementedError("MMPP rate is stochastic")


@dataclass(frozen=True)
class DiurnalProfile(_VariableRateProfile):
    """Sinusoidal day/night curve: rate(t) = mean * (1 + amplitude *
    sin(2*pi*t/period)), clipped at zero."""

    mean_rate: float
    amplitude: float = 0.8
    period: float = 86400.0
    phase: float = 0.0

    def __post_init__(self):
        if self.mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, "
                             f"got {self.mean_rate}")
        if not 0 <= self.amplitude <= 1:
            raise ValueError(f"amplitude must be in [0, 1], "
                             f"got {self.amplitude}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")

    @property
    def peak_rate(self) -> float:
        return self.mean_rate * (1.0 + self.amplitude)

    def rate_at(self, t: float) -> float:
        return max(0.0, self.mean_rate * (
            1.0 + self.amplitude *
            math.sin(2.0 * math.pi * (t + self.phase) / self.period)))


# -- think-time models --------------------------------------------------------

@dataclass(frozen=True)
class ThinkTimeModel:
    """Think-time distribution for open-loop sessions.

    ``exponential``  the paper's model (TPC-W clause 5.3.1.1).
    ``lognormal``    median ~ mean/e^(sigma^2/2); heavy-ish tail.
    ``pareto``       bounded Pareto with tail index ``alpha``; the
                     genuinely heavy tail measured for browser dwell.
    """

    distribution: str = "exponential"   # exponential | lognormal | pareto
    mean: float = 7.0
    sigma: float = 1.0                  # lognormal shape
    alpha: float = 1.5                  # pareto tail index
    cap: float = 600.0                  # bound on any single think time

    def __post_init__(self):
        if self.distribution not in ("exponential", "lognormal", "pareto"):
            raise ValueError(f"unknown think-time distribution "
                             f"{self.distribution!r}")
        if self.mean <= 0:
            raise ValueError(f"mean must be positive, got {self.mean}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.alpha <= 1.0:
            raise ValueError(f"alpha must be > 1 (infinite mean below), "
                             f"got {self.alpha}")
        if self.cap <= 0:
            raise ValueError(f"cap must be positive, got {self.cap}")

    def draw(self, rng) -> float:
        if self.distribution == "exponential":
            value = rng.expovariate(1.0 / self.mean)
        elif self.distribution == "lognormal":
            # Parameterize by the desired mean: mu = ln(mean) - s^2/2.
            mu = math.log(self.mean) - 0.5 * self.sigma * self.sigma
            value = rng.lognormvariate(mu, self.sigma)
        else:
            # Pareto with x_min chosen so the unbounded mean equals
            # ``mean``: mean = x_min * alpha / (alpha - 1).
            x_min = self.mean * (self.alpha - 1.0) / self.alpha
            value = x_min * (1.0 - rng.random()) ** (-1.0 / self.alpha)
        return min(value, self.cap)


@dataclass(frozen=True)
class AbandonmentSpec:
    """Latency-triggered session abandonment: after any interaction
    slower than ``patience`` seconds (or any hard failure, when
    ``on_error``), the user gives up with probability ``probability``
    and the session ends -- overload sheds its own load, which is what
    makes open-loop goodput curves bend back down past the knee."""

    patience: float = 8.0
    probability: float = 0.5
    on_error: bool = True

    def __post_init__(self):
        if self.patience <= 0:
            raise ValueError(f"patience must be positive, "
                             f"got {self.patience}")
        if not 0 < self.probability <= 1:
            raise ValueError(f"probability must be in (0, 1], "
                             f"got {self.probability}")

"""EJB implementation of the bulletin board: façades + CMP entities."""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.bboard.datagen import BASE_TIME
from repro.apps.bboard.logic import _page
from repro.middleware.context import AppContext
from repro.middleware.ejb import EjbContainer, SessionBean
from repro.web.http import HttpResponse

PAGE_SIZE = 20


class BoardBean(SessionBean):
    """Read-side façade: headline lists and search."""

    def _headline(self, story) -> dict:
        return {"id": story.id, "title": story.title, "date": story.date,
                "nb_comments": story.nb_comments}

    def stories_of_the_day(self) -> list:
        stories = self.home("stories").find_where(
            "id > 0", (), order_by="date", descending=True, limit=PAGE_SIZE)
        return [self._headline(s) for s in stories]

    def list_categories(self) -> list:
        return [{"id": c.id, "name": c.name}
                for c in self.home("categories").find_all()]

    def stories_in_category(self, category: int, page: int = 0) -> list:
        stories = self.home("stories").find_by(
            "category", category, order_by="date", descending=True,
            limit=PAGE_SIZE * (page + 1))
        return [self._headline(s) for s in stories[page * PAGE_SIZE:]]

    def older_stories(self, page: int = 0) -> list:
        stories = self.home("old_stories").find_where(
            "id > 0", (), order_by="date", descending=True,
            limit=PAGE_SIZE * (page + 1))
        return [self._headline(s) for s in stories[page * PAGE_SIZE:]]

    def search(self, term: str) -> list:
        stories = self.home("stories").find_where(
            "title LIKE ?", (term + "%",), order_by="date",
            descending=True, limit=PAGE_SIZE)
        return [self._headline(s) for s in stories]


class StoryBean(SessionBean):
    """Story, comment-thread, and author views."""

    def view_story(self, story_id: int):
        try:
            story = self.home("stories").find_by_primary_key(story_id)
            comment_home = self.home("comments")
        except KeyError:
            try:
                story = self.home("old_stories").find_by_primary_key(
                    story_id)
                comment_home = self.home("old_comments")
            except KeyError:
                return None
        author = self.home("users").find_by_primary_key(story.author)
        users = self.home("users")
        toplevel = []
        for comment in comment_home.find_where(
                "story_id = ? AND parent = 0", (story_id,),
                order_by="date", limit=PAGE_SIZE):
            by = users.find_by_primary_key(comment.author)
            toplevel.append({"id": comment.id, "subject": comment.subject,
                             "rating": comment.rating,
                             "date": comment.date, "by": by.nickname})
        return {"title": story.title, "body": story.body,
                "author": author.nickname, "nb_comments": story.nb_comments,
                "comments": toplevel}

    def view_comment(self, comment_id: int):
        try:
            comment = self.home("comments").find_by_primary_key(comment_id)
        except KeyError:
            return None
        users = self.home("users")
        author = users.find_by_primary_key(comment.author)
        replies = []
        for reply in self.home("comments").find_by(
                "parent", comment_id, order_by="date", limit=PAGE_SIZE):
            by = users.find_by_primary_key(reply.author)
            replies.append({"id": reply.id, "subject": reply.subject,
                            "rating": reply.rating, "by": by.nickname})
        return {"subject": comment.subject, "body": comment.body,
                "rating": comment.rating, "by": author.nickname,
                "replies": replies}

    def author_info(self, user_id: int):
        try:
            user = self.home("users").find_by_primary_key(user_id)
        except KeyError:
            return None
        stories = [{"id": s.id, "title": s.title, "date": s.date}
                   for s in self.home("stories").find_by(
                       "author", user_id, order_by="date",
                       descending=True, limit=10)]
        comments = [{"id": c.id, "subject": c.subject, "rating": c.rating,
                     "date": c.date}
                    for c in self.home("comments").find_by(
                        "author", user_id, order_by="date",
                        descending=True, limit=10)]
        return {"nickname": user.nickname, "rating": user.rating,
                "access": user.access, "stories": stories,
                "comments": comments}


class PostBean(SessionBean):
    """Write-side façade: submissions, comments, moderation."""

    def _auth(self, nickname: str, password: str):
        users = self.home("users").find_by("nickname", nickname, limit=1)
        if users and users[0].password == password:
            return users[0]
        return None

    def submit_story(self, nickname: str, password: str, title: str,
                     body: str, category: int):
        user = self._auth(nickname, password)
        if user is None:
            return {"ok": False, "reason": "auth"}
        story = self.home("stories").create(
            title=title, body=body, date=BASE_TIME, author=user.id,
            category=category, nb_comments=0)
        return {"ok": True, "story_id": story.id}

    def post_comment(self, nickname: str, password: str, story_id: int,
                     parent: int, subject: str, body: str):
        user = self._auth(nickname, password)
        if user is None:
            return {"ok": False, "reason": "auth"}
        try:
            story = self.home("stories").find_by_primary_key(story_id)
        except KeyError:
            return {"ok": False, "reason": "archived"}
        self.home("comments").create(
            story_id=story_id, parent=parent, author=user.id,
            subject=subject, body=body, date=BASE_TIME, rating=0)
        story.nb_comments = story.nb_comments + 1
        return {"ok": True}

    def moderate(self, nickname: str, password: str, comment_id: int,
                 vote: int):
        user = self._auth(nickname, password)
        if user is None:
            return {"ok": False, "reason": "auth"}
        if not user.access:
            return {"ok": False, "reason": "access"}
        try:
            comment = self.home("comments").find_by_primary_key(comment_id)
        except KeyError:
            return {"ok": False, "reason": "gone"}
        vote = 1 if vote >= 0 else -1
        comment.rating = comment.rating + vote
        author = self.home("users").find_by_primary_key(comment.author)
        author.rating = author.rating + vote
        self.home("moderations").create(
            moderator=user.id, comment_id=comment_id, vote=vote,
            date=BASE_TIME)
        return {"ok": True, "vote": vote}

    def register(self, nickname: str, password: str, email: str):
        taken = self.home("users").find_by("nickname", nickname, limit=1)
        if taken:
            return {"ok": False}
        user = self.home("users").create(
            nickname=nickname, password=password, email=email, rating=0,
            access=0, creation_date=BASE_TIME)
        return {"ok": True, "user_id": user.id}


def deploy_bboard_beans(container: EjbContainer) -> None:
    container.deploy_all_entities()
    container.deploy_session("Board", BoardBean)
    container.deploy_session("Story", StoryBean)
    container.deploy_session("Post", PostBean)


def ejb_presentation_pages(container: EjbContainer) \
        -> Dict[str, Callable[[AppContext], HttpResponse]]:
    from repro.apps.bboard import logic

    pages: Dict[str, Callable] = {
        f"/{name}": logic.INTERACTIONS[name][0]
        for name in logic.STATIC_INTERACTIONS}

    def _headline_table(page, rows):
        page.table(["id", "headline", "date", "comments"],
                   [(r["id"], r["title"], r["date"], r["nb_comments"])
                    for r in rows])

    def home(ctx):
        stub = container.lookup("Board", trace=ctx.trace)
        page = _page("Stories of the Day")
        _headline_table(page, stub.stories_of_the_day())
        return ctx.respond(page)

    def browse_categories(ctx):
        stub = container.lookup("Board", trace=ctx.trace)
        page = _page("All Topics")
        for c in stub.list_categories():
            page.link(f"/stories_by_category?category={c['id']}", c["name"])
        return ctx.respond(page)

    def stories_by_category(ctx):
        stub = container.lookup("Board", trace=ctx.trace)
        page = _page("Topic Stories")
        _headline_table(page, stub.stories_in_category(
            ctx.int_param("category", 1), ctx.int_param("page", 0)))
        return ctx.respond(page)

    def older_stories(ctx):
        stub = container.lookup("Board", trace=ctx.trace)
        page = _page("Older Stories")
        _headline_table(page, stub.older_stories(ctx.int_param("page", 0)))
        return ctx.respond(page)

    def search_stories(ctx):
        stub = container.lookup("Board", trace=ctx.trace)
        page = _page("Search Results")
        _headline_table(page, stub.search(
            ctx.str_param("search_string", "STORY HEADLINE 001")))
        return ctx.respond(page)

    def view_story(ctx):
        stub = container.lookup("Story", trace=ctx.trace)
        d = stub.view_story(ctx.int_param("story_id", 1))
        if d is None:
            return ctx.error("story not found", status=404)
        page = _page("Story")
        page.heading(d["title"])
        page.paragraph(d["body"])
        page.paragraph(f"Posted by {d['author']}; "
                       f"{d['nb_comments']} comments.")
        page.table(["id", "subject", "rating", "date", "by"],
                   [(c["id"], c["subject"], c["rating"], c["date"],
                     c["by"]) for c in d["comments"]])
        return ctx.respond(page)

    def view_comment(ctx):
        stub = container.lookup("Story", trace=ctx.trace)
        d = stub.view_comment(ctx.int_param("comment_id", 1))
        if d is None:
            return ctx.error("comment not found", status=404)
        page = _page("Comment Thread")
        page.heading(d["subject"], 3)
        page.paragraph(d["body"])
        page.paragraph(f"Rated {d['rating']}, by {d['by']}")
        page.table(["id", "subject", "rating", "by"],
                   [(r["id"], r["subject"], r["rating"], r["by"])
                    for r in d["replies"]])
        return ctx.respond(page)

    def author_info(ctx):
        stub = container.lookup("Story", trace=ctx.trace)
        d = stub.author_info(ctx.int_param("user_id", 1))
        if d is None:
            return ctx.error("user not found", status=404)
        page = _page("Author")
        role = "moderator" if d["access"] else "reader"
        page.paragraph(f"{d['nickname']} ({role}), karma {d['rating']}")
        page.table(["id", "headline", "date"],
                   [(s["id"], s["title"], s["date"]) for s in d["stories"]])
        page.table(["id", "subject", "rating", "date"],
                   [(c["id"], c["subject"], c["rating"], c["date"])
                    for c in d["comments"]])
        return ctx.respond(page)

    def creds(ctx):
        return (ctx.str_param("nickname", "reader1"),
                ctx.str_param("password", ""))

    def submit_story(ctx):
        stub = container.lookup("Post", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.submit_story(
            nickname, password,
            ctx.str_param("title", "USER SUBMITTED STORY"),
            ctx.str_param("body", "Fresh off the wire. " * 5),
            ctx.int_param("category", 1))
        if not d["ok"]:
            return ctx.error("authentication failed", status=401)
        page = _page("Story Submitted")
        page.paragraph(f"Story {d['story_id']} is live.")
        return ctx.respond(page)

    def post_comment(ctx):
        stub = container.lookup("Post", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.post_comment(
            nickname, password, ctx.int_param("story_id", 1),
            ctx.int_param("parent", 0),
            ctx.str_param("subject", "Re: story"),
            ctx.str_param("body", "Strong opinions, loosely held. " * 3))
        if not d["ok"]:
            status = 401 if d["reason"] == "auth" else 409
            return ctx.error("rejected", status=status)
        page = _page("Comment Posted")
        page.paragraph("Your comment is posted.")
        return ctx.respond(page)

    def moderate_comment(ctx):
        stub = container.lookup("Post", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.moderate(nickname, password,
                          ctx.int_param("comment_id", 1),
                          ctx.int_param("vote", 1))
        if not d["ok"]:
            status = {"auth": 401, "access": 403, "gone": 404}[d["reason"]]
            return ctx.error("rejected", status=status)
        page = _page("Moderation Recorded")
        page.paragraph(f"Moderated {d['vote']:+d}.")
        return ctx.respond(page)

    def register_user(ctx):
        nickname = ctx.str_param("nickname", "")
        if not nickname:
            return ctx.error("nickname required", status=400)
        stub = container.lookup("Post", trace=ctx.trace)
        d = stub.register(nickname, ctx.str_param("password", "secret"),
                          ctx.str_param("email", "new@bboard.example"))
        if not d["ok"]:
            return ctx.error("nickname already in use", status=409)
        page = _page("Registration Complete")
        page.paragraph(f"Welcome, {nickname} (reader #{d['user_id']})!")
        return ctx.respond(page)

    dynamic = {
        "home": home, "browse_categories": browse_categories,
        "stories_by_category": stories_by_category,
        "older_stories": older_stories, "search_stories": search_stories,
        "view_story": view_story, "view_comment": view_comment,
        "author_info": author_info, "submit_story": submit_story,
        "post_comment": post_comment,
        "moderate_comment": moderate_comment,
        "register_user": register_user,
    }
    for name, fn in dynamic.items():
        pages[f"/{name}"] = fn
    return pages

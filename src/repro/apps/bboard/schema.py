"""Bulletin-board schema (RUBBoS-style), seven tables.

``users, categories, stories, old_stories, comments, old_comments,
moderations`` -- the Slashdot model: stories of the day stay in the
small ``stories`` table and age out into ``old_stories`` (the same
working-set split the auction site uses for items), comments hang off
stories with a denormalized ``nb_comments`` counter on the story, and
moderation votes adjust comment *and* author ratings.
"""

from __future__ import annotations

from typing import Dict, List

from repro.db.schema import Column, ColumnType, IndexDef, TableSchema

NUM_USERS = 500_000
NUM_CATEGORIES = 15
NUM_ACTIVE_STORIES = 3_000
NUM_OLD_STORIES = 200_000
COMMENTS_PER_STORY = 10
MODERATION_FRACTION = 0.2   # a fifth of comments receive a moderation

C = Column
T = ColumnType


def _story_columns() -> List[Column]:
    return [
        C("id", T.INT, nullable=False),
        C("title", T.VARCHAR, byte_width=60),
        C("body", T.TEXT),
        C("date", T.DATETIME),
        C("author", T.INT),
        C("category", T.INT),
        C("nb_comments", T.INT),
    ]


def _comment_columns() -> List[Column]:
    return [
        C("id", T.INT, nullable=False),
        C("story_id", T.INT),
        C("parent", T.INT),          # 0 for top-level comments
        C("author", T.INT),
        C("subject", T.VARCHAR),
        C("body", T.TEXT),
        C("date", T.DATETIME),
        C("rating", T.INT),
    ]


def bboard_schemas() -> List[TableSchema]:
    schemas = [
        TableSchema(
            name="categories",
            columns=[C("id", T.INT, nullable=False), C("name", T.VARCHAR)],
            primary_key="id", auto_increment=True),
        TableSchema(
            name="users",
            columns=[
                C("id", T.INT, nullable=False),
                C("nickname", T.VARCHAR),
                C("password", T.VARCHAR),
                C("email", T.VARCHAR),
                C("rating", T.INT),
                C("access", T.INT),      # 1 = moderator
                C("creation_date", T.DATETIME),
            ],
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_bb_nick", ("nickname",), unique=True,
                              kind="hash")]),
        TableSchema(
            name="stories",
            columns=_story_columns(),
            primary_key="id", auto_increment=True,
            indexes=[
                IndexDef("idx_story_cat_date", ("category", "date")),
                IndexDef("idx_story_date", ("date",)),
                IndexDef("idx_story_author", ("author",)),
            ]),
        TableSchema(
            name="old_stories",
            columns=_story_columns(),
            primary_key="id", auto_increment=True,
            indexes=[
                IndexDef("idx_ostory_date", ("date",)),
                IndexDef("idx_ostory_author", ("author",)),
            ]),
        TableSchema(
            name="comments",
            columns=_comment_columns(),
            primary_key="id", auto_increment=True,
            indexes=[
                IndexDef("idx_com_story", ("story_id",)),
                IndexDef("idx_com_parent", ("parent",)),
                IndexDef("idx_com_author", ("author",)),
            ]),
        TableSchema(
            name="old_comments",
            columns=_comment_columns(),
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_ocom_story", ("story_id",))]),
        TableSchema(
            name="moderations",
            columns=[
                C("id", T.INT, nullable=False),
                C("moderator", T.INT),
                C("comment_id", T.INT),
                C("vote", T.INT),
                C("date", T.DATETIME),
            ],
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_mod_comment", ("comment_id",))]),
    ]
    nominal = nominal_cardinalities()
    for schema in schemas:
        schema.stats.nominal_rows = nominal[schema.name]
        if schema.name == "stories":
            schema.stats.distinct_values = {"category": NUM_CATEGORIES}
    return schemas


def nominal_cardinalities() -> Dict[str, int]:
    return {
        "categories": NUM_CATEGORIES,
        "users": NUM_USERS,
        "stories": NUM_ACTIVE_STORIES,
        "old_stories": NUM_OLD_STORIES,
        "comments": COMMENTS_PER_STORY * NUM_ACTIVE_STORIES,
        "old_comments": COMMENTS_PER_STORY * NUM_OLD_STORIES,
        "moderations": int(MODERATION_FRACTION * COMMENTS_PER_STORY
                           * NUM_ACTIVE_STORIES),
    }

"""Bulletin-board application wiring: database + middleware deployments."""

from __future__ import annotations

from typing import Optional

from repro.apps.base import BenchmarkApp
from repro.apps.bboard.datagen import populate_bboard
from repro.apps.bboard.ejb_app import (
    deploy_bboard_beans,
    ejb_presentation_pages,
)
from repro.apps.bboard.logic import INTERACTIONS, STATIC_INTERACTIONS
from repro.apps.bboard import mixes
from repro.db.engine import Database
from repro.sim.rng import RngStreams
from repro.web.static import StaticContentStore


def build_bboard_database(scale: float = 0.005,
                          rng: Optional[RngStreams] = None,
                          tiny: bool = False) -> Database:
    """A populated bulletin-board database at the given scale."""
    db = Database(name="bboard")
    populate_bboard(db, scale=scale, rng=rng, tiny=tiny)
    return db


class BulletinBoardApp(BenchmarkApp):
    """One bulletin-board instance: shared pages + deployments."""

    name = "bboard"
    MIX_LABEL = "bulletin-board"
    INTERACTIONS = INTERACTIONS
    STATIC_INTERACTIONS = STATIC_INTERACTIONS
    MIXES = mixes.MIXES
    STATE_CLASS = mixes.BboardState
    MAKE_REQUEST = staticmethod(mixes.make_request)
    EJB_DEPLOYER = staticmethod(deploy_bboard_beans)
    EJB_PAGES = staticmethod(ejb_presentation_pages)
    # Coarse row-granularity entity loads: the bulletin board's stories
    # are read whole, unlike the bookstore/auction field-at-a-time beans.
    EJB_LOAD_MODE = "row"

    def static_store(self) -> StaticContentStore:
        # Slashdot-style pages: text-heavy, light art.
        store = StaticContentStore()
        store.register("/images/logo.gif", 2_500)
        for name in ("home", "topics", "older", "submit"):
            store.register(f"/images/{name}.gif", 1_200)
        return store

"""Bulletin-board application wiring: database + middleware deployments."""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.bboard.datagen import populate_bboard
from repro.apps.bboard.ejb_app import (
    deploy_bboard_beans,
    ejb_presentation_pages,
)
from repro.apps.bboard.logic import INTERACTIONS, STATIC_INTERACTIONS
from repro.apps.bboard import mixes
from repro.db.engine import Database
from repro.middleware.ejb import EjbContainer
from repro.middleware.phpmod import PhpModule
from repro.middleware.servlet import ServletEngine
from repro.sim.rng import RngStreams
from repro.web.static import StaticContentStore


def build_bboard_database(scale: float = 0.005,
                          rng: Optional[RngStreams] = None,
                          tiny: bool = False) -> Database:
    """A populated bulletin-board database at the given scale."""
    db = Database(name="bboard")
    populate_bboard(db, scale=scale, rng=rng, tiny=tiny)
    return db


class BulletinBoardApp:
    """One bulletin-board instance: shared pages + deployments."""

    name = "bboard"
    SSL_INTERACTIONS = frozenset()

    def __init__(self, database: Database):
        self.database = database

    def shared_pages(self) -> Dict[str, object]:
        return {f"/{name}": handler
                for name, (handler, __) in INTERACTIONS.items()}

    def deploy_php(self) -> PhpModule:
        php = PhpModule(self.database)
        php.register_app(self.shared_pages())
        return php

    def deploy_servlet(self, sync_locking: bool = False) -> ServletEngine:
        engine = ServletEngine(self.database, sync_locking=sync_locking)
        engine.register_app(self.shared_pages())
        return engine

    def deploy_ejb(self, store_mode: str = "field",
                   load_mode: str = "row"):
        container = EjbContainer(self.database, store_mode=store_mode,
                                 load_mode=load_mode)
        deploy_bboard_beans(container)
        presentation = ServletEngine(self.database, sync_locking=False)
        presentation.register_app(ejb_presentation_pages(container))
        return presentation, container

    def make_state(self, rng) -> mixes.BboardState:
        return mixes.BboardState.from_database(self.database, rng)

    @staticmethod
    def mix(name: str) -> Dict[str, float]:
        try:
            return mixes.MIXES[name]
        except KeyError:
            raise KeyError(f"unknown bulletin-board mix {name!r}; "
                           f"have {sorted(mixes.MIXES)}") from None

    @staticmethod
    def make_request(name: str, rng, state):
        return mixes.make_request(name, rng, state)

    @staticmethod
    def choose_interaction(mix: Dict[str, float], rng) -> str:
        from repro.workload.markov import choose_interaction
        return choose_interaction(mix, rng)

    def static_store(self) -> StaticContentStore:
        # Slashdot-style pages: text-heavy, light art.
        store = StaticContentStore()
        store.register("/images/logo.gif", 2_500)
        for name in ("home", "topics", "older", "submit"):
            store.register(f"/images/{name}.gif", 1_200)
        return store

    @staticmethod
    def interaction_names() -> tuple:
        return tuple(INTERACTIONS)

    @staticmethod
    def is_read_only(name: str) -> bool:
        return INTERACTIONS[name][1]

    @staticmethod
    def is_static(name: str) -> bool:
        return name in STATIC_INTERACTIONS

"""Bulletin-board workload mixes and request generation.

Two mixes mirroring the auction site's: a read-only *reading* mix and a
*submission* mix with 15% read-write interactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.apps.bboard.logic import INTERACTIONS
from repro.apps.bboard.schema import NUM_CATEGORIES
from repro.web.http import HttpRequest

BBOARD_INTERACTIONS = tuple(INTERACTIONS)

SUBMISSION_MIX: Dict[str, float] = {
    "home": 14.00, "browse_categories": 7.00, "stories_by_category": 12.00,
    "older_stories": 5.00, "view_story": 16.00, "view_comment": 8.00,
    "author_info": 4.00, "search_stories": 3.00,
    "submit_story_form": 2.00, "submit_story": 1.50,
    "post_comment_form": 8.00, "post_comment": 8.50,
    "moderate_form": 4.25, "moderate_comment": 4.00,
    "register_form": 1.75, "register_user": 1.00,
}

READING_MIX: Dict[str, float] = {
    "home": 22.00, "browse_categories": 9.00, "stories_by_category": 22.00,
    "older_stories": 8.00, "view_story": 24.00, "view_comment": 9.00,
    "author_info": 4.00, "search_stories": 2.00,
}

MIXES: Dict[str, Dict[str, float]] = {
    "submission": SUBMISSION_MIX,
    "reading": READING_MIX,
}


def read_write_fraction(mix: Dict[str, float]) -> float:
    total = sum(mix.values())
    rw = sum(weight for name, weight in mix.items()
             if not INTERACTIONS[name][1])
    return rw / total


# Registration nicknames embed a per-state tag seeded from the state's
# address; collisions from address reuse bump to the next free value
# (see the bookstore mixes for the full story).
_USED_TAGS = set()


def _fresh_tag(state) -> int:
    tag = id(state) % 100000
    while tag in _USED_TAGS:
        tag += 1
    _USED_TAGS.add(tag)
    return tag


@dataclass
class BboardState:
    """Per-session client state for parameter generation."""

    n_users: int
    n_stories: int
    n_old_stories: int
    n_comments: int
    user_id: int = 1
    registered: int = 0
    tag: int = -1
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.tag < 0:
            self.tag = _fresh_tag(self)

    @classmethod
    def from_database(cls, db, rng: random.Random) -> "BboardState":
        n_users = len(db.table("users"))
        # Session users are moderators often enough that moderation
        # interactions succeed (moderators are every 50th user).
        user_id = 50 * (1 + rng.randrange(max(1, n_users // 50)))
        return cls(n_users=n_users,
                   n_stories=len(db.table("stories")),
                   n_old_stories=len(db.table("old_stories")),
                   n_comments=len(db.table("comments")),
                   user_id=user_id)

    def credentials(self) -> dict:
        return {"nickname": f"reader{self.user_id}",
                "password": f"word{self.user_id}"}


def make_request(name: str, rng: random.Random,
                 state: BboardState) -> HttpRequest:
    if name not in INTERACTIONS:
        raise KeyError(f"unknown bulletin-board interaction {name!r}")
    params: dict = {}
    if name == "stories_by_category":
        params = {"category": 1 + rng.randrange(NUM_CATEGORIES),
                  "page": rng.randrange(2)}
    elif name == "older_stories":
        params = {"page": rng.randrange(5)}
    elif name == "view_story":
        params = {"story_id": 1 + rng.randrange(state.n_stories)}
    elif name == "view_comment":
        params = {"comment_id": 1 + rng.randrange(state.n_comments)}
    elif name == "author_info":
        params = {"user_id": 1 + rng.randrange(state.n_users)}
    elif name == "search_stories":
        params = {"search_string": f"STORY HEADLINE {rng.randrange(300):03d}"}
    elif name == "submit_story":
        params = {"title": f"BREAKING {rng.randrange(10**6)}",
                  "category": 1 + rng.randrange(NUM_CATEGORIES),
                  **state.credentials()}
    elif name == "post_comment":
        params = {"story_id": 1 + rng.randrange(state.n_stories),
                  "subject": "Re: breaking", **state.credentials()}
    elif name == "moderate_comment":
        params = {"comment_id": 1 + rng.randrange(state.n_comments),
                  "vote": rng.choice([-1, 1, 1]), **state.credentials()}
    elif name == "register_user":
        state.registered += 1
        params = {"nickname": f"newreader_{state.tag}_"
                              f"{state.registered}_{rng.randrange(10**9)}"}
    return HttpRequest(path=f"/{name}", params=params)

"""Bulletin-board data generator (scaled, per-entity sizes constant)."""

from __future__ import annotations

from typing import Optional

from repro.apps.bboard.schema import (
    COMMENTS_PER_STORY,
    NUM_ACTIVE_STORIES,
    NUM_CATEGORIES,
    NUM_OLD_STORIES,
    NUM_USERS,
    bboard_schemas,
)
from repro.db.engine import Database
from repro.sim.rng import RngStreams

BASE_TIME = 1_000_000_000.0
DAY = 86_400.0

STORY_FLOOR = 450     # >= 2 full pages of 20 per category
USER_FLOOR = 1_000
OLD_STORY_FLOOR = 1_000


def scaled_counts(scale: float, tiny: bool = False) -> dict:
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    return {
        "categories": NUM_CATEGORIES,
        "users": max(200 if tiny else USER_FLOOR, int(NUM_USERS * scale)),
        "stories": max(45 if tiny else STORY_FLOOR,
                       int(NUM_ACTIVE_STORIES * scale)),
        "old_stories": max(100 if tiny else OLD_STORY_FLOOR,
                           int(NUM_OLD_STORIES * scale)),
    }


def populate_bboard(db: Database, scale: float = 0.005,
                    rng: Optional[RngStreams] = None,
                    tiny: bool = False) -> dict:
    """Create the seven tables and load a coherent dataset."""
    rng = rng or RngStreams(23)
    r = rng.stream("bboard.datagen")
    for schema in bboard_schemas():
        db.create_table(schema)
    counts = scaled_counts(scale, tiny=tiny)

    for i in range(1, NUM_CATEGORIES + 1):
        db.table("categories").insert({"name": f"TOPIC{i:02d}"})

    users = db.table("users")
    n_users = counts["users"]
    for i in range(1, n_users + 1):
        users.insert({
            "nickname": f"reader{i}", "password": f"word{i}",
            "email": f"reader{i}@bboard.example",
            "rating": r.randrange(-3, 12),
            "access": 1 if i % 50 == 0 else 0,   # 2% moderators
            "creation_date": BASE_TIME - (i % 700) * DAY})

    stories = db.table("stories")
    comments = db.table("comments")
    moderations = db.table("moderations")
    n_stories = counts["stories"]
    for i in range(1, n_stories + 1):
        stories.insert({
            "title": f"STORY HEADLINE {i % 300:03d} item {i}",
            "body": "Breaking development in middleware research. " * 8,
            "date": BASE_TIME - (i % 3) * DAY - (i % 97) * 600.0,
            "author": 1 + (i % n_users),
            "category": 1 + (i % NUM_CATEGORIES),
            "nb_comments": COMMENTS_PER_STORY})
        for c in range(COMMENTS_PER_STORY):
            rowid = comments.insert({
                "story_id": i,
                "parent": 0 if c < 4 else 1 + r.randrange(4),
                "author": 1 + r.randrange(n_users),
                "subject": f"Re: story {i}",
                "body": "Insightful commentary, surely. " * 4,
                "date": BASE_TIME - (i % 3) * DAY + c * 60.0,
                "rating": r.randrange(-1, 5)})
            if (i * COMMENTS_PER_STORY + c) % 5 == 0:
                comment_pk = comments.get_row(rowid)[0]
                moderations.insert({
                    "moderator": 50 * (1 + r.randrange(max(1, n_users // 50))),
                    "comment_id": comment_pk,
                    "vote": r.choice([-1, 1, 1]),
                    "date": BASE_TIME})

    old_stories = db.table("old_stories")
    old_comments = db.table("old_comments")
    n_old = counts["old_stories"]
    for i in range(1, n_old + 1):
        old_id = n_stories + i
        old_stories.insert({
            "id": old_id,
            "title": f"ARCHIVED STORY {i % 300:03d} item {i}",
            "body": "Yesterday's news. " * 6,
            "date": BASE_TIME - (4 + i % 500) * DAY,
            "author": 1 + (i % n_users),
            "category": 1 + (i % NUM_CATEGORIES),
            "nb_comments": COMMENTS_PER_STORY})
        for c in range(COMMENTS_PER_STORY):
            old_comments.insert({
                "story_id": old_id, "parent": 0,
                "author": 1 + r.randrange(n_users),
                "subject": f"Re: old {i}",
                "body": "Archival remark. " * 3,
                "date": BASE_TIME - (4 + i % 500) * DAY,
                "rating": r.randrange(-1, 5)})

    return {name: len(db.table(name)) for name in (
        "categories", "users", "stories", "old_stories", "comments",
        "old_comments", "moderations")}

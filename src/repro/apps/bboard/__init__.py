"""Bulletin-board benchmark (extension).

The paper's related-work section references the authors' third dynamic
web benchmark -- a Slashdot-style bulletin board (WWC-5, [3]) -- and
predicts: "the Web server CPU is the bottleneck for the bulletin board.
Therefore, we expect the results for the bulletin board to be similar
to the auction site."  This package implements that benchmark so the
prediction can be tested (see ``repro.experiments.ext_bboard``).
"""

from repro.apps.bboard.app import BulletinBoardApp, build_bboard_database
from repro.apps.bboard.mixes import (
    BBOARD_INTERACTIONS,
    READING_MIX,
    SUBMISSION_MIX,
)

__all__ = [
    "BulletinBoardApp",
    "build_bboard_database",
    "BBOARD_INTERACTIONS",
    "READING_MIX",
    "SUBMISSION_MIX",
]

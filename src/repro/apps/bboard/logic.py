"""The sixteen bulletin-board interactions, written once against
AppContext (PHP and servlets share them; ejb_app.py has the EJB tier).

Like the auction site, queries are short -- list twenty headlines, show
one story's comment tree, insert a comment -- so the dynamic-content
generator, not the database, is expected to be the bottleneck (the
paper's stated reason for omitting this benchmark from its main
comparison).
"""

from __future__ import annotations

from repro.apps.bboard.datagen import BASE_TIME
from repro.middleware.context import AppContext
from repro.web.html import Page
from repro.web.http import HttpResponse

SITE = "Bulletin Board"
PAGE_SIZE = 20
NAV = ("home", "topics", "older", "submit")


def _page(title: str) -> Page:
    page = Page(title, site=SITE)
    page.nav_buttons(NAV)
    return page


def _authenticate(ctx: AppContext):
    nickname = ctx.str_param("nickname", "reader1")
    password = ctx.str_param("password", "")
    return ctx.query(
        "SELECT id, access, rating FROM users "
        "WHERE nickname = ? AND password = ?", (nickname, password)).first()


# ------------------------------------------------------------ static pages

def submit_story_form(ctx: AppContext) -> HttpResponse:
    page = _page("Submit a Story")
    page.form("/submit_story", ["nickname", "password", "title", "body",
                                "category"])
    return ctx.respond(page)


def post_comment_form(ctx: AppContext) -> HttpResponse:
    page = _page("Post a Comment")
    page.form("/post_comment", ["nickname", "password", "story_id",
                                "parent", "subject", "body"])
    return ctx.respond(page)


def moderate_form(ctx: AppContext) -> HttpResponse:
    page = _page("Moderate a Comment")
    page.form("/moderate_comment", ["nickname", "password", "comment_id",
                                    "vote"])
    return ctx.respond(page)


def register_form(ctx: AppContext) -> HttpResponse:
    page = _page("Register")
    page.form("/register_user", ["nickname", "password", "email"])
    return ctx.respond(page)


# ------------------------------------------------------------- read pages

def home(ctx: AppContext) -> HttpResponse:
    """Stories of the day: the twenty most recent headlines."""
    result = ctx.query(
        "SELECT id, title, date, nb_comments FROM stories "
        "ORDER BY date DESC LIMIT ?", (PAGE_SIZE,))
    page = _page("Stories of the Day")
    page.table(["id", "headline", "date", "comments"], result.rows)
    for row in result.rows:
        page.link(f"/view_story?story_id={row[0]}", row[1])
    return ctx.respond(page)


def browse_categories(ctx: AppContext) -> HttpResponse:
    result = ctx.query("SELECT id, name FROM categories ORDER BY name")
    page = _page("All Topics")
    for cid, name in result.rows:
        page.link(f"/stories_by_category?category={cid}", name)
    return ctx.respond(page)


def stories_by_category(ctx: AppContext) -> HttpResponse:
    category = ctx.int_param("category", 1)
    offset = ctx.int_param("page", 0) * PAGE_SIZE
    result = ctx.query(
        "SELECT id, title, date, nb_comments FROM stories "
        "WHERE category = ? ORDER BY date DESC LIMIT ? OFFSET ?",
        (category, PAGE_SIZE, offset))
    page = _page("Topic Stories")
    page.table(["id", "headline", "date", "comments"], result.rows)
    return ctx.respond(page)


def older_stories(ctx: AppContext) -> HttpResponse:
    """The archive, newest first (hits the big old_stories table)."""
    offset = ctx.int_param("page", 0) * PAGE_SIZE
    result = ctx.query(
        "SELECT id, title, date, nb_comments FROM old_stories "
        "ORDER BY date DESC LIMIT ? OFFSET ?", (PAGE_SIZE, offset))
    page = _page("Older Stories")
    page.table(["id", "headline", "date", "comments"], result.rows)
    return ctx.respond(page)


def _load_story(ctx: AppContext, story_id: int):
    row = ctx.query(
        "SELECT id, title, body, date, author, category, nb_comments "
        "FROM stories WHERE id = ?", (story_id,)).first()
    if row is not None:
        return row, "comments"
    row = ctx.query(
        "SELECT id, title, body, date, author, category, nb_comments "
        "FROM old_stories WHERE id = ?", (story_id,)).first()
    return row, "old_comments"


def view_story(ctx: AppContext) -> HttpResponse:
    story_id = ctx.int_param("story_id", 1)
    story, comment_table = _load_story(ctx, story_id)
    if story is None:
        return ctx.error(f"story {story_id} not found", status=404)
    author = ctx.query("SELECT nickname FROM users WHERE id = ?",
                       (story[4],)).scalar()
    toplevel = ctx.query(
        f"SELECT c.id, c.subject, c.rating, c.date, u.nickname "
        f"FROM {comment_table} c JOIN users u ON u.id = c.author "
        f"WHERE c.story_id = ? AND c.parent = 0 "
        f"ORDER BY c.date LIMIT ?", (story_id, PAGE_SIZE))
    page = _page("Story")
    page.heading(story[1])
    page.paragraph(story[2])
    page.paragraph(f"Posted by {author}; {story[6]} comments.")
    page.table(["id", "subject", "rating", "date", "by"], toplevel.rows)
    for row in toplevel.rows:
        page.link(f"/view_comment?comment_id={row[0]}", row[1])
    return ctx.respond(page)


def view_comment(ctx: AppContext) -> HttpResponse:
    comment_id = ctx.int_param("comment_id", 1)
    comment = ctx.query(
        "SELECT c.id, c.subject, c.body, c.rating, c.date, c.story_id, "
        "u.nickname FROM comments c JOIN users u ON u.id = c.author "
        "WHERE c.id = ?", (comment_id,)).first()
    if comment is None:
        return ctx.error(f"comment {comment_id} not found", status=404)
    replies = ctx.query(
        "SELECT c.id, c.subject, c.rating, u.nickname "
        "FROM comments c JOIN users u ON u.id = c.author "
        "WHERE c.parent = ? ORDER BY c.date LIMIT ?",
        (comment_id, PAGE_SIZE))
    page = _page("Comment Thread")
    page.heading(comment[1], 3)
    page.paragraph(comment[2])
    page.paragraph(f"Rated {comment[3]}, by {comment[6]}")
    page.table(["id", "subject", "rating", "by"], replies.rows)
    return ctx.respond(page)


def author_info(ctx: AppContext) -> HttpResponse:
    user_id = ctx.int_param("user_id", 1)
    user = ctx.query(
        "SELECT nickname, rating, access, creation_date FROM users "
        "WHERE id = ?", (user_id,)).first()
    if user is None:
        return ctx.error(f"user {user_id} not found", status=404)
    their_stories = ctx.query(
        "SELECT id, title, date FROM stories WHERE author = ? "
        "ORDER BY date DESC LIMIT 10", (user_id,))
    their_comments = ctx.query(
        "SELECT id, subject, rating, date FROM comments WHERE author = ? "
        "ORDER BY date DESC LIMIT 10", (user_id,))
    page = _page("Author")
    role = "moderator" if user[2] else "reader"
    page.paragraph(f"{user[0]} ({role}), karma {user[1]}")
    page.table(["id", "headline", "date"], their_stories.rows)
    page.table(["id", "subject", "rating", "date"], their_comments.rows)
    return ctx.respond(page)


def search_stories(ctx: AppContext) -> HttpResponse:
    """Title-prefix search over the live stories table."""
    term = ctx.str_param("search_string", "STORY HEADLINE 001")
    result = ctx.query(
        "SELECT id, title, date, nb_comments FROM stories "
        "WHERE title LIKE ? ORDER BY date DESC LIMIT ?",
        (term + "%", PAGE_SIZE))
    page = _page("Search Results")
    page.table(["id", "headline", "date", "comments"], result.rows)
    return ctx.respond(page)


# ------------------------------------------------------------- write pages

def submit_story(ctx: AppContext) -> HttpResponse:
    user = _authenticate(ctx)
    if user is None:
        return ctx.error("authentication failed", status=401)
    title = ctx.str_param("title", "USER SUBMITTED STORY")
    with ctx.exclusive([("stories", user[0])]):
        ctx.update(
            "INSERT INTO stories (title, body, date, author, category, "
            "nb_comments) VALUES (?, ?, ?, ?, ?, 0)",
            (title, ctx.str_param("body", "Fresh off the wire. " * 5),
             BASE_TIME, user[0], ctx.int_param("category", 1)))
        story_id = ctx.last_insert_id
    page = _page("Story Submitted")
    page.paragraph(f"Story {story_id} is live: {title}")
    return ctx.respond(page)


def post_comment(ctx: AppContext) -> HttpResponse:
    user = _authenticate(ctx)
    if user is None:
        return ctx.error("authentication failed", status=401)
    story_id = ctx.int_param("story_id", 1)
    with ctx.exclusive([("comments", story_id), ("stories", story_id)]):
        exists = ctx.query("SELECT id FROM stories WHERE id = ?",
                           (story_id,)).scalar()
        if exists is None:
            return ctx.error("story is archived or missing", status=409)
        ctx.update(
            "INSERT INTO comments (story_id, parent, author, subject, "
            "body, date, rating) VALUES (?, ?, ?, ?, ?, ?, 0)",
            (story_id, ctx.int_param("parent", 0), user[0],
             ctx.str_param("subject", "Re: story"),
             ctx.str_param("body", "Strong opinions, loosely held. " * 3),
             BASE_TIME))
        # Maintain the denormalized counter on the story.
        ctx.update(
            "UPDATE stories SET nb_comments = nb_comments + 1 "
            "WHERE id = ?", (story_id,))
    page = _page("Comment Posted")
    page.paragraph(f"Your comment on story {story_id} is posted.")
    return ctx.respond(page)


def moderate_comment(ctx: AppContext) -> HttpResponse:
    user = _authenticate(ctx)
    if user is None:
        return ctx.error("authentication failed", status=401)
    if not user[1]:
        return ctx.error("not a moderator", status=403)
    comment_id = ctx.int_param("comment_id", 1)
    vote = 1 if ctx.int_param("vote", 1) >= 0 else -1
    with ctx.exclusive([("comments", comment_id), ("users", comment_id),
                        ("moderations", comment_id)]):
        comment = ctx.query(
            "SELECT author, rating FROM comments WHERE id = ?",
            (comment_id,)).first()
        if comment is None:
            return ctx.error("comment vanished", status=404)
        ctx.update("UPDATE comments SET rating = rating + ? WHERE id = ?",
                   (vote, comment_id))
        ctx.update("UPDATE users SET rating = rating + ? WHERE id = ?",
                   (vote, comment[0]))
        ctx.update(
            "INSERT INTO moderations (moderator, comment_id, vote, date) "
            "VALUES (?, ?, ?, ?)", (user[0], comment_id, vote, BASE_TIME))
    page = _page("Moderation Recorded")
    page.paragraph(f"Comment {comment_id} moderated {vote:+d}.")
    return ctx.respond(page)


def register_user(ctx: AppContext) -> HttpResponse:
    nickname = ctx.str_param("nickname", "")
    if not nickname:
        return ctx.error("nickname required", status=400)
    with ctx.exclusive([("users", nickname)]):
        taken = ctx.query("SELECT id FROM users WHERE nickname = ?",
                          (nickname,)).scalar()
        if taken is not None:
            return ctx.error("nickname already in use", status=409)
        ctx.update(
            "INSERT INTO users (nickname, password, email, rating, "
            "access, creation_date) VALUES (?, ?, ?, 0, 0, ?)",
            (nickname, ctx.str_param("password", "secret"),
             ctx.str_param("email", "new@bboard.example"), BASE_TIME))
        user_id = ctx.last_insert_id
    page = _page("Registration Complete")
    page.paragraph(f"Welcome, {nickname} (reader #{user_id})!")
    return ctx.respond(page)


INTERACTIONS = {
    "home": (home, True),
    "browse_categories": (browse_categories, True),
    "stories_by_category": (stories_by_category, True),
    "older_stories": (older_stories, True),
    "view_story": (view_story, True),
    "view_comment": (view_comment, True),
    "author_info": (author_info, True),
    "search_stories": (search_stories, True),
    "submit_story_form": (submit_story_form, True),
    "submit_story": (submit_story, False),
    "post_comment_form": (post_comment_form, True),
    "post_comment": (post_comment, False),
    "moderate_form": (moderate_form, True),
    "moderate_comment": (moderate_comment, False),
    "register_form": (register_form, True),
    "register_user": (register_user, False),
}

STATIC_INTERACTIONS = ("submit_story_form", "post_comment_form",
                       "moderate_form", "register_form")

"""Shared application wiring: one base class, three benchmarks.

Every benchmark application has the same shape: a populated
:class:`~repro.db.engine.Database`, a table of dynamic-page handlers
shared by the PHP and servlet deployments, an EJB deployment with its
own presentation pages, and a workload surface (interaction mixes,
request factories, per-client session state).  :class:`BenchmarkApp`
implements that shape once; the concrete apps (bookstore, auction,
bulletin board) supply declarative class attributes and override only
what genuinely differs (their static-content catalogues).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.middleware.ejb import EjbContainer
from repro.middleware.phpmod import PhpModule
from repro.middleware.servlet import ServletEngine
from repro.web.static import StaticContentStore
from repro.workload.markov import choose_interaction as _choose_interaction

# The four middleware architectures of the paper, by the names
# repro.topology.configs.Configuration.flavor uses.
ARCHITECTURES = ("php", "servlet", "servlet_sync", "ejb")


class BenchmarkApp:
    """Database + per-architecture deployments, driven by class attributes.

    Subclasses declare:

    ``name``                 the app's registry name ("bookstore", ...)
    ``SSL_INTERACTIONS``     interactions served over SSL (extra web CPU)
    ``INTERACTIONS``         name -> (page handler, read_only flag)
    ``STATIC_INTERACTIONS``  interactions served without touching the DB
    ``MIXES``                mix name -> {interaction: weight}
    ``MIX_LABEL``            human label for mix-lookup errors (optional)
    ``STATE_CLASS``          session state; ``from_database(db, rng)``
    ``MAKE_REQUEST``         staticmethod (name, rng, state) -> HttpRequest
    ``EJB_DEPLOYER``         staticmethod deploying beans into a container
    ``EJB_PAGES``            staticmethod container -> presentation pages
    ``EJB_LOAD_MODE``        the container's default entity-load mode
    """

    name = ""
    SSL_INTERACTIONS: frozenset = frozenset()
    INTERACTIONS: Dict[str, tuple] = {}
    STATIC_INTERACTIONS: frozenset = frozenset()
    MIXES: Dict[str, Dict[str, float]] = {}
    MIX_LABEL: Optional[str] = None
    STATE_CLASS = None
    MAKE_REQUEST = None
    EJB_DEPLOYER = None
    EJB_PAGES = None
    EJB_LOAD_MODE = "field"

    def __init__(self, database):
        self.database = database

    # -- page tables ---------------------------------------------------------------

    def shared_pages(self) -> Dict[str, object]:
        """The hand-written-SQL pages used by both PHP and servlets."""
        return {f"/{name}": handler
                for name, (handler, __) in self.INTERACTIONS.items()}

    # -- deployments ---------------------------------------------------------------

    def deploy_php(self) -> PhpModule:
        php = PhpModule(self.database)
        php.register_app(self.shared_pages())
        return php

    def deploy_servlet(self, sync_locking: bool = False) -> ServletEngine:
        engine = ServletEngine(self.database, sync_locking=sync_locking)
        engine.register_app(self.shared_pages())
        return engine

    def deploy_ejb(self, store_mode: str = "field",
                   load_mode: Optional[str] = None):
        """Returns (presentation ServletEngine, EjbContainer)."""
        if load_mode is None:
            load_mode = self.EJB_LOAD_MODE
        container = EjbContainer(self.database, store_mode=store_mode,
                                 load_mode=load_mode)
        self.EJB_DEPLOYER(container)
        presentation = ServletEngine(self.database, sync_locking=False)
        presentation.register_app(self.EJB_PAGES(container))
        return presentation, container

    def deploy(self, arch: str, **kwargs):
        """One deployment by architecture name (see ``ARCHITECTURES``).

        Returns what the matching ``deploy_*`` method returns: the
        middleware front end for php/servlet flavors, and the
        (presentation, container) pair for ``ejb``.  ``kwargs`` pass
        through (e.g. ``store_mode`` for the EJB container).
        """
        if arch == "php":
            return self.deploy_php(**kwargs)
        if arch == "servlet":
            return self.deploy_servlet(sync_locking=False, **kwargs)
        if arch == "servlet_sync":
            return self.deploy_servlet(sync_locking=True, **kwargs)
        if arch == "ejb":
            return self.deploy_ejb(**kwargs)
        raise ValueError(f"unknown architecture {arch!r}; "
                         f"have {list(ARCHITECTURES)}")

    def deploy_pool(self, arch: str, count: int, **kwargs) -> list:
        """``count`` independent deployments over the shared database.

        The functional counterpart of a load-balanced container pool
        (:mod:`repro.cluster`): each servlet engine / PHP module is its
        own process with private caches and its own sync-lock registry,
        all hitting one database.
        """
        if count < 1:
            raise ValueError(f"pool needs >= 1 deployment, got {count}")
        return [self.deploy(arch, **kwargs) for __ in range(count)]

    # -- workload ------------------------------------------------------------------

    def make_state(self, rng):
        return self.STATE_CLASS.from_database(self.database, rng)

    @classmethod
    def mix(cls, name: str) -> Dict[str, float]:
        try:
            return cls.MIXES[name]
        except KeyError:
            label = cls.MIX_LABEL or cls.name
            raise KeyError(f"unknown {label} mix {name!r}; "
                           f"have {sorted(cls.MIXES)}") from None

    @classmethod
    def make_request(cls, name: str, rng, state):
        return cls.MAKE_REQUEST(name, rng, state)

    @staticmethod
    def choose_interaction(mix: Dict[str, float], rng) -> str:
        return _choose_interaction(mix, rng)

    def static_store(self) -> StaticContentStore:
        """The app's static files (subclasses register their catalogue)."""
        return StaticContentStore()

    @classmethod
    def interaction_names(cls) -> tuple:
        return tuple(cls.INTERACTIONS)

    @classmethod
    def is_read_only(cls, name: str) -> bool:
        return cls.INTERACTIONS[name][1]

    @classmethod
    def is_static(cls, name: str) -> bool:
        return name in cls.STATIC_INTERACTIONS

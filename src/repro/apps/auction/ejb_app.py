"""EJB implementation of the auction site: façades + CMP entities.

Same structure as the bookstore EJB variant: stateless session beans
capture the business logic, entity beans (one per table) generate all
SQL, and presentation servlets format HTML from what the façades return.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.auction.datagen import BASE_TIME
from repro.apps.auction.logic import _page
from repro.middleware.context import AppContext
from repro.middleware.ejb import EjbContainer, SessionBean
from repro.web.http import HttpResponse

PAGE_SIZE = 25


class AuthMixin:
    def _auth(self, nickname: str, password: str):
        users = self.home("users").find_by("nickname", nickname, limit=1)
        if users and users[0].password == password:
            return users[0]
        return None


class BrowseBean(SessionBean):
    def list_categories(self) -> list:
        return [{"id": c.id, "name": c.name}
                for c in self.home("categories").find_all()]

    def list_regions(self) -> list:
        return [{"id": r.id, "name": r.name}
                for r in self.home("regions").find_all()]

    def region_name(self, region: int) -> str:
        return self.home("regions").find_by_primary_key(region).name

    def search_category(self, category: int, page: int = 0) -> list:
        items = self.home("items").find_by(
            "category", category, order_by="end_date",
            limit=PAGE_SIZE * (page + 1))
        out = []
        for item in items[page * PAGE_SIZE:]:
            if item.end_date < BASE_TIME:
                continue
            out.append({"id": item.id, "name": item.name,
                        "max_bid": item.max_bid,
                        "nb_of_bids": item.nb_of_bids,
                        "end_date": item.end_date})
        return out

    def search_region(self, category: int, region: int,
                      page: int = 0) -> list:
        items = self.home("items").find_by(
            "category", category, limit=PAGE_SIZE * (page + 2))
        users = self.home("users")
        out = []
        for item in items[page * PAGE_SIZE:]:
            seller = users.find_by_primary_key(item.seller)
            if seller.region != region or item.end_date < BASE_TIME:
                continue
            out.append({"id": item.id, "name": item.name,
                        "max_bid": item.max_bid,
                        "nb_of_bids": item.nb_of_bids,
                        "end_date": item.end_date})
        return out


class ViewBean(SessionBean):
    def _find_item(self, item_id: int):
        try:
            return self.home("items").find_by_primary_key(item_id), False
        except KeyError:
            pass
        try:
            return self.home("old_items").find_by_primary_key(item_id), True
        except KeyError:
            return None, True

    def view_item(self, item_id: int):
        item, ended = self._find_item(item_id)
        if item is None:
            return None
        seller = self.home("users").find_by_primary_key(item.seller)
        return {"name": item.name, "description": item.description,
                "initial_price": item.initial_price,
                "quantity": item.quantity, "buy_now": item.buy_now,
                "nb_of_bids": item.nb_of_bids, "max_bid": item.max_bid,
                "end_date": item.end_date, "ended": ended,
                "seller_nick": seller.nickname,
                "seller_rating": seller.rating}

    def view_user(self, user_id: int):
        try:
            user = self.home("users").find_by_primary_key(user_id)
        except KeyError:
            return None
        comments = self.home("comments").find_by(
            "to_user", user_id, order_by="date", descending=True, limit=10)
        users = self.home("users")
        rows = []
        for c in comments:
            author = users.find_by_primary_key(c.from_user)
            rows.append({"rating": c.rating, "date": c.date,
                         "comment": c.comment, "from": author.nickname})
        return {"nickname": user.nickname, "firstname": user.firstname,
                "lastname": user.lastname, "rating": user.rating,
                "comments": rows}

    def bid_history(self, item_id: int) -> list:
        bids = self.home("bids").find_by(
            "item_id", item_id, order_by="date", descending=True)
        users = self.home("users")
        out = []
        for bid in bids:
            bidder = users.find_by_primary_key(bid.user_id)
            out.append({"bidder": bidder.nickname, "bid": bid.bid,
                        "qty": bid.qty, "date": bid.date})
        return out


class BidBean(AuthMixin, SessionBean):
    def put_bid(self, nickname: str, password: str, item_id: int):
        user = self._auth(nickname, password)
        if user is None:
            return None
        try:
            item = self.home("items").find_by_primary_key(item_id)
        except KeyError:
            return None
        return {"name": item.name, "max_bid": item.max_bid,
                "nb_of_bids": item.nb_of_bids}

    def store_bid(self, nickname: str, password: str, item_id: int,
                  bid: float, max_bid: float, qty: int):
        user = self._auth(nickname, password)
        if user is None:
            return {"ok": False, "reason": "auth"}
        try:
            item = self.home("items").find_by_primary_key(item_id)
        except KeyError:
            return {"ok": False, "reason": "gone"}
        if bid <= (item.max_bid or 0.0):
            return {"ok": False, "reason": "low"}
        self.home("bids").create(
            id=self._next_id("bids"), user_id=user.id, item_id=item_id,
            qty=qty, bid=bid, max_bid=max_bid, date=BASE_TIME)
        item.nb_of_bids = item.nb_of_bids + 1
        item.max_bid = bid
        return {"ok": True}

    def _next_id(self, counter: str) -> int:
        rows = self.home("ids").find_by("name", counter, limit=1)
        counter_bean = rows[0]
        counter_bean.value = counter_bean.value + 1
        return counter_bean.value


class TradeBean(AuthMixin, SessionBean):
    """Buy-now, comments, selling, registration."""

    def _next_id(self, counter: str) -> int:
        rows = self.home("ids").find_by("name", counter, limit=1)
        counter_bean = rows[0]
        counter_bean.value = counter_bean.value + 1
        return counter_bean.value

    def buy_now_view(self, nickname: str, password: str, item_id: int):
        user = self._auth(nickname, password)
        if user is None:
            return None
        try:
            item = self.home("items").find_by_primary_key(item_id)
        except KeyError:
            return None
        return {"name": item.name, "buy_now": item.buy_now,
                "quantity": item.quantity}

    def store_buy_now(self, nickname: str, password: str, item_id: int,
                      qty: int):
        user = self._auth(nickname, password)
        if user is None:
            return {"ok": False}
        try:
            item = self.home("items").find_by_primary_key(item_id)
        except KeyError:
            return {"ok": False}
        qty = min(qty, item.quantity)
        if qty <= 0:
            return {"ok": False}
        price = item.buy_now
        self.home("buy_now").create(
            id=self._next_id("buy_now"), buyer_id=user.id, item_id=item_id,
            qty=qty, date=BASE_TIME)
        remaining = item.quantity - qty
        item.quantity = remaining
        if remaining == 0:
            item.end_date = BASE_TIME - 1.0
        return {"ok": True, "qty": qty, "total": price * qty}

    def comment_view(self, nickname: str, password: str, to_user: int,
                     item_id: int):
        user = self._auth(nickname, password)
        if user is None:
            return None
        target = self.home("users").find_by_primary_key(to_user)
        try:
            item = self.home("old_items").find_by_primary_key(item_id)
        except KeyError:
            try:
                item = self.home("items").find_by_primary_key(item_id)
            except KeyError:
                item = None
        return {"target": target.nickname,
                "item": item.name if item else "(unknown)"}

    def store_comment(self, nickname: str, password: str, to_user: int,
                      item_id: int, rating: int, text: str):
        user = self._auth(nickname, password)
        if user is None:
            return {"ok": False}
        self.home("comments").create(
            id=self._next_id("comments"), from_user=user.id,
            to_user=to_user, item_id=item_id, rating=rating,
            date=BASE_TIME, comment=text)
        target = self.home("users").find_by_primary_key(to_user)
        target.rating = target.rating + rating
        return {"ok": True}

    def register_item(self, nickname: str, password: str, name: str,
                      description: str, initial_price: float,
                      quantity: int, category: int, duration: float):
        user = self._auth(nickname, password)
        if user is None:
            return {"ok": False}
        item_id = self._next_id("items")
        self.home("items").create(
            id=item_id, name=name, description=description,
            initial_price=initial_price, quantity=quantity,
            reserve_price=initial_price + 5.0, buy_now=initial_price * 3.0,
            nb_of_bids=0, max_bid=0.0, start_date=BASE_TIME,
            end_date=BASE_TIME + duration * 86_400.0, seller=user.id,
            category=category)
        return {"ok": True, "item_id": item_id}

    def register_user(self, nickname: str, firstname: str, lastname: str,
                      password: str, email: str, region_name: str):
        taken = self.home("users").find_by("nickname", nickname, limit=1)
        if taken:
            return {"ok": False}
        regions = self.home("regions").find_where(
            "name = ?", (region_name,), limit=1)
        region = regions[0].id if regions else 1
        user_id = self._next_id("users")
        self.home("users").create(
            id=user_id, firstname=firstname, lastname=lastname,
            nickname=nickname, password=password, email=email, rating=0,
            balance=0.0, creation_date=BASE_TIME, region=region)
        return {"ok": True, "user_id": user_id}

    def about_me(self, nickname: str, password: str):
        user = self._auth(nickname, password)
        if user is None:
            return None
        items_home = self.home("items")
        bids = self.home("bids").find_by("user_id", user.id, limit=20)
        bid_rows = []
        for bid in bids:
            try:
                item = items_home.find_by_primary_key(bid.item_id)
            except KeyError:
                continue
            bid_rows.append({"item": bid.item_id, "name": item.name,
                             "bid": bid.bid, "max_bid": item.max_bid,
                             "ends": item.end_date})
        selling = [{"item": i.id, "name": i.name, "max_bid": i.max_bid,
                    "bids": i.nb_of_bids, "ends": i.end_date}
                   for i in items_home.find_by("seller", user.id, limit=20)]
        users = self.home("users")
        comments = []
        for c in self.home("comments").find_by("to_user", user.id,
                                               order_by="date",
                                               descending=True, limit=10):
            author = users.find_by_primary_key(c.from_user)
            comments.append({"rating": c.rating, "date": c.date,
                             "comment": c.comment, "from": author.nickname})
        old_home = self.home("old_items")
        bought = []
        for bn in self.home("buy_now").find_by("buyer_id", user.id, limit=10):
            try:
                item = old_home.find_by_primary_key(bn.item_id)
            except KeyError:
                continue
            bought.append({"item": bn.item_id, "name": item.name,
                           "qty": bn.qty, "date": bn.date})
        return {"nickname": user.nickname, "firstname": user.firstname,
                "lastname": user.lastname, "rating": user.rating,
                "balance": user.balance, "bids": bid_rows,
                "selling": selling, "comments": comments, "bought": bought}


def deploy_auction_beans(container: EjbContainer) -> None:
    container.deploy_all_entities()
    container.deploy_session("Browse", BrowseBean)
    container.deploy_session("View", ViewBean)
    container.deploy_session("Bid", BidBean)
    container.deploy_session("Trade", TradeBean)


def ejb_presentation_pages(container: EjbContainer) \
        -> Dict[str, Callable[[AppContext], HttpResponse]]:
    """Presentation servlets for the 26 interactions."""
    from repro.apps.auction import logic

    # Static form pages reuse the shared implementations directly.
    pages: Dict[str, Callable] = {
        f"/{name}": logic.INTERACTIONS[name][0]
        for name in logic.STATIC_INTERACTIONS}

    def creds(ctx):
        return (ctx.str_param("nickname", "user1"),
                ctx.str_param("password", ""))

    def browse_categories(ctx):
        stub = container.lookup("Browse", trace=ctx.trace)
        page = _page("All Categories")
        for c in stub.list_categories():
            page.link(f"/search_items_in_category?category={c['id']}",
                      c["name"])
        return ctx.respond(page)

    def browse_regions(ctx):
        stub = container.lookup("Browse", trace=ctx.trace)
        page = _page("All Regions")
        for r in stub.list_regions():
            page.link(f"/browse_categories_in_region?region={r['id']}",
                      r["name"])
        return ctx.respond(page)

    def browse_categories_in_region(ctx):
        stub = container.lookup("Browse", trace=ctx.trace)
        region = ctx.int_param("region", 1)
        name = stub.region_name(region)
        page = _page(f"Categories in {name}")
        for c in stub.list_categories():
            page.link(f"/search_items_in_region?category={c['id']}"
                      f"&region={region}", c["name"])
        return ctx.respond(page)

    def search_items_in_category(ctx):
        stub = container.lookup("Browse", trace=ctx.trace)
        rows = stub.search_category(ctx.int_param("category", 1),
                                    ctx.int_param("page", 0))
        page = _page("Items in Category")
        page.table(["id", "name", "current bid", "bids", "ends"],
                   [(r["id"], r["name"], r["max_bid"], r["nb_of_bids"],
                     r["end_date"]) for r in rows])
        for r in rows:
            page.add_image(f"/images/auction/thumb_{r['id']}.gif",
                           alt=r["name"])
        return ctx.respond(page)

    def search_items_in_region(ctx):
        stub = container.lookup("Browse", trace=ctx.trace)
        rows = stub.search_region(ctx.int_param("category", 1),
                                  ctx.int_param("region", 1),
                                  ctx.int_param("page", 0))
        page = _page("Items in Region")
        page.table(["id", "name", "current bid", "bids", "ends"],
                   [(r["id"], r["name"], r["max_bid"], r["nb_of_bids"],
                     r["end_date"]) for r in rows])
        for r in rows:
            page.add_image(f"/images/auction/thumb_{r['id']}.gif",
                           alt=r["name"])
        return ctx.respond(page)

    def view_item(ctx):
        stub = container.lookup("View", trace=ctx.trace)
        item_id = ctx.int_param("item_id", 1)
        d = stub.view_item(item_id)
        if d is None:
            return ctx.error("item not found", status=404)
        page = _page("View Item")
        page.heading(d["name"])
        page.add_image(f"/images/auction/image_{item_id}.gif", alt=d["name"])
        page.paragraph(d["description"])
        page.table(["initial", "quantity", "buy now", "bids",
                    "current bid", "ends"],
                   [(d["initial_price"], d["quantity"], d["buy_now"],
                     d["nb_of_bids"], d["max_bid"], d["end_date"])])
        page.paragraph(f"Seller: {d['seller_nick']} "
                       f"(rating {d['seller_rating']})")
        return ctx.respond(page)

    def view_user_info(ctx):
        stub = container.lookup("View", trace=ctx.trace)
        d = stub.view_user(ctx.int_param("user_id", 1))
        if d is None:
            return ctx.error("user not found", status=404)
        page = _page("User Information")
        page.paragraph(f"{d['nickname']} ({d['firstname']} {d['lastname']}),"
                       f" rating {d['rating']}")
        page.table(["rating", "date", "comment", "from"],
                   [(c["rating"], c["date"], c["comment"], c["from"])
                    for c in d["comments"]])
        return ctx.respond(page)

    def view_bid_history(ctx):
        stub = container.lookup("View", trace=ctx.trace)
        rows = stub.bid_history(ctx.int_param("item_id", 1))
        page = _page("Bid History")
        page.table(["bidder", "bid", "qty", "date"],
                   [(r["bidder"], r["bid"], r["qty"], r["date"])
                    for r in rows])
        return ctx.respond(page)

    def put_bid(ctx):
        stub = container.lookup("Bid", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.put_bid(nickname, password, ctx.int_param("item_id", 1))
        if d is None:
            return ctx.error("authentication failed or item gone",
                             status=401)
        page = _page("Place a Bid")
        page.table(["item", "current bid", "bids"],
                   [(d["name"], d["max_bid"], d["nb_of_bids"])])
        page.form("/store_bid", ["item_id", "bid", "max_bid", "qty"])
        return ctx.respond(page)

    def store_bid(ctx):
        stub = container.lookup("Bid", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.store_bid(nickname, password, ctx.int_param("item_id", 1),
                           float(ctx.param("bid", 0.0)),
                           float(ctx.param("max_bid", 0.0)),
                           ctx.int_param("qty", 1))
        if not d["ok"]:
            status = {"auth": 401, "gone": 404, "low": 409}[d["reason"]]
            return ctx.error("bid rejected", status=status)
        page = _page("Bid Placed")
        page.paragraph("Your bid is recorded.")
        return ctx.respond(page)

    def buy_now(ctx):
        stub = container.lookup("Trade", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.buy_now_view(nickname, password,
                              ctx.int_param("item_id", 1))
        if d is None:
            return ctx.error("authentication failed or item gone",
                             status=401)
        page = _page("Buy It Now")
        page.table(["item", "buy-now price", "quantity"],
                   [(d["name"], d["buy_now"], d["quantity"])])
        page.form("/store_buy_now", ["item_id", "qty"])
        return ctx.respond(page)

    def store_buy_now(ctx):
        stub = container.lookup("Trade", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.store_buy_now(nickname, password,
                               ctx.int_param("item_id", 1),
                               ctx.int_param("qty", 1))
        if not d["ok"]:
            return ctx.error("purchase failed", status=409)
        page = _page("Purchase Complete")
        page.paragraph(f"You bought {d['qty']} for {d['total']:.2f}.")
        return ctx.respond(page)

    def put_comment(ctx):
        stub = container.lookup("Trade", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.comment_view(nickname, password,
                              ctx.int_param("to_user", 1),
                              ctx.int_param("item_id", 1))
        if d is None:
            return ctx.error("authentication failed", status=401)
        page = _page("Leave a Comment")
        page.paragraph(f"Comment on {d['target']} about {d['item']}")
        page.form("/store_comment",
                  ["to_user", "item_id", "rating", "comment"])
        return ctx.respond(page)

    def store_comment(ctx):
        stub = container.lookup("Trade", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.store_comment(nickname, password,
                               ctx.int_param("to_user", 1),
                               ctx.int_param("item_id", 1),
                               ctx.int_param("rating", 1),
                               ctx.str_param("comment", "Great seller!"))
        if not d["ok"]:
            return ctx.error("authentication failed", status=401)
        page = _page("Comment Recorded")
        page.paragraph("Your comment is posted.")
        return ctx.respond(page)

    def select_category_to_sell(ctx):
        stub = container.lookup("Browse", trace=ctx.trace)
        page = _page("Select a Category")
        for c in stub.list_categories():
            page.link(f"/sell_item_form?category={c['id']}", c["name"])
        return ctx.respond(page)

    def register_item(ctx):
        stub = container.lookup("Trade", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.register_item(
            nickname, password, ctx.str_param("name", "NEW AUCTION ITEM"),
            ctx.str_param("description", "Newly listed collectible."),
            float(ctx.param("initial_price", 10.0)),
            ctx.int_param("quantity", 1), ctx.int_param("category", 1),
            float(ctx.param("duration", 7.0)))
        if not d["ok"]:
            return ctx.error("authentication failed", status=401)
        page = _page("Item Listed")
        page.paragraph(f"Item {d['item_id']} is now up for auction.")
        return ctx.respond(page)

    def register_user(ctx):
        nickname = ctx.str_param("nickname", "")
        if not nickname:
            return ctx.error("nickname required", status=400)
        stub = container.lookup("Trade", trace=ctx.trace)
        d = stub.register_user(
            nickname, ctx.str_param("firstname", "New"),
            ctx.str_param("lastname", "Member"),
            ctx.str_param("password", "secret"),
            ctx.str_param("email", "new@auction.example"),
            ctx.str_param("region_name", "REGION01"))
        if not d["ok"]:
            return ctx.error("nickname already in use", status=409)
        page = _page("Registration Complete")
        page.paragraph(f"Welcome aboard, {nickname} "
                       f"(user #{d['user_id']})!")
        return ctx.respond(page)

    def about_me(ctx):
        stub = container.lookup("Trade", trace=ctx.trace)
        nickname, password = creds(ctx)
        d = stub.about_me(nickname, password)
        if d is None:
            return ctx.error("authentication failed", status=401)
        page = _page("About Me")
        page.paragraph(f"{d['nickname']} ({d['firstname']} {d['lastname']}),"
                       f" rating {d['rating']}, balance {d['balance']:.2f}")
        page.heading("Your current bids", 3)
        page.table(["item", "name", "your bid", "max bid", "ends"],
                   [(b["item"], b["name"], b["bid"], b["max_bid"],
                     b["ends"]) for b in d["bids"]])
        page.heading("Items you are selling", 3)
        page.table(["item", "name", "max bid", "bids", "ends"],
                   [(s["item"], s["name"], s["max_bid"], s["bids"],
                     s["ends"]) for s in d["selling"]])
        page.heading("Comments about you", 3)
        page.table(["rating", "date", "comment", "from"],
                   [(c["rating"], c["date"], c["comment"], c["from"])
                    for c in d["comments"]])
        page.heading("Your buy-now purchases", 3)
        page.table(["item", "name", "qty", "date"],
                   [(b["item"], b["name"], b["qty"], b["date"])
                    for b in d["bought"]])
        return ctx.respond(page)

    dynamic = {
        "browse_categories": browse_categories,
        "browse_regions": browse_regions,
        "browse_categories_in_region": browse_categories_in_region,
        "search_items_in_category": search_items_in_category,
        "search_items_in_region": search_items_in_region,
        "view_item": view_item,
        "view_user_info": view_user_info,
        "view_bid_history": view_bid_history,
        "put_bid": put_bid,
        "store_bid": store_bid,
        "buy_now": buy_now,
        "store_buy_now": store_buy_now,
        "put_comment": put_comment,
        "store_comment": store_comment,
        "select_category_to_sell": select_category_to_sell,
        "register_item": register_item,
        "register_user": register_user,
        "about_me": about_me,
    }
    for name, fn in dynamic.items():
        pages[f"/{name}"] = fn
    return pages

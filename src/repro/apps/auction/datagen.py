"""Auction site data generator.

Scaled loading with scale-invariant per-entity relation sizes (10 bids
per active item, ~1 comment per old auction, a constant fraction of
buy-now sales), per the cost model's assumptions.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.auction.schema import (
    BIDS_PER_ITEM,
    NUM_ACTIVE_ITEMS,
    NUM_CATEGORIES,
    NUM_OLD_ITEMS,
    NUM_REGIONS,
    NUM_USERS,
    auction_schemas,
)
from repro.db.engine import Database
from repro.sim.rng import RngStreams

BASE_TIME = 1_000_000_000.0
DAY = 86_400.0
WEEK = 7 * DAY

ID_TABLES = ("users", "items", "old_items", "bids", "comments", "buy_now")


# Floors keep profiled pages full-size: search pages show up to 25
# items per (category) page, so >= 25 * 40 * 2 items are loaded unless
# ``tiny=True`` (fast tests).
ITEM_FLOOR = 2_000
USER_FLOOR = 2_000
OLD_ITEM_FLOOR = 2_000


def scaled_counts(scale: float, tiny: bool = False) -> dict:
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    item_floor = 60 if tiny else ITEM_FLOOR
    user_floor = 200 if tiny else USER_FLOOR
    old_floor = 100 if tiny else OLD_ITEM_FLOOR
    return {
        "categories": NUM_CATEGORIES,
        "regions": NUM_REGIONS,
        "users": max(user_floor, int(NUM_USERS * scale)),
        "items": max(item_floor, int(NUM_ACTIVE_ITEMS * scale)),
        "old_items": max(old_floor, int(NUM_OLD_ITEMS * scale)),
    }


def populate_auction(db: Database, scale: float = 0.002,
                     rng: Optional[RngStreams] = None,
                     tiny: bool = False) -> dict:
    """Create the nine tables and load a coherent auction dataset."""
    rng = rng or RngStreams(11)
    r = rng.stream("auction.datagen")
    for schema in auction_schemas():
        db.create_table(schema)
    counts = scaled_counts(scale, tiny=tiny)

    for i in range(1, NUM_CATEGORIES + 1):
        db.table("categories").insert({"name": f"CATEGORY{i:02d}"})
    for i in range(1, NUM_REGIONS + 1):
        db.table("regions").insert({"name": f"REGION{i:02d}"})

    users = db.table("users")
    n_users = counts["users"]
    for i in range(1, n_users + 1):
        users.insert({
            "id": i, "firstname": f"Great{i}", "lastname": f"User{i}",
            "nickname": f"user{i}", "password": f"password{i}",
            "email": f"user{i}@auction.example",
            "rating": r.randrange(-2, 12), "balance": 0.0,
            "creation_date": BASE_TIME - (i % 900) * DAY,
            "region": 1 + (i % NUM_REGIONS)})

    items = db.table("items")
    bids = db.table("bids")
    n_items = counts["items"]
    next_bid_id = 1
    for i in range(1, n_items + 1):
        nb_bids = BIDS_PER_ITEM
        price = 10.0 + (i % 200)
        max_bid = price + nb_bids
        items.insert({
            "id": i, "name": f"AUCTION ITEM {i % 400:03d} lot {i}",
            "description": "Collectible in fine condition. " * 5,
            "initial_price": price, "quantity": 1 + (i % 3),
            "reserve_price": price + 5.0, "buy_now": price * 3.0,
            "nb_of_bids": nb_bids, "max_bid": max_bid,
            "start_date": BASE_TIME - (i % 7) * DAY,
            "end_date": BASE_TIME + WEEK - (i % 7) * DAY,
            "seller": 1 + (i % n_users), "category": 1 + (i % NUM_CATEGORIES)})
        for b in range(nb_bids):
            bids.insert({
                "id": next_bid_id, "user_id": 1 + r.randrange(n_users),
                "item_id": i, "qty": 1, "bid": price + b + 1,
                "max_bid": price + b + 2,
                "date": BASE_TIME - (nb_bids - b) * 3600.0})
            next_bid_id += 1

    old_items = db.table("old_items")
    comments = db.table("comments")
    buy_now = db.table("buy_now")
    n_old = counts["old_items"]
    next_comment_id = 1
    next_buy_id = 1
    for i in range(1, n_old + 1):
        old_id = n_items + i
        price = 8.0 + (i % 150)
        old_items.insert({
            "id": old_id, "name": f"SOLD ITEM {i % 400:03d} lot {i}",
            "description": "Previously auctioned. " * 4,
            "initial_price": price, "quantity": 1,
            "reserve_price": price + 4.0, "buy_now": price * 3.0,
            "nb_of_bids": BIDS_PER_ITEM, "max_bid": price + 11,
            "start_date": BASE_TIME - (60 + i % 300) * DAY,
            "end_date": BASE_TIME - (53 + i % 300) * DAY,
            "seller": 1 + (i % n_users), "category": 1 + (i % NUM_CATEGORIES)})
        if i % 20 != 0:   # 95% of transactions receive a comment
            seller = 1 + (i % n_users)
            comments.insert({
                "id": next_comment_id,
                "from_user": 1 + r.randrange(n_users), "to_user": seller,
                "item_id": old_id, "rating": r.choice([-1, 0, 1, 1, 1]),
                "date": BASE_TIME - (50 + i % 300) * DAY,
                "comment": "Smooth transaction, would trade again. " * 2})
            next_comment_id += 1
        if i % 20 == 0:   # ~5% sold via buy-now
            buy_now.insert({
                "id": next_buy_id, "buyer_id": 1 + r.randrange(n_users),
                "item_id": old_id, "qty": 1,
                "date": BASE_TIME - (55 + i % 300) * DAY})
            next_buy_id += 1

    # Seed the id counters past the loaded data.
    ids = db.table("ids")
    seeds = {
        "users": n_users, "items": n_items + n_old,
        "old_items": n_items + n_old, "bids": next_bid_id - 1,
        "comments": next_comment_id - 1, "buy_now": next_buy_id - 1,
    }
    for name in ID_TABLES:
        ids.insert({"name": name, "value": seeds[name]})

    return {name: len(db.table(name)) for name in (
        "categories", "regions", "users", "items", "old_items", "bids",
        "comments", "buy_now", "ids")}

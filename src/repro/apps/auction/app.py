"""Auction application wiring: database + middleware deployments."""

from __future__ import annotations

from typing import Optional

from repro.apps.auction.datagen import populate_auction
from repro.apps.auction.ejb_app import (
    deploy_auction_beans,
    ejb_presentation_pages,
)
from repro.apps.auction.logic import INTERACTIONS, STATIC_INTERACTIONS
from repro.apps.auction import mixes
from repro.apps.base import BenchmarkApp
from repro.db.engine import Database
from repro.sim.rng import RngStreams
from repro.web.static import StaticContentStore


def build_auction_database(scale: float = 0.002,
                           rng: Optional[RngStreams] = None,
                           tiny: bool = False) -> Database:
    """A populated auction database at the given scale.

    ``tiny=True`` drops the dataset floors (fast tests; pages may be
    sparse -- do not profile from a tiny database).
    """
    db = Database(name="auction")
    populate_auction(db, scale=scale, rng=rng, tiny=tiny)
    return db


class AuctionApp(BenchmarkApp):
    """One auction-site instance: shared pages + deployments."""

    name = "auction"
    INTERACTIONS = INTERACTIONS
    STATIC_INTERACTIONS = STATIC_INTERACTIONS
    MIXES = mixes.MIXES
    STATE_CLASS = mixes.AuctionState
    MAKE_REQUEST = staticmethod(mixes.make_request)
    EJB_DEPLOYER = staticmethod(deploy_auction_beans)
    EJB_PAGES = staticmethod(ejb_presentation_pages)

    def static_store(self) -> StaticContentStore:
        # eBay-style pages of the era: light navigation art on every
        # page, gallery thumbnails on search listings, and a full photo
        # on the item page.  These sizes put the browsing mix near the
        # paper's measured web-NIC traffic (~94 Mb/s at ~200
        # interactions/s) while keeping auth/store pages light.
        store = StaticContentStore()
        store.register("/images/auction_banner.gif", 16_000)
        store.register("/images/logo.gif", 3_000)
        for name in ("home", "browse", "sell", "about_me"):
            store.register(f"/images/{name}.gif", 1_400)
        n_items = len(self.database.table("items")) + \
            len(self.database.table("old_items"))
        store.register_item_images("/images/auction", n_items,
                                   thumb_bytes=3_600, detail_bytes=44_000)
        return store

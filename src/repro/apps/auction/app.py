"""Auction application wiring: database + middleware deployments."""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.auction.datagen import populate_auction
from repro.apps.auction.ejb_app import (
    deploy_auction_beans,
    ejb_presentation_pages,
)
from repro.apps.auction.logic import INTERACTIONS, STATIC_INTERACTIONS
from repro.apps.auction import mixes
from repro.db.engine import Database
from repro.middleware.ejb import EjbContainer
from repro.middleware.phpmod import PhpModule
from repro.middleware.servlet import ServletEngine
from repro.sim.rng import RngStreams
from repro.web.static import StaticContentStore


def build_auction_database(scale: float = 0.002,
                           rng: Optional[RngStreams] = None,
                           tiny: bool = False) -> Database:
    """A populated auction database at the given scale.

    ``tiny=True`` drops the dataset floors (fast tests; pages may be
    sparse -- do not profile from a tiny database).
    """
    db = Database(name="auction")
    populate_auction(db, scale=scale, rng=rng, tiny=tiny)
    return db


class AuctionApp:
    """One auction-site instance: shared pages + deployments."""

    name = "auction"
    SSL_INTERACTIONS = frozenset()

    def __init__(self, database: Database):
        self.database = database

    def shared_pages(self) -> Dict[str, object]:
        return {f"/{name}": handler
                for name, (handler, __) in INTERACTIONS.items()}

    def deploy_php(self) -> PhpModule:
        php = PhpModule(self.database)
        php.register_app(self.shared_pages())
        return php

    def deploy_servlet(self, sync_locking: bool = False) -> ServletEngine:
        engine = ServletEngine(self.database, sync_locking=sync_locking)
        engine.register_app(self.shared_pages())
        return engine

    def deploy_ejb(self, store_mode: str = "field",
                   load_mode: str = "field"):
        container = EjbContainer(self.database, store_mode=store_mode,
                                 load_mode=load_mode)
        deploy_auction_beans(container)
        presentation = ServletEngine(self.database, sync_locking=False)
        presentation.register_app(ejb_presentation_pages(container))
        return presentation, container

    def make_state(self, rng) -> mixes.AuctionState:
        return mixes.AuctionState.from_database(self.database, rng)

    @staticmethod
    def mix(name: str) -> Dict[str, float]:
        try:
            return mixes.MIXES[name]
        except KeyError:
            raise KeyError(f"unknown auction mix {name!r}; "
                           f"have {sorted(mixes.MIXES)}") from None

    @staticmethod
    def make_request(name: str, rng, state):
        return mixes.make_request(name, rng, state)

    @staticmethod
    def choose_interaction(mix: Dict[str, float], rng) -> str:
        return mixes.choose_interaction(mix, rng)

    def static_store(self) -> StaticContentStore:
        # eBay-style pages of the era: light navigation art on every
        # page, gallery thumbnails on search listings, and a full photo
        # on the item page.  These sizes put the browsing mix near the
        # paper's measured web-NIC traffic (~94 Mb/s at ~200
        # interactions/s) while keeping auth/store pages light.
        store = StaticContentStore()
        store.register("/images/auction_banner.gif", 16_000)
        store.register("/images/logo.gif", 3_000)
        for name in ("home", "browse", "sell", "about_me"):
            store.register(f"/images/{name}.gif", 1_400)
        n_items = len(self.database.table("items")) + \
            len(self.database.table("old_items"))
        store.register_item_images("/images/auction", n_items,
                                   thumb_bytes=3_600, detail_bytes=44_000)
        return store

    @staticmethod
    def interaction_names() -> tuple:
        return tuple(INTERACTIONS)

    @staticmethod
    def is_read_only(name: str) -> bool:
        return INTERACTIONS[name][1]

    @staticmethod
    def is_static(name: str) -> bool:
        return name in STATIC_INTERACTIONS

"""Auction site schema: the paper's nine tables.

``users, items, old_items, bids, buy_now, comments, categories, regions,
ids`` with the paper's sizing: ~33,000 items for sale across 40
categories and 62 regions, 500,000 old auctions, ~10 bids per item
(330,000 bids), 1,000,000 users, ~500,000 comments.

Two of the paper's explicit design optimizations are reproduced:

* the number of bids and the current maximum bid are stored redundantly
  on each item (``nb_of_bids``, ``max_bid``) "to prevent many expensive
  lookups on the bids table";
* the items table is split into ``items`` (on sale) and ``old_items``
  so browsing touches a small working set.

The ``ids`` table holds per-table id counters, as in the original PHP
implementation: inserting rows means bumping the counter inside the
interaction's critical section.
"""

from __future__ import annotations

from typing import Dict, List

from repro.db.schema import Column, ColumnType, IndexDef, TableSchema

NUM_ACTIVE_ITEMS = 33_000
NUM_OLD_ITEMS = 500_000
NUM_USERS = 1_000_000
NUM_CATEGORIES = 40
NUM_REGIONS = 62
BIDS_PER_ITEM = 10
COMMENT_FRACTION = 0.95   # users comment on 95% of transactions
BUY_NOW_FRACTION = 0.05   # <10% of items sell without an auction

C = Column
T = ColumnType


def _item_columns() -> List[Column]:
    return [
        C("id", T.INT, nullable=False),
        C("name", T.VARCHAR, byte_width=48),
        C("description", T.TEXT),
        C("initial_price", T.FLOAT),
        C("quantity", T.INT),
        C("reserve_price", T.FLOAT),
        C("buy_now", T.FLOAT),
        C("nb_of_bids", T.INT),
        C("max_bid", T.FLOAT),
        C("start_date", T.DATETIME),
        C("end_date", T.DATETIME),
        C("seller", T.INT),
        C("category", T.INT),
    ]


def auction_schemas() -> List[TableSchema]:
    schemas = [
        TableSchema(
            name="categories",
            columns=[C("id", T.INT, nullable=False), C("name", T.VARCHAR)],
            primary_key="id", auto_increment=True),
        TableSchema(
            name="regions",
            columns=[C("id", T.INT, nullable=False), C("name", T.VARCHAR)],
            primary_key="id", auto_increment=True),
        TableSchema(
            name="users",
            columns=[
                C("id", T.INT, nullable=False),
                C("firstname", T.VARCHAR),
                C("lastname", T.VARCHAR),
                C("nickname", T.VARCHAR),
                C("password", T.VARCHAR),
                C("email", T.VARCHAR),
                C("rating", T.INT),
                C("balance", T.FLOAT),
                C("creation_date", T.DATETIME),
                C("region", T.INT),
            ],
            primary_key="id",
            indexes=[
                IndexDef("idx_user_nick", ("nickname",), unique=True,
                         kind="hash"),
                IndexDef("idx_user_region", ("region",)),
            ]),
        TableSchema(
            name="items",
            columns=_item_columns(),
            primary_key="id",
            indexes=[
                IndexDef("idx_item_cat_end", ("category", "end_date")),
                IndexDef("idx_item_seller", ("seller",)),
                IndexDef("idx_item_end", ("end_date",)),
            ]),
        TableSchema(
            name="old_items",
            columns=_item_columns(),
            primary_key="id",
            indexes=[
                IndexDef("idx_old_cat", ("category",)),
                IndexDef("idx_old_seller", ("seller",)),
            ]),
        TableSchema(
            name="bids",
            columns=[
                C("id", T.INT, nullable=False),
                C("user_id", T.INT),
                C("item_id", T.INT),
                C("qty", T.INT),
                C("bid", T.FLOAT),
                C("max_bid", T.FLOAT),
                C("date", T.DATETIME),
            ],
            primary_key="id",
            indexes=[
                IndexDef("idx_bid_item", ("item_id",)),
                IndexDef("idx_bid_user", ("user_id",)),
            ]),
        TableSchema(
            name="comments",
            columns=[
                C("id", T.INT, nullable=False),
                C("from_user", T.INT),
                C("to_user", T.INT),
                C("item_id", T.INT),
                C("rating", T.INT),
                C("date", T.DATETIME),
                C("comment", T.TEXT),
            ],
            primary_key="id",
            indexes=[
                IndexDef("idx_com_to", ("to_user",)),
                IndexDef("idx_com_item", ("item_id",)),
            ]),
        TableSchema(
            name="buy_now",
            columns=[
                C("id", T.INT, nullable=False),
                C("buyer_id", T.INT),
                C("item_id", T.INT),
                C("qty", T.INT),
                C("date", T.DATETIME),
            ],
            primary_key="id",
            indexes=[
                IndexDef("idx_bn_buyer", ("buyer_id",)),
                IndexDef("idx_bn_item", ("item_id",)),
            ]),
        TableSchema(
            name="ids",
            columns=[
                C("id", T.INT, nullable=False),
                C("name", T.VARCHAR),
                C("value", T.INT),
            ],
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_ids_name", ("name",), unique=True,
                              kind="hash")]),
    ]
    nominal = nominal_cardinalities()
    for schema in schemas:
        schema.stats.nominal_rows = nominal[schema.name]
        if schema.name == "items":
            schema.stats.distinct_values = {"category": NUM_CATEGORIES}
        elif schema.name == "old_items":
            schema.stats.distinct_values = {"category": NUM_CATEGORIES}
        elif schema.name == "users":
            schema.stats.distinct_values = {"region": NUM_REGIONS}
    return schemas


def nominal_cardinalities() -> Dict[str, int]:
    return {
        "categories": NUM_CATEGORIES,
        "regions": NUM_REGIONS,
        "users": NUM_USERS,
        "items": NUM_ACTIVE_ITEMS,
        "old_items": NUM_OLD_ITEMS,
        "bids": BIDS_PER_ITEM * NUM_ACTIVE_ITEMS,
        "comments": int(COMMENT_FRACTION * NUM_OLD_ITEMS),
        "buy_now": int(BUY_NOW_FRACTION * NUM_OLD_ITEMS),
        "ids": 8,
    }

"""Auction workload mixes and request generation.

Two mixes per the paper: a browsing mix of read-only interactions and a
bidding mix with 15% read-write interactions (the representative one).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.apps.auction.logic import INTERACTIONS
from repro.apps.auction.schema import NUM_CATEGORIES, NUM_REGIONS
from repro.web.http import HttpRequest

AUCTION_INTERACTIONS = tuple(INTERACTIONS)

# Bidding mix: 15% of interactions are read-write (register_user,
# store_buy_now, store_bid, store_comment, register_item).
BIDDING_MIX: Dict[str, float] = {
    "home": 3.00, "register": 1.20, "register_user": 1.05,
    "browse": 5.00, "browse_categories": 5.10,
    "search_items_in_category": 12.70, "browse_regions": 2.50,
    "browse_categories_in_region": 2.30, "search_items_in_region": 5.30,
    "view_item": 12.70, "view_user_info": 4.30, "view_bid_history": 2.50,
    "buy_now_auth": 1.40, "buy_now": 1.30, "store_buy_now": 1.00,
    "put_bid_auth": 8.30, "put_bid": 8.00, "store_bid": 7.50,
    "put_comment_auth": 0.60, "put_comment": 0.55, "store_comment": 1.00,
    "sell": 2.20, "select_category_to_sell": 2.10, "sell_item_form": 2.00,
    "register_item": 4.45, "about_me": 1.95,
}

# Browsing mix: read-only interactions only.
BROWSING_MIX: Dict[str, float] = {
    "home": 5.00, "browse": 8.00, "browse_categories": 9.00,
    "search_items_in_category": 27.00, "browse_regions": 5.00,
    "browse_categories_in_region": 4.00, "search_items_in_region": 11.00,
    "view_item": 20.00, "view_user_info": 5.00, "view_bid_history": 4.00,
    "about_me": 2.00,
}

MIXES: Dict[str, Dict[str, float]] = {
    "bidding": BIDDING_MIX,
    "browsing": BROWSING_MIX,
}


def read_write_fraction(mix: Dict[str, float]) -> float:
    total = sum(mix.values())
    rw = sum(weight for name, weight in mix.items()
             if not INTERACTIONS[name][1])
    return rw / total


# Registration nicknames embed a per-state tag seeded from the state's
# address; collisions from address reuse bump to the next free value
# (see the bookstore mixes for the full story).
_USED_TAGS = set()


def _fresh_tag(state) -> int:
    tag = id(state) % 100000
    while tag in _USED_TAGS:
        tag += 1
    _USED_TAGS.add(tag)
    return tag


@dataclass
class AuctionState:
    """Per-session client state for parameter generation."""

    n_users: int
    n_items: int
    n_old_items: int
    user_id: int = 1
    registered: int = 0
    tag: int = -1
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.tag < 0:
            self.tag = _fresh_tag(self)

    @classmethod
    def from_database(cls, db, rng: random.Random) -> "AuctionState":
        n_users = len(db.table("users"))
        return cls(n_users=n_users,
                   n_items=len(db.table("items")),
                   n_old_items=len(db.table("old_items")),
                   user_id=1 + rng.randrange(n_users))

    def credentials(self) -> dict:
        return {"nickname": f"user{self.user_id}",
                "password": f"password{self.user_id}"}


def make_request(name: str, rng: random.Random,
                 state: AuctionState) -> HttpRequest:
    if name not in INTERACTIONS:
        raise KeyError(f"unknown auction interaction {name!r}")
    params: dict = {}
    active_item = lambda: 1 + rng.randrange(state.n_items)  # noqa: E731
    if name in ("search_items_in_category",):
        params = {"category": 1 + rng.randrange(NUM_CATEGORIES),
                  "page": rng.randrange(3)}
    elif name == "browse_categories_in_region":
        params = {"region": 1 + rng.randrange(NUM_REGIONS)}
    elif name == "search_items_in_region":
        params = {"category": 1 + rng.randrange(NUM_CATEGORIES),
                  "region": 1 + rng.randrange(NUM_REGIONS),
                  "page": rng.randrange(2)}
    elif name in ("view_item", "view_bid_history"):
        params = {"item_id": active_item()}
    elif name == "view_user_info":
        params = {"user_id": 1 + rng.randrange(state.n_users)}
    elif name in ("buy_now", "put_bid"):
        params = {"item_id": active_item(), **state.credentials()}
    elif name == "store_buy_now":
        params = {"item_id": active_item(), "qty": 1,
                  **state.credentials()}
    elif name == "store_bid":
        params = {"item_id": active_item(), "bid": 5000.0 + rng.random(),
                  "max_bid": 6000.0, "qty": 1, **state.credentials()}
    elif name == "put_comment":
        params = {"to_user": 1 + rng.randrange(state.n_users),
                  "item_id": state.n_items + 1 +
                  rng.randrange(state.n_old_items),
                  **state.credentials()}
    elif name == "store_comment":
        params = {"to_user": 1 + rng.randrange(state.n_users),
                  "item_id": state.n_items + 1 +
                  rng.randrange(state.n_old_items),
                  "rating": rng.choice([-1, 0, 1]),
                  **state.credentials()}
    elif name == "register_item":
        params = {"name": f"FRESH ITEM {rng.randrange(10**6)}",
                  "initial_price": 10.0 + rng.randrange(100),
                  "category": 1 + rng.randrange(NUM_CATEGORIES),
                  **state.credentials()}
    elif name == "register_user":
        state.registered += 1
        params = {"nickname": f"newuser_{state.tag}_"
                              f"{state.registered}_{rng.randrange(10**9)}",
                  "region_name": f"REGION{1 + rng.randrange(NUM_REGIONS):02d}"}
    elif name == "about_me":
        params = dict(state.credentials())
    return HttpRequest(path=f"/{name}", params=params)


def choose_interaction(mix: Dict[str, float], rng: random.Random) -> str:
    total = sum(mix.values())
    pick = rng.random() * total
    acc = 0.0
    for name, weight in mix.items():
        acc += weight
        if pick <= acc:
            return name
    return next(reversed(mix))

"""Auction site benchmark (RUBiS-style).

Nine tables, twenty-six interactions, two mixes (browsing / bidding).
Queries are short; the dynamic-content generator is the bottleneck in
the paper's experiments with this application.
"""

from repro.apps.auction.app import AuctionApp, build_auction_database
from repro.apps.auction.mixes import (
    AUCTION_INTERACTIONS,
    BIDDING_MIX,
    BROWSING_MIX,
)

__all__ = [
    "AuctionApp",
    "build_auction_database",
    "AUCTION_INTERACTIONS",
    "BIDDING_MIX",
    "BROWSING_MIX",
]

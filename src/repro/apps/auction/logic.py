"""The twenty-six auction-site interactions, written once against
AppContext (PHP and servlets run these same functions; the EJB variant
lives in ejb_app.py).

Queries are deliberately short -- inserting a bid, listing 25 items in a
category, showing one item -- which is what makes the *generator*, not
the database, the bottleneck for this benchmark.
"""

from __future__ import annotations

from repro.apps.auction.datagen import BASE_TIME, WEEK
from repro.middleware.context import AppContext
from repro.web.html import Page
from repro.web.http import HttpResponse

SITE = "Auction Site"
PAGE_SIZE = 25
NAV = ("home", "browse", "sell", "about_me")


def _page(title: str) -> Page:
    page = Page(title, site=SITE)
    page.nav_buttons(NAV)
    return page


def _next_id(ctx: AppContext, counter: str) -> int:
    """Bump and read an id counter (the RUBiS ids-table idiom).  Must be
    called inside an exclusive span covering the ``ids`` table."""
    ctx.update("UPDATE ids SET value = value + 1 WHERE name = ?", (counter,))
    return ctx.query("SELECT value FROM ids WHERE name = ?",
                     (counter,)).scalar()


def _authenticate(ctx: AppContext):
    """Resolve nickname/password to a user id (None if bad)."""
    nickname = ctx.str_param("nickname", "user1")
    password = ctx.str_param("password", "")
    return ctx.query(
        "SELECT id FROM users WHERE nickname = ? AND password = ?",
        (nickname, password)).scalar()


# ------------------------------------------------------------ static pages

def home(ctx: AppContext) -> HttpResponse:
    page = _page("Welcome")
    page.paragraph("Browse auctions, bid on items, or sell your own.")
    page.add_image("/images/auction_banner.gif")
    return ctx.respond(page)


def register(ctx: AppContext) -> HttpResponse:
    page = _page("Register")
    page.form("/register_user", ["firstname", "lastname", "nickname",
                                 "password", "email", "region"])
    return ctx.respond(page)


def browse(ctx: AppContext) -> HttpResponse:
    page = _page("Browse")
    page.link("/browse_categories", "Browse all categories")
    page.link("/browse_regions", "Browse all regions")
    return ctx.respond(page)


def buy_now_auth(ctx: AppContext) -> HttpResponse:
    page = _page("Buy Now: Sign In")
    page.form("/buy_now", ["nickname", "password", "item_id"])
    return ctx.respond(page)


def put_bid_auth(ctx: AppContext) -> HttpResponse:
    page = _page("Bid: Sign In")
    page.form("/put_bid", ["nickname", "password", "item_id"])
    return ctx.respond(page)


def put_comment_auth(ctx: AppContext) -> HttpResponse:
    page = _page("Comment: Sign In")
    page.form("/put_comment", ["nickname", "password", "to_user", "item_id"])
    return ctx.respond(page)


def sell(ctx: AppContext) -> HttpResponse:
    page = _page("Sell Your Item")
    page.link("/select_category_to_sell", "Choose a category")
    return ctx.respond(page)


def sell_item_form(ctx: AppContext) -> HttpResponse:
    page = _page("Sell Item Form")
    page.form("/register_item", ["name", "description", "initial_price",
                                 "reserve_price", "buy_now", "quantity",
                                 "duration", "category"])
    return ctx.respond(page)


# ----------------------------------------------------------- browse/search

def browse_categories(ctx: AppContext) -> HttpResponse:
    result = ctx.query("SELECT id, name FROM categories ORDER BY name")
    page = _page("All Categories")
    for cid, name in result.rows:
        page.link(f"/search_items_in_category?category={cid}", name)
    return ctx.respond(page)


def browse_regions(ctx: AppContext) -> HttpResponse:
    result = ctx.query("SELECT id, name FROM regions ORDER BY name")
    page = _page("All Regions")
    for rid, name in result.rows:
        page.link(f"/browse_categories_in_region?region={rid}", name)
    return ctx.respond(page)


def browse_categories_in_region(ctx: AppContext) -> HttpResponse:
    region = ctx.int_param("region", 1)
    region_name = ctx.query("SELECT name FROM regions WHERE id = ?",
                            (region,)).scalar()
    result = ctx.query("SELECT id, name FROM categories ORDER BY name")
    page = _page(f"Categories in {region_name}")
    for cid, name in result.rows:
        page.link(f"/search_items_in_region?category={cid}&region={region}",
                  name)
    return ctx.respond(page)


def search_items_in_category(ctx: AppContext) -> HttpResponse:
    category = ctx.int_param("category", 1)
    offset = ctx.int_param("page", 0) * PAGE_SIZE
    result = ctx.query(
        "SELECT id, name, max_bid, nb_of_bids, end_date FROM items "
        "WHERE category = ? AND end_date >= ? "
        "ORDER BY end_date LIMIT ? OFFSET ?",
        (category, BASE_TIME, PAGE_SIZE, offset))
    page = _page("Items in Category")
    page.table(["id", "name", "current bid", "bids", "ends"], result.rows)
    for row in result.rows:
        page.link(f"/view_item?item_id={row[0]}", row[1])
        page.add_image(f"/images/auction/thumb_{row[0]}.gif", alt=row[1])
    return ctx.respond(page)


def search_items_in_region(ctx: AppContext) -> HttpResponse:
    """Items in a category whose seller lives in a region -- the join
    the original RUBiS is known for."""
    category = ctx.int_param("category", 1)
    region = ctx.int_param("region", 1)
    offset = ctx.int_param("page", 0) * PAGE_SIZE
    result = ctx.query(
        "SELECT i.id, i.name, i.max_bid, i.nb_of_bids, i.end_date "
        "FROM items i JOIN users u ON u.id = i.seller "
        "WHERE i.category = ? AND u.region = ? AND i.end_date >= ? "
        "LIMIT ? OFFSET ?",
        (category, region, BASE_TIME, PAGE_SIZE, offset))
    page = _page("Items in Region")
    page.table(["id", "name", "current bid", "bids", "ends"], result.rows)
    for row in result.rows:
        page.add_image(f"/images/auction/thumb_{row[0]}.gif", alt=row[1])
    return ctx.respond(page)


# -------------------------------------------------------------- item views

def _load_item(ctx: AppContext, item_id: int):
    """items first, falling back to old_items (the split-table design)."""
    row = ctx.query(
        "SELECT id, name, description, initial_price, quantity, "
        "reserve_price, buy_now, nb_of_bids, max_bid, start_date, "
        "end_date, seller, category FROM items WHERE id = ?",
        (item_id,)).first()
    if row is not None:
        return row, False
    row = ctx.query(
        "SELECT id, name, description, initial_price, quantity, "
        "reserve_price, buy_now, nb_of_bids, max_bid, start_date, "
        "end_date, seller, category FROM old_items WHERE id = ?",
        (item_id,)).first()
    return row, True


def view_item(ctx: AppContext) -> HttpResponse:
    item_id = ctx.int_param("item_id", 1)
    row, ended = _load_item(ctx, item_id)
    if row is None:
        return ctx.error(f"item {item_id} not found", status=404)
    seller = ctx.query(
        "SELECT nickname, rating FROM users WHERE id = ?",
        (row[11],)).first()
    page = _page("View Item")
    page.heading(row[1])
    page.add_image(f"/images/auction/image_{row[0]}.gif", alt=row[1])
    page.paragraph(row[2])
    # The redundant nb_of_bids/max_bid columns avoid a bids-table lookup.
    page.table(["initial", "quantity", "buy now", "bids", "current bid",
                "ends"], [(row[3], row[4], row[6], row[7], row[8], row[10])])
    if seller:
        page.paragraph(f"Seller: {seller[0]} (rating {seller[1]})")
    if ended:
        page.paragraph("This auction has ended.")
    else:
        page.link(f"/put_bid_auth?item_id={item_id}", "Bid on this item")
    return ctx.respond(page)


def view_user_info(ctx: AppContext) -> HttpResponse:
    user_id = ctx.int_param("user_id", 1)
    user = ctx.query(
        "SELECT nickname, firstname, lastname, rating, creation_date, "
        "region FROM users WHERE id = ?", (user_id,)).first()
    if user is None:
        return ctx.error(f"user {user_id} not found", status=404)
    comments = ctx.query(
        "SELECT c.rating, c.date, c.comment, u.nickname "
        "FROM comments c JOIN users u ON u.id = c.from_user "
        "WHERE c.to_user = ? ORDER BY c.date DESC LIMIT 10", (user_id,))
    page = _page("User Information")
    page.paragraph(f"{user[0]} ({user[1]} {user[2]}), rating {user[3]}")
    page.table(["rating", "date", "comment", "from"], comments.rows)
    return ctx.respond(page)


def view_bid_history(ctx: AppContext) -> HttpResponse:
    item_id = ctx.int_param("item_id", 1)
    name = ctx.query("SELECT name FROM items WHERE id = ?",
                     (item_id,)).scalar()
    if name is None:
        name = ctx.query("SELECT name FROM old_items WHERE id = ?",
                         (item_id,)).scalar()
    history = ctx.query(
        "SELECT u.nickname, b.bid, b.qty, b.date "
        "FROM bids b JOIN users u ON u.id = b.user_id "
        "WHERE b.item_id = ? ORDER BY b.date DESC", (item_id,))
    page = _page(f"Bid History: {name}")
    page.table(["bidder", "bid", "qty", "date"], history.rows)
    return ctx.respond(page)


# ------------------------------------------------------------- bid pipeline

def put_bid(ctx: AppContext) -> HttpResponse:
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    item_id = ctx.int_param("item_id", 1)
    row, ended = _load_item(ctx, item_id)
    if row is None or ended:
        return ctx.error("item is not for sale", status=404)
    page = _page("Place a Bid")
    page.table(["item", "current bid", "bids"], [(row[1], row[8], row[7])])
    page.form("/store_bid", ["item_id", "bid", "max_bid", "qty"])
    return ctx.respond(page)


def store_bid(ctx: AppContext) -> HttpResponse:
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    item_id = ctx.int_param("item_id", 1)
    bid = float(ctx.param("bid", 0.0))
    max_bid = float(ctx.param("max_bid", bid))
    qty = ctx.int_param("qty", 1)
    with ctx.exclusive([("items", item_id), ("bids", item_id),
                        ("ids", "bids")]):
        item = ctx.query(
            "SELECT max_bid, nb_of_bids, end_date FROM items WHERE id = ?",
            (item_id,)).first()
        if item is None:
            return ctx.error("item vanished", status=404)
        current_max, nb_bids, end_date = item
        if bid <= (current_max or 0.0):
            return ctx.error("bid below current maximum", status=409)
        bid_id = _next_id(ctx, "bids")
        ctx.update(
            "INSERT INTO bids (id, user_id, item_id, qty, bid, max_bid, "
            "date) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (bid_id, user_id, item_id, qty, bid, max_bid, BASE_TIME))
        # Maintain the denormalized counters on the item.
        ctx.update(
            "UPDATE items SET nb_of_bids = nb_of_bids + 1, max_bid = ? "
            "WHERE id = ?", (bid, item_id))
    page = _page("Bid Placed")
    page.paragraph(f"Your bid of {bid:.2f} on item {item_id} is recorded.")
    return ctx.respond(page)


# ---------------------------------------------------------- buy-now pipeline

def buy_now(ctx: AppContext) -> HttpResponse:
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    item_id = ctx.int_param("item_id", 1)
    row, ended = _load_item(ctx, item_id)
    if row is None or ended:
        return ctx.error("item is not for sale", status=404)
    page = _page("Buy It Now")
    page.table(["item", "buy-now price", "quantity"],
               [(row[1], row[6], row[4])])
    page.form("/store_buy_now", ["item_id", "qty"])
    return ctx.respond(page)


def store_buy_now(ctx: AppContext) -> HttpResponse:
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    item_id = ctx.int_param("item_id", 1)
    qty = ctx.int_param("qty", 1)
    with ctx.exclusive([("items", item_id), ("buy_now", item_id),
                        ("ids", "buy_now")]):
        item = ctx.query(
            "SELECT quantity, buy_now FROM items WHERE id = ?",
            (item_id,)).first()
        if item is None:
            return ctx.error("item vanished", status=404)
        quantity, price = item
        qty = min(qty, quantity)
        if qty <= 0:
            return ctx.error("sold out", status=409)
        buy_id = _next_id(ctx, "buy_now")
        ctx.update(
            "INSERT INTO buy_now (id, buyer_id, item_id, qty, date) "
            "VALUES (?, ?, ?, ?, ?)",
            (buy_id, user_id, item_id, qty, BASE_TIME))
        remaining = quantity - qty
        if remaining == 0:
            # Close the auction now (RUBiS sets end_date to now).
            ctx.update(
                "UPDATE items SET quantity = 0, end_date = ? WHERE id = ?",
                (BASE_TIME - 1.0, item_id))
        else:
            ctx.update("UPDATE items SET quantity = ? WHERE id = ?",
                       (remaining, item_id))
    page = _page("Purchase Complete")
    page.paragraph(f"You bought {qty} of item {item_id} for "
                   f"{price * qty:.2f}.")
    return ctx.respond(page)


# ---------------------------------------------------------- comment pipeline

def put_comment(ctx: AppContext) -> HttpResponse:
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    to_user = ctx.int_param("to_user", 1)
    item_id = ctx.int_param("item_id", 1)
    target = ctx.query("SELECT nickname FROM users WHERE id = ?",
                       (to_user,)).scalar()
    item_name = ctx.query("SELECT name FROM old_items WHERE id = ?",
                          (item_id,)).scalar()
    if item_name is None:
        item_name = ctx.query("SELECT name FROM items WHERE id = ?",
                              (item_id,)).scalar()
    page = _page("Leave a Comment")
    page.paragraph(f"Comment on {target} about {item_name}")
    page.form("/store_comment", ["to_user", "item_id", "rating", "comment"])
    return ctx.respond(page)


def store_comment(ctx: AppContext) -> HttpResponse:
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    to_user = ctx.int_param("to_user", 1)
    item_id = ctx.int_param("item_id", 1)
    rating = ctx.int_param("rating", 1)
    text = ctx.str_param("comment", "Great seller, fast shipping!")
    with ctx.exclusive([("users", to_user), ("comments", to_user),
                        ("ids", "comments")]):
        comment_id = _next_id(ctx, "comments")
        ctx.update(
            "INSERT INTO comments (id, from_user, to_user, item_id, rating, "
            "date, comment) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (comment_id, user_id, to_user, item_id, rating, BASE_TIME, text))
        ctx.update("UPDATE users SET rating = rating + ? WHERE id = ?",
                   (rating, to_user))
    page = _page("Comment Recorded")
    page.paragraph(f"Your comment about user {to_user} is posted.")
    return ctx.respond(page)


# ------------------------------------------------------------ sell pipeline

def select_category_to_sell(ctx: AppContext) -> HttpResponse:
    result = ctx.query("SELECT id, name FROM categories ORDER BY name")
    page = _page("Select a Category")
    for cid, name in result.rows:
        page.link(f"/sell_item_form?category={cid}", name)
    return ctx.respond(page)


def register_item(ctx: AppContext) -> HttpResponse:
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    name = ctx.str_param("name", "NEW AUCTION ITEM")
    initial = float(ctx.param("initial_price", 10.0))
    duration = float(ctx.param("duration", 7.0))
    with ctx.exclusive([("items", user_id), ("ids", "items")]):
        item_id = _next_id(ctx, "items")
        ctx.update(
            "INSERT INTO items (id, name, description, initial_price, "
            "quantity, reserve_price, buy_now, nb_of_bids, max_bid, "
            "start_date, end_date, seller, category) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, 0, 0.0, ?, ?, ?, ?)",
            (item_id, name,
             ctx.str_param("description", "Newly listed collectible."),
             initial, ctx.int_param("quantity", 1),
             float(ctx.param("reserve_price", initial + 5.0)),
             float(ctx.param("buy_now", initial * 3.0)),
             BASE_TIME, BASE_TIME + duration * 86_400.0,
             user_id, ctx.int_param("category", 1)))
    page = _page("Item Listed")
    page.paragraph(f"Item {item_id} is now up for auction.")
    return ctx.respond(page)


# ------------------------------------------------------------ registration

def register_user(ctx: AppContext) -> HttpResponse:
    nickname = ctx.str_param("nickname", "")
    if not nickname:
        return ctx.error("nickname required", status=400)
    with ctx.exclusive([("users", nickname), ("ids", "users")],
                       read_tables=["regions"]):
        taken = ctx.query("SELECT id FROM users WHERE nickname = ?",
                          (nickname,)).scalar()
        if taken is not None:
            return ctx.error("nickname already in use", status=409)
        region = ctx.query("SELECT id FROM regions WHERE name = ?",
                           (ctx.str_param("region_name", "REGION01"),)
                           ).scalar() or 1
        user_id = _next_id(ctx, "users")
        ctx.update(
            "INSERT INTO users (id, firstname, lastname, nickname, "
            "password, email, rating, balance, creation_date, region) "
            "VALUES (?, ?, ?, ?, ?, ?, 0, 0.0, ?, ?)",
            (user_id, ctx.str_param("firstname", "New"),
             ctx.str_param("lastname", "Member"), nickname,
             ctx.str_param("password", "secret"),
             ctx.str_param("email", "new@auction.example"),
             BASE_TIME, region))
    page = _page("Registration Complete")
    page.paragraph(f"Welcome aboard, {nickname} (user #{user_id})!")
    return ctx.respond(page)


# ------------------------------------------------------------------ AboutMe

def about_me(ctx: AppContext) -> HttpResponse:
    """The myEbay-style summary: bids, sales, comments, purchases."""
    user_id = _authenticate(ctx)
    if user_id is None:
        return ctx.error("authentication failed", status=401)
    user = ctx.query(
        "SELECT nickname, firstname, lastname, rating, balance FROM users "
        "WHERE id = ?", (user_id,)).first()
    current_bids = ctx.query(
        "SELECT i.id, i.name, b.bid, i.max_bid, i.end_date "
        "FROM bids b JOIN items i ON i.id = b.item_id "
        "WHERE b.user_id = ? ORDER BY i.end_date LIMIT 20", (user_id,))
    selling = ctx.query(
        "SELECT id, name, max_bid, nb_of_bids, end_date FROM items "
        "WHERE seller = ? LIMIT 20", (user_id,))
    comments = ctx.query(
        "SELECT c.rating, c.date, c.comment, u.nickname "
        "FROM comments c JOIN users u ON u.id = c.from_user "
        "WHERE c.to_user = ? ORDER BY c.date DESC LIMIT 10", (user_id,))
    bought = ctx.query(
        "SELECT o.id, o.name, bn.qty, bn.date "
        "FROM buy_now bn JOIN old_items o ON o.id = bn.item_id "
        "WHERE bn.buyer_id = ? LIMIT 10", (user_id,))
    page = _page("About Me")
    page.paragraph(f"{user[0]} ({user[1]} {user[2]}), rating {user[3]}, "
                   f"balance {user[4]:.2f}")
    page.heading("Your current bids", 3)
    page.table(["item", "name", "your bid", "max bid", "ends"],
               current_bids.rows)
    page.heading("Items you are selling", 3)
    page.table(["item", "name", "max bid", "bids", "ends"], selling.rows)
    page.heading("Comments about you", 3)
    page.table(["rating", "date", "comment", "from"], comments.rows)
    page.heading("Your buy-now purchases", 3)
    page.table(["item", "name", "qty", "date"], bought.rows)
    return ctx.respond(page)


# Interaction registry: name -> (handler, read_only?)
INTERACTIONS = {
    "home": (home, True),
    "register": (register, True),
    "register_user": (register_user, False),
    "browse": (browse, True),
    "browse_categories": (browse_categories, True),
    "search_items_in_category": (search_items_in_category, True),
    "browse_regions": (browse_regions, True),
    "browse_categories_in_region": (browse_categories_in_region, True),
    "search_items_in_region": (search_items_in_region, True),
    "view_item": (view_item, True),
    "view_user_info": (view_user_info, True),
    "view_bid_history": (view_bid_history, True),
    "buy_now_auth": (buy_now_auth, True),
    "buy_now": (buy_now, True),
    "store_buy_now": (store_buy_now, False),
    "put_bid_auth": (put_bid_auth, True),
    "put_bid": (put_bid, True),
    "store_bid": (store_bid, False),
    "put_comment_auth": (put_comment_auth, True),
    "put_comment": (put_comment, True),
    "store_comment": (store_comment, False),
    "sell": (sell, True),
    "select_category_to_sell": (select_category_to_sell, True),
    "sell_item_form": (sell_item_form, True),
    "register_item": (register_item, False),
    "about_me": (about_me, True),
}

STATIC_INTERACTIONS = ("home", "register", "browse", "buy_now_auth",
                       "put_bid_auth", "put_comment_auth", "sell",
                       "sell_item_form")

"""The benchmark applications, and the one way to construct them.

:func:`build_app` is the single construction entry point the rest of
the repo uses: harness caches, the parallel runner's worker warm-up,
and the figure registry all go through it, so an application + database
is built exactly once per process per app name.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.apps.base import ARCHITECTURES, BenchmarkApp

__all__ = ["ARCHITECTURES", "APP_NAMES", "BenchmarkApp", "build_app",
           "clear_app_cache"]

APP_NAMES = ("bookstore", "auction", "bboard")

# Default-built apps (populated database at default scale) are cached
# per process: populating a database is seconds of work and profiling
# warms it, so everyone must share one instance per app name.
_APP_CACHE = {}


def _resolve(app_name: str) -> Tuple[type, object]:
    """(app class, database builder) for a registry name."""
    if app_name == "bookstore":
        from repro.apps.bookstore import BookstoreApp, build_bookstore_database
        return BookstoreApp, build_bookstore_database
    if app_name == "auction":
        from repro.apps.auction import AuctionApp, build_auction_database
        return AuctionApp, build_auction_database
    if app_name == "bboard":
        from repro.apps.bboard import BulletinBoardApp, build_bboard_database
        return BulletinBoardApp, build_bboard_database
    raise KeyError(f"unknown application {app_name!r}; "
                   f"have {list(APP_NAMES)}")


def build_app(app_name: str, arch: Optional[str] = None, *,
              cluster=None, database=None, **db_kwargs):
    """Build (or fetch the cached) application, optionally deployed.

    ``build_app("bookstore")`` returns the process-wide BookstoreApp
    over a database populated at default scale.  With ``arch`` (one of
    ``ARCHITECTURES``: php, servlet, servlet_sync, ejb) it returns the
    pair ``(app, deployment)`` where ``deployment`` is whatever the
    architecture's ``deploy_*`` method yields -- the middleware front
    end, or ``(presentation, container)`` for ejb.

    ``cluster`` deploys a pool instead: pass a
    :class:`repro.cluster.ClusterSpec` (the ``gen`` count is used) or a
    plain int, and the second element of the pair becomes the *list* of
    independent deployments over the shared database
    (:meth:`~repro.apps.base.BenchmarkApp.deploy_pool`).

    ``database`` or database-builder keywords (``scale``, ``tiny``,
    ``rng``) bypass the cache and build a private instance.
    """
    cls, builder = _resolve(app_name)
    if database is None and not db_kwargs:
        app = _APP_CACHE.get(app_name)
        if app is None:
            app = cls(builder())
            _APP_CACHE[app_name] = app
    else:
        app = cls(database if database is not None else builder(**db_kwargs))
    if arch is None:
        if cluster is not None:
            raise ValueError("cluster deployment needs an architecture")
        return app
    if cluster is not None:
        count = getattr(cluster, "gen", cluster)
        return app, app.deploy_pool(arch, int(count))
    return app, app.deploy(arch)


def clear_app_cache() -> None:
    """Forget cached default-built applications (tests use this)."""
    _APP_CACHE.clear()

"""The two benchmark applications: online bookstore and auction site."""

"""Online bookstore benchmark (TPC-W).

Eight tables, fourteen interactions, three workload mixes (browsing /
shopping / ordering).  The database is the bottleneck in the paper's
experiments with this application.
"""

from repro.apps.bookstore.app import BookstoreApp, build_bookstore_database
from repro.apps.bookstore.mixes import (
    BOOKSTORE_INTERACTIONS,
    BROWSING_MIX,
    ORDERING_MIX,
    SHOPPING_MIX,
)

__all__ = [
    "BookstoreApp",
    "build_bookstore_database",
    "BOOKSTORE_INTERACTIONS",
    "BROWSING_MIX",
    "SHOPPING_MIX",
    "ORDERING_MIX",
]

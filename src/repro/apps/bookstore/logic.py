"""The fourteen TPC-W interactions, written once against AppContext.

The PHP and servlet deployments run these *same* functions -- so they
issue exactly the same SQL, as the paper requires -- and only the
context's locking policy differs (LOCK TABLES vs container sync locks).

Interaction names follow TPC-W: home, new_products, best_sellers,
product_detail, search_request, search_results, shopping_cart,
customer_registration, buy_request, buy_confirm, order_inquiry,
order_display, admin_request, admin_confirm.
"""

from __future__ import annotations

from repro.apps.bookstore.datagen import BASE_TIME
from repro.middleware.context import AppContext
from repro.web.html import Page
from repro.web.http import HttpResponse

SITE = "Online Bookstore"

# TPC-W shows the last 3,333 orders' sales for the best-sellers page.
BEST_SELLER_WINDOW = 3_333
NAV = ("home", "search", "shopcart", "order_status")


def _page(title: str) -> Page:
    page = Page(title, site=SITE)
    page.nav_buttons(NAV)
    return page


def _item_rows_with_thumbs(page: Page, rows, columns) -> None:
    """Standard item listing: table plus a thumbnail per item."""
    page.table(columns, rows)
    thumb_pos = columns.index("thumbnail") if "thumbnail" in columns else None
    if thumb_pos is not None:
        for row in rows:
            if row[thumb_pos]:
                page.add_image(row[thumb_pos])


# ------------------------------------------------------------- read-only six

def home(ctx: AppContext) -> HttpResponse:
    """Greeting plus five promotional items."""
    page = _page("Home")
    c_id = ctx.int_param("c_id")
    if c_id:
        row = ctx.query(
            "SELECT fname, lname FROM customers WHERE id = ?", (c_id,)).first()
        if row:
            page.paragraph(f"Welcome back, {row[0]} {row[1]}!")
    subject = ctx.str_param("subject", "SUBJECT00")
    promos = ctx.query(
        "SELECT id, title, thumbnail FROM items WHERE subject = ? LIMIT 5",
        (subject,))
    _item_rows_with_thumbs(page, promos.rows, ["id", "title", "thumbnail"])
    return ctx.respond(page)


def new_products(ctx: AppContext) -> HttpResponse:
    """The 50 newest items in a subject."""
    subject = ctx.str_param("subject", "SUBJECT00")
    result = ctx.query(
        "SELECT i.id, i.title, i.pub_date, i.thumbnail, a.fname, a.lname "
        "FROM items i JOIN authors a ON a.id = i.a_id "
        "WHERE i.subject = ? ORDER BY i.pub_date DESC LIMIT 50",
        (subject,))
    page = _page("New Products")
    _item_rows_with_thumbs(
        page, result.rows,
        ["id", "title", "pub_date", "thumbnail", "fname", "lname"])
    return ctx.respond(page)


def best_sellers(ctx: AppContext) -> HttpResponse:
    """Top 50 items by quantity sold over the last 3,333 orders.

    This is the heavy read query that saturates the database CPU in the
    browsing mix.
    """
    subject = ctx.str_param("subject", "SUBJECT00")
    max_order = ctx.query("SELECT MAX(id) FROM orders").scalar() or 0
    window_start = max(0, max_order - BEST_SELLER_WINDOW)
    result = ctx.query(
        "SELECT i.id, i.title, a.fname, a.lname, SUM(ol.qty) AS qty_sold "
        "FROM orders o "
        "JOIN order_line ol ON ol.o_id = o.id "
        "JOIN items i ON i.id = ol.i_id "
        "JOIN authors a ON a.id = i.a_id "
        "WHERE o.id > ? AND i.subject = ? "
        "GROUP BY i.id ORDER BY qty_sold DESC LIMIT 50",
        (window_start, subject))
    page = _page("Best Sellers")
    page.table(["id", "title", "fname", "lname", "qty_sold"], result.rows)
    return ctx.respond(page)


def product_detail(ctx: AppContext) -> HttpResponse:
    i_id = ctx.int_param("i_id", 1)
    row = ctx.query(
        "SELECT i.id, i.title, i.description, i.image, i.srp, i.cost, "
        "i.stock, i.isbn, i.page_count, i.backing, i.publisher, "
        "a.fname, a.lname, a.bio "
        "FROM items i JOIN authors a ON a.id = i.a_id WHERE i.id = ?",
        (i_id,)).first()
    page = _page("Product Detail")
    if row is None:
        return ctx.error(f"item {i_id} not found", status=404)
    page.heading(row[1])
    page.add_image(row[3], alt=row[1])
    page.paragraph(row[2])
    page.table(["srp", "cost", "stock", "isbn", "pages", "backing",
                "publisher"], [row[4:11]])
    page.paragraph(f"By {row[11]} {row[12]} -- {row[13]}")
    return ctx.respond(page)


def search_request(ctx: AppContext) -> HttpResponse:
    """The search form: the one interaction that serves static content
    only (no database access)."""
    page = _page("Search Request")
    page.form("/search_results", ["search_type", "search_string"])
    return ctx.respond(page)


def search_results(ctx: AppContext) -> HttpResponse:
    """Search by subject (indexed), author (index + probe), or title
    (LIKE -> full scan, the expensive variant)."""
    search_type = ctx.str_param("search_type", "subject")
    term = ctx.str_param("search_string", "SUBJECT00")
    if search_type == "subject":
        result = ctx.query(
            "SELECT i.id, i.title, i.srp, i.thumbnail, a.fname, a.lname "
            "FROM items i JOIN authors a ON a.id = i.a_id "
            "WHERE i.subject = ? ORDER BY i.title LIMIT 50",
            (term,))
    elif search_type == "author":
        result = ctx.query(
            "SELECT i.id, i.title, i.srp, i.thumbnail, a.fname, a.lname "
            "FROM authors a JOIN items i ON i.a_id = a.id "
            "WHERE a.lname = ? ORDER BY i.title LIMIT 50",
            (term,))
    else:  # title
        result = ctx.query(
            "SELECT i.id, i.title, i.srp, i.thumbnail, a.fname, a.lname "
            "FROM items i JOIN authors a ON a.id = i.a_id "
            "WHERE i.title LIKE ? ORDER BY i.title LIMIT 50",
            (term + "%",))
    page = _page("Search Results")
    _item_rows_with_thumbs(
        page, result.rows,
        ["id", "title", "srp", "thumbnail", "fname", "lname"])
    return ctx.respond(page)


# ------------------------------------------------------------ read-write eight

def _find_cart(ctx: AppContext, c_id: int):
    return ctx.query(
        "SELECT id FROM orders WHERE c_id = ? AND status = 'cart'",
        (c_id,)).scalar()


def shopping_cart(ctx: AppContext) -> HttpResponse:
    """Add an item to the customer's cart (creating it on first use),
    then display the cart.  A classic read-modify-write critical section
    over orders/order_line."""
    c_id = ctx.int_param("c_id", 1)
    i_id = ctx.int_param("i_id")
    qty = ctx.int_param("qty", 1)
    with ctx.exclusive([("orders", c_id), ("order_line", c_id)],
                       read_tables=["items"]):
        cart_id = _find_cart(ctx, c_id)
        if cart_id is None:
            ctx.update(
                "INSERT INTO orders (c_id, date, subtotal, tax, total, "
                "ship_type, ship_date, bill_addr_id, ship_addr_id, status) "
                "VALUES (?, ?, 0.0, 0.0, 0.0, 'AIR', ?, 1, 1, 'cart')",
                (c_id, BASE_TIME, BASE_TIME))
            cart_id = ctx.last_insert_id
        if i_id is not None:
            existing = ctx.query(
                "SELECT id, qty FROM order_line WHERE o_id = ? AND i_id = ?",
                (cart_id, i_id)).first()
            if existing is None:
                ctx.update(
                    "INSERT INTO order_line (o_id, i_id, qty, discount, "
                    "comments) VALUES (?, ?, ?, 0.0, '')",
                    (cart_id, i_id, qty))
            else:
                ctx.update(
                    "UPDATE order_line SET qty = qty + ? WHERE id = ?",
                    (qty, existing[0]))
        lines = ctx.query(
            "SELECT ol.i_id, i.title, ol.qty, i.cost "
            "FROM order_line ol JOIN items i ON i.id = ol.i_id "
            "WHERE ol.o_id = ?", (cart_id,))
    page = _page("Shopping Cart")
    page.table(["i_id", "title", "qty", "cost"], lines.rows)
    total = sum(row[2] * row[3] for row in lines.rows)
    page.paragraph(f"Cart total: {total:.2f}")
    return ctx.respond(page)


def customer_registration(ctx: AppContext) -> HttpResponse:
    """Create a customer and address row (or show the form for repeat
    visitors)."""
    uname = ctx.str_param("new_uname", "")
    if not uname:
        page = _page("Customer Registration")
        page.form("/customer_registration",
                  ["new_uname", "passwd", "fname", "lname", "email"])
        return ctx.respond(page)
    with ctx.exclusive([("customers", uname), ("address", uname)],
                       read_tables=["countries"]):
        country = ctx.query(
            "SELECT id FROM countries WHERE name = ?",
            (ctx.str_param("country", "COUNTRY001"),)).scalar() or 1
        ctx.update(
            "INSERT INTO address (street1, street2, city, state, zip, "
            "country_id) VALUES (?, '', ?, ?, ?, ?)",
            (ctx.str_param("street1", "1 New St"),
             ctx.str_param("city", "CITY01"), ctx.str_param("state", "ST01"),
             ctx.str_param("zip", "11111"), country))
        addr_id = ctx.last_insert_id
        ctx.update(
            "INSERT INTO customers (uname, passwd, fname, lname, addr_id, "
            "phone, email, since, last_login, login, expiration, discount, "
            "balance, ytd_pmt, birthdate, data) "
            "VALUES (?, ?, ?, ?, ?, '555', ?, ?, ?, ?, ?, 0.0, 0.0, 0.0, "
            "?, 'new customer')",
            (uname, ctx.str_param("passwd", "pw"),
             ctx.str_param("fname", "New"), ctx.str_param("lname", "Customer"),
             addr_id, ctx.str_param("email", "new@example.com"),
             BASE_TIME, BASE_TIME, BASE_TIME, BASE_TIME + 7200.0,
             BASE_TIME - 9000 * 86400.0))
        c_id = ctx.last_insert_id
    page = _page("Customer Registration")
    page.paragraph(f"Welcome, customer #{c_id}!")
    return ctx.respond(page)


def buy_request(ctx: AppContext) -> HttpResponse:
    """Show the order summary before purchase; refreshes the session
    (a small write -- TPC-W updates the customer's login/expiration)."""
    c_id = ctx.int_param("c_id", 1)
    with ctx.exclusive([("customers", c_id)],
                       read_tables=["orders", "order_line", "items",
                                    "address", "countries"]):
        customer = ctx.query(
            "SELECT id, fname, lname, addr_id, discount FROM customers "
            "WHERE id = ?", (c_id,)).first()
        if customer is None:
            return ctx.error(f"unknown customer {c_id}", status=404)
        ctx.update(
            "UPDATE customers SET login = ?, expiration = ? WHERE id = ?",
            (BASE_TIME, BASE_TIME + 7200.0, c_id))
        cart_id = _find_cart(ctx, c_id)
        lines = ctx.query(
            "SELECT ol.i_id, i.title, ol.qty, i.cost "
            "FROM order_line ol JOIN items i ON i.id = ol.i_id "
            "WHERE ol.o_id = ?", (cart_id,)) if cart_id else None
        address = ctx.query(
            "SELECT a.street1, a.city, a.state, a.zip, co.name "
            "FROM address a JOIN countries co ON co.id = a.country_id "
            "WHERE a.id = ?", (customer[3],)).first()
    page = _page("Buy Request")
    page.paragraph(f"Customer: {customer[1]} {customer[2]}")
    if address:
        page.paragraph("Ship to: " + ", ".join(str(p) for p in address))
    if lines is not None:
        page.table(["i_id", "title", "qty", "cost"], lines.rows)
    return ctx.respond(page)


def buy_confirm(ctx: AppContext) -> HttpResponse:
    """The purchase transaction: convert the cart into a placed order,
    decrement stock, record credit-card info.  The widest write span in
    the benchmark -- under DB locking it serializes five tables."""
    c_id = ctx.int_param("c_id", 1)
    with ctx.exclusive([("orders", c_id), ("order_line", c_id),
                        ("credit_info", c_id), ("items", c_id),
                        ("customers", c_id)]):
        cart_id = _find_cart(ctx, c_id)
        if cart_id is None:
            return ctx.error("no cart to purchase", status=409)
        lines = ctx.query(
            "SELECT ol.i_id, ol.qty, i.cost, i.stock "
            "FROM order_line ol JOIN items i ON i.id = ol.i_id "
            "WHERE ol.o_id = ?", (cart_id,))
        subtotal = sum(qty * cost for __, qty, cost, __s in lines.rows)
        discount = ctx.query(
            "SELECT discount FROM customers WHERE id = ?",
            (c_id,)).scalar() or 0.0
        subtotal *= (100.0 - discount) / 100.0
        tax = subtotal * 0.0825
        total = subtotal + tax + 3.0  # shipping
        for i_id, qty, __cost, stock in lines.rows:
            new_stock = stock - qty
            if new_stock < 10:
                new_stock += 21  # TPC-W restock rule
            ctx.update("UPDATE items SET stock = ? WHERE id = ?",
                       (new_stock, i_id))
        ctx.update(
            "UPDATE orders SET status = 'pending', date = ?, subtotal = ?, "
            "tax = ?, total = ? WHERE id = ?",
            (BASE_TIME, subtotal, tax, total, cart_id))
        ctx.update(
            "INSERT INTO credit_info (o_id, type, num, name, expire, "
            "auth_id, amount, date, co_id) "
            "VALUES (?, 'VISA', ?, ?, ?, 'AUTHOK', ?, ?, 1)",
            (cart_id, ctx.str_param("cc_num", "4000123412341234"),
             ctx.str_param("cc_name", "CARD HOLDER"),
             BASE_TIME + 900 * 86400.0, total, BASE_TIME))
        ctx.update(
            "UPDATE customers SET ytd_pmt = ytd_pmt + ? WHERE id = ?",
            (total, c_id))
    page = _page("Buy Confirm")
    page.paragraph(f"Order {cart_id} placed. Total: {total:.2f}")
    return ctx.respond(page)


def order_inquiry(ctx: AppContext) -> HttpResponse:
    """Authentication form + login refresh (the light write that makes
    TPC-W class this pair read-write)."""
    c_id = ctx.int_param("c_id", 1)
    with ctx.exclusive([("customers", c_id)]):
        row = ctx.query(
            "SELECT uname FROM customers WHERE id = ?", (c_id,)).first()
        if row is not None:
            ctx.update("UPDATE customers SET last_login = ? WHERE id = ?",
                       (BASE_TIME, c_id))
    page = _page("Order Inquiry")
    page.form("/order_display", ["uname", "passwd"])
    return ctx.respond(page)


def order_display(ctx: AppContext) -> HttpResponse:
    """The customer's most recent order with its lines and payment."""
    uname = ctx.str_param("uname", "customer1")
    customer = ctx.query(
        "SELECT id, fname, lname FROM customers WHERE uname = ?",
        (uname,)).first()
    if customer is None:
        return ctx.error(f"unknown customer {uname!r}", status=404)
    order = ctx.query(
        "SELECT id, date, subtotal, tax, total, status FROM orders "
        "WHERE c_id = ? AND status != 'cart' ORDER BY id DESC LIMIT 1",
        (customer[0],)).first()
    page = _page("Order Display")
    page.paragraph(f"Customer: {customer[1]} {customer[2]}")
    if order is None:
        page.paragraph("No orders on file.")
        return ctx.respond(page)
    page.table(["id", "date", "subtotal", "tax", "total", "status"], [order])
    lines = ctx.query(
        "SELECT ol.i_id, i.title, ol.qty, ol.discount "
        "FROM order_line ol JOIN items i ON i.id = ol.i_id "
        "WHERE ol.o_id = ?", (order[0],))
    page.table(["i_id", "title", "qty", "discount"], lines.rows)
    payment = ctx.query(
        "SELECT type, amount, date FROM credit_info WHERE o_id = ?",
        (order[0],)).first()
    if payment:
        page.table(["cc_type", "amount", "date"], [payment])
    return ctx.respond(page)


def admin_request(ctx: AppContext) -> HttpResponse:
    """Admin view of an item before updating it."""
    i_id = ctx.int_param("i_id", 1)
    row = ctx.query(
        "SELECT id, title, image, thumbnail, srp, cost FROM items "
        "WHERE id = ?", (i_id,)).first()
    page = _page("Admin Request")
    if row is None:
        return ctx.error(f"item {i_id} not found", status=404)
    page.table(["id", "title", "image", "thumbnail", "srp", "cost"], [row])
    page.form("/admin_confirm", ["i_id", "image", "thumbnail", "cost"])
    return ctx.respond(page)


def admin_confirm(ctx: AppContext) -> HttpResponse:
    """Admin update: change the item's art and refresh its related-items
    list from recent co-purchases (TPC-W's admin update)."""
    i_id = ctx.int_param("i_id", 1)
    with ctx.exclusive([("items", i_id)],
                       read_tables=["orders", "order_line"]):
        max_order = ctx.query("SELECT MAX(id) FROM orders").scalar() or 0
        window_start = max(0, max_order - 1000)
        related = ctx.query(
            "SELECT ol.i_id, COUNT(*) AS cnt FROM orders o "
            "JOIN order_line ol ON ol.o_id = o.id "
            "WHERE o.id > ? AND ol.i_id != ? "
            "GROUP BY ol.i_id ORDER BY cnt DESC LIMIT 5",
            (window_start, i_id))
        ids = [row[0] for row in related.rows]
        while len(ids) < 5:
            ids.append(i_id)
        ctx.update(
            "UPDATE items SET image = ?, thumbnail = ?, cost = ?, "
            "related1 = ?, related2 = ?, related3 = ?, related4 = ?, "
            "related5 = ? WHERE id = ?",
            (ctx.str_param("image", f"/images/bookstore/image_{i_id}.gif"),
             ctx.str_param("thumbnail",
                           f"/images/bookstore/thumb_{i_id}.gif"),
             float(ctx.param("cost", 10.0)),
             ids[0], ids[1], ids[2], ids[3], ids[4], i_id))
    page = _page("Admin Confirm")
    page.paragraph(f"Item {i_id} updated; related items: {ids}")
    return ctx.respond(page)


# Interaction registry: name -> (handler, read_only?)
INTERACTIONS = {
    "home": (home, True),
    "new_products": (new_products, True),
    "best_sellers": (best_sellers, True),
    "product_detail": (product_detail, True),
    "search_request": (search_request, True),
    "search_results": (search_results, True),
    "shopping_cart": (shopping_cart, False),
    "customer_registration": (customer_registration, False),
    "buy_request": (buy_request, False),
    "buy_confirm": (buy_confirm, False),
    "order_inquiry": (order_inquiry, False),
    "order_display": (order_display, False),
    "admin_request": (admin_request, False),
    "admin_confirm": (admin_confirm, False),
}

"""Bookstore application wiring: database + middleware deployments."""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.bookstore.datagen import populate_bookstore
from repro.apps.bookstore.ejb_app import (
    deploy_bookstore_beans,
    ejb_presentation_pages,
)
from repro.apps.bookstore.logic import INTERACTIONS
from repro.apps.bookstore import mixes
from repro.db.engine import Database
from repro.middleware.ejb import EjbContainer
from repro.middleware.phpmod import PhpModule
from repro.middleware.servlet import ServletEngine
from repro.sim.rng import RngStreams
from repro.web.static import StaticContentStore


def build_bookstore_database(scale: float = 0.01,
                             rng: Optional[RngStreams] = None,
                             tiny: bool = False) -> Database:
    """A populated bookstore database at the given scale.

    ``tiny=True`` drops the dataset floors (fast tests; pages may be
    sparse -- do not profile from a tiny database).
    """
    db = Database(name="bookstore")
    populate_bookstore(db, scale=scale, rng=rng, tiny=tiny)
    return db


class BookstoreApp:
    """One bookstore instance: shared pages + per-architecture deployment."""

    name = "bookstore"
    # TPC-W requires secure (SSL) handling for the purchase pipeline;
    # the web server pays extra CPU for these (mod_ssl in the paper).
    SSL_INTERACTIONS = frozenset({
        "buy_request", "buy_confirm", "customer_registration"})

    def __init__(self, database: Database):
        self.database = database

    # -- page tables ---------------------------------------------------------------

    def shared_pages(self) -> Dict[str, object]:
        """The hand-written-SQL pages used by both PHP and servlets."""
        return {f"/{name}": handler
                for name, (handler, __) in INTERACTIONS.items()}

    # -- deployments ---------------------------------------------------------------

    def deploy_php(self) -> PhpModule:
        php = PhpModule(self.database)
        php.register_app(self.shared_pages())
        return php

    def deploy_servlet(self, sync_locking: bool = False) -> ServletEngine:
        engine = ServletEngine(self.database, sync_locking=sync_locking)
        engine.register_app(self.shared_pages())
        return engine

    def deploy_ejb(self, store_mode: str = "field",
                   load_mode: str = "field"):
        """Returns (presentation ServletEngine, EjbContainer)."""
        container = EjbContainer(self.database, store_mode=store_mode,
                                 load_mode=load_mode)
        deploy_bookstore_beans(container)
        presentation = ServletEngine(self.database, sync_locking=False)
        presentation.register_app(ejb_presentation_pages(container))
        return presentation, container

    # -- workload ------------------------------------------------------------------

    def make_state(self, rng) -> mixes.BookstoreState:
        return mixes.BookstoreState.from_database(self.database, rng)

    @staticmethod
    def mix(name: str) -> Dict[str, float]:
        try:
            return mixes.MIXES[name]
        except KeyError:
            raise KeyError(f"unknown bookstore mix {name!r}; "
                           f"have {sorted(mixes.MIXES)}") from None

    @staticmethod
    def make_request(name: str, rng, state):
        return mixes.make_request(name, rng, state)

    @staticmethod
    def choose_interaction(mix: Dict[str, float], rng) -> str:
        return mixes.choose_interaction(mix, rng)

    def static_store(self) -> StaticContentStore:
        """Register the item image files on the web server."""
        store = StaticContentStore()
        store.register_item_images("/images/bookstore",
                                   len(self.database.table("items")))
        return store

    @staticmethod
    def interaction_names() -> tuple:
        return tuple(INTERACTIONS)

    @staticmethod
    def is_read_only(name: str) -> bool:
        return INTERACTIONS[name][1]

"""Bookstore application wiring: database + middleware deployments."""

from __future__ import annotations

from typing import Optional

from repro.apps.base import BenchmarkApp
from repro.apps.bookstore.datagen import populate_bookstore
from repro.apps.bookstore.ejb_app import (
    deploy_bookstore_beans,
    ejb_presentation_pages,
)
from repro.apps.bookstore.logic import INTERACTIONS
from repro.apps.bookstore import mixes
from repro.db.engine import Database
from repro.sim.rng import RngStreams
from repro.web.static import StaticContentStore


def build_bookstore_database(scale: float = 0.01,
                             rng: Optional[RngStreams] = None,
                             tiny: bool = False) -> Database:
    """A populated bookstore database at the given scale.

    ``tiny=True`` drops the dataset floors (fast tests; pages may be
    sparse -- do not profile from a tiny database).
    """
    db = Database(name="bookstore")
    populate_bookstore(db, scale=scale, rng=rng, tiny=tiny)
    return db


class BookstoreApp(BenchmarkApp):
    """One bookstore instance: shared pages + per-architecture deployment."""

    name = "bookstore"
    # TPC-W requires secure (SSL) handling for the purchase pipeline;
    # the web server pays extra CPU for these (mod_ssl in the paper).
    SSL_INTERACTIONS = frozenset({
        "buy_request", "buy_confirm", "customer_registration"})
    INTERACTIONS = INTERACTIONS
    MIXES = mixes.MIXES
    STATE_CLASS = mixes.BookstoreState
    MAKE_REQUEST = staticmethod(mixes.make_request)
    EJB_DEPLOYER = staticmethod(deploy_bookstore_beans)
    EJB_PAGES = staticmethod(ejb_presentation_pages)

    def static_store(self) -> StaticContentStore:
        """Register the item image files on the web server."""
        store = StaticContentStore()
        store.register_item_images("/images/bookstore",
                                   len(self.database.table("items")))
        return store

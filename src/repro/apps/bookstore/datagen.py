"""Bookstore data generator.

Populates a database at ``scale`` (1.0 = the paper's 10,000 items and
288,000 customers; tests use much smaller scales).  Per-entity relation
sizes (order lines per order, authors per item, ...) are kept constant
across scales so index-probe result sizes -- and therefore priced index
costs -- are scale-invariant, as the cost model assumes.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.bookstore.schema import (
    NUM_COUNTRIES,
    NUM_CUSTOMERS,
    NUM_ITEMS,
    SUBJECTS,
    bookstore_schemas,
)
from repro.db.engine import Database
from repro.sim.rng import RngStreams

# A fixed epoch keeps generated DATETIMEs deterministic.
BASE_TIME = 1_000_000_000.0
DAY = 86_400.0


def _insert_pk(table, values: dict) -> int:
    """Insert and return the new row's primary-key value."""
    rowid = table.insert(values)
    return table.get_row(rowid)[table.column_pos(table.schema.primary_key)]


# Floors keep profiled pages full-size regardless of scale: listing
# pages show up to 50 items per subject (so >= 50 * 24 items must be
# loaded) and the best-sellers window covers 3,333 orders (so >= 3,703
# customers at 0.9 orders/customer).  Tests may bypass the floors with
# ``tiny=True`` where speed matters more than page fidelity.
ITEM_FLOOR = 1_248
CUSTOMER_FLOOR = 3_800


def scaled_counts(scale: float, tiny: bool = False) -> dict:
    """Loaded row counts for a given scale factor."""
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    item_floor = 48 if tiny else ITEM_FLOOR
    customer_floor = 100 if tiny else CUSTOMER_FLOOR
    items = max(item_floor, int(NUM_ITEMS * scale))
    customers = max(customer_floor, int(NUM_CUSTOMERS * scale))
    orders = int(0.9 * customers)
    return {
        "countries": NUM_COUNTRIES,
        "items": items,
        "authors": max(12, items // 4),
        "customers": customers,
        "orders": orders,
    }


def populate_bookstore(db: Database, scale: float = 0.01,
                       rng: Optional[RngStreams] = None,
                       tiny: bool = False) -> dict:
    """Create the eight tables and load a coherent dataset.

    Returns the per-table loaded counts.
    """
    rng = rng or RngStreams(7)
    for schema in bookstore_schemas():
        db.create_table(schema)
    counts = scaled_counts(scale, tiny=tiny)
    r = rng.stream("bookstore.datagen")

    for i in range(1, counts["countries"] + 1):
        db.table("countries").insert({
            "name": f"COUNTRY{i:03d}", "exchange": 1.0 + (i % 7) * 0.1,
            "currency": f"CUR{i % 10}"})

    for i in range(1, counts["authors"] + 1):
        db.table("authors").insert({
            "fname": f"AuthFirst{i}", "lname": f"AuthLast{i % 500:03d}",
            "mname": "Q", "dob": BASE_TIME - (20_000 + i) * DAY,
            "bio": "Biography text. " * 8})

    n_items = counts["items"]
    for i in range(1, n_items + 1):
        related = [1 + (i + k * 37) % n_items for k in range(1, 6)]
        db.table("items").insert({
            "title": f"BOOK TITLE {i % 300:03d} vol {i}",
            "a_id": 1 + (i % counts["authors"]),
            "pub_date": BASE_TIME - (i % 730) * DAY,
            "publisher": f"PUBLISHER{i % 40:02d}",
            "subject": SUBJECTS[i % len(SUBJECTS)],
            "description": "A fine book about dynamic content. " * 6,
            "thumbnail": f"/images/bookstore/thumb_{i}.gif",
            "image": f"/images/bookstore/image_{i}.gif",
            "srp": 10.0 + (i % 90), "cost": 5.0 + (i % 80),
            "avail": BASE_TIME, "stock": 10 + (i % 20),
            "isbn": f"ISBN{i:010d}", "page_count": 100 + (i % 400),
            "backing": "HARDBACK" if i % 3 else "PAPERBACK",
            "related1": related[0], "related2": related[1],
            "related3": related[2], "related4": related[3],
            "related5": related[4]})

    n_customers = counts["customers"]
    address = db.table("address")
    customers = db.table("customers")
    for i in range(1, n_customers + 1):
        addr_id = _insert_pk(address, {
            "street1": f"{i} Main Street", "street2": "",
            "city": f"CITY{i % 100:02d}", "state": f"ST{i % 50:02d}",
            "zip": f"{10000 + i % 90000}",
            "country_id": 1 + (i % NUM_COUNTRIES)})
        customers.insert({
            "uname": f"customer{i}", "passwd": f"pw{i}",
            "fname": f"First{i}", "lname": f"Last{i % 1000:03d}",
            "addr_id": addr_id, "phone": f"555-{i:07d}",
            "email": f"customer{i}@example.com",
            "since": BASE_TIME - (i % 1000) * DAY,
            "last_login": BASE_TIME, "login": BASE_TIME,
            "expiration": BASE_TIME + 7200.0,
            "discount": float(i % 30), "balance": 0.0,
            "ytd_pmt": float((i % 50) * 10), "birthdate": BASE_TIME - 12_000 * DAY,
            "data": "customer profile data " * 3})

    orders = db.table("orders")
    order_line = db.table("order_line")
    credit_info = db.table("credit_info")
    n_orders = counts["orders"]
    for i in range(1, n_orders + 1):
        c_id = 1 + r.randrange(n_customers)
        o_id = _insert_pk(orders, {
            "c_id": c_id, "date": BASE_TIME - (i % 60) * DAY,
            "subtotal": 50.0, "tax": 4.0, "total": 54.0,
            "ship_type": "AIR", "ship_date": BASE_TIME,
            "bill_addr_id": 1, "ship_addr_id": 1,
            "status": "SHIPPED"})
        for __ in range(3):
            order_line.insert({
                "o_id": o_id, "i_id": 1 + r.randrange(n_items),
                "qty": 1 + r.randrange(4), "discount": 0.0,
                "comments": "gift wrap"})
        credit_info.insert({
            "o_id": o_id, "type": "VISA", "num": f"4000{i:012d}",
            "name": f"First{c_id} Last{c_id % 1000:03d}",
            "expire": BASE_TIME + 900 * DAY, "auth_id": f"AUTH{i:08d}",
            "amount": 54.0, "date": BASE_TIME - (i % 60) * DAY,
            "co_id": 1 + (i % NUM_COUNTRIES)})

    loaded = {name: len(db.table(name)) for name in (
        "countries", "address", "customers", "authors", "items",
        "orders", "order_line", "credit_info")}
    return loaded

"""TPC-W bookstore schema: the paper's eight tables.

``customers, address, orders, order_line, credit_info, items, authors,
countries`` -- column sets follow TPC-W's table definitions trimmed to
the fields the fourteen interactions touch.  ``stats.nominal_rows``
carries the paper's full-scale cardinalities (10,000 items / 288,000
customers) so the cost model prices full-scale work even when a reduced
dataset is loaded.

The shopping cart is carried in ``orders``/``order_line`` rows with
``status = 'cart'`` -- the paper's schema has no ninth cart table, and
this keeps cart updates real database writes as the read-write mixes
require.
"""

from __future__ import annotations

from typing import Dict, List

from repro.db.schema import Column, ColumnType, IndexDef, TableSchema

NUM_ITEMS = 10_000
NUM_CUSTOMERS = 288_000
NUM_COUNTRIES = 92
NUM_SUBJECTS = 24

SUBJECTS = [f"SUBJECT{i:02d}" for i in range(NUM_SUBJECTS)]

C = Column
T = ColumnType


def bookstore_schemas() -> List[TableSchema]:
    """The eight table schemas with full-scale nominal statistics."""
    schemas = [
        TableSchema(
            name="countries",
            columns=[
                C("id", T.INT, nullable=False),
                C("name", T.VARCHAR),
                C("exchange", T.FLOAT),
                C("currency", T.VARCHAR),
            ],
            primary_key="id", auto_increment=True),
        TableSchema(
            name="address",
            columns=[
                C("id", T.INT, nullable=False),
                C("street1", T.VARCHAR),
                C("street2", T.VARCHAR),
                C("city", T.VARCHAR),
                C("state", T.VARCHAR),
                C("zip", T.VARCHAR),
                C("country_id", T.INT),
            ],
            primary_key="id", auto_increment=True),
        TableSchema(
            name="customers",
            columns=[
                C("id", T.INT, nullable=False),
                C("uname", T.VARCHAR),
                C("passwd", T.VARCHAR),
                C("fname", T.VARCHAR),
                C("lname", T.VARCHAR),
                C("addr_id", T.INT),
                C("phone", T.VARCHAR),
                C("email", T.VARCHAR),
                C("since", T.DATETIME),
                C("last_login", T.DATETIME),
                C("login", T.DATETIME),
                C("expiration", T.DATETIME),
                C("discount", T.FLOAT),
                C("balance", T.FLOAT),
                C("ytd_pmt", T.FLOAT),
                C("birthdate", T.DATETIME),
                C("data", T.TEXT),
            ],
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_cust_uname", ("uname",), unique=True,
                              kind="hash")]),
        TableSchema(
            name="authors",
            columns=[
                C("id", T.INT, nullable=False),
                C("fname", T.VARCHAR),
                C("lname", T.VARCHAR),
                C("mname", T.VARCHAR),
                C("dob", T.DATETIME),
                C("bio", T.TEXT),
            ],
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_auth_lname", ("lname",))]),
        TableSchema(
            name="items",
            columns=[
                C("id", T.INT, nullable=False),
                C("title", T.VARCHAR, byte_width=60),
                C("a_id", T.INT),
                C("pub_date", T.DATETIME),
                C("publisher", T.VARCHAR),
                C("subject", T.VARCHAR),
                C("description", T.TEXT),
                C("thumbnail", T.VARCHAR),
                C("image", T.VARCHAR),
                C("srp", T.FLOAT),
                C("cost", T.FLOAT),
                C("avail", T.DATETIME),
                C("stock", T.INT),
                C("isbn", T.VARCHAR),
                C("page_count", T.INT),
                C("backing", T.VARCHAR),
                C("related1", T.INT),
                C("related2", T.INT),
                C("related3", T.INT),
                C("related4", T.INT),
                C("related5", T.INT),
            ],
            primary_key="id", auto_increment=True,
            indexes=[
                IndexDef("idx_item_subj_pub", ("subject", "pub_date")),
                IndexDef("idx_item_subj_title", ("subject", "title")),
                IndexDef("idx_item_title", ("title",)),
                IndexDef("idx_item_author", ("a_id",)),
                IndexDef("idx_item_pubdate", ("pub_date",)),
            ]),
        TableSchema(
            name="orders",
            columns=[
                C("id", T.INT, nullable=False),
                C("c_id", T.INT),
                C("date", T.DATETIME),
                C("subtotal", T.FLOAT),
                C("tax", T.FLOAT),
                C("total", T.FLOAT),
                C("ship_type", T.VARCHAR),
                C("ship_date", T.DATETIME),
                C("bill_addr_id", T.INT),
                C("ship_addr_id", T.INT),
                C("status", T.VARCHAR),
            ],
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_order_cust", ("c_id",))]),
        TableSchema(
            name="order_line",
            columns=[
                C("id", T.INT, nullable=False),
                C("o_id", T.INT),
                C("i_id", T.INT),
                C("qty", T.INT),
                C("discount", T.FLOAT),
                C("comments", T.VARCHAR),
            ],
            primary_key="id", auto_increment=True,
            indexes=[
                IndexDef("idx_ol_order", ("o_id",)),
                IndexDef("idx_ol_item", ("i_id",)),
            ]),
        TableSchema(
            name="credit_info",
            columns=[
                C("id", T.INT, nullable=False),
                C("o_id", T.INT),
                C("type", T.VARCHAR),
                C("num", T.VARCHAR),
                C("name", T.VARCHAR),
                C("expire", T.DATETIME),
                C("auth_id", T.VARCHAR),
                C("amount", T.FLOAT),
                C("date", T.DATETIME),
                C("co_id", T.INT),
            ],
            primary_key="id", auto_increment=True,
            indexes=[IndexDef("idx_ci_order", ("o_id",))]),
    ]
    nominal = nominal_cardinalities()
    for schema in schemas:
        schema.stats.nominal_rows = nominal[schema.name]
        # Columns whose per-key cardinality grows with table size (the
        # cost model scales index probes on these; see db/cost.py).
        if schema.name == "items":
            schema.stats.distinct_values = {"subject": NUM_SUBJECTS}
        elif schema.name == "authors":
            schema.stats.distinct_values = {"lname": 500}
    return schemas


def nominal_cardinalities() -> Dict[str, int]:
    """Full-scale row counts per TPC-W's scaling rules."""
    orders = int(0.9 * NUM_CUSTOMERS)
    return {
        "countries": NUM_COUNTRIES,
        "address": int(1.2 * NUM_CUSTOMERS),
        "customers": NUM_CUSTOMERS,
        "authors": NUM_ITEMS // 4,
        "items": NUM_ITEMS,
        "orders": orders,
        "order_line": 3 * orders,
        "credit_info": orders,
    }

"""EJB implementation of the bookstore: session façades + CMP entities.

The business logic lives in stateless session beans that drive entity
beans; the SQL is generated entirely by the CMP layer (finders, lazy
loads, field-level stores).  Presentation servlets call the façades over
RMI stubs and only format HTML -- the paper's session-façade design.

The best-sellers façade walks the same 3,333-order window as the
hand-written SQL, but through finders and per-field lazy loads -- one
interaction turns into thousands of short queries, which is the paper's
bookstore-EJB pathology (the database CPU saturates on them).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.bookstore.datagen import BASE_TIME
from repro.apps.bookstore.logic import _page
from repro.middleware.context import AppContext
from repro.middleware.ejb import EjbContainer, SessionBean
from repro.web.http import HttpResponse

EJB_BEST_SELLER_ORDERS = 3_333


class CatalogBean(SessionBean):
    """Read-side façade: catalog browsing and search."""

    def get_promotions(self, subject: str, count: int = 5) -> list:
        items = self.home("items").find_by("subject", subject, limit=count)
        return [{"id": b.id, "title": b.title, "thumbnail": b.thumbnail}
                for b in items]

    def get_new_products(self, subject: str) -> list:
        items = self.home("items").find_by(
            "subject", subject, order_by="pub_date", descending=True,
            limit=50)
        authors = self.home("authors")
        out = []
        for item in items:
            author = authors.find_by_primary_key(item.a_id)
            out.append({"id": item.id, "title": item.title,
                        "pub_date": item.pub_date,
                        "thumbnail": item.thumbnail,
                        "fname": author.fname, "lname": author.lname})
        return out

    def get_best_sellers(self, subject: str) -> list:
        orders_home = self.home("orders")
        lines_home = self.home("order_line")
        items_home = self.home("items")
        authors_home = self.home("authors")
        max_id = orders_home.max_primary_key() or 0
        recent = orders_home.find_where(
            "id > ? AND status != 'cart'",
            (max_id - EJB_BEST_SELLER_ORDERS,))
        sold: Dict[int, int] = {}
        for order in recent:
            for line in lines_home.find_by("o_id", order.id):
                sold[line.i_id] = sold.get(line.i_id, 0) + line.qty
        ranked = sorted(sold.items(), key=lambda kv: -kv[1])[:50]
        out = []
        for i_id, qty in ranked:
            item = items_home.find_by_primary_key(i_id)
            if item.subject != subject:
                continue
            author = authors_home.find_by_primary_key(item.a_id)
            out.append({"id": i_id, "title": item.title,
                        "fname": author.fname, "lname": author.lname,
                        "qty_sold": qty})
        return out

    def get_product_detail(self, i_id: int) -> dict:
        item = self.home("items").find_by_primary_key(i_id)
        author = self.home("authors").find_by_primary_key(item.a_id)
        return {"id": item.id, "title": item.title,
                "description": item.description, "image": item.image,
                "srp": item.srp, "cost": item.cost, "stock": item.stock,
                "isbn": item.isbn, "page_count": item.page_count,
                "backing": item.backing, "publisher": item.publisher,
                "fname": author.fname, "lname": author.lname,
                "bio": author.bio}

    def search(self, kind: str, term: str) -> list:
        items_home = self.home("items")
        authors_home = self.home("authors")
        if kind == "author":
            authors = authors_home.find_by("lname", term, limit=20)
            items = []
            for author in authors:
                items.extend(items_home.find_by("a_id", author.id, limit=10))
        elif kind == "title":
            items = items_home.find_where(
                "title LIKE ?", (term + "%",), order_by="title", limit=50)
        else:
            items = items_home.find_by("subject", term, order_by="title",
                                       limit=50)
        out = []
        for item in items[:50]:
            author = authors_home.find_by_primary_key(item.a_id)
            out.append({"id": item.id, "title": item.title, "srp": item.srp,
                        "thumbnail": item.thumbnail,
                        "fname": author.fname, "lname": author.lname})
        return out


class CartBean(SessionBean):
    """Cart façade over the orders/order_line entities."""

    def _find_cart(self, c_id: int):
        carts = self.home("orders").find_where(
            "c_id = ? AND status = 'cart'", (c_id,), limit=1)
        return carts[0] if carts else None

    def add_and_list(self, c_id: int, i_id, qty: int) -> list:
        orders_home = self.home("orders")
        lines_home = self.home("order_line")
        items_home = self.home("items")
        cart = self._find_cart(c_id)
        if cart is None:
            cart = orders_home.create(
                c_id=c_id, date=BASE_TIME, subtotal=0.0, tax=0.0, total=0.0,
                ship_type="AIR", ship_date=BASE_TIME, bill_addr_id=1,
                ship_addr_id=1, status="cart")
        if i_id is not None:
            existing = lines_home.find_where(
                "o_id = ? AND i_id = ?", (cart.id, i_id), limit=1)
            if existing:
                existing[0].qty = existing[0].qty + qty
            else:
                lines_home.create(o_id=cart.id, i_id=i_id, qty=qty,
                                  discount=0.0, comments="")
        out = []
        for line in lines_home.find_by("o_id", cart.id):
            item = items_home.find_by_primary_key(line.i_id)
            out.append({"i_id": line.i_id, "title": item.title,
                        "qty": line.qty, "cost": item.cost})
        return out


class CustomerBean(SessionBean):
    """Registration and session refresh."""

    def register(self, uname: str, passwd: str, fname: str, lname: str,
                 email: str) -> int:
        address = self.home("address").create(
            street1="1 New St", street2="", city="CITY01", state="ST01",
            zip="11111", country_id=1)
        customer = self.home("customers").create(
            uname=uname, passwd=passwd, fname=fname, lname=lname,
            addr_id=address.id, phone="555", email=email, since=BASE_TIME,
            last_login=BASE_TIME, login=BASE_TIME,
            expiration=BASE_TIME + 7200.0, discount=0.0, balance=0.0,
            ytd_pmt=0.0, birthdate=BASE_TIME - 9000 * 86400.0,
            data="new customer")
        return customer.id

    def refresh_session(self, c_id: int) -> bool:
        try:
            customer = self.home("customers").find_by_primary_key(c_id)
        except KeyError:
            return False
        customer.last_login = BASE_TIME
        return True


class OrderBean(SessionBean):
    """Purchase pipeline and order history."""

    def buy_request(self, c_id: int) -> dict:
        customer = self.home("customers").find_by_primary_key(c_id)
        customer.login = BASE_TIME
        customer.expiration = BASE_TIME + 7200.0
        address = self.home("address").find_by_primary_key(customer.addr_id)
        country = self.home("countries").find_by_primary_key(
            address.country_id)
        carts = self.home("orders").find_where(
            "c_id = ? AND status = 'cart'", (c_id,), limit=1)
        lines = []
        if carts:
            items_home = self.home("items")
            for line in self.home("order_line").find_by("o_id", carts[0].id):
                item = items_home.find_by_primary_key(line.i_id)
                lines.append({"i_id": line.i_id, "title": item.title,
                              "qty": line.qty, "cost": item.cost})
        return {"fname": customer.fname, "lname": customer.lname,
                "street1": address.street1, "city": address.city,
                "country": country.name, "lines": lines}

    def buy_confirm(self, c_id: int, cc_num: str, cc_name: str) -> dict:
        carts = self.home("orders").find_where(
            "c_id = ? AND status = 'cart'", (c_id,), limit=1)
        if not carts:
            return {"ok": False}
        cart = carts[0]
        items_home = self.home("items")
        subtotal = 0.0
        for line in self.home("order_line").find_by("o_id", cart.id):
            item = items_home.find_by_primary_key(line.i_id)
            subtotal += line.qty * item.cost
            new_stock = item.stock - line.qty
            if new_stock < 10:
                new_stock += 21
            item.stock = new_stock
        customer = self.home("customers").find_by_primary_key(c_id)
        subtotal *= (100.0 - customer.discount) / 100.0
        tax = subtotal * 0.0825
        total = subtotal + tax + 3.0
        cart.status = "pending"
        cart.date = BASE_TIME
        cart.subtotal = subtotal
        cart.tax = tax
        cart.total = total
        self.home("credit_info").create(
            o_id=cart.id, type="VISA", num=cc_num, name=cc_name,
            expire=BASE_TIME + 900 * 86400.0, auth_id="AUTHOK",
            amount=total, date=BASE_TIME, co_id=1)
        customer.ytd_pmt = customer.ytd_pmt + total
        return {"ok": True, "order_id": cart.id, "total": total}

    def order_display(self, uname: str) -> dict:
        customers = self.home("customers").find_by("uname", uname, limit=1)
        if not customers:
            return {"ok": False}
        customer = customers[0]
        orders = self.home("orders").find_where(
            "c_id = ? AND status != 'cart'", (customer.id,),
            order_by="id", descending=True, limit=1)
        if not orders:
            return {"ok": True, "fname": customer.fname,
                    "lname": customer.lname, "order": None}
        order = orders[0]
        items_home = self.home("items")
        lines = []
        for line in self.home("order_line").find_by("o_id", order.id):
            item = items_home.find_by_primary_key(line.i_id)
            lines.append({"i_id": line.i_id, "title": item.title,
                          "qty": line.qty, "discount": line.discount})
        payments = self.home("credit_info").find_by("o_id", order.id, limit=1)
        payment = None
        if payments:
            payment = {"type": payments[0].type,
                       "amount": payments[0].amount,
                       "date": payments[0].date}
        return {"ok": True, "fname": customer.fname, "lname": customer.lname,
                "order": {"id": order.id, "date": order.date,
                          "subtotal": order.subtotal, "tax": order.tax,
                          "total": order.total, "status": order.status},
                "lines": lines, "payment": payment}


class AdminBean(SessionBean):
    """Admin item view/update."""

    def admin_view(self, i_id: int) -> dict:
        item = self.home("items").find_by_primary_key(i_id)
        return {"id": item.id, "title": item.title, "image": item.image,
                "thumbnail": item.thumbnail, "srp": item.srp,
                "cost": item.cost}

    def admin_update(self, i_id: int, cost: float) -> list:
        lines_home = self.home("order_line")
        recent = self.home("orders").find_where(
            "status != 'cart'", (), order_by="id", descending=True, limit=50)
        counts: Dict[int, int] = {}
        for order in recent:
            for line in lines_home.find_by("o_id", order.id):
                if line.i_id != i_id:
                    counts[line.i_id] = counts.get(line.i_id, 0) + 1
        related = [i for i, __ in
                   sorted(counts.items(), key=lambda kv: -kv[1])[:5]]
        while len(related) < 5:
            related.append(i_id)
        item = self.home("items").find_by_primary_key(i_id)
        item.image = f"/images/bookstore/image_{i_id}.gif"
        item.thumbnail = f"/images/bookstore/thumb_{i_id}.gif"
        item.cost = cost
        item.related1 = related[0]
        item.related2 = related[1]
        item.related3 = related[2]
        item.related4 = related[3]
        item.related5 = related[4]
        return related


def deploy_bookstore_beans(container: EjbContainer) -> None:
    """Deploy all entities and the five session façades."""
    container.deploy_all_entities()
    container.deploy_session("Catalog", CatalogBean)
    container.deploy_session("Cart", CartBean)
    container.deploy_session("Customer", CustomerBean)
    container.deploy_session("Order", OrderBean)
    container.deploy_session("Admin", AdminBean)


def ejb_presentation_pages(container: EjbContainer) \
        -> Dict[str, Callable[[AppContext], HttpResponse]]:
    """Presentation-tier servlets: format what the façades return."""

    def home(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Catalog", trace=ctx.trace)
        promos = stub.get_promotions(ctx.str_param("subject", "SUBJECT00"))
        page = _page("Home")
        page.table(["id", "title", "thumbnail"],
                   [(p["id"], p["title"], p["thumbnail"]) for p in promos])
        for p in promos:
            page.add_image(p["thumbnail"])
        return ctx.respond(page)

    def new_products(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Catalog", trace=ctx.trace)
        rows = stub.get_new_products(ctx.str_param("subject", "SUBJECT00"))
        page = _page("New Products")
        page.table(["id", "title", "pub_date", "fname", "lname"],
                   [(r["id"], r["title"], r["pub_date"], r["fname"],
                     r["lname"]) for r in rows])
        for r in rows:
            page.add_image(r["thumbnail"])
        return ctx.respond(page)

    def best_sellers(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Catalog", trace=ctx.trace)
        rows = stub.get_best_sellers(ctx.str_param("subject", "SUBJECT00"))
        page = _page("Best Sellers")
        page.table(["id", "title", "fname", "lname", "qty_sold"],
                   [(r["id"], r["title"], r["fname"], r["lname"],
                     r["qty_sold"]) for r in rows])
        return ctx.respond(page)

    def product_detail(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Catalog", trace=ctx.trace)
        try:
            d = stub.get_product_detail(ctx.int_param("i_id", 1))
        except KeyError:
            return ctx.error("item not found", status=404)
        page = _page("Product Detail")
        page.heading(d["title"])
        page.add_image(d["image"], alt=d["title"])
        page.paragraph(d["description"])
        page.table(["srp", "cost", "stock", "isbn", "pages", "backing",
                    "publisher"],
                   [(d["srp"], d["cost"], d["stock"], d["isbn"],
                     d["page_count"], d["backing"], d["publisher"])])
        page.paragraph(f"By {d['fname']} {d['lname']} -- {d['bio']}")
        return ctx.respond(page)

    def search_request(ctx: AppContext) -> HttpResponse:
        page = _page("Search Request")
        page.form("/search_results", ["search_type", "search_string"])
        return ctx.respond(page)

    def search_results(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Catalog", trace=ctx.trace)
        rows = stub.search(ctx.str_param("search_type", "subject"),
                           ctx.str_param("search_string", "SUBJECT00"))
        page = _page("Search Results")
        page.table(["id", "title", "srp", "fname", "lname"],
                   [(r["id"], r["title"], r["srp"], r["fname"], r["lname"])
                    for r in rows])
        for r in rows:
            page.add_image(r["thumbnail"])
        return ctx.respond(page)

    def shopping_cart(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Cart", trace=ctx.trace)
        lines = stub.add_and_list(ctx.int_param("c_id", 1),
                                  ctx.int_param("i_id"),
                                  ctx.int_param("qty", 1))
        page = _page("Shopping Cart")
        page.table(["i_id", "title", "qty", "cost"],
                   [(l["i_id"], l["title"], l["qty"], l["cost"])
                    for l in lines])
        total = sum(l["qty"] * l["cost"] for l in lines)
        page.paragraph(f"Cart total: {total:.2f}")
        return ctx.respond(page)

    def customer_registration(ctx: AppContext) -> HttpResponse:
        uname = ctx.str_param("new_uname", "")
        page = _page("Customer Registration")
        if not uname:
            page.form("/customer_registration",
                      ["new_uname", "passwd", "fname", "lname", "email"])
            return ctx.respond(page)
        stub = container.lookup("Customer", trace=ctx.trace)
        c_id = stub.register(uname, ctx.str_param("passwd", "pw"),
                             ctx.str_param("fname", "New"),
                             ctx.str_param("lname", "Customer"),
                             ctx.str_param("email", "new@example.com"))
        page.paragraph(f"Welcome, customer #{c_id}!")
        return ctx.respond(page)

    def buy_request(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Order", trace=ctx.trace)
        try:
            d = stub.buy_request(ctx.int_param("c_id", 1))
        except KeyError:
            return ctx.error("unknown customer", status=404)
        page = _page("Buy Request")
        page.paragraph(f"Customer: {d['fname']} {d['lname']}")
        page.paragraph(f"Ship to: {d['street1']}, {d['city']}, {d['country']}")
        page.table(["i_id", "title", "qty", "cost"],
                   [(l["i_id"], l["title"], l["qty"], l["cost"])
                    for l in d["lines"]])
        return ctx.respond(page)

    def buy_confirm(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Order", trace=ctx.trace)
        d = stub.buy_confirm(ctx.int_param("c_id", 1),
                             ctx.str_param("cc_num", "4000123412341234"),
                             ctx.str_param("cc_name", "CARD HOLDER"))
        if not d["ok"]:
            return ctx.error("no cart to purchase", status=409)
        page = _page("Buy Confirm")
        page.paragraph(
            f"Order {d['order_id']} placed. Total: {d['total']:.2f}")
        return ctx.respond(page)

    def order_inquiry(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Customer", trace=ctx.trace)
        stub.refresh_session(ctx.int_param("c_id", 1))
        page = _page("Order Inquiry")
        page.form("/order_display", ["uname", "passwd"])
        return ctx.respond(page)

    def order_display(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Order", trace=ctx.trace)
        d = stub.order_display(ctx.str_param("uname", "customer1"))
        if not d["ok"]:
            return ctx.error("unknown customer", status=404)
        page = _page("Order Display")
        page.paragraph(f"Customer: {d['fname']} {d['lname']}")
        order = d.get("order")
        if order is None:
            page.paragraph("No orders on file.")
            return ctx.respond(page)
        page.table(["id", "date", "subtotal", "tax", "total", "status"],
                   [(order["id"], order["date"], order["subtotal"],
                     order["tax"], order["total"], order["status"])])
        page.table(["i_id", "title", "qty", "discount"],
                   [(l["i_id"], l["title"], l["qty"], l["discount"])
                    for l in d["lines"]])
        if d["payment"]:
            p = d["payment"]
            page.table(["cc_type", "amount", "date"],
                       [(p["type"], p["amount"], p["date"])])
        return ctx.respond(page)

    def admin_request(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Admin", trace=ctx.trace)
        try:
            d = stub.admin_view(ctx.int_param("i_id", 1))
        except KeyError:
            return ctx.error("item not found", status=404)
        page = _page("Admin Request")
        page.table(["id", "title", "image", "thumbnail", "srp", "cost"],
                   [(d["id"], d["title"], d["image"], d["thumbnail"],
                     d["srp"], d["cost"])])
        page.form("/admin_confirm", ["i_id", "image", "thumbnail", "cost"])
        return ctx.respond(page)

    def admin_confirm(ctx: AppContext) -> HttpResponse:
        stub = container.lookup("Admin", trace=ctx.trace)
        i_id = ctx.int_param("i_id", 1)
        related = stub.admin_update(i_id, float(ctx.param("cost", 10.0)))
        page = _page("Admin Confirm")
        page.paragraph(f"Item {i_id} updated; related items: {related}")
        return ctx.respond(page)

    return {f"/{name}": fn for name, fn in (
        ("home", home), ("new_products", new_products),
        ("best_sellers", best_sellers), ("product_detail", product_detail),
        ("search_request", search_request),
        ("search_results", search_results),
        ("shopping_cart", shopping_cart),
        ("customer_registration", customer_registration),
        ("buy_request", buy_request), ("buy_confirm", buy_confirm),
        ("order_inquiry", order_inquiry), ("order_display", order_display),
        ("admin_request", admin_request), ("admin_confirm", admin_confirm))}

"""TPC-W workload mixes and request-parameter generation.

The three mixes (browsing / shopping / ordering) use TPC-W's web
interaction frequencies; their defining property -- the ratio of
read-only to read-write interactions (95% / 80% / 50%) -- is asserted by
tests against the interaction classification in logic.py.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.apps.bookstore.logic import INTERACTIONS
from repro.apps.bookstore.schema import SUBJECTS
from repro.web.http import HttpRequest

BOOKSTORE_INTERACTIONS = tuple(INTERACTIONS)

# Interaction frequencies (percent) from the TPC-W specification's mix
# tables, normalized to the fourteen implemented interactions.
BROWSING_MIX: Dict[str, float] = {
    "home": 29.00, "new_products": 11.00, "best_sellers": 11.00,
    "product_detail": 21.00, "search_request": 12.00,
    "search_results": 11.00, "shopping_cart": 2.00,
    "customer_registration": 0.82, "buy_request": 0.75,
    "buy_confirm": 0.69, "order_inquiry": 0.30, "order_display": 0.25,
    "admin_request": 0.10, "admin_confirm": 0.09,
}

SHOPPING_MIX: Dict[str, float] = {
    "home": 16.00, "new_products": 5.00, "best_sellers": 5.00,
    "product_detail": 17.00, "search_request": 20.00,
    "search_results": 17.00, "shopping_cart": 11.60,
    "customer_registration": 3.00, "buy_request": 2.60,
    "buy_confirm": 1.20, "order_inquiry": 0.75, "order_display": 0.66,
    "admin_request": 0.10, "admin_confirm": 0.09,
}

ORDERING_MIX: Dict[str, float] = {
    "home": 9.12, "new_products": 0.46, "best_sellers": 0.46,
    "product_detail": 12.35, "search_request": 14.53,
    "search_results": 13.08, "shopping_cart": 13.53,
    "customer_registration": 12.86, "buy_request": 12.73,
    "buy_confirm": 10.18, "order_inquiry": 0.25, "order_display": 0.22,
    "admin_request": 0.12, "admin_confirm": 0.11,
}

MIXES: Dict[str, Dict[str, float]] = {
    "browsing": BROWSING_MIX,
    "shopping": SHOPPING_MIX,
    "ordering": ORDERING_MIX,
}


def read_only_fraction(mix: Dict[str, float]) -> float:
    """Fraction of interactions that are read-only under this mix."""
    total = sum(mix.values())
    read_only = sum(weight for name, weight in mix.items()
                    if INTERACTIONS[name][1])
    return read_only / total


# Registration usernames embed a per-state tag so they stay unique even
# when states draw from identically-seeded RNGs (profiling does exactly
# that per flavor).  The tag seeds from the state's address -- byte-for-
# byte what the usernames always were -- but a collision (the allocator
# reusing a freed state's address, which used to crash profiling with a
# duplicate-key error) bumps to the next free value.
_USED_TAGS = set()


def _fresh_tag(state) -> int:
    tag = id(state) % 100000
    while tag in _USED_TAGS:
        tag += 1
    _USED_TAGS.add(tag)
    return tag


@dataclass
class BookstoreState:
    """Per-session client state used to generate request parameters."""

    n_items: int
    n_customers: int
    c_id: int = 1
    registered: int = 0
    tag: int = -1
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.tag < 0:
            self.tag = _fresh_tag(self)

    @classmethod
    def from_database(cls, db, rng: random.Random) -> "BookstoreState":
        n_items = len(db.table("items"))
        n_customers = len(db.table("customers"))
        return cls(n_items=n_items, n_customers=n_customers,
                   c_id=1 + rng.randrange(n_customers))


def make_request(name: str, rng: random.Random,
                 state: BookstoreState) -> HttpRequest:
    """Build the HTTP request for one interaction."""
    if name not in INTERACTIONS:
        raise KeyError(f"unknown bookstore interaction {name!r}")
    params: dict = {}
    if name == "home":
        params = {"c_id": state.c_id, "subject": rng.choice(SUBJECTS)}
    elif name in ("new_products", "best_sellers"):
        params = {"subject": rng.choice(SUBJECTS)}
    elif name in ("product_detail", "admin_request"):
        params = {"i_id": 1 + rng.randrange(state.n_items)}
    elif name == "search_results":
        kind = rng.choice(["subject", "author", "title"])
        if kind == "subject":
            term = rng.choice(SUBJECTS)
        elif kind == "author":
            term = f"AuthLast{rng.randrange(500):03d}"
        else:
            term = f"BOOK TITLE {rng.randrange(300):03d}"
        params = {"search_type": kind, "search_string": term}
    elif name == "shopping_cart":
        params = {"c_id": state.c_id,
                  "i_id": 1 + rng.randrange(state.n_items),
                  "qty": 1 + rng.randrange(3)}
    elif name == "customer_registration":
        state.registered += 1
        params = {"new_uname": f"newcust_{state.tag}_"
                               f"{state.registered}_{rng.randrange(10**9)}"}
    elif name in ("buy_request", "buy_confirm", "order_inquiry"):
        params = {"c_id": state.c_id}
    elif name == "order_display":
        params = {"uname": f"customer{1 + rng.randrange(state.n_customers)}"}
    elif name == "admin_confirm":
        params = {"i_id": 1 + rng.randrange(state.n_items),
                  "cost": 10.0 + rng.randrange(50)}
    return HttpRequest(path=f"/{name}", params=params)


def choose_interaction(mix: Dict[str, float], rng: random.Random) -> str:
    """Draw the next interaction from the mix's frequencies."""
    total = sum(mix.values())
    pick = rng.random() * total
    acc = 0.0
    for name, weight in mix.items():
        acc += weight
        if pick <= acc:
            return name
    return next(reversed(mix))  # numeric edge: return the last entry

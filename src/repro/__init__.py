"""Reproduction of "Performance Comparison of Middleware Architectures
for Generating Dynamic Web Content" (Cecchet, Chanda, Elnikety,
Marguerite, Zwaenepoel -- Middleware 2003).

Public API overview
-------------------

Applications (functional layer)::

    from repro import build_app
    app, php = build_app("bookstore", "php")
    response, trace = php.handle(HttpRequest("/best_sellers"))

(the explicit spelling still works: ``BookstoreApp(
build_bookstore_database(scale=0.01)).deploy_php()``)

Performance experiments::

    from repro import ExperimentSpec, run_experiment, WS_PHP_DB
    from repro.harness.profiles import profile_application
    profile = profile_application(app, php, "php")
    point = run_experiment(ExperimentSpec(
        config=WS_PHP_DB, profile=profile,
        mix=app.mix("shopping"), clients=600))

Figures::

    from repro.experiments import run_figure
    report = run_figure("fig05")
    print(report.render_throughput_table())

Request-level tracing (where did the time go?)::

    from repro.harness.experiment import run_experiment
    from dataclasses import replace
    point = run_experiment(replace(spec, trace=True))
    print(point.bottleneck)               # e.g. "db cpu 98%"

See README.md for the guided tour and DESIGN.md for the full inventory.
"""

from repro.apps import ARCHITECTURES, BenchmarkApp, build_app
from repro.apps.auction import AuctionApp, build_auction_database
from repro.apps.bookstore import BookstoreApp, build_bookstore_database
from repro.db import Database
from repro.harness.experiment import ExperimentSpec, run_experiment, run_sweep
from repro.harness.profiles import AppProfile, profile_application
from repro.middleware import EjbContainer, PhpModule, ServletEngine
from repro.metrics.report import ExperimentReport, ThroughputPoint
from repro.sim import Simulator
from repro.topology.configs import (
    ALL_CONFIGURATIONS,
    Configuration,
    WS_PHP_DB,
    WS_SEP_SERVLET_DB,
    WS_SEP_SERVLET_DB_SYNC,
    WS_SERVLET_DB,
    WS_SERVLET_DB_SYNC,
    WS_SERVLET_EJB_DB,
)
from repro.topology.simulation import SimulatedSite
from repro.web.http import HttpRequest, HttpResponse

__version__ = "1.0.0"

__all__ = [
    "AppProfile",
    "ARCHITECTURES",
    "AuctionApp",
    "BenchmarkApp",
    "BookstoreApp",
    "Configuration",
    "Database",
    "EjbContainer",
    "ExperimentReport",
    "ExperimentSpec",
    "HttpRequest",
    "HttpResponse",
    "PhpModule",
    "ServletEngine",
    "SimulatedSite",
    "Simulator",
    "ThroughputPoint",
    "ALL_CONFIGURATIONS",
    "WS_PHP_DB",
    "WS_SERVLET_DB",
    "WS_SERVLET_DB_SYNC",
    "WS_SEP_SERVLET_DB",
    "WS_SEP_SERVLET_DB_SYNC",
    "WS_SERVLET_EJB_DB",
    "build_app",
    "build_auction_database",
    "build_bookstore_database",
    "profile_application",
    "run_experiment",
    "run_sweep",
    "__version__",
]

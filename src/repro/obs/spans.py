"""Per-request span trees recorded in simulated time.

A :class:`Tracer` attaches to one :class:`~repro.sim.kernel.Simulator`
(via ``sim.tracer``) and follows every interaction from the moment the
site's ``perform`` process starts until it finishes: each instrumented
component (CPUs, NICs, lock managers, the replay engine) opens a
:class:`Span` on the request currently executing and closes it when the
work completes.  Spans nest, so one request becomes a tree::

    product_detail                         (root: the whole interaction)
      web.accept          [queue]          wait for an Apache slot
      web.cpu             [cpu]            HTTP handling
      ajp.request         [ipc]
        web.cpu           [cpu]
        net:web->servlet  [net]
        servlet.cpu       [cpu]
      db.query items      [db]
        servlet.cpu       [cpu]            driver marshalling
        net:servlet->db   [net]
        db.items READ     [lock]           MyISAM table-lock wait
        db.cpu            [cpu]            query execution
      ...

Everything is *opt-in*: when no tracer is attached, components perform a
single ``sim.tracer is None`` test and the hot path is untouched --
tracing adds no simulator events, no RNG draws, and no timing changes,
so traced and untraced runs produce identical reports.

Memory is bounded: every finished request is immediately folded into
running aggregates (per-tier busy time, per-(tier, category) breakdown,
lock-wait sites, per-interaction totals) and the raw span tree is only
retained while the total retained span count stays under ``max_spans``
-- Chrome export uses whatever was retained, attribution uses the exact
aggregates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.kernel import Simulator

# Span categories (the "resource kind" axis of the breakdown):
#   request  the interaction root
#   queue    waiting for a software slot (Apache process pool)
#   cpu      holding / waiting for a processor (meta carries the demand)
#   net      occupying NIC channels + switch latency
#   lock     waiting for a MyISAM table lock or a container sync lock
#   db       one database round trip (structural parent)
#   ipc      AJP request/reply crossing (structural parent)
#   rmi      servlet <-> EJB round trip (structural parent)
#   ejb      container transaction bookkeeping work (structural parent)


class Span:
    """One timed node of a request tree (simulated seconds)."""

    __slots__ = ("name", "cat", "tier", "start", "end", "parent",
                 "children", "meta")

    def __init__(self, name: str, cat: str, tier: str, start: float,
                 parent: Optional["Span"] = None,
                 meta: Optional[dict] = None):
        self.name = name
        self.cat = cat
        self.tier = tier
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.children: List["Span"] = []
        self.meta = meta

    @property
    def wall(self) -> float:
        end = self.end if self.end is not None else self.start
        return end - self.start

    def exclusive(self) -> float:
        """Wall time not covered by child spans (>= 0)."""
        covered = sum(c.wall for c in self.children)
        return max(0.0, self.wall - covered)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.name} [{self.cat}] tier={self.tier} "
                f"{self.start:.6f}..{self.end}>")


class RequestTrace:
    """The span tree of one in-flight (or finished) interaction."""

    __slots__ = ("tracer", "client_id", "interaction", "root", "_stack",
                 "closed", "span_count", "proc")

    def __init__(self, tracer: "Tracer", interaction: str, client_id: int,
                 proc):
        self.tracer = tracer
        self.client_id = client_id
        self.interaction = interaction
        self.proc = proc
        now = tracer.sim.now
        self.root = Span(interaction, "request", "-", now)
        self._stack: List[Span] = [self.root]
        self.closed = False
        self.span_count = 1

    def push(self, name: str, cat: str, tier: str,
             meta: Optional[dict] = None) -> Span:
        parent = self._stack[-1] if self._stack else self.root
        span = Span(name, cat, tier, self.tracer.sim.now, parent, meta)
        parent.children.append(span)
        self._stack.append(span)
        self.span_count += 1
        return span

    def pop(self, span: Span) -> None:
        """Close ``span`` at the current simulated time.

        Robust against mismatched nesting (an interrupted generator may
        unwind several levels through one ``finally``): every span above
        ``span`` on the stack is closed along with it.
        """
        now = self.tracer.sim.now
        if span.end is None:
            span.end = now
        stack = self._stack
        while stack:
            top = stack.pop()
            if top.end is None:
                top.end = now
            if top is span:
                return
        # span was not on the stack (already unwound): nothing else to do.

    def close(self) -> None:
        """Force-close every open span (request finished or aborted)."""
        if self.closed:
            return
        now = self.tracer.sim.now
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = now
        self.closed = True
        self.tracer._finish(self)


class Tracer:
    """Session-wide collector: per-process request contexts + aggregates.

    ``window`` (a ``(start, end)`` pair in simulated seconds, or None)
    clips every aggregated contribution to the measurement window; the
    experiment harness sets it to the measurement phase before the run.
    """

    def __init__(self, sim: Simulator, max_spans: int = 200_000,
                 window: Optional[Tuple[float, float]] = None):
        self.sim = sim
        self.max_spans = max_spans
        self.window = window
        self._by_proc: Dict[object, RequestTrace] = {}
        # Finished requests whose raw trees were retained (Chrome export).
        self.requests: List[RequestTrace] = []
        self.retained_spans = 0
        self.requests_dropped = 0      # folded but trees not retained
        # -- exact aggregates over the (clipped) window ---------------------
        self.busy: Dict[str, float] = {}                 # tier -> cpu seconds
        self.cpu_queue: Dict[str, float] = {}            # tier -> run-q wait
        self.breakdown: Dict[Tuple[str, str], float] = {}  # (tier, cat) -> s
        self.lock_sites: Dict[Tuple[str, str], List[float]] = {}
        self.n_requests = 0           # requests overlapping the window
        self.request_seconds = 0.0    # clipped wall of those requests
        self.per_interaction: Dict[str, List[float]] = {}
        self.spans_folded = 0

    # -- request lifecycle ------------------------------------------------------

    def begin_request(self, interaction: str, client_id: int) -> RequestTrace:
        proc = self.sim.current_process
        rc = RequestTrace(self, interaction, client_id, proc)
        if proc is not None:
            self._by_proc[proc] = rc
        return rc

    def current(self) -> Optional[RequestTrace]:
        """The request context of the process executing right now."""
        return self._by_proc.get(self.sim._current)

    def _finish(self, rc: RequestTrace) -> None:
        if rc.proc is not None:
            current = self._by_proc.get(rc.proc)
            if current is rc:
                del self._by_proc[rc.proc]
        self._fold(rc)
        if self.retained_spans + rc.span_count <= self.max_spans:
            self.requests.append(rc)
            self.retained_spans += rc.span_count
        else:
            self.requests_dropped += 1

    def finalize(self) -> None:
        """Close every request still open (end of run)."""
        for rc in list(self._by_proc.values()):
            rc.close()

    def open_requests(self) -> int:
        return len(self._by_proc)

    # -- aggregation ------------------------------------------------------------

    def _clip_factor(self, span: Span) -> float:
        """Fraction of the span's wall inside the window (1.0 if no
        window or zero-wall span starting inside it)."""
        window = self.window
        start = span.start
        end = span.end if span.end is not None else start
        if window is None:
            return 1.0
        lo, hi = window
        if end <= start:
            return 1.0 if lo < start <= hi else 0.0
        overlap = min(end, hi) - max(start, lo)
        if overlap <= 0.0:
            return 0.0
        return overlap / (end - start)

    def _fold(self, rc: RequestTrace) -> None:
        breakdown = self.breakdown
        busy = self.busy
        cpu_queue = self.cpu_queue
        lock_sites = self.lock_sites
        for span in rc.root.walk():
            self.spans_folded += 1
            factor = self._clip_factor(span)
            if factor <= 0.0:
                continue
            cat = span.cat
            tier = span.tier
            if cat == "cpu":
                demand = span.meta["demand"] if span.meta else 0.0
                wall = span.wall
                busy[tier] = busy.get(tier, 0.0) + demand * factor
                queued = max(0.0, wall - demand) * factor
                if queued > 0.0:
                    cpu_queue[tier] = cpu_queue.get(tier, 0.0) + queued
                key = (tier, "cpu")
                breakdown[key] = breakdown.get(key, 0.0) + demand * factor
                if queued > 0.0:
                    key = (tier, "cpu_queue")
                    breakdown[key] = breakdown.get(key, 0.0) + queued
            elif cat == "lock":
                wait = span.wall * factor
                key = (tier, "lock")
                breakdown[key] = breakdown.get(key, 0.0) + wait
                origin = (span.meta or {}).get("origin", "")
                site = (span.name, origin)
                entry = lock_sites.get(site)
                if entry is None:
                    lock_sites[site] = [1, wait]
                else:
                    entry[0] += 1
                    entry[1] += wait
            elif cat in ("queue", "net"):
                key = (tier, cat)
                breakdown[key] = breakdown.get(key, 0.0) + span.wall * factor
            else:
                # Structural spans (request/db/ipc/rmi/ejb): only the
                # time not covered by children counts (switch latency,
                # untraced gaps).
                rest = span.exclusive() * factor
                if rest > 0.0:
                    key = (tier, "other")
                    breakdown[key] = breakdown.get(key, 0.0) + rest
        root_clipped = rc.root.wall * self._clip_factor(rc.root)
        if root_clipped > 0.0:
            self.n_requests += 1
            self.request_seconds += root_clipped
            entry = self.per_interaction.get(rc.interaction)
            if entry is None:
                self.per_interaction[rc.interaction] = [1, root_clipped]
            else:
                entry[0] += 1
                entry[1] += root_clipped

    # -- derived views -----------------------------------------------------------

    def window_duration(self) -> Optional[float]:
        if self.window is None:
            return None
        return self.window[1] - self.window[0]

    def busy_fraction(self, tier: str) -> float:
        """Trace-derived CPU busy fraction of one machine over the
        window (requires a window)."""
        duration = self.window_duration()
        if not duration:
            raise ValueError("busy_fraction needs a measurement window")
        return self.busy.get(tier, 0.0) / duration

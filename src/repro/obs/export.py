"""Trace export: Chrome trace-event JSON and a text flame summary.

The Chrome format (chrome://tracing, Perfetto, speedscope all read it)
is a flat JSON object with a ``traceEvents`` list; every retained span
becomes one complete ("X") event with microsecond timestamps.  Tiers map
to Chrome "processes" and simulated clients to "threads", so the viewer
groups the timeline the same way the paper's figures do: one swimlane
per machine, one row per concurrent client.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import RequestTrace, Span, Tracer


def chrome_trace(requests: Iterable[RequestTrace]) -> dict:
    """Retained request trees as a Chrome trace-event JSON object."""
    events: List[dict] = []
    pids: Dict[str, int] = {}

    def pid_of(tier: str) -> int:
        pid = pids.get(tier)
        if pid is None:
            pid = len(pids) + 1
            pids[tier] = pid
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": tier}})
        return pid

    for rc in requests:
        for span in rc.root.walk():
            if span.end is None:
                continue
            event = {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round((span.end - span.start) * 1e6, 3),
                "pid": pid_of(span.tier),
                "tid": rc.client_id,
            }
            args = {"interaction": rc.interaction}
            if span.meta:
                args.update(span.meta)
            event["args"] = args
            events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the tracer's retained spans to ``path``; returns the event
    count (metadata records included)."""
    payload = chrome_trace(tracer.requests)
    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")
    return len(payload["traceEvents"])


def validate_chrome_trace(payload: dict) -> None:
    """Schema check used by tests and the CI smoke job.

    Raises ``ValueError`` on the first malformed record.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("top level must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            raise ValueError(f"event {i}: unsupported phase {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i}: missing {key!r}")
        if ph == "X":
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event {i}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i}: bad dur {dur!r}")


# -- flame summary ----------------------------------------------------------------


def _accumulate(span: Span, path: Tuple[str, ...],
                table: Dict[Tuple[str, ...], List[float]]) -> None:
    key = path + (f"{span.name} [{span.cat}]",)
    entry = table.get(key)
    if entry is None:
        table[key] = [1, span.wall]
    else:
        entry[0] += 1
        entry[1] += span.wall
    for child in span.children:
        _accumulate(child, key, table)


def flame_summary(requests: Iterable[RequestTrace],
                  interaction: Optional[str] = None,
                  max_depth: int = 6, min_share: float = 0.005) -> str:
    """A collapsed-stack text flame view of the retained requests.

    Sibling frames are merged by (path, name, category) and printed with
    their total simulated time and share of the root; frames below
    ``min_share`` of the root are elided.
    """
    table: Dict[Tuple[str, ...], List[float]] = {}
    n = 0
    for rc in requests:
        if interaction is not None and rc.interaction != interaction:
            continue
        n += 1
        root_key = (f"{rc.interaction} [request]"
                    if interaction is None else f"{interaction} [request]",)
        entry = table.get(root_key)
        if entry is None:
            table[root_key] = [1, rc.root.wall]
        else:
            entry[0] += 1
            entry[1] += rc.root.wall
        for child in rc.root.children:
            _accumulate(child, root_key, table)
    if not n:
        return "(no retained requests)"

    roots = {key: entry for key, entry in table.items() if len(key) == 1}
    lines = []
    for root_key, (count, total) in sorted(roots.items(),
                                           key=lambda kv: -kv[1][1]):
        lines.append(f"{root_key[0]:<52} {total:9.2f} s  100.0%  "
                     f"(n={count})")
        children = sorted(
            (key for key in table if len(key) > 1 and key[0] == root_key[0]),
            key=lambda key: (len(key),))
        # Depth-first print in tree order.
        def emit(prefix: Tuple[str, ...], depth: int) -> None:
            if depth > max_depth:
                return
            kids = [key for key in table
                    if len(key) == len(prefix) + 1
                    and key[:len(prefix)] == prefix]
            kids.sort(key=lambda key: -table[key][1])
            for key in kids:
                count_k, total_k = table[key]
                share = total_k / total if total else 0.0
                if share < min_share:
                    continue
                indent = "  " * depth
                label = indent + key[-1]
                lines.append(f"{label:<52} {total_k:9.2f} s  "
                             f"{100 * share:5.1f}%  (n={count_k})")
                emit(key, depth + 1)
        emit(root_key, 1)
    return "\n".join(lines)

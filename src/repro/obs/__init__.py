"""repro.obs: request-level tracing & bottleneck attribution.

Span trees in simulated time (:mod:`repro.obs.spans`), attribution
reports (:mod:`repro.obs.attribution`), and exporters
(:mod:`repro.obs.export`: Chrome trace JSON + flame summaries).
"""

from repro.obs.attribution import (
    BottleneckReport,
    LockSite,
    build_report,
    render_report,
)
from repro.obs.export import (
    chrome_trace,
    flame_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import RequestTrace, Span, Tracer

__all__ = [
    "BottleneckReport",
    "LockSite",
    "RequestTrace",
    "Span",
    "Tracer",
    "build_report",
    "chrome_trace",
    "flame_summary",
    "render_report",
    "validate_chrome_trace",
    "write_chrome_trace",
]

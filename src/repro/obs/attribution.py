"""Bottleneck attribution: turn span aggregates into "who limits us".

The paper's headline results are bottleneck identifications (DB CPU for
the sync bookstore configurations, the web tier for the auction site,
the EJB server for Ws-Servlet-EJB-DB); this module derives the same
statements from traced runs instead of asserting them.  A
:class:`BottleneckReport` carries:

* per-tier CPU busy fractions over the measurement window (trace-derived,
  cross-checked against the sysstat sampler by the test suite);
* a time-weighted breakdown of where requests spend their time, per
  (tier, resource-category) pair;
* the top lock-wait sites (lock name + the code origin that takes it);
* critical-path shares per category (requests are sequential processes,
  so per-category exclusive time sums to the request wall time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.spans import Tracer

# A tier is "saturated" past this busy fraction; the paper reads its
# sysstat plots the same way (Figure 6's "100%" database is ~0.95+).
SATURATION = 0.90
# A tier whose NIC runs past this share of line rate is network-bound
# (the auction browsing mix with dedicated servlet machines, ~94 Mb/s).
NIC_SATURATION = 0.85
# Below CPU/NIC saturation, lock waits dominate once they exceed this
# share of the mean request's critical path.
LOCK_DOMINANCE = 0.35
# Overload: time spent waiting in admission/backpressure queues (the
# accept queue, the repro.overload tier gates) dominating the critical
# path without any tier's CPU saturated -- the signature of a bounded
# queue holding the line for a slow stage behind it.
QUEUE_DOMINANCE = 0.50


@dataclass
class LockSite:
    """One lock's aggregate wait, attributed to the code that takes it."""

    lock: str                  # e.g. "db.orders WRITE", "sync.carts#1842"
    origin: str                # e.g. "php:/buy_confirm", "Cart.add"
    count: int
    wait_seconds: float


@dataclass
class BottleneckReport:
    """Everything derived from one traced figure point."""

    configuration: str
    interaction_mix: str
    clients: int
    window: Optional[Tuple[float, float]]
    busy: Dict[str, float] = field(default_factory=dict)   # tier -> fraction
    breakdown: Dict[Tuple[str, str], float] = field(default_factory=dict)
    n_requests: int = 0
    mean_request_seconds: float = 0.0
    lock_sites: List[LockSite] = field(default_factory=list)
    web_nic_utilization: Optional[float] = None
    # The verdict: kind in {"cpu", "network", "db-locks", "sync-locks",
    # "overload-queue", "unsaturated"}, tier names the limiting machine,
    # share quantifies it.
    bottleneck_kind: str = "unsaturated"
    bottleneck_tier: str = "-"
    bottleneck_share: float = 0.0

    @property
    def bottleneck(self) -> str:
        """Compact human-readable verdict, e.g. ``db cpu 98%``."""
        if self.bottleneck_kind == "cpu":
            return (f"{self.bottleneck_tier} cpu "
                    f"{100 * self.bottleneck_share:.0f}%")
        if self.bottleneck_kind == "network":
            return (f"{self.bottleneck_tier} nic "
                    f"{100 * self.bottleneck_share:.0f}%")
        if self.bottleneck_kind in ("db-locks", "sync-locks"):
            return (f"{self.bottleneck_kind} "
                    f"{100 * self.bottleneck_share:.0f}% of request time")
        if self.bottleneck_kind == "overload-queue":
            return (f"overload queueing at {self.bottleneck_tier} "
                    f"{100 * self.bottleneck_share:.0f}% of request time")
        return (f"unsaturated (max {self.bottleneck_tier} cpu "
                f"{100 * self.bottleneck_share:.0f}%)")

    def critical_path_shares(self) -> Dict[Tuple[str, str], float]:
        """Each (tier, category)'s share of total request time."""
        total = sum(self.breakdown.values())
        if total <= 0.0:
            return {}
        return {key: value / total
                for key, value in sorted(self.breakdown.items(),
                                         key=lambda kv: -kv[1])}

    def lock_wait_share(self, prefix: str) -> float:
        """Share of total request time spent waiting on locks whose name
        starts with ``prefix`` ("db." or "sync.")."""
        total_request = self.n_requests * self.mean_request_seconds
        if total_request <= 0.0:
            return 0.0
        waited = sum(site.wait_seconds for site in self.lock_sites
                     if site.lock.startswith(prefix))
        return waited / total_request


def build_report(tracer: Tracer, configuration: str = "",
                 interaction_mix: str = "", clients: int = 0,
                 web_nic_utilization: Optional[float] = None) \
        -> BottleneckReport:
    """Aggregate one traced run into a :class:`BottleneckReport`."""
    duration = tracer.window_duration()
    busy = {}
    if duration:
        busy = {tier: seconds / duration
                for tier, seconds in tracer.busy.items()
                if tier != "clients"}
    sites = [LockSite(lock=name, origin=origin, count=entry[0],
                      wait_seconds=entry[1])
             for (name, origin), entry in tracer.lock_sites.items()]
    sites.sort(key=lambda s: -s.wait_seconds)
    mean_request = (tracer.request_seconds / tracer.n_requests
                    if tracer.n_requests else 0.0)
    report = BottleneckReport(
        configuration=configuration, interaction_mix=interaction_mix,
        clients=clients, window=tracer.window, busy=busy,
        breakdown=dict(tracer.breakdown), n_requests=tracer.n_requests,
        mean_request_seconds=mean_request, lock_sites=sites,
        web_nic_utilization=web_nic_utilization)
    _identify(report)
    return report


def _identify(report: BottleneckReport) -> None:
    """Decide the bottleneck; mirrors how the paper reads its plots."""
    busiest_tier, busiest = "-", 0.0
    for tier, fraction in report.busy.items():
        if fraction > busiest:
            busiest_tier, busiest = tier, fraction
    if busiest >= SATURATION:
        report.bottleneck_kind = "cpu"
        report.bottleneck_tier = busiest_tier
        report.bottleneck_share = busiest
        return
    nic = report.web_nic_utilization
    if nic is not None and nic >= NIC_SATURATION:
        report.bottleneck_kind = "network"
        report.bottleneck_tier = "web"
        report.bottleneck_share = nic
        return
    total_path = sum(report.breakdown.values())
    if total_path > 0.0:
        queue_by_tier: Dict[str, float] = {}
        for (tier, category), seconds in report.breakdown.items():
            if category == "queue":
                queue_by_tier[tier] = queue_by_tier.get(tier, 0.0) + seconds
        if queue_by_tier:
            tier, waited = max(queue_by_tier.items(), key=lambda kv: kv[1])
            share = waited / total_path
            if share >= QUEUE_DOMINANCE:
                report.bottleneck_kind = "overload-queue"
                report.bottleneck_tier = tier
                report.bottleneck_share = share
                return
    db_lock_share = report.lock_wait_share("db.")
    sync_lock_share = report.lock_wait_share("sync.")
    if max(db_lock_share, sync_lock_share) >= LOCK_DOMINANCE:
        if db_lock_share >= sync_lock_share:
            report.bottleneck_kind = "db-locks"
            report.bottleneck_tier = "db"
            report.bottleneck_share = db_lock_share
        else:
            report.bottleneck_kind = "sync-locks"
            report.bottleneck_tier = "container"
            report.bottleneck_share = sync_lock_share
        return
    report.bottleneck_kind = "unsaturated"
    report.bottleneck_tier = busiest_tier
    report.bottleneck_share = busiest


def render_report(report: BottleneckReport, top_locks: int = 8,
                  top_paths: int = 10) -> str:
    """One traced point as readable text."""
    lines = [f"{report.configuration} @{report.clients} clients "
             f"({report.interaction_mix})",
             f"  bottleneck: {report.bottleneck}",
             f"  requests in window: {report.n_requests}  "
             f"mean request {1000 * report.mean_request_seconds:.1f} ms"]
    if report.busy:
        lines.append("  cpu busy fraction per tier:")
        for tier in sorted(report.busy, key=lambda t: -report.busy[t]):
            lines.append(f"    {tier:<10} {100 * report.busy[tier]:6.1f}%")
    if report.web_nic_utilization is not None:
        lines.append(f"  web NIC utilization: "
                     f"{100 * report.web_nic_utilization:.1f}%")
    shares = report.critical_path_shares()
    if shares:
        lines.append("  time-weighted request breakdown "
                     "(tier/resource, share of request time):")
        for (tier, cat), share in list(shares.items())[:top_paths]:
            lines.append(f"    {tier + '/' + cat:<22} {100 * share:6.1f}%")
    if report.lock_sites:
        lines.append("  top lock-wait sites:")
        for site in report.lock_sites[:top_locks]:
            origin = f"  [{site.origin}]" if site.origin else ""
            lines.append(
                f"    {site.lock:<28} {site.wait_seconds:9.1f} s over "
                f"{site.count} waits{origin}")
    return "\n".join(lines)

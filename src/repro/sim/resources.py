"""Synchronization primitives built on the kernel: resources, stores, locks."""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.kernel import Event, SimulationError, Simulator


class Resource:
    """A counting resource with a FIFO wait queue (e.g. a CPU core, a
    connection-pool slot, an Apache process slot).

    Usage inside a process::

        yield cpu.acquire()
        yield service_time
        cpu.release()
    """

    __slots__ = ("sim", "capacity", "in_use", "_queue", "name")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._queue: deque[Event] = deque()
        self.name = name

    @property
    def queue_length(self) -> int:
        """Number of acquirers currently waiting."""
        return len(self._queue)

    def acquire(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = Event(self.sim)
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            ev.trigger(None)
        else:
            self._queue.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take a slot immediately if available; never queues."""
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            return True
        return False

    def release(self) -> None:
        """Free one slot, waking the head of the queue if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            # Hand the slot directly to the next waiter: in_use is unchanged.
            self._queue.popleft().trigger(None)
        else:
            self.in_use -= 1

    def cancel(self, ev: Event) -> None:
        """Withdraw a queued (untriggered) acquire request -- used when
        the waiting process is interrupted so the slot is never handed
        to a dead waiter."""
        try:
            self._queue.remove(ev)
        except ValueError:
            pass


# -- cancellation-safe acquisition helpers -----------------------------------
#
# ``yield resource.acquire()`` leaks the queued request if the waiting
# process is interrupted; these ``yield from`` wrappers withdraw it (and
# release an already-granted slot) before re-raising, so chaos in one
# interaction can never strand a CPU slot or a table lock.

def safe_acquire(resource: "Resource"):
    ev = resource.acquire()
    if ev.triggered:
        return
    try:
        yield ev
    except BaseException:
        if ev.triggered:
            resource.release()
        else:
            resource.cancel(ev)
        raise


def safe_acquire_read(lock: "RWLock"):
    ev = lock.acquire_read()
    if ev.triggered:
        return
    try:
        yield ev
    except BaseException:
        if ev.triggered:
            lock.release_read()
        else:
            lock.cancel(ev)
        raise


def safe_acquire_write(lock: "RWLock"):
    ev = lock.acquire_write()
    if ev.triggered:
        return
    try:
        yield ev
    except BaseException:
        if ev.triggered:
            lock.release_write()
        else:
            lock.cancel(ev)
        raise


# -- traced acquisition (repro.obs) ------------------------------------------
#
# Same cancellation-safe semantics as the helpers above, but when the
# acquire actually blocks, the wait is recorded as a span on ``rc`` (a
# repro.obs RequestTrace).  Uncontended acquires record nothing, so the
# span stream carries only real waits; virtual-time behaviour is
# identical either way (spans never add events).

def traced_acquire(resource: "Resource", rc, name: str, cat: str,
                   tier: str):
    ev = resource.acquire()
    if ev.triggered:
        return
    span = rc.push(name, cat, tier)
    try:
        yield ev
    except BaseException:
        if ev.triggered:
            resource.release()
        else:
            resource.cancel(ev)
        raise
    finally:
        rc.pop(span)


def traced_acquire_lock(lock: "RWLock", mode: str, rc, name: str,
                        tier: str, origin: str = ""):
    """Take an RW lock in ``mode`` ("READ"/"WRITE"), recording the wait
    (if any) as a lock span named after the lock and mode."""
    ev = lock.acquire_write() if mode == "WRITE" else lock.acquire_read()
    if ev.triggered:
        return
    span = rc.push(f"{name} {mode}", "lock", tier,
                   meta={"origin": origin} if origin else None)
    try:
        yield ev
    except BaseException:
        if ev.triggered:
            if mode == "WRITE":
                lock.release_write()
            else:
                lock.release_read()
        else:
            lock.cancel(ev)
        raise
    finally:
        rc.pop(span)


class Store:
    """An unbounded FIFO message store (producer/consumer channel)."""

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the longest-waiting getter if any."""
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.trigger(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class RWLock:
    """A readers/writer lock with optional writer priority.

    MySQL's MyISAM storage engine uses table-level locks in which waiting
    writers take priority over new readers; that policy is what produces
    the database lock contention the paper observes on the bookstore
    benchmark, so the policy is explicit and testable here.
    """

    __slots__ = ("sim", "write_priority", "readers", "writer",
                 "_wait_readers", "_wait_writers", "name")

    def __init__(self, sim: Simulator, write_priority: bool = True, name: str = ""):
        self.sim = sim
        self.write_priority = write_priority
        self.readers = 0
        self.writer = False
        self._wait_readers: deque[Event] = deque()
        self._wait_writers: deque[Event] = deque()
        self.name = name

    @property
    def waiting_readers(self) -> int:
        return len(self._wait_readers)

    @property
    def waiting_writers(self) -> int:
        return len(self._wait_writers)

    def acquire_read(self) -> Event:
        """Grant shared access; blocks behind writers (and, with writer
        priority, behind *waiting* writers too)."""
        ev = Event(self.sim)
        blocked = self.writer or (self.write_priority and self._wait_writers)
        if not blocked:
            self.readers += 1
            ev.trigger(None)
        else:
            self._wait_readers.append(ev)
        return ev

    def acquire_write(self) -> Event:
        """Grant exclusive access."""
        ev = Event(self.sim)
        if not self.writer and self.readers == 0 and not self._wait_writers:
            self.writer = True
            ev.trigger(None)
        else:
            self._wait_writers.append(ev)
        return ev

    def release_read(self) -> None:
        if self.readers <= 0:
            raise SimulationError(f"read-release of unheld lock {self.name!r}")
        self.readers -= 1
        if self.readers == 0:
            self._wake()

    def release_write(self) -> None:
        if not self.writer:
            raise SimulationError(f"write-release of unheld lock {self.name!r}")
        self.writer = False
        self._wake()

    def cancel(self, ev: Event) -> None:
        """Withdraw a queued (untriggered) lock request (see
        :meth:`Resource.cancel`)."""
        for queue in (self._wait_readers, self._wait_writers):
            try:
                queue.remove(ev)
                return
            except ValueError:
                continue

    def _wake(self) -> None:
        if self.writer or self.readers:
            return
        if self._wait_writers and (self.write_priority or not self._wait_readers):
            self.writer = True
            self._wait_writers.popleft().trigger(None)
            return
        if self._wait_readers:
            # Admit the whole batch of waiting readers at once.
            while self._wait_readers:
                self.readers += 1
                self._wait_readers.popleft().trigger(None)
        elif self._wait_writers:
            self.writer = True
            self._wait_writers.popleft().trigger(None)

"""Discrete-event simulation kernel.

A minimal, fast virtual-time kernel in the style of SimPy: processes are
Python generators that yield *waitables* (delays, events, resource
requests).  The kernel is deliberately small -- the performance layer of
the reproduction schedules hundreds of thousands of events per experiment,
so every hot path here avoids allocation and indirection where possible.
"""

from repro.sim.kernel import Simulator, Process, Delay, Event, Interrupt
from repro.sim.resources import Resource, Store, RWLock
from repro.sim.rng import RngStreams

__all__ = [
    "Simulator",
    "Process",
    "Delay",
    "Event",
    "Interrupt",
    "Resource",
    "Store",
    "RWLock",
    "RngStreams",
]

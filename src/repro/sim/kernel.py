"""Virtual-time event kernel.

The kernel owns a binary heap of timed callbacks and a FIFO ready-queue of
processes waiting to be resumed "now".  Processes are plain generators:

* ``yield seconds`` (an ``int`` or ``float``) suspends the process for that
  much virtual time,
* ``yield event`` suspends until the :class:`Event` is triggered,
* ``yield process`` suspends until the spawned :class:`Process` finishes,

The ready-queue (rather than recursive resumption) keeps the Python call
stack flat even when one event release cascades through thousands of
waiting processes, which happens routinely under database lock contention.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (bad yields, double triggers, ...)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot condition that processes can wait on.

    Events are the kernel's only synchronization primitive; resources,
    locks and message stores are all built from them.
    """

    __slots__ = ("sim", "_waiters", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._waiters: list[Process] = []
        self._callbacks: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming every waiter at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        ready = self.sim._ready
        for proc in self._waiters:
            if proc._waiting_on is self:
                proc._waiting_on = None
                ready.append((proc, value, None))
        self._waiters.clear()
        for cb in self._callbacks:
            cb(value)
        self._callbacks.clear()

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Run ``fn(value)`` when the event fires (immediately if fired)."""
        if self.triggered:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def _subscribe(self, proc: "Process") -> bool:
        """Register ``proc`` as a waiter.  Returns False if already fired."""
        if self.triggered:
            return False
        self._waiters.append(proc)
        proc._waiting_on = self
        return True


class Process:
    """A running generator inside the simulation."""

    __slots__ = ("sim", "_gen", "finished", "result", "_done_event",
                 "_waiting_on", "name", "_timeout_key")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self._gen = gen
        self.finished = False
        self.result: Any = None
        self._done_event: Optional[Event] = None
        # What the process currently waits on: an Event, the string
        # "timeout", or None while on the ready queue / running.
        self._waiting_on: Any = None
        self._timeout_key: Optional[int] = None
        self.name = name or getattr(gen, "__name__", "process")

    @property
    def done_event(self) -> Event:
        """Event fired (with the return value) when the process finishes."""
        if self._done_event is None:
            self._done_event = Event(self.sim)
            if self.finished:
                self._done_event.trigger(self.result)
        return self._done_event

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into the process at the current time.

        Returns False (and does nothing) if the process cannot be
        interrupted right now: it already finished, or it sits on the
        ready queue about to run.
        """
        if self.finished:
            return False
        waiting = self._waiting_on
        if waiting is None:
            return False
        if isinstance(waiting, Event):
            try:
                waiting._waiters.remove(self)
            except ValueError:
                pass
        elif waiting == "timeout":
            self.sim._cancel_timeout(self)
        self._waiting_on = None
        self.sim._ready.append((self, None, Interrupt(cause)))
        return True

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.result = value
        if self._done_event is not None and not self._done_event.triggered:
            self._done_event.trigger(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Delay:
    """Explicit delay waitable; ``yield Delay(t)`` equals ``yield t``."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        self.seconds = seconds


class Simulator:
    """The event loop: owns virtual time, the heap, and the ready queue.

    Heap entries are 4-tuples ``(time, seq, fn, proc)``: scheduled
    callbacks carry ``fn`` (never cancelled), process timeouts carry
    ``proc``.  Timeout cancellation is *lazy*: cancelling only clears
    ``proc._timeout_key``, and the stale heap entry is skipped when it
    eventually surfaces -- no set bookkeeping and no heap scans on the
    hot path.
    """

    __slots__ = ("now", "_heap", "_seq", "_ready", "_nproc", "_current",
                 "events_processed", "tracer")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self._ready: deque = deque()
        self._nproc = 0
        self._current: Optional[Process] = None
        # Count of process resumptions -- the kernel's unit of work,
        # reported as events/sec by the perf harness.
        self.events_processed = 0
        # Optional repro.obs.Tracer; instrumented components check
        # ``sim.tracer is not None`` and stay on the untouched hot path
        # when tracing is off.
        self.tracer = None

    @property
    def current_process(self) -> Optional["Process"]:
        """The process whose generator is executing right now (None when
        the kernel itself runs, e.g. inside a scheduled callback)."""
        return self._current

    # -- low level scheduling ------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, None))

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout_event(self, delay: float) -> Event:
        """An event that fires automatically after ``delay`` seconds."""
        ev = Event(self)
        self.schedule(delay, lambda: None if ev.triggered else ev.trigger(None))
        return ev

    # -- processes -----------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process at the current time."""
        if not isinstance(gen, Generator):
            raise SimulationError(f"spawn() needs a generator, got {type(gen)!r}")
        proc = Process(self, gen, name)
        self._nproc += 1
        self._ready.append((proc, None, None))
        return proc

    def _schedule_timeout(self, delay: float, proc: Process) -> None:
        key = self._seq = self._seq + 1
        proc._waiting_on = "timeout"
        proc._timeout_key = key
        heapq.heappush(self._heap, (self.now + delay, key, None, proc))

    def _cancel_timeout(self, proc: Process) -> None:
        # Lazy deletion: the heap entry stays put; clearing the key makes
        # it stale, and the pop path skips it.
        proc._timeout_key = None

    def _resume(self, proc: Process, value: Any, exc: Optional[BaseException]) -> None:
        self.events_processed += 1
        gen = proc._gen
        prev = self._current
        self._current = proc
        try:
            if exc is not None:
                target = gen.throw(exc)
            else:
                target = gen.send(value)
        except StopIteration as stop:
            proc._finish(stop.value)
            return
        finally:
            self._current = prev
        self._wait_on(proc, target)

    def _wait_on(self, proc: Process, target: Any) -> None:
        # Exact-type checks first: yields are overwhelmingly plain floats
        # (service times) and Events, and ``type(x) is C`` beats
        # isinstance() on this path.  The isinstance() fallbacks keep
        # subclass and bool yields working.
        tcls = type(target)
        if tcls is float or tcls is int:
            self._schedule_timeout(target, proc)
        elif tcls is Event:
            if not target._subscribe(proc):
                # Already triggered: resume with its value immediately.
                self._ready.append((proc, target.value, None))
        elif tcls is Process:
            ev = target.done_event
            if not ev._subscribe(proc):
                self._ready.append((proc, ev.value, None))
        elif tcls is Delay:
            self._schedule_timeout(target.seconds, proc)
        elif isinstance(target, (int, float)):
            self._schedule_timeout(target, proc)
        elif isinstance(target, Event):
            if not target._subscribe(proc):
                self._ready.append((proc, target.value, None))
        elif isinstance(target, Process):
            ev = target.done_event
            if not ev._subscribe(proc):
                self._ready.append((proc, ev.value, None))
        elif isinstance(target, Delay):
            self._schedule_timeout(target.seconds, proc)
        else:
            raise SimulationError(f"process yielded unsupported value {target!r}")

    # -- main loop -----------------------------------------------------------

    def _drain_ready(self) -> None:
        ready = self._ready
        popleft = ready.popleft
        resume = self._resume
        while ready:
            proc, value, exc = popleft()
            if not proc.finished:
                resume(proc, value, exc)

    def step(self) -> bool:
        """Advance past the next timed entry.  Returns False when idle."""
        self._drain_ready()
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            time, key, fn, proc = heappop(heap)
            if proc is not None and proc._timeout_key != key:
                # Stale timeout entry: the process was interrupted (its
                # pending timeout cancelled lazily) or has moved on to a
                # newer wait.  A finished process always has a cleared
                # key, so this one test covers every stale case.
                # Skipping it without advancing ``now`` keeps
                # interrupt-during-timeout deterministic.
                continue
            self.now = time
            if fn is not None:
                fn()
            else:
                proc._waiting_on = None
                proc._timeout_key = None
                self._resume(proc, None, None)
            self._drain_ready()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap empties or virtual time reaches ``until``.

        This is the simulator's hottest loop, so the step() logic is
        inlined here with the heap, ready queue and bound methods held
        in locals.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        popleft = ready.popleft
        resume = self._resume
        if ready:
            self._drain_ready()
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return self.now
            time, key, fn, proc = heappop(heap)
            if proc is not None and proc._timeout_key != key:
                continue                       # stale (lazily cancelled)
            self.now = time
            if fn is not None:
                fn()
            else:
                proc._waiting_on = None
                proc._timeout_key = None
                resume(proc, None, None)
            while ready:
                rproc, value, exc = popleft()
                if not rproc.finished:
                    resume(rproc, value, exc)
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def quiescent(self) -> bool:
        """True when nothing is pending: an empty ready queue and no live
        heap entries (lazily-cancelled/stale timeout entries don't count).

        This covers *scheduled* work only -- a process parked on an Event
        that nothing will ever trigger occupies neither queue, so the
        resilience tests pair this with per-process ``finished`` checks
        and the site's lock-hygiene assertions.
        """
        if self._ready:
            return False
        for __, key, fn, proc in self._heap:
            if fn is not None:
                return False
            if proc is not None and proc._timeout_key == key:
                return False
        return True

    def run_all(self, procs: Iterable[Process], until: Optional[float] = None) -> float:
        """Run until every process in ``procs`` has finished."""
        pending = [p for p in procs if not p.finished]
        while pending:
            if not self.step():
                unfinished = [p.name for p in pending if not p.finished]
                if unfinished:
                    raise SimulationError(f"deadlock: {unfinished[:5]} never finished")
            if until is not None and self.now > until:
                raise SimulationError("run_all exceeded time bound")
            pending = [p for p in pending if not p.finished]
        return self.now

"""Deterministic named random streams.

Every stochastic element of an experiment (think times, session lengths,
Markov transitions, data generation) draws from its own named stream so
that changing one element never perturbs the draws of another, and a
(seed, name) pair fully reproduces a run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 42):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def exponential(self, name: str, mean: float) -> float:
        """One draw from a negative-exponential distribution.

        TPC-W clauses 5.3.1.1 / 6.2.1.2 specify negative-exponential think
        and session times; both benchmarks use this helper.
        """
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def fork(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

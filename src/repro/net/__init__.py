"""Switched-Ethernet network model: full-duplex NICs on a LAN."""

from repro.net.lan import Lan, Nic

__all__ = ["Lan", "Nic"]

"""Full-duplex switched LAN.

Each attached machine gets a :class:`Nic` with independent transmit and
receive channels of the link bandwidth (full duplex), matching the paper's
switched 100 Mbps Ethernet: concurrent flows between distinct machine
pairs do not interfere, and a single NIC saturates at its line rate --
which is exactly the mechanism behind the one network-limited result in
the paper (the auction browsing mix with dedicated servlet machines, where
the web server NIC carries ~94 Mb/s).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, safe_acquire


class Nic:
    """One network interface: separate tx and rx channels plus counters."""

    __slots__ = ("sim", "bandwidth", "base_bandwidth", "_tx", "_rx",
                 "bytes_sent", "bytes_received", "name")

    def __init__(self, sim: Simulator, bandwidth_bps: float, name: str):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.sim = sim
        self.bandwidth = bandwidth_bps
        # Nominal line rate; ``bandwidth`` may be scaled down temporarily
        # by fault injection (Lan.set_bandwidth_factor).
        self.base_bandwidth = bandwidth_bps
        self._tx = Resource(sim, capacity=1, name=f"{name}.tx")
        self._rx = Resource(sim, capacity=1, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.name = name

    def _hold(self, res: Resource, nbytes: int):
        # Uncontended channels are the common case: try_acquire() takes
        # the slot without allocating an Event (or the safe_acquire
        # generator frame); the queued path keeps full interrupt safety.
        if not res.try_acquire():
            yield from safe_acquire(res)
        try:
            # Wire time is priced at transmission start, so a
            # fault-injected bandwidth change never rewrites transfers
            # already on the wire.
            yield (nbytes * 8.0) / self.bandwidth
        finally:
            res.release()

    def transmit(self, nbytes: int):
        """Occupy the tx channel for the wire time of ``nbytes``."""
        self.bytes_sent += nbytes
        yield from self._hold(self._tx, nbytes)

    def receive(self, nbytes: int):
        """Occupy the rx channel for the wire time of ``nbytes``."""
        self.bytes_received += nbytes
        yield from self._hold(self._rx, nbytes)


class Lan:
    """A switch: point-to-point store-and-forward transfers between NICs."""

    def __init__(self, sim: Simulator, latency: float = 0.0001):
        self.sim = sim
        self.latency = latency
        self._nics: Dict[str, Nic] = {}

    def attach(self, machine) -> Nic:
        """Give ``machine`` a NIC on this LAN (idempotent per machine)."""
        nic = self._nics.get(machine.name)
        if nic is None:
            nic = Nic(self.sim, machine.spec.nic_bandwidth_bps, f"{machine.name}.nic")
            self._nics[machine.name] = nic
            machine.nic = nic
        return nic

    def set_bandwidth_factor(self, factor: float) -> None:
        """Scale every NIC's line rate (fault injection: a congested or
        renegotiated-down LAN).  ``factor`` of 1.0 restores nominal rates;
        transfers already on the wire keep their computed times."""
        if factor <= 0:
            raise ValueError(f"bandwidth factor must be positive, got {factor}")
        for nic in self._nics.values():
            nic.bandwidth = nic.base_bandwidth * factor

    def nic_of(self, machine_name: str) -> Nic:
        try:
            return self._nics[machine_name]
        except KeyError:
            raise KeyError(f"machine {machine_name!r} is not attached to this LAN") from None

    def nics(self) -> Dict[str, Nic]:
        """Attached NICs by machine name (read-only snapshot; cluster
        reports iterate pool members' NICs through this)."""
        return dict(self._nics)

    def transfer(self, src, dst, nbytes: int):
        """Process-style: move ``nbytes`` from machine ``src`` to ``dst``.

        Co-located endpoints (same machine) cost nothing on the wire --
        that is PHP's structural advantage over the servlet engine.

        With a tracer attached and a request in flight the transfer is
        recorded as one net span (channel occupancy on both NICs plus
        switch latency); virtual-time behaviour is identical either way.
        """
        if src.name == dst.name:
            return _EMPTY_TRANSFER
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        tracer = self.sim.tracer
        if tracer is not None:
            rc = tracer.current()
            if rc is not None:
                return self._transfer_traced(src, dst, nbytes, rc)
        return self._transfer(src, dst, nbytes)

    def _transfer_traced(self, src, dst, nbytes: int, rc):
        span = rc.push(f"net:{src.name}->{dst.name}", "net", "net",
                       meta={"bytes": nbytes})
        try:
            yield from self._transfer(src, dst, nbytes)
        finally:
            rc.pop(span)

    def _transfer(self, src, dst, nbytes: int):
        src_nic = self.nic_of(src.name)
        dst_nic = self.nic_of(dst.name)
        # Calls _hold directly (bypassing the transmit/receive wrapper
        # generators): every dynamic request crosses the wire at least
        # twice, and the flattened chain saves two generator frames per
        # message.
        src_nic.bytes_sent += nbytes
        yield from src_nic._hold(src_nic._tx, nbytes)
        yield self.latency
        dst_nic.bytes_received += nbytes
        yield from dst_nic._hold(dst_nic._rx, nbytes)


# ``yield from`` over an exhausted iterator costs one next() call; using
# a shared empty tuple iterator keeps the co-located fast path free of a
# per-call generator frame.
class _EmptyTransfer:
    __slots__ = ()

    def __iter__(self):
        return iter(())


_EMPTY_TRANSFER = _EmptyTransfer()

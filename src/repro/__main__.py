"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
figures              list the reproducible figures
figure NN [--full] [--jobs N] [--trace] [--csv PATH]
                     regenerate one figure by number ("6", "06" and
                     "fig06" all work); ``--trace`` appends bottleneck
                     attribution from request-level tracing
run FIG [--full] [--jobs N]
                     regenerate one figure (legacy spelling of ``figure``)
trace FIG [...]      re-run figure points with request-level tracing;
                     print bottleneck reports, optionally write Chrome
                     trace JSON (see ``trace FIG --help``)
calibrate            print analytic saturation points vs paper targets
bboard [--full] [--jobs N]
                     run the bulletin-board extension experiment
faults [...]         crash/restart one tier mid-run, report availability
scale [...]          scale-out experiment: peak throughput vs database
                     read replicas (repro.cluster)
slo [...]            open-loop overload experiment: offered-load sweep
                     through saturation + flash-crowd/crash chaos run
                     (repro.overload)
perf [...]           time a bench grid serial vs parallel; write
                     BENCH_perf.json
version              print the package version

Sweep commands accept ``--jobs N`` to fan the independent simulation
runs out over N worker processes (default: one per CPU; ``--jobs 1``
is the exact serial legacy path).  Parallel output is bit-identical
to serial output under pinned seeds.  ``--config NAME`` restricts a
sweep to named configurations; names are validated up front, so a typo
exits (code 2) with the list of known names instead of costing a run.
"""

from __future__ import annotations

import argparse
import sys


def _reject_unknown_configs(names) -> bool:
    """Validate ``--config`` names before any sweep starts.

    Every subcommand calls this first, so a typo costs milliseconds,
    not a simulation run.  Unknown names are reported together with the
    list of valid ones; returns True when something was rejected (the
    caller exits 2).
    """
    if not names:
        return False
    from repro.topology.configs import configuration_names
    known = configuration_names()
    unknown = [name for name in names if name not in known]
    if not unknown:
        return False
    for name in unknown:
        print(f"unknown configuration {name!r}", file=sys.stderr)
    print("known configurations:", file=sys.stderr)
    for name in known:
        print(f"  {name}", file=sys.stderr)
    return True


def _cmd_figures(__args) -> int:
    from repro.experiments.registry import FIGURES
    print("figure  kind        workload")
    for figure_id in sorted(FIGURES):
        spec, kind = FIGURES[figure_id]
        print(f"{figure_id}   {kind:<10}  {spec.app_name}/{spec.mix_name}")
    print("\nrun one with:  python -m repro figure 5 [--full] [--trace]")
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments.registry import (
        FIGURES,
        normalize_figure_id,
        render_figure,
        run_figure_spec,
    )
    configurations = tuple(getattr(args, "config", None) or ()) or None
    if _reject_unknown_configs(configurations):
        return 2
    try:
        figure_id = normalize_figure_id(args.figure)
    except KeyError:
        print(f"unknown figure {args.figure!r}; try 'python -m repro "
              f"figures'", file=sys.stderr)
        return 2
    print(render_figure(figure_id, full=args.full, jobs=args.jobs,
                        trace=getattr(args, "trace", False),
                        configurations=configurations))
    if getattr(args, "csv", None):
        spec, __ = FIGURES[figure_id]
        run_figure_spec(spec, full=args.full, jobs=args.jobs,
                        configurations=configurations) \
            .save_csv(args.csv)
        print(f"\n[csv written to {args.csv}]")
    return 0


def _cmd_trace(args) -> int:
    from repro.experiments.trace import main as trace_main
    trace_main(args.trace_args)
    return 0


def _cmd_calibrate(__args) -> int:
    from repro.harness.calibrate import calibration_report
    print(calibration_report())
    return 0


def _cmd_bboard(args) -> int:
    from repro.experiments.ext_bboard import render
    print(render(full=args.full, jobs=args.jobs))
    return 0


def _cmd_faults(args) -> int:
    configurations = tuple(args.config) if args.config else None
    if _reject_unknown_configs(configurations):
        return 2
    from repro.experiments.ext_failover import render
    mix_name = args.mix or {"bookstore": "shopping", "auction": "bidding",
                            "bboard": "submission"}[args.app]
    print(render(tier=args.tier, scale=args.scale, app_name=args.app,
                 mix_name=mix_name, seed=args.seed, jobs=args.jobs,
                 configurations=configurations))
    return 0


def _cmd_scale(args) -> int:
    if args.config is not None and _reject_unknown_configs((args.config,)):
        return 2
    from repro.experiments.ext_scaleout import DEFAULT_MIXES, render
    mixes = tuple(args.mix) if args.mix else (
        DEFAULT_MIXES if args.app == "bookstore"
        else ({"auction": ("bidding",),
               "bboard": ("submission",)}[args.app]))
    bases = ({mix: args.config for mix in mixes}
             if args.config is not None else None)
    print(render(scale=args.scale, app_name=args.app, mix_names=mixes,
                 base_configs=bases,
                 replica_counts=(tuple(args.replicas)
                                 if args.replicas else None),
                 seed=args.seed, jobs=args.jobs, trace=args.trace))
    return 0


def _cmd_slo(args) -> int:
    configurations = tuple(args.config) if args.config else None
    if _reject_unknown_configs(configurations):
        return 2
    from repro.experiments.ext_slo import render
    mix_name = args.mix or {"bookstore": "shopping", "auction": "bidding",
                            "bboard": "submission"}[args.app]
    print(render(scale=args.scale, app_name=args.app, mix_name=mix_name,
                 seed=args.seed, jobs=args.jobs,
                 configurations=configurations,
                 chaos=not args.no_chaos, sweep=not args.chaos_only))
    return 0


def _cmd_perf(args) -> int:
    from repro.harness.perf import render_perf, run_perf
    configurations = tuple(args.config) if args.config else None
    if _reject_unknown_configs(configurations):
        return 2
    result = run_perf(figure_id=args.figure, jobs=args.jobs,
                      out_path=args.out, configurations=configurations)
    print(render_perf(result))
    if args.out:
        print(f"\n[perf data written to {args.out}]")
    if not result["parallel_identical_to_serial"]:
        print("ERROR: parallel sweep output differs from serial output",
              file=sys.stderr)
        return 1
    return 0


def _cmd_version(__args) -> int:
    import repro
    print(repro.__version__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Cecchet et al., Middleware 2003")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures") \
        .set_defaults(func=_cmd_figures)

    def add_jobs_argument(cmd_parser) -> None:
        from repro.harness.parallel import default_jobs
        cmd_parser.add_argument(
            "--jobs", type=int, default=default_jobs(), metavar="N",
            help="worker processes for the sweep (default: one per CPU, "
                 "honoring REPRO_JOBS; 1 = exact serial legacy path)")

    figure = sub.add_parser(
        "figure", help="regenerate one figure by id or number")
    figure.add_argument("figure",
                        help="figure id: 6, 06 and fig06 all work")
    figure.add_argument("--full", action="store_true",
                        help="paper-scale grid")
    figure.add_argument("--trace", action="store_true",
                        help="re-run each configuration's peak with "
                             "request tracing; append bottleneck "
                             "attribution")
    figure.add_argument("--csv", metavar="PATH",
                        help="also write the sweep data as CSV")
    figure.add_argument("--config", action="append", metavar="NAME",
                        help="restrict the sweep to one configuration "
                             "(repeatable; default: all six)")
    add_jobs_argument(figure)
    figure.set_defaults(func=_cmd_figure)

    run = sub.add_parser("run",
                         help="regenerate one figure (alias of 'figure')")
    run.add_argument("figure", help="figure id, e.g. fig05")
    run.add_argument("--full", action="store_true",
                     help="paper-scale grid")
    add_jobs_argument(run)
    run.set_defaults(func=_cmd_figure)

    trace = sub.add_parser(
        "trace", help="re-run figure points with request-level tracing "
                      "and print bottleneck attribution")
    trace.add_argument("trace_args", nargs=argparse.REMAINDER,
                       metavar="FIG [options]",
                       help="arguments for the tracer; run 'python -m "
                            "repro trace fig06 --help' for the full list")
    trace.set_defaults(func=_cmd_trace)

    sub.add_parser("calibrate", help="analytic demands vs paper targets") \
        .set_defaults(func=_cmd_calibrate)

    bboard = sub.add_parser("bboard",
                            help="bulletin-board extension experiment")
    bboard.add_argument("--full", action="store_true")
    add_jobs_argument(bboard)
    bboard.set_defaults(func=_cmd_bboard)

    faults = sub.add_parser(
        "faults", help="failover experiment: crash and restart one tier "
                       "mid-run for all six configurations")
    faults.add_argument("--tier", default="db",
                        choices=("web", "servlet", "ejb", "db"),
                        help="tier to crash (default: db)")
    faults.add_argument("--scale", default="quick",
                        choices=("tiny", "quick", "full"))
    faults.add_argument("--app", default="bookstore",
                        choices=("bookstore", "auction", "bboard"))
    faults.add_argument("--mix", default=None,
                        help="workload mix (default: app's headline mix)")
    faults.add_argument("--seed", type=int, default=42)
    faults.add_argument("--config", action="append", metavar="NAME",
                        help="restrict to one configuration "
                             "(repeatable; default: all six)")
    add_jobs_argument(faults)
    faults.set_defaults(func=_cmd_faults)

    scale = sub.add_parser(
        "scale", help="scale-out experiment: peak throughput vs database "
                      "read replicas for CPU-bound and lock-bound mixes")
    scale.add_argument("--app", default="bookstore",
                       choices=("bookstore", "auction", "bboard"))
    scale.add_argument("--mix", action="append", metavar="NAME",
                       help="workload mix (repeatable; default: shopping "
                            "and ordering for the bookstore)")
    scale.add_argument("--config", default=None, metavar="NAME",
                       help="base paper configuration to cluster for "
                            "every mix (default: per-mix choices)")
    scale.add_argument("--replicas", action="append", type=int,
                       metavar="N",
                       help="replica count to sweep (repeatable; "
                            "default: the scale level's grid)")
    scale.add_argument("--scale", default="quick",
                       choices=("tiny", "quick", "full"))
    scale.add_argument("--trace", action="store_true",
                       help="re-run each replica count's peak with "
                            "request tracing; append the bottleneck "
                            "verdict")
    scale.add_argument("--seed", type=int, default=42)
    add_jobs_argument(scale)
    scale.set_defaults(func=_cmd_scale)

    slo = sub.add_parser(
        "slo", help="open-loop overload experiment: goodput/latency vs "
                    "offered load through saturation, plus a flash-"
                    "crowd + replica-crash chaos run")
    slo.add_argument("--scale", default="tiny",
                     choices=("tiny", "quick", "full"))
    slo.add_argument("--app", default="bookstore",
                     choices=("bookstore", "auction", "bboard"))
    slo.add_argument("--mix", default=None,
                     help="workload mix (default: app's headline mix)")
    slo.add_argument("--seed", type=int, default=42)
    slo.add_argument("--config", action="append", metavar="NAME",
                     help="restrict the sweep to one configuration "
                          "(repeatable; default: all six)")
    slo.add_argument("--no-chaos", action="store_true",
                     help="skip the flash-crowd + crash scenario")
    slo.add_argument("--chaos-only", action="store_true",
                     help="run only the chaos scenario")
    add_jobs_argument(slo)
    slo.set_defaults(func=_cmd_slo)

    perf = sub.add_parser(
        "perf", help="time one figure's bench grid serial vs parallel "
                     "and write BENCH_perf.json")
    perf.add_argument("--figure", default="fig05",
                      help="throughput figure id (default: fig05)")
    perf.add_argument("--config", action="append", metavar="NAME",
                      help="restrict to one configuration (repeatable)")
    perf.add_argument("--out", default="BENCH_perf.json",
                      help="output path (default: BENCH_perf.json; "
                           "'' to skip writing)")
    add_jobs_argument(perf)
    perf.set_defaults(func=_cmd_perf)

    sub.add_parser("version", help="print version") \
        .set_defaults(func=_cmd_version)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

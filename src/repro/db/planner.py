"""Query planning: conjunct analysis, access-path and join-order selection.

The planner is deliberately at the sophistication level of MySQL 3.23:
left-deep nested-loop joins in FROM order, single-index access paths
chosen by longest equality prefix, a range path on a sorted index, and an
index-order scan to avoid sorting for ``ORDER BY indexed_col LIMIT n``.
Because nested-loop joins preserve outer order, index-ordered plans stay
valid through joins and support early termination at the LIMIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.db.errors import SqlError
from repro.db.exprs import Resolver, compile_expr, expr_column_refs, expr_has_aggregate
from repro.db.index import HashIndex, SortedIndex
from repro.db.sql import nodes as n
from repro.db.storage import Table


@dataclass
class AccessPath:
    """How one table (alias) is accessed inside the pipeline."""

    alias: str
    table: Table
    kind: str                      # "scan" | "index_eq" | "index_range" | "index_order"
    index: object = None
    # For index_eq on a sorted index whose next column matches the
    # query's ORDER BY: rows come out pre-ordered (MySQL-style
    # "equality prefix + order column" optimization).
    ordered: bool = False
    # For index_eq: functions computing the probe key (env, params) -> value.
    key_fns: Tuple[Callable, ...] = ()
    # For index_range (single leading column):
    low_fn: Optional[Callable] = None
    high_fn: Optional[Callable] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    descending: bool = False
    # Residual single-alias predicate applied right after the fetch.
    filter_fn: Optional[Callable] = None


@dataclass
class SelectPlan:
    paths: List[AccessPath]
    resolver: Resolver
    post_filter: Optional[Callable]
    outer_flags: List[bool]
    # Projection: list of (name, fn) for plain queries; aggregates handled
    # separately by the executor using these descriptors.
    output_names: List[str]
    item_exprs: List[object]
    has_aggregates: bool
    group_fns: List[Callable]
    having_expr: Optional[object]
    order_items: List[Tuple[Callable, bool, Optional[str]]]
    ordered_by_index: bool
    limit_fn: Optional[Callable]
    offset_fn: Optional[Callable]
    distinct: bool
    tables_read: Tuple[str, ...] = ()


@dataclass
class DmlPlan:
    """Plan for UPDATE/DELETE: one access path plus compiled pieces."""

    path: AccessPath
    resolver: Resolver
    assignments: List[Tuple[str, Callable]] = field(default_factory=list)


def split_conjuncts(expr) -> List[object]:
    """Flatten a top-level AND tree into a conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, n.BoolOp) and expr.op == "AND":
        out: List[object] = []
        for op in expr.operands:
            out.extend(split_conjuncts(op))
        return out
    return [expr]


def _aliases_of(expr, resolver: Resolver) -> set:
    aliases = set()
    for ref in expr_column_refs(expr):
        alias, __ = resolver.resolve(ref)
        aliases.add(alias)
    return aliases


def _equality_parts(conjunct) -> Optional[Tuple[n.ColumnRef, object]]:
    """If the conjunct is ``col = expr`` (either side), return (col, expr)."""
    if not (isinstance(conjunct, n.BinaryOp) and conjunct.op == "="):
        return None
    if isinstance(conjunct.left, n.ColumnRef):
        return conjunct.left, conjunct.right
    if isinstance(conjunct.right, n.ColumnRef):
        return conjunct.right, conjunct.left
    return None


_RANGE_OPS = {"<": (False, "high"), "<=": (True, "high"),
              ">": (False, "low"), ">=": (True, "low")}


class Planner:
    """Plans SELECT/UPDATE/DELETE statements against a table catalog."""

    def __init__(self, tables: Dict[str, Table]):
        self.catalog = tables

    def _table(self, name: str) -> Table:
        table = self.catalog.get(name)
        if table is None:
            raise SqlError(f"unknown table {name!r}")
        return table

    # -- SELECT ----------------------------------------------------------------

    def plan_select(self, stmt: n.Select) -> SelectPlan:
        if stmt.table is None:
            raise SqlError("SELECT without FROM is not supported")
        refs = [stmt.table] + [j.table for j in stmt.joins]
        alias_tables: Dict[str, Table] = {}
        for ref in refs:
            if ref.alias in alias_tables:
                raise SqlError(f"duplicate table alias {ref.alias!r}")
            alias_tables[ref.alias] = self._table(ref.name)
        resolver = Resolver(alias_tables)

        outer_aliases = {join.table.alias for join in stmt.joins
                         if join.outer}
        single: Dict[str, List[object]] = {ref.alias: [] for ref in refs}
        multi: List[object] = []
        # WHERE predicates evaluate *after* outer joins, so any WHERE
        # conjunct touching a LEFT-JOINed alias must stay a post-join
        # filter (pushing it into the access path would turn "no match"
        # into "match filtered out" and fabricate NULL rows).  ON
        # conjuncts, by contrast, belong to the join itself.
        post_only: List[object] = []
        for conjunct in split_conjuncts(stmt.where):
            aliases = _aliases_of(conjunct, resolver)
            if aliases & outer_aliases:
                post_only.append(conjunct)
            elif len(aliases) == 1:
                single[next(iter(aliases))].append(conjunct)
            else:
                multi.append(conjunct)
        for join in stmt.joins:
            for conjunct in split_conjuncts(join.condition):
                aliases = _aliases_of(conjunct, resolver)
                if len(aliases) == 1:
                    single[next(iter(aliases))].append(conjunct)
                else:
                    multi.append(conjunct)

        # Index-order opportunity on the driving table.
        order_alias_col = None
        has_aggs = any(
            item.expr is not None and expr_has_aggregate(item.expr)
            for item in stmt.items) or bool(stmt.group_by)
        if stmt.order_by and not has_aggs:
            first = stmt.order_by[0]
            if len(stmt.order_by) == 1 and isinstance(first.expr, n.ColumnRef):
                try:
                    alias, __ = resolver.resolve(first.expr)
                except SqlError:
                    alias = None
                if alias == refs[0].alias:
                    order_alias_col = (first.expr.column, first.descending)

        paths: List[AccessPath] = []
        outer_flags: List[bool] = []
        bound = set()
        for ref_pos, ref in enumerate(refs):
            alias = ref.alias
            table = alias_tables[alias]
            own = list(single[alias])
            join_eq: List[Tuple[str, object]] = []
            if ref_pos > 0:
                remaining = []
                for conjunct in multi:
                    pair = self._bindable_equality(conjunct, resolver,
                                                   alias, bound)
                    if pair is not None:
                        join_eq.append(pair)
                    else:
                        remaining.append(conjunct)
                multi = remaining
            order_hint = order_alias_col if ref_pos == 0 else None
            path = self._choose_path(alias, table, resolver, own, join_eq,
                                     order_hint)
            paths.append(path)
            outer_flags.append(refs[ref_pos] is not stmt.table and
                               stmt.joins[ref_pos - 1].outer)
            bound.add(alias)

        post = None
        post_parts = multi + post_only
        if post_parts:
            post_expr = post_parts[0] if len(post_parts) == 1 else \
                n.BoolOp(op="AND", operands=tuple(post_parts))
            post = compile_expr(post_expr, resolver)

        ordered_by_index = (order_alias_col is not None and
                            (paths[0].kind == "index_order" or
                             paths[0].ordered))

        output_names, item_exprs = self._projection(stmt, alias_tables)

        group_fns = [compile_expr(g, resolver) for g in stmt.group_by]

        order_items = []
        for item in stmt.order_by:
            alias_name = None
            if isinstance(item.expr, n.ColumnRef) and item.expr.table is None \
                    and item.expr.column in output_names:
                # May refer to a projected alias (e.g. aggregate alias).
                try:
                    resolver.resolve(item.expr)
                    fn = compile_expr(item.expr, resolver)
                except SqlError:
                    fn = None
                alias_name = item.expr.column
            else:
                fn = compile_expr(item.expr, resolver) \
                    if not expr_has_aggregate(item.expr) else None
                if fn is None and isinstance(item.expr, n.ColumnRef):
                    alias_name = item.expr.column
            order_items.append((fn, item.descending, alias_name))

        limit_fn = compile_expr(stmt.limit, resolver) if stmt.limit else None
        offset_fn = compile_expr(stmt.offset, resolver) if stmt.offset else None

        return SelectPlan(
            paths=paths, resolver=resolver, post_filter=post,
            outer_flags=outer_flags, output_names=output_names,
            item_exprs=item_exprs, has_aggregates=has_aggs,
            group_fns=group_fns, having_expr=stmt.having,
            order_items=order_items, ordered_by_index=ordered_by_index,
            limit_fn=limit_fn, offset_fn=offset_fn, distinct=stmt.distinct,
            tables_read=tuple(sorted({t.name for t in alias_tables.values()})),
        )

    def _projection(self, stmt: n.Select, alias_tables: Dict[str, Table]):
        names: List[str] = []
        exprs: List[object] = []
        for item in stmt.items:
            if item.star:
                aliases = [item.star_table] if item.star_table else \
                    list(alias_tables)
                for alias in aliases:
                    table = alias_tables.get(alias)
                    if table is None:
                        raise SqlError(f"unknown alias {alias!r} in select *")
                    for col in table.schema.columns:
                        names.append(col.name)
                        exprs.append(n.ColumnRef(table=alias, column=col.name))
            else:
                if item.alias:
                    names.append(item.alias)
                elif isinstance(item.expr, n.ColumnRef):
                    names.append(item.expr.column)
                elif isinstance(item.expr, n.Aggregate):
                    arg = "*" if item.expr.arg is None else "expr"
                    names.append(f"{item.expr.func.lower()}({arg})")
                else:
                    names.append(f"expr{len(names)}")
                exprs.append(item.expr)
        return names, exprs

    def _bindable_equality(self, conjunct, resolver: Resolver, alias: str,
                           bound: set) -> Optional[Tuple[str, object]]:
        """If ``conjunct`` is ``alias.col = <expr over bound aliases>``,
        return (column, other_expr)."""
        if not (isinstance(conjunct, n.BinaryOp) and conjunct.op == "="):
            return None
        for col_side, other_side in ((conjunct.left, conjunct.right),
                                     (conjunct.right, conjunct.left)):
            if not isinstance(col_side, n.ColumnRef):
                continue
            try:
                col_alias, __ = resolver.resolve(col_side)
            except SqlError:
                continue
            if col_alias != alias:
                continue
            other_aliases = _aliases_of(other_side, resolver)
            if other_aliases <= bound:
                return col_side.column, other_side
        return None

    def _choose_path(self, alias: str, table: Table, resolver: Resolver,
                     own_conjuncts: List[object],
                     join_eq: List[Tuple[str, object]],
                     order_hint: Optional[Tuple[str, bool]]) -> AccessPath:
        # Gather equality candidates: column -> value expression.
        eq: Dict[str, object] = {}
        residual: List[object] = []
        ranges: Dict[str, dict] = {}
        for conjunct in own_conjuncts:
            pair = _equality_parts(conjunct)
            if pair is not None:
                col_ref, other = pair
                col_alias, __ = resolver.resolve(col_ref)
                if col_alias == alias and not _aliases_of(other, resolver) \
                        and col_ref.column not in eq:
                    eq[col_ref.column] = other
                    continue
            bound_range = self._range_part(conjunct, resolver, alias)
            if bound_range is not None:
                col, side, inclusive, value_expr = bound_range
                slot = ranges.setdefault(
                    col, {"low": None, "high": None,
                          "low_inc": True, "high_inc": True})
                if slot[side] is None:
                    slot[side] = value_expr
                    slot[f"{side}_inc"] = inclusive
                    continue
            residual.append(conjunct)
        for col, other in join_eq:
            if col not in eq:
                eq[col] = other
            else:
                residual.append(n.BinaryOp(
                    op="=", left=n.ColumnRef(table=alias, column=col),
                    right=other))

        filter_parts = list(residual)

        def build_filter(extra_eq_cols=(), extra_range_cols=()):
            parts = list(filter_parts)
            for col, other in eq.items():
                if col in extra_eq_cols:
                    continue
                parts.append(n.BinaryOp(
                    op="=", left=n.ColumnRef(table=alias, column=col),
                    right=other))
            for col, slot in ranges.items():
                if col in extra_range_cols:
                    continue
                if slot["low"] is not None:
                    op = ">=" if slot["low_inc"] else ">"
                    parts.append(n.BinaryOp(
                        op=op, left=n.ColumnRef(table=alias, column=col),
                        right=slot["low"]))
                if slot["high"] is not None:
                    op = "<=" if slot["high_inc"] else "<"
                    parts.append(n.BinaryOp(
                        op=op, left=n.ColumnRef(table=alias, column=col),
                        right=slot["high"]))
            if not parts:
                return None
            expr = parts[0] if len(parts) == 1 else \
                n.BoolOp(op="AND", operands=tuple(parts))
            return compile_expr(expr, resolver)

        # 1. Longest equality-prefix index.  A hash index only supports
        # full-key probes; a sorted index supports any leading prefix.
        best_index = None
        best_cols: Tuple[str, ...] = ()
        for index in table.indexes.values():
            prefix = []
            for col in index.columns:
                if col in eq:
                    prefix.append(col)
                else:
                    break
            if isinstance(index, HashIndex) and len(prefix) != len(index.columns):
                continue
            if len(prefix) > len(best_cols):
                best_index = index
                best_cols = tuple(prefix)
        if best_index is not None and best_cols:
            key_fns = tuple(compile_expr(eq[c], resolver) for c in best_cols)
            ordered = False
            descending = False
            if order_hint is not None and \
                    isinstance(best_index, SortedIndex) and \
                    len(best_index.columns) > len(best_cols) and \
                    best_index.columns[len(best_cols)] == order_hint[0]:
                ordered = True
                descending = order_hint[1]
            return AccessPath(
                alias=alias, table=table, kind="index_eq", index=best_index,
                key_fns=key_fns, ordered=ordered, descending=descending,
                filter_fn=build_filter(extra_eq_cols=set(best_cols)))

        # 2. Range on a sorted index (single leading column).
        for col, slot in ranges.items():
            index = table.sorted_index_on((col,))
            if index is not None:
                low_fn = compile_expr(slot["low"], resolver) \
                    if slot["low"] is not None else None
                high_fn = compile_expr(slot["high"], resolver) \
                    if slot["high"] is not None else None
                return AccessPath(
                    alias=alias, table=table, kind="index_range", index=index,
                    low_fn=low_fn, high_fn=high_fn,
                    low_inclusive=slot["low_inc"],
                    high_inclusive=slot["high_inc"],
                    filter_fn=build_filter(extra_range_cols={col}))

        # 3. Index-ordered scan for ORDER BY ... LIMIT on the driving table.
        if order_hint is not None:
            col, descending = order_hint
            index = table.sorted_index_on((col,))
            if index is not None:
                return AccessPath(
                    alias=alias, table=table, kind="index_order", index=index,
                    descending=descending, filter_fn=build_filter())

        # 4. Full scan.
        return AccessPath(alias=alias, table=table, kind="scan",
                          filter_fn=build_filter())

    def _range_part(self, conjunct, resolver: Resolver, alias: str):
        """Decompose ``col <op> expr`` / BETWEEN into range-bound parts."""
        if isinstance(conjunct, n.BetweenOp) and \
                isinstance(conjunct.operand, n.ColumnRef) and \
                not conjunct.negated:
            col_alias, __ = resolver.resolve(conjunct.operand)
            if col_alias == alias and not _aliases_of(conjunct.low, resolver) \
                    and not _aliases_of(conjunct.high, resolver):
                # BETWEEN expands to two parts; encode as "low" here and
                # return the high side via recursion trick -- simpler to
                # handle at the call site, so return None and let the
                # caller treat BETWEEN as residual unless split upstream.
                return None
        if not isinstance(conjunct, n.BinaryOp) or conjunct.op not in _RANGE_OPS:
            return None
        inclusive, side = _RANGE_OPS[conjunct.op]
        for col_side, other, flip in ((conjunct.left, conjunct.right, False),
                                      (conjunct.right, conjunct.left, True)):
            if not isinstance(col_side, n.ColumnRef):
                continue
            try:
                col_alias, __ = resolver.resolve(col_side)
            except SqlError:
                continue
            if col_alias != alias or _aliases_of(other, resolver):
                continue
            actual_side = side
            if flip:
                actual_side = "low" if side == "high" else "high"
            return col_side.column, actual_side, inclusive, other
        return None

    # -- UPDATE / DELETE -----------------------------------------------------------

    def plan_update(self, stmt: n.Update) -> DmlPlan:
        table = self._table(stmt.table)
        resolver = Resolver({stmt.table: table})
        path = self._dml_path(stmt.table, table, resolver, stmt.where)
        assignments = [
            (col, compile_expr(expr, resolver))
            for col, expr in stmt.assignments]
        for col, __ in stmt.assignments:
            table.column_pos(col)  # validate
        return DmlPlan(path=path, resolver=resolver, assignments=assignments)

    def plan_delete(self, stmt: n.Delete) -> DmlPlan:
        table = self._table(stmt.table)
        resolver = Resolver({stmt.table: table})
        path = self._dml_path(stmt.table, table, resolver, stmt.where)
        return DmlPlan(path=path, resolver=resolver)

    def _dml_path(self, alias: str, table: Table, resolver: Resolver,
                  where) -> AccessPath:
        conjuncts = split_conjuncts(where)
        return self._choose_path(alias, table, resolver, conjuncts, [], None)

"""Hash and sorted indexes over table rows.

Keys are tuples of column values; row ids are slot numbers in the table's
row array.  ``None`` never enters an index key comparison problem because
keys containing ``None`` are kept in a side bucket reachable only by
IS NULL probes (matching MySQL's behaviour that ``col = NULL`` never
matches).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Optional

from repro.db.errors import IntegrityError


class HashIndex:
    """Equality-only index: dict from key tuple to row-id list."""

    __slots__ = ("name", "columns", "unique", "_map", "_null_rows")

    def __init__(self, name: str, columns: tuple, unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._map: dict = {}
        self._null_rows: list = []

    def insert(self, key: tuple, rowid: int) -> None:
        if any(v is None for v in key):
            self._null_rows.append(rowid)
            return
        bucket = self._map.get(key)
        if bucket is None:
            self._map[key] = [rowid]
        elif self.unique:
            raise IntegrityError(
                f"duplicate key {key!r} in unique index {self.name!r}")
        else:
            bucket.append(rowid)

    def delete(self, key: tuple, rowid: int) -> None:
        if any(v is None for v in key):
            try:
                self._null_rows.remove(rowid)
            except ValueError:
                pass
            return
        bucket = self._map.get(key)
        if bucket is not None:
            try:
                bucket.remove(rowid)
            except ValueError:
                pass
            if not bucket:
                del self._map[key]

    def lookup(self, key: tuple) -> list:
        if any(v is None for v in key):
            return []
        return self._map.get(key, [])

    def null_rows(self) -> list:
        return list(self._null_rows)

    def __len__(self) -> int:
        return sum(len(b) for b in self._map.values()) + len(self._null_rows)


class SortedIndex:
    """Order-preserving index: a sorted array of (key, rowid) pairs.

    Supports equality probes, half-open/closed range scans, and ordered
    iteration in both directions (for ORDER BY ... LIMIT plans).
    """

    __slots__ = ("name", "columns", "unique", "_entries", "_null_rows")

    def __init__(self, name: str, columns: tuple, unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._entries: list = []   # sorted list of (key, rowid)
        self._null_rows: list = []

    def insert(self, key: tuple, rowid: int) -> None:
        if any(v is None for v in key):
            self._null_rows.append(rowid)
            return
        pos = bisect.bisect_left(self._entries, (key, -1))
        if self.unique and pos < len(self._entries) and self._entries[pos][0] == key:
            raise IntegrityError(
                f"duplicate key {key!r} in unique index {self.name!r}")
        bisect.insort(self._entries, (key, rowid))

    def delete(self, key: tuple, rowid: int) -> None:
        if any(v is None for v in key):
            try:
                self._null_rows.remove(rowid)
            except ValueError:
                pass
            return
        pos = bisect.bisect_left(self._entries, (key, rowid))
        if pos < len(self._entries) and self._entries[pos] == (key, rowid):
            self._entries.pop(pos)

    def lookup(self, key: tuple) -> list:
        if any(v is None for v in key):
            return []
        lo = bisect.bisect_left(self._entries, (key, -1))
        out = []
        entries = self._entries
        n = len(entries)
        while lo < n and entries[lo][0] == key:
            out.append(entries[lo][1])
            lo += 1
        return out

    def range(self, low: Optional[tuple], high: Optional[tuple],
              low_inclusive: bool = True, high_inclusive: bool = True) -> Iterator[int]:
        """Yield row ids with low <= key <= high (bounds optional)."""
        if (low is not None and any(v is None for v in low)) or \
                (high is not None and any(v is None for v in high)):
            return
        entries = self._entries
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(entries, (low, -1))
        else:
            lo = bisect.bisect_right(entries, (low, float("inf")))
        if high is None:
            hi = len(entries)
        elif high_inclusive:
            hi = bisect.bisect_right(entries, (high, float("inf")))
        else:
            hi = bisect.bisect_left(entries, (high, -1))
        for pos in range(lo, hi):
            yield entries[pos][1]

    def scan(self, descending: bool = False) -> Iterator[int]:
        """Ordered iteration over all non-null keys."""
        if descending:
            for pos in range(len(self._entries) - 1, -1, -1):
                yield self._entries[pos][1]
        else:
            for __, rowid in self._entries:
                yield rowid

    def null_rows(self) -> list:
        return list(self._null_rows)

    def __len__(self) -> int:
        return len(self._entries) + len(self._null_rows)


def make_index(kind: str, name: str, columns: Iterable[str], unique: bool):
    columns = tuple(columns)
    if kind == "hash":
        return HashIndex(name, columns, unique)
    return SortedIndex(name, columns, unique)

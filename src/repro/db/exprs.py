"""Expression compilation: AST -> Python closures.

Expressions are compiled once per (statement, schema) and cached with the
statement plan, so per-row evaluation is a plain closure call.  The
environment is a dict mapping table alias -> current row (a list); SQL
NULL is Python ``None`` and any comparison against it is false, which is
the practically-relevant slice of three-valued logic for the benchmark
queries.
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Dict, Optional

from repro.db.errors import SqlError
from repro.db.sql import nodes as n

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_CMP = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_LIKE_CACHE: Dict[str, re.Pattern] = {}


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to a compiled regex (cached)."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


class Resolver:
    """Resolves column references to (alias, position) pairs."""

    def __init__(self, tables: Dict[str, object]):
        # alias -> Table (storage object with column_pos / schema)
        self.tables = tables

    def resolve(self, ref: n.ColumnRef):
        if ref.table is not None:
            table = self.tables.get(ref.table)
            if table is None:
                raise SqlError(f"unknown table alias {ref.table!r}")
            return ref.table, table.column_pos(ref.column)
        hits = [
            (alias, table.column_pos(ref.column))
            for alias, table in self.tables.items()
            if table.schema.has_column(ref.column)]
        if not hits:
            raise SqlError(f"unknown column {ref.column!r}")
        if len(hits) > 1:
            raise SqlError(f"ambiguous column {ref.column!r}")
        return hits[0]


def compile_expr(expr, resolver: Resolver) -> Callable:
    """Compile to ``fn(env, params) -> value``."""
    if isinstance(expr, n.Literal):
        value = expr.value
        return lambda env, params: value
    if isinstance(expr, n.Param):
        index = expr.index
        return lambda env, params: params[index]
    if isinstance(expr, n.ColumnRef):
        alias, pos = resolver.resolve(expr)
        return lambda env, params: env[alias][pos]
    if isinstance(expr, n.BinaryOp):
        left = compile_expr(expr.left, resolver)
        right = compile_expr(expr.right, resolver)
        if expr.op in _ARITH:
            fn = _ARITH[expr.op]

            def arith(env, params):
                lv = left(env, params)
                rv = right(env, params)
                if lv is None or rv is None:
                    return None
                return fn(lv, rv)
            return arith
        fn = _CMP[expr.op]

        def compare(env, params):
            lv = left(env, params)
            rv = right(env, params)
            if lv is None or rv is None:
                return False
            return fn(lv, rv)
        return compare
    if isinstance(expr, n.BoolOp):
        compiled = [compile_expr(op, resolver) for op in expr.operands]
        if expr.op == "AND":
            def conj(env, params):
                return all(fn(env, params) for fn in compiled)
            return conj

        def disj(env, params):
            return any(fn(env, params) for fn in compiled)
        return disj
    if isinstance(expr, n.NotOp):
        inner = compile_expr(expr.operand, resolver)
        return lambda env, params: not inner(env, params)
    if isinstance(expr, n.LikeOp):
        operand = compile_expr(expr.operand, resolver)
        pattern = compile_expr(expr.pattern, resolver)
        negated = expr.negated

        def like(env, params):
            value = operand(env, params)
            pat = pattern(env, params)
            if value is None or pat is None:
                return False
            hit = like_to_regex(pat).match(str(value)) is not None
            return hit != negated
        return like
    if isinstance(expr, n.InOp):
        operand = compile_expr(expr.operand, resolver)
        choices = [compile_expr(c, resolver) for c in expr.choices]
        negated = expr.negated

        def contains(env, params):
            value = operand(env, params)
            if value is None:
                return False
            hit = any(value == c(env, params) for c in choices)
            return hit != negated
        return contains
    if isinstance(expr, n.BetweenOp):
        operand = compile_expr(expr.operand, resolver)
        low = compile_expr(expr.low, resolver)
        high = compile_expr(expr.high, resolver)
        negated = expr.negated

        def between(env, params):
            value = operand(env, params)
            lo = low(env, params)
            hi = high(env, params)
            if value is None or lo is None or hi is None:
                return False
            hit = lo <= value <= hi
            return hit != negated
        return between
    if isinstance(expr, n.IsNullOp):
        operand = compile_expr(expr.operand, resolver)
        negated = expr.negated

        def is_null(env, params):
            return (operand(env, params) is None) != negated
        return is_null
    if isinstance(expr, n.Aggregate):
        raise SqlError("aggregate used outside of a select list / HAVING")
    raise SqlError(f"cannot compile expression node {expr!r}")


def expr_has_aggregate(expr) -> bool:
    """True if the expression tree contains an Aggregate node."""
    if isinstance(expr, n.Aggregate):
        return True
    if isinstance(expr, n.BinaryOp):
        return expr_has_aggregate(expr.left) or expr_has_aggregate(expr.right)
    if isinstance(expr, n.BoolOp):
        return any(expr_has_aggregate(op) for op in expr.operands)
    if isinstance(expr, (n.NotOp, n.IsNullOp)):
        return expr_has_aggregate(expr.operand)
    if isinstance(expr, n.LikeOp):
        return expr_has_aggregate(expr.operand)
    if isinstance(expr, n.BetweenOp):
        return any(expr_has_aggregate(e) for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, n.InOp):
        return expr_has_aggregate(expr.operand) or \
            any(expr_has_aggregate(c) for c in expr.choices)
    return False


def expr_column_refs(expr, out: Optional[list] = None) -> list:
    """Collect every ColumnRef in the tree (pre-order)."""
    if out is None:
        out = []
    if isinstance(expr, n.ColumnRef):
        out.append(expr)
    elif isinstance(expr, n.BinaryOp):
        expr_column_refs(expr.left, out)
        expr_column_refs(expr.right, out)
    elif isinstance(expr, n.BoolOp):
        for op in expr.operands:
            expr_column_refs(op, out)
    elif isinstance(expr, (n.NotOp, n.IsNullOp)):
        expr_column_refs(expr.operand, out)
    elif isinstance(expr, n.LikeOp):
        expr_column_refs(expr.operand, out)
        expr_column_refs(expr.pattern, out)
    elif isinstance(expr, n.BetweenOp):
        expr_column_refs(expr.operand, out)
        expr_column_refs(expr.low, out)
        expr_column_refs(expr.high, out)
    elif isinstance(expr, n.InOp):
        expr_column_refs(expr.operand, out)
        for c in expr.choices:
            expr_column_refs(c, out)
    elif isinstance(expr, n.Aggregate) and expr.arg is not None:
        expr_column_refs(expr.arg, out)
    return out

"""An in-memory relational database engine with a SQL subset.

This is the reproduction's stand-in for MySQL 3.23 with MyISAM tables: a
real (if small) engine -- lexer, parser, planner, executor, hash and
sorted indexes -- plus the two properties of MyISAM that drive the paper's
results:

* **table-level locking** with writer priority (no row locks, no MVCC),
  including explicit ``LOCK TABLES``/``UNLOCK TABLES``;
* a **cost model** that prices every executed query in CPU-seconds against
  declared nominal table statistics, so the performance layer can charge
  realistic service demands even when the dataset is scaled down.
"""

from repro.db.engine import Database, ResultSet
from repro.db.schema import Column, ColumnType, IndexDef, TableSchema, TableStats
from repro.db.errors import DatabaseError, LockError, SqlError
from repro.db.cost import CostModel, QueryCost
from repro.db.driver import (
    Connection,
    JdbcLikeDriver,
    NativeDriver,
    QueryRecord,
    RecordingConnection,
)

__all__ = [
    "Database",
    "ResultSet",
    "Column",
    "ColumnType",
    "IndexDef",
    "TableSchema",
    "TableStats",
    "DatabaseError",
    "SqlError",
    "LockError",
    "CostModel",
    "QueryCost",
    "Connection",
    "NativeDriver",
    "JdbcLikeDriver",
    "RecordingConnection",
    "QueryRecord",
]

"""Client-side database drivers.

Two driver personalities mirror the paper's stacks:

* :class:`NativeDriver` -- the PHP module's C-level MySQL driver: low
  per-call overhead, charged to the *web server* CPU (PHP runs in the
  Apache process).
* :class:`JdbcLikeDriver` -- the interpreted type-4 JDBC driver used by
  the servlet and EJB containers: noticeably higher per-call and
  per-byte overhead, charged to the *container* CPU.

The overhead constants do not affect functional results; they are read
by the profiling pass to build service demands.  A
:class:`RecordingConnection` wraps any connection and captures a
:class:`QueryRecord` per statement -- the raw material for interaction
profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.db.engine import Database, ResultSet, Session


@dataclass(frozen=True)
class DriverOverheads:
    """Client-side CPU cost per call, charged to the caller's machine."""

    per_call: float            # marshalling + protocol handling
    per_result_byte: float     # result decoding
    wire_overhead_bytes: int   # protocol framing per round trip


NATIVE_OVERHEADS = DriverOverheads(
    per_call=0.05e-3, per_result_byte=2.0e-9, wire_overhead_bytes=60)

JDBC_OVERHEADS = DriverOverheads(
    per_call=0.22e-3, per_result_byte=14.0e-9, wire_overhead_bytes=110)

# The EJB container reuses pooled prepared statements, so its per-call
# driver overhead is lower than a servlet's ad hoc statement handling.
EJB_JDBC_OVERHEADS = DriverOverheads(
    per_call=0.10e-3, per_result_byte=14.0e-9, wire_overhead_bytes=110)


@dataclass
class QueryRecord:
    """One recorded statement execution (profiling capture)."""

    sql: str
    kind: str
    cpu_seconds: float           # priced server-side cost
    result_bytes: int
    rows_returned: int
    rows_changed: int
    tables_read: tuple
    tables_written: tuple
    lock_set: tuple = ()         # (table, mode) pairs for LOCK TABLES
    origin: str = ""             # code site that issued it (see trace.py)
    access: str = ""             # access-path summary, e.g. "items:index(5)"


class Connection:
    """A session-scoped handle to a :class:`Database`."""

    def __init__(self, database: Database, overheads: DriverOverheads):
        self.database = database
        self.overheads = overheads
        self.session: Session = database.open_session()
        self.closed = False

    def execute(self, sql: str, params: Sequence = ()) -> ResultSet:
        if self.closed:
            raise RuntimeError("connection is closed")
        return self.database.execute(sql, params, self.session)

    @property
    def last_insert_id(self) -> Optional[int]:
        return self.session.last_insert_id

    def close(self) -> None:
        self.session.locks.clear()
        self.closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NativeDriver:
    """PHP-style native driver: cheap calls, ad hoc interface."""

    name = "native"
    overheads = NATIVE_OVERHEADS

    def __init__(self, database: Database):
        self.database = database

    def connect(self) -> Connection:
        return Connection(self.database, self.overheads)


class JdbcLikeDriver:
    """JDBC-style driver: portable interface, interpreted marshalling."""

    name = "jdbc"
    overheads = JDBC_OVERHEADS

    def __init__(self, database: Database):
        self.database = database

    def connect(self) -> Connection:
        return Connection(self.database, self.overheads)


class ConnectionPool:
    """A fixed-size pool of reusable connections (functional layer).

    The EJB container and servlet engine both pool connections in the
    paper's stacks; functionally a pool just bounds and reuses sessions.
    """

    def __init__(self, driver, size: int = 8):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.driver = driver
        self.size = size
        self._idle: List[Connection] = []
        self._outstanding = 0

    def acquire(self) -> Connection:
        if self._idle:
            self._outstanding += 1
            return self._idle.pop()
        if self._outstanding >= self.size:
            raise RuntimeError("connection pool exhausted")
        self._outstanding += 1
        return self.driver.connect()

    def release(self, conn: Connection) -> None:
        if conn.closed:
            self._outstanding -= 1
            return
        conn.session.locks.clear()
        self._idle.append(conn)
        self._outstanding -= 1


#: Statement kinds safe to serve from a read replica.
_READ_KINDS = frozenset({"select", "explain"})


class ReadWriteSplitConnection:
    """Routes statements over one primary and N replica connections.

    The functional counterpart of the cluster's replicated database
    (:mod:`repro.cluster.replication`): plain SELECTs rotate across the
    replica connections; every write, DDL statement, and ``LOCK
    TABLES`` span executes on the primary.  Read-your-writes is
    conservative -- after the first write the session's reads *stay* on
    the primary until :meth:`sync_replicas` declares the replicas
    caught up (in the simulation the timing layer makes that call; here
    it is explicit so the splitting logic is testable on its own).
    """

    def __init__(self, primary: Connection,
                 replicas: Sequence[Connection]):
        self.primary = primary
        self.replicas = list(replicas)
        self._cursor = 0
        self._dirty = False      # wrote since the last sync_replicas()
        self._locked = False     # inside a LOCK TABLES span
        self.reads_split = 0     # statements served by a replica

    def execute(self, sql: str, params: Sequence = ()) -> ResultSet:
        conn = self._pick(sql)
        result = conn.execute(sql, params)
        if conn is self.primary:
            if result.kind == "lock":
                self._locked = True
            elif result.kind == "unlock":
                self._locked = False
            elif result.kind not in _READ_KINDS:
                self._dirty = True
        else:
            self.reads_split += 1
        return result

    def _pick(self, sql: str) -> Connection:
        if not self.replicas or self._dirty or self._locked:
            return self.primary
        head = sql.lstrip().split(None, 1)
        keyword = head[0].upper() if head else ""
        if keyword in ("SELECT", "EXPLAIN"):
            conn = self.replicas[self._cursor % len(self.replicas)]
            self._cursor += 1
            return conn
        return self.primary

    def sync_replicas(self) -> None:
        """Replicas have applied every shipped write: reads may leave
        the primary again."""
        self._dirty = False

    @property
    def last_insert_id(self) -> Optional[int]:
        return self.primary.last_insert_id

    @property
    def overheads(self) -> DriverOverheads:
        return self.primary.overheads

    def close(self) -> None:
        self.primary.close()
        for conn in self.replicas:
            conn.close()


class CircuitBreakerConnection:
    """Wraps a connection with fail-fast semantics (functional layer).

    The functional counterpart of the simulation-side breaker in
    :mod:`repro.overload.degradation`: outcomes of the last ``window``
    statements are tracked; once the failure fraction reaches
    ``trip_threshold`` (with at least ``min_calls`` observed), further
    statements raise :class:`~repro.faults.errors.CircuitOpenError`
    immediately without touching the database, until :meth:`probe`
    lets one through again (the timing layer decides *when* to probe --
    here the transition is explicit so the logic is testable alone).
    """

    def __init__(self, inner: Connection, window: int = 20,
                 min_calls: int = 10, trip_threshold: float = 0.5):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls}")
        if not 0 < trip_threshold <= 1:
            raise ValueError(f"trip_threshold must be in (0, 1], "
                             f"got {trip_threshold}")
        self.inner = inner
        self.window = window
        self.min_calls = min_calls
        self.trip_threshold = trip_threshold
        self.open = False
        self.fast_fails = 0
        self._outcomes: List[bool] = []

    def execute(self, sql: str, params: Sequence = ()) -> ResultSet:
        from repro.faults.errors import CircuitOpenError
        if self.open:
            self.fast_fails += 1
            raise CircuitOpenError("database circuit open")
        try:
            result = self.inner.execute(sql, params)
        except Exception:
            self._record(False)
            raise
        self._record(True)
        return result

    def _record(self, ok: bool) -> None:
        self._outcomes.append(ok)
        if len(self._outcomes) > self.window:
            del self._outcomes[0]
        if len(self._outcomes) >= self.min_calls:
            failures = sum(1 for good in self._outcomes if not good)
            if failures / len(self._outcomes) >= self.trip_threshold:
                self.open = True
                self._outcomes.clear()

    def probe(self, sql: str, params: Sequence = ()) -> ResultSet:
        """Half-open probe: execute one statement past the open breaker;
        success closes it, failure keeps it open."""
        try:
            result = self.inner.execute(sql, params)
        except Exception:
            self.open = True
            raise
        self.open = False
        self._outcomes.clear()
        return result

    @property
    def last_insert_id(self) -> Optional[int]:
        return self.inner.last_insert_id

    @property
    def overheads(self) -> DriverOverheads:
        return self.inner.overheads

    def close(self) -> None:
        self.inner.close()


class RecordingConnection:
    """Wraps a connection, capturing a QueryRecord per statement."""

    def __init__(self, inner: Connection):
        self.inner = inner
        self.records: List[QueryRecord] = []

    def execute(self, sql: str, params: Sequence = ()) -> ResultSet:
        result = self.inner.execute(sql, params)
        ast_locks: tuple = ()
        if result.kind == "lock":
            ast_locks = tuple(self.inner.session.locks.items())
        self.records.append(QueryRecord(
            sql=sql,
            kind=result.kind,
            cpu_seconds=result.cost.cpu_seconds,
            result_bytes=result.cost.result_bytes,
            rows_returned=len(result.rows),
            rows_changed=result.stats.rows_changed,
            tables_read=tuple(result.stats.tables_read),
            tables_written=tuple(result.stats.tables_written),
            lock_set=ast_locks,
            access=result.stats.access_summary(),
        ))
        return result

    @property
    def last_insert_id(self) -> Optional[int]:
        return self.inner.last_insert_id

    @property
    def overheads(self) -> DriverOverheads:
        return self.inner.overheads

    @property
    def database(self) -> Database:
        return self.inner.database

    @property
    def session(self) -> Session:
        return self.inner.session

    def close(self) -> None:
        self.inner.close()

"""Database error hierarchy."""


class DatabaseError(Exception):
    """Base class for every engine error."""


class SqlError(DatabaseError):
    """Lexing, parsing, binding, or semantic error in a statement."""


class LockError(DatabaseError):
    """Illegal lock usage (e.g. touching an unlocked table while holding
    explicit LOCK TABLES locks, which MySQL rejects)."""


class IntegrityError(DatabaseError):
    """Primary-key or unique-index violation."""

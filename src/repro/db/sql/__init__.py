"""SQL front-end: lexer, AST nodes, and recursive-descent parser."""

from repro.db.sql.lexer import Token, tokenize
from repro.db.sql.parser import parse

__all__ = ["Token", "tokenize", "parse"]

"""SQL tokenizer.

Produces a flat token list; keywords are case-insensitive, identifiers
keep their case, strings accept single or double quotes with backslash
escapes, and both ``?`` (JDBC style) and ``%s`` (PHP/MySQL-extension
style) denote positional parameters -- both middleware stacks in the
paper are represented, so both spellings are accepted everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.db.errors import SqlError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "ASC",
    "DESC", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT", "ON", "AS", "AND",
    "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL", "INSERT", "INTO",
    "VALUES", "UPDATE", "SET", "DELETE", "LOCK", "UNLOCK", "TABLES", "READ",
    "WRITE", "CREATE", "TABLE", "INDEX", "UNIQUE", "PRIMARY", "KEY",
    "AUTO_INCREMENT", "USING", "HASH", "DROP", "INT", "INTEGER", "FLOAT",
    "VARCHAR",
    "TEXT", "DATETIME", "COUNT", "SUM", "MIN", "MAX", "AVG", "BEGIN",
    "COMMIT", "ROLLBACK", "HAVING", "EXPLAIN",
}

PUNCT = {
    "(": "LPAREN", ")": "RPAREN", ",": "COMMA", "*": "STAR", "=": "EQ",
    "<": "LT", ">": "GT", "+": "PLUS", "-": "MINUS", "/": "SLASH",
    ".": "DOT", ";": "SEMI", "?": "PARAM",
}


@dataclass(frozen=True)
class Token:
    kind: str        # KEYWORD, IDENT, INT, FLOAT, STRING, PARAM, or punct kind
    value: object
    pos: int

    def is_kw(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.value in names


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "%" and sql.startswith("%s", i):
            tokens.append(Token("PARAM", "%s", i))
            i += 2
            continue
        if ch in ("'", '"'):
            i = _string(sql, i, tokens)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            i = _number(sql, i, tokens)
            continue
        if ch.isalpha() or ch == "_" or ch == "`":
            i = _word(sql, i, tokens)
            continue
        two = sql[i:i + 2]
        if two in ("<=", ">=", "!=", "<>"):
            kind = {"<=": "LE", ">=": "GE", "!=": "NE", "<>": "NE"}[two]
            tokens.append(Token(kind, two, i))
            i += 2
            continue
        if ch in PUNCT:
            tokens.append(Token(PUNCT[ch], ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", None, n))
    return tokens


def _string(sql: str, i: int, tokens: List[Token]) -> int:
    quote = sql[i]
    start = i
    i += 1
    parts: List[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "\\" and i + 1 < n:
            parts.append(sql[i + 1])
            i += 2
            continue
        if ch == quote:
            # MySQL doubles the quote to escape it.
            if i + 1 < n and sql[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            tokens.append(Token("STRING", "".join(parts), start))
            return i + 1
        parts.append(ch)
        i += 1
    raise SqlError(f"unterminated string starting at position {start}")


def _number(sql: str, i: int, tokens: List[Token]) -> int:
    start = i
    n = len(sql)
    seen_dot = False
    while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
        if sql[i] == ".":
            # A trailing dot followed by non-digit is punctuation, not float.
            if i + 1 >= n or not sql[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    text = sql[start:i]
    if seen_dot:
        tokens.append(Token("FLOAT", float(text), start))
    else:
        tokens.append(Token("INT", int(text), start))
    return i


def _word(sql: str, i: int, tokens: List[Token]) -> int:
    start = i
    n = len(sql)
    if sql[i] == "`":
        end = sql.find("`", i + 1)
        if end < 0:
            raise SqlError(f"unterminated quoted identifier at {i}")
        tokens.append(Token("IDENT", sql[i + 1:end], start))
        return end + 1
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    word = sql[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        tokens.append(Token("KEYWORD", upper, start))
    else:
        tokens.append(Token("IDENT", word, start))
    return i

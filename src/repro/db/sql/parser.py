"""Recursive-descent parser for the SQL subset.

The subset covers everything the two benchmark applications issue: joined
SELECTs with aggregates, grouping, ordering and limits; INSERT/UPDATE/
DELETE; explicit LOCK TABLES/UNLOCK TABLES (the MyISAM consistency idiom
the paper's PHP and non-sync servlet code rely on); CREATE TABLE/INDEX;
and no-op transaction statements.
"""

from __future__ import annotations

from typing import List, Optional

from repro.db.errors import SqlError
from repro.db.schema import Column, ColumnType, IndexDef, TableSchema
from repro.db.sql.lexer import Token, tokenize
from repro.db.sql import nodes as n

AGG_FUNCS = ("COUNT", "SUM", "MIN", "MAX", "AVG")
COMPARISONS = {"EQ": "=", "NE": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.next()
        return None

    def accept_kw(self, *names: str) -> Optional[Token]:
        if self.peek().is_kw(*names):
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise SqlError(
                f"expected {kind} but found {tok.value!r} at {tok.pos} "
                f"in: {self.sql!r}")
        return tok

    def expect_kw(self, *names: str) -> Token:
        tok = self.next()
        if not tok.is_kw(*names):
            raise SqlError(
                f"expected {'/'.join(names)} but found {tok.value!r} at "
                f"{tok.pos} in: {self.sql!r}")
        return tok

    def ident(self) -> str:
        tok = self.next()
        if tok.kind == "IDENT":
            return tok.value
        # Permit non-reserved-feeling keywords as identifiers where
        # unambiguous (e.g. a column named "comment" vs COMMIT is fine,
        # but KEY/READ etc. appear as column names in period schemas).
        if tok.kind == "KEYWORD" and tok.value in ("KEY", "READ", "WRITE", "TEXT"):
            return tok.value.lower()
        raise SqlError(
            f"expected identifier but found {tok.value!r} at {tok.pos} "
            f"in: {self.sql!r}")

    # -- entry point -------------------------------------------------------------

    def parse_statement(self):
        tok = self.peek()
        if tok.is_kw("EXPLAIN"):
            self.next()
            inner = self.parse_statement()
            return n.Explain(inner=inner)
        if tok.is_kw("SELECT"):
            stmt = self.select()
        elif tok.is_kw("INSERT"):
            stmt = self.insert()
        elif tok.is_kw("UPDATE"):
            stmt = self.update()
        elif tok.is_kw("DELETE"):
            stmt = self.delete()
        elif tok.is_kw("LOCK"):
            stmt = self.lock_tables()
        elif tok.is_kw("UNLOCK"):
            self.next()
            self.expect_kw("TABLES")
            stmt = n.UnlockTables()
        elif tok.is_kw("CREATE"):
            stmt = self.create()
        elif tok.is_kw("DROP"):
            stmt = self.drop()
        elif tok.is_kw("BEGIN", "COMMIT", "ROLLBACK"):
            stmt = n.Transaction(self.next().value)
        else:
            raise SqlError(f"cannot parse statement: {self.sql!r}")
        self.accept("SEMI")
        tok = self.peek()
        if tok.kind != "EOF":
            raise SqlError(
                f"trailing tokens from {tok.value!r} at {tok.pos} "
                f"in: {self.sql!r}")
        return stmt

    # -- SELECT ------------------------------------------------------------------

    def select(self) -> n.Select:
        self.expect_kw("SELECT")
        distinct = bool(self.accept_kw("DISTINCT"))
        items = [self.select_item()]
        while self.accept("COMMA"):
            items.append(self.select_item())

        table = None
        joins: List[n.Join] = []
        if self.accept_kw("FROM"):
            table = self.table_ref()
            while True:
                if self.accept("COMMA"):
                    joins.append(n.Join(self.table_ref(), condition=None))
                    continue
                outer = False
                if self.peek().is_kw("LEFT"):
                    self.next()
                    outer = True
                elif self.peek().is_kw("INNER"):
                    self.next()
                elif not self.peek().is_kw("JOIN"):
                    break
                self.expect_kw("JOIN")
                ref = self.table_ref()
                self.expect_kw("ON")
                cond = self.expr()
                joins.append(n.Join(ref, cond, outer=outer))

        where = self.expr() if self.accept_kw("WHERE") else None

        group_by: List[object] = []
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            group_by.append(self.expr())
            while self.accept("COMMA"):
                group_by.append(self.expr())

        having = self.expr() if self.accept_kw("HAVING") else None

        order_by: List[n.OrderItem] = []
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            order_by.append(self.order_item())
            while self.accept("COMMA"):
                order_by.append(self.order_item())

        limit = offset = None
        if self.accept_kw("LIMIT"):
            first = self.limit_value()
            if self.accept("COMMA"):       # LIMIT offset, count
                offset = first
                limit = self.limit_value()
            elif self.accept_kw("OFFSET"):
                limit = first
                offset = self.limit_value()
            else:
                limit = first

        return n.Select(items=items, table=table, joins=joins, where=where,
                        group_by=group_by, having=having, order_by=order_by,
                        limit=limit, offset=offset, distinct=distinct)

    def select_item(self) -> n.SelectItem:
        tok = self.peek()
        if tok.kind == "STAR":
            self.next()
            return n.SelectItem(expr=None, star=True)
        if tok.kind == "IDENT" and self.peek(1).kind == "DOT" \
                and self.peek(2).kind == "STAR":
            table = self.next().value
            self.next()
            self.next()
            return n.SelectItem(expr=None, star=True, star_table=table)
        expr = self.expr()
        alias = None
        if self.accept_kw("AS"):
            alias = self.ident()
        elif self.peek().kind == "IDENT":
            alias = self.next().value
        return n.SelectItem(expr=expr, alias=alias)

    def table_ref(self) -> n.TableRef:
        name = self.ident()
        alias = name
        if self.accept_kw("AS"):
            alias = self.ident()
        elif self.peek().kind == "IDENT":
            alias = self.next().value
        return n.TableRef(name=name, alias=alias)

    def order_item(self) -> n.OrderItem:
        expr = self.expr()
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        else:
            self.accept_kw("ASC")
        return n.OrderItem(expr=expr, descending=descending)

    def limit_value(self):
        tok = self.next()
        if tok.kind == "INT":
            return n.Literal(tok.value)
        if tok.kind == "PARAM":
            self.param_count += 1
            return n.Param(self.param_count - 1)
        raise SqlError(f"bad LIMIT value {tok.value!r} in: {self.sql!r}")

    # -- DML ---------------------------------------------------------------------

    def insert(self) -> n.Insert:
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.ident()
        columns: List[str] = []
        if self.accept("LPAREN"):
            columns.append(self.ident())
            while self.accept("COMMA"):
                columns.append(self.ident())
            self.expect("RPAREN")
        self.expect_kw("VALUES")
        self.expect("LPAREN")
        values = [self.expr()]
        while self.accept("COMMA"):
            values.append(self.expr())
        self.expect("RPAREN")
        if columns and len(columns) != len(values):
            raise SqlError(
                f"INSERT has {len(columns)} columns but {len(values)} values")
        return n.Insert(table=table, columns=columns, values=values)

    def update(self) -> n.Update:
        self.expect_kw("UPDATE")
        table = self.ident()
        self.expect_kw("SET")
        assignments = [self.assignment()]
        while self.accept("COMMA"):
            assignments.append(self.assignment())
        where = self.expr() if self.accept_kw("WHERE") else None
        return n.Update(table=table, assignments=assignments, where=where)

    def assignment(self):
        col = self.ident()
        self.expect("EQ")
        return (col, self.expr())

    def delete(self) -> n.Delete:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.ident()
        where = self.expr() if self.accept_kw("WHERE") else None
        return n.Delete(table=table, where=where)

    def lock_tables(self) -> n.LockTables:
        self.expect_kw("LOCK")
        self.expect_kw("TABLES")
        locks = []
        while True:
            table = self.ident()
            mode = self.expect_kw("READ", "WRITE").value
            locks.append((table, mode))
            if not self.accept("COMMA"):
                break
        return n.LockTables(locks=locks)

    # -- DDL ---------------------------------------------------------------------

    def create(self):
        self.expect_kw("CREATE")
        if self.accept_kw("TABLE"):
            return self.create_table()
        unique = bool(self.accept_kw("UNIQUE"))
        self.expect_kw("INDEX")
        return self.create_index(unique)

    def drop(self):
        self.expect_kw("DROP")
        if self.accept_kw("TABLE"):
            return n.DropTable(name=self.ident())
        self.expect_kw("INDEX")
        name = self.ident()
        self.expect_kw("ON")
        return n.DropIndex(table=self.ident(), name=name)

    def create_table(self) -> n.CreateTable:
        name = self.ident()
        self.expect("LPAREN")
        columns: List[Column] = []
        primary_key = None
        auto_increment = False
        while True:
            if self.peek().is_kw("PRIMARY"):
                self.next()
                self.expect_kw("KEY")
                self.expect("LPAREN")
                primary_key = self.ident()
                self.expect("RPAREN")
            else:
                col_name = self.ident()
                col_type = self.column_type()
                nullable = True
                default = None
                while True:
                    if self.accept_kw("NOT"):
                        self.expect_kw("NULL")
                        nullable = False
                    elif self.accept_kw("NULL"):
                        nullable = True
                    elif self.accept_kw("AUTO_INCREMENT"):
                        auto_increment = True
                        primary_key = primary_key or col_name
                    elif self.peek().is_kw("PRIMARY"):
                        self.next()
                        self.expect_kw("KEY")
                        primary_key = col_name
                    elif self.peek().kind == "IDENT" and \
                            self.peek().value.upper() == "DEFAULT":
                        self.next()
                        default = self.literal_value()
                    else:
                        break
                columns.append(Column(name=col_name, type=col_type,
                                      nullable=nullable, default=default))
            if not self.accept("COMMA"):
                break
        self.expect("RPAREN")
        schema = TableSchema(name=name, columns=columns,
                             primary_key=primary_key,
                             auto_increment=auto_increment)
        return n.CreateTable(schema=schema)

    def column_type(self) -> ColumnType:
        tok = self.next()
        if tok.is_kw("INT", "INTEGER"):
            return ColumnType.INT
        if tok.is_kw("FLOAT"):
            return ColumnType.FLOAT
        if tok.is_kw("VARCHAR"):
            if self.accept("LPAREN"):
                self.expect("INT")
                self.expect("RPAREN")
            return ColumnType.VARCHAR
        if tok.is_kw("TEXT"):
            return ColumnType.TEXT
        if tok.is_kw("DATETIME"):
            return ColumnType.DATETIME
        raise SqlError(f"unknown column type {tok.value!r} in: {self.sql!r}")

    def create_index(self, unique: bool) -> n.CreateIndex:
        name = self.ident()
        self.expect_kw("ON")
        table = self.ident()
        self.expect("LPAREN")
        columns = [self.ident()]
        while self.accept("COMMA"):
            columns.append(self.ident())
        self.expect("RPAREN")
        kind = "sorted"
        if self.accept_kw("USING"):
            self.expect_kw("HASH")
            kind = "hash"
        index = IndexDef(name=name, columns=tuple(columns),
                         unique=unique, kind=kind)
        return n.CreateIndex(table=table, index=index)

    def literal_value(self):
        tok = self.next()
        if tok.kind in ("INT", "FLOAT", "STRING"):
            return tok.value
        if tok.is_kw("NULL"):
            return None
        raise SqlError(f"expected literal, found {tok.value!r}")

    # -- expressions -------------------------------------------------------------

    def expr(self):
        return self.or_expr()

    def or_expr(self):
        operands = [self.and_expr()]
        while self.accept_kw("OR"):
            operands.append(self.and_expr())
        if len(operands) == 1:
            return operands[0]
        return n.BoolOp(op="OR", operands=tuple(operands))

    def and_expr(self):
        operands = [self.not_expr()]
        while self.accept_kw("AND"):
            operands.append(self.not_expr())
        if len(operands) == 1:
            return operands[0]
        return n.BoolOp(op="AND", operands=tuple(operands))

    def not_expr(self):
        if self.accept_kw("NOT"):
            return n.NotOp(self.not_expr())
        return self.predicate()

    def predicate(self):
        left = self.additive()
        tok = self.peek()
        if tok.kind in COMPARISONS:
            self.next()
            right = self.additive()
            return n.BinaryOp(op=COMPARISONS[tok.kind], left=left, right=right)
        if tok.is_kw("IS"):
            self.next()
            negated = bool(self.accept_kw("NOT"))
            self.expect_kw("NULL")
            return n.IsNullOp(operand=left, negated=negated)
        negated = False
        if tok.is_kw("NOT"):
            nxt = self.peek(1)
            if nxt.is_kw("LIKE", "IN", "BETWEEN"):
                self.next()
                negated = True
                tok = self.peek()
        if tok.is_kw("LIKE"):
            self.next()
            pattern = self.primary()
            return n.LikeOp(operand=left, pattern=pattern, negated=negated)
        if tok.is_kw("IN"):
            self.next()
            self.expect("LPAREN")
            choices = [self.expr()]
            while self.accept("COMMA"):
                choices.append(self.expr())
            self.expect("RPAREN")
            return n.InOp(operand=left, choices=tuple(choices), negated=negated)
        if tok.is_kw("BETWEEN"):
            self.next()
            low = self.additive()
            self.expect_kw("AND")
            high = self.additive()
            return n.BetweenOp(operand=left, low=low, high=high, negated=negated)
        return left

    def additive(self):
        left = self.multiplicative()
        while True:
            tok = self.peek()
            if tok.kind == "PLUS":
                self.next()
                left = n.BinaryOp(op="+", left=left, right=self.multiplicative())
            elif tok.kind == "MINUS":
                self.next()
                left = n.BinaryOp(op="-", left=left, right=self.multiplicative())
            else:
                return left

    def multiplicative(self):
        left = self.unary()
        while True:
            tok = self.peek()
            if tok.kind == "STAR":
                self.next()
                left = n.BinaryOp(op="*", left=left, right=self.unary())
            elif tok.kind == "SLASH":
                self.next()
                left = n.BinaryOp(op="/", left=left, right=self.unary())
            else:
                return left

    def unary(self):
        if self.accept("MINUS"):
            operand = self.unary()
            if isinstance(operand, n.Literal) and \
                    isinstance(operand.value, (int, float)):
                return n.Literal(-operand.value)
            return n.BinaryOp(op="-", left=n.Literal(0), right=operand)
        return self.primary()

    def primary(self):
        tok = self.peek()
        if tok.kind in ("INT", "FLOAT", "STRING"):
            self.next()
            return n.Literal(tok.value)
        if tok.is_kw("NULL"):
            self.next()
            return n.Literal(None)
        if tok.kind == "PARAM":
            self.next()
            self.param_count += 1
            return n.Param(self.param_count - 1)
        if tok.kind == "LPAREN":
            self.next()
            inner = self.expr()
            self.expect("RPAREN")
            return inner
        if tok.is_kw(*AGG_FUNCS):
            func = self.next().value
            self.expect("LPAREN")
            if self.accept("STAR"):
                agg = n.Aggregate(func=func, arg=None)
            else:
                distinct = bool(self.accept_kw("DISTINCT"))
                agg = n.Aggregate(func=func, arg=self.expr(), distinct=distinct)
            self.expect("RPAREN")
            return agg
        if tok.kind == "IDENT" or tok.kind == "KEYWORD":
            name = self.ident()
            if self.peek().kind == "DOT":
                self.next()
                column = self.ident()
                return n.ColumnRef(table=name, column=column)
            return n.ColumnRef(table=None, column=name)
        raise SqlError(
            f"unexpected token {tok.value!r} at {tok.pos} in: {self.sql!r}")


def parse(sql: str):
    """Parse a single SQL statement; returns (ast, parameter_count)."""
    parser = _Parser(sql)
    stmt = parser.parse_statement()
    return stmt, parser.param_count

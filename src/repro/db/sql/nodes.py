"""AST node definitions for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ----------------------------------------------------------------- expressions

@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference (``t.col`` or ``col``)."""
    table: Optional[str]
    column: str


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class Param:
    """A positional parameter (``?`` or ``%s``)."""
    index: int


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic or comparison: op in (+ - * / = != < <= > >=)."""
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class BoolOp:
    """AND / OR over two or more operands."""
    op: str                # "AND" | "OR"
    operands: Tuple


@dataclass(frozen=True)
class NotOp:
    operand: object


@dataclass(frozen=True)
class LikeOp:
    operand: object
    pattern: object        # Literal or Param
    negated: bool = False


@dataclass(frozen=True)
class InOp:
    operand: object
    choices: Tuple
    negated: bool = False


@dataclass(frozen=True)
class BetweenOp:
    operand: object
    low: object
    high: object
    negated: bool = False


@dataclass(frozen=True)
class IsNullOp:
    operand: object
    negated: bool = False


@dataclass(frozen=True)
class Aggregate:
    """COUNT/SUM/MIN/MAX/AVG; arg is None for COUNT(*)."""
    func: str
    arg: Optional[object]
    distinct: bool = False


# ------------------------------------------------------------------ statements

@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: Optional[str] = None
    star: bool = False             # bare * or t.*
    star_table: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: object              # expression (normally col = col)
    outer: bool = False            # LEFT JOIN


@dataclass(frozen=True)
class OrderItem:
    expr: object
    descending: bool = False


@dataclass
class Select:
    items: List[SelectItem]
    table: Optional[TableRef]
    joins: List[Join] = field(default_factory=list)
    where: Optional[object] = None
    group_by: List[object] = field(default_factory=list)
    having: Optional[object] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[object] = None      # Literal/Param or None
    offset: Optional[object] = None
    distinct: bool = False


@dataclass
class Insert:
    table: str
    columns: List[str]
    values: List[object]                # expressions


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, object]]
    where: Optional[object] = None


@dataclass
class Delete:
    table: str
    where: Optional[object] = None


@dataclass
class LockTables:
    """LOCK TABLES t1 READ, t2 WRITE, ... -- (table, mode) pairs."""
    locks: List[Tuple[str, str]]        # mode is "READ" or "WRITE"


@dataclass
class UnlockTables:
    pass


@dataclass
class CreateTable:
    schema: object                      # a TableSchema


@dataclass
class CreateIndex:
    table: str
    index: object                       # an IndexDef


@dataclass
class DropTable:
    name: str


@dataclass
class DropIndex:
    """DROP INDEX name ON table (MySQL syntax)."""
    table: str
    name: str


@dataclass
class Transaction:
    """BEGIN / COMMIT / ROLLBACK -- no-ops under MyISAM, kept for parity."""
    action: str


@dataclass
class Explain:
    """EXPLAIN <statement>: returns the chosen plan instead of rows."""
    inner: object

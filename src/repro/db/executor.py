"""Plan execution with row-accounting statistics.

The executor reports, per query, how many rows it *examined* split by
access kind (scanned vs index-probed).  The cost model uses that split:
scanned rows scale linearly with table size while index-probe result
sizes stay constant when the data generator keeps per-entity relation
sizes fixed, which lets a scaled-down dataset produce full-scale costs.

Sorting with mixed ASC/DESC directions uses repeated stable sorts from
the least- to the most-significant key, so no comparator inversion
tricks are needed.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.db.errors import SqlError
from repro.db.exprs import Resolver, compile_expr
from repro.db.index import SortedIndex
from repro.db.planner import AccessPath, DmlPlan, SelectPlan
from repro.db.sql import nodes as n


@dataclass
class ExecStats:
    """Row accounting for one executed statement.

    ``rows_examined_index`` is keyed by ``(table, lead_column)`` so the
    cost model can apply per-column cardinality scaling; ``lead_column``
    is the first column of the index the path used.
    """

    rows_examined_scan: Dict[str, int] = field(default_factory=dict)
    rows_examined_index: Dict[tuple, int] = field(default_factory=dict)
    rows_returned: int = 0
    rows_changed: int = 0
    sort_rows: int = 0
    tables_read: tuple = ()
    tables_written: tuple = ()

    def total_examined(self) -> int:
        return (sum(self.rows_examined_scan.values()) +
                sum(self.rows_examined_index.values()))

    def indexed_for_table(self, table_name: str) -> int:
        """Total indexed-examined rows for one table (test helper)."""
        return sum(count for (table, __), count
                   in self.rows_examined_index.items() if table == table_name)

    def access_summary(self) -> str:
        """Compact access-path description, e.g. ``"items:index(5) authors:scan(100)"``.

        Stamped onto QueryRecords so trace tooling can show *how* a
        query touched its tables without re-planning the statement.
        """
        parts = []
        for (table, __), count in sorted(self.rows_examined_index.items()):
            parts.append(f"{table}:index({count})")
        for table, count in sorted(self.rows_examined_scan.items()):
            parts.append(f"{table}:scan({count})")
        return " ".join(parts)

    def bump(self, path_kind: str, table_name: str, count: int = 1,
             lead_column: Optional[str] = None) -> None:
        if path_kind == "scan":
            self.rows_examined_scan[table_name] = \
                self.rows_examined_scan.get(table_name, 0) + count
        else:
            key = (table_name, lead_column)
            self.rows_examined_index[key] = \
                self.rows_examined_index.get(key, 0) + count


def _sort_key(value):
    """Total-orderable key: None first, then numbers, then strings."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (1, value, "")
    return (2, 0, str(value))


def _prefix_rowids(index: SortedIndex, key: tuple) -> list:
    """Row ids whose sorted-index key starts with ``key``."""
    entries = index._entries
    lo = bisect.bisect_left(entries, (key, -1))
    out = []
    klen = len(key)
    while lo < len(entries) and entries[lo][0][:klen] == key:
        out.append(entries[lo][1])
        lo += 1
    return out


class SelectExecutor:
    """Executes a SelectPlan; one instance per call (stats are per-call)."""

    def __init__(self, plan: SelectPlan, params: tuple):
        self.plan = plan
        self.params = params
        self.stats = ExecStats(tables_read=plan.tables_read)

    # -- access paths ---------------------------------------------------------

    def _fetch(self, path: AccessPath, env: dict):
        """Yield rows of ``path.table`` matching the path, updating env."""
        table = path.table
        stats = self.stats
        params = self.params
        if path.kind == "index_eq":
            key = tuple(fn(env, params) for fn in path.key_fns)
            if len(key) < len(path.index.columns) and \
                    isinstance(path.index, SortedIndex):
                rowids = _prefix_rowids(path.index, key)
                if path.ordered and path.descending:
                    rowids.reverse()
            else:
                rowids = path.index.lookup(key)
        elif path.kind == "index_range":
            low = (path.low_fn(env, params),) if path.low_fn else None
            high = (path.high_fn(env, params),) if path.high_fn else None
            rowids = path.index.range(low, high, path.low_inclusive,
                                      path.high_inclusive)
        elif path.kind == "index_order":
            rowids = path.index.scan(descending=path.descending)
        else:
            rowids = table.scan()
        kind = "scan" if path.kind == "scan" else "index"
        # Ordered accesses are LIMIT-bounded by early termination, so
        # their examined count is limit-driven, not selectivity-driven:
        # record them unscaled (lead None) for the cost model.
        if path.kind == "index_order" or path.ordered or \
                path.index is None:
            lead = None
        else:
            lead = path.index.columns[0]
        filter_fn = path.filter_fn
        alias = path.alias
        for rowid in rowids:
            row = table.get_row(rowid)
            if row is None:
                continue
            stats.bump(kind, table.name, lead_column=lead)
            env[alias] = row
            if filter_fn is None or filter_fn(env, params):
                yield row

    def _join_rows(self):
        """Generate fully-joined environments (dicts alias -> row)."""
        plan = self.plan
        params = self.params
        paths = plan.paths
        outer = plan.outer_flags

        def recurse(depth: int, env: dict):
            if depth == len(paths):
                if plan.post_filter is None or plan.post_filter(env, params):
                    yield env
                return
            path = paths[depth]
            matched = False
            for __ in self._fetch(path, env):
                matched = True
                yield from recurse(depth + 1, env)
            if not matched and outer[depth]:
                env[path.alias] = [None] * len(path.table.schema.columns)
                yield from recurse(depth + 1, env)
            env.pop(path.alias, None)

        yield from recurse(0, {})

    # -- aggregation ------------------------------------------------------------

    def _run_aggregate(self) -> List[tuple]:
        plan = self.plan
        params = self.params
        resolver = plan.resolver

        agg_nodes: List[n.Aggregate] = []

        def collect(expr):
            if isinstance(expr, n.Aggregate):
                if expr not in agg_nodes:
                    agg_nodes.append(expr)
            elif isinstance(expr, n.BinaryOp):
                collect(expr.left)
                collect(expr.right)

        for expr in plan.item_exprs:
            collect(expr)
        if plan.having_expr is not None:
            collect(plan.having_expr)

        arg_fns = {agg: compile_expr(agg.arg, resolver)
                   for agg in agg_nodes if agg.arg is not None}

        group_state: Dict[tuple, dict] = {}
        group_env: Dict[tuple, dict] = {}
        for env in self._join_rows():
            key = tuple(fn(env, params) for fn in plan.group_fns)
            state = group_state.get(key)
            if state is None:
                state = {agg: _new_acc(agg) for agg in agg_nodes}
                group_state[key] = state
                group_env[key] = {alias: list(row)
                                  for alias, row in env.items()}
            for agg in agg_nodes:
                if agg.arg is None:
                    state[agg][0] += 1        # COUNT(*)
                else:
                    _accumulate(state[agg], agg, arg_fns[agg](env, params))

        if not group_state and not plan.group_fns:
            group_state[()] = {agg: _new_acc(agg) for agg in agg_nodes}
            group_env[()] = {}

        rows = []
        for key, state in group_state.items():
            env = group_env[key]
            values = {agg: _finalize(state[agg], agg) for agg in agg_nodes}
            if plan.having_expr is not None:
                if not _eval_with_aggs(plan.having_expr, env, params,
                                       resolver, values):
                    continue
            rows.append(tuple(
                _eval_with_aggs(expr, env, params, resolver, values)
                for expr in plan.item_exprs))
        return rows

    # -- ordering / limiting ------------------------------------------------------

    def _limits(self):
        params = self.params
        limit = offset = None
        if self.plan.limit_fn is not None:
            limit = int(self.plan.limit_fn({}, params))
        if self.plan.offset_fn is not None:
            offset = int(self.plan.offset_fn({}, params))
        return limit, offset or 0

    def _sort_projected(self, rows: List[tuple]) -> List[tuple]:
        """Sort by order items that name projected columns."""
        plan = self.plan
        names = plan.output_names
        self.stats.sort_rows += len(rows)
        for fn, descending, alias_name in reversed(plan.order_items):
            if alias_name is None or alias_name not in names:
                raise SqlError(
                    "ORDER BY in an aggregate query must reference a "
                    "projected column alias")
            pos = names.index(alias_name)
            rows.sort(key=lambda row, pos=pos: _sort_key(row[pos]),
                      reverse=descending)
        return rows

    # -- main -------------------------------------------------------------------

    def run(self) -> List[tuple]:
        plan = self.plan
        params = self.params
        limit, offset = self._limits()

        if plan.has_aggregates:
            rows = self._run_aggregate()
            if plan.order_items:
                rows = self._sort_projected(rows)
            if limit is not None or offset:
                rows = rows[offset:] if limit is None \
                    else rows[offset:offset + limit]
            self.stats.rows_returned = len(rows)
            return rows

        item_fns = [compile_expr(e, plan.resolver) for e in plan.item_exprs]
        needs_sort = bool(plan.order_items) and not plan.ordered_by_index
        order_fns = []
        if needs_sort:
            for fn, descending, alias_name in plan.order_items:
                if fn is None:
                    raise SqlError("unresolvable ORDER BY expression")
                order_fns.append((fn, descending))

        early_stop = (plan.ordered_by_index and not plan.distinct and
                      limit is not None)
        want = None if limit is None else limit + offset

        keyed: List[tuple] = []
        for env in self._join_rows():
            projected = tuple(fn(env, params) for fn in item_fns)
            if needs_sort:
                keys = tuple(fn(env, params) for fn, __ in order_fns)
                keyed.append((keys, projected))
            else:
                keyed.append((None, projected))
                if early_stop and len(keyed) >= want:
                    break

        if needs_sort:
            self.stats.sort_rows += len(keyed)
            for pos in range(len(order_fns) - 1, -1, -1):
                descending = order_fns[pos][1]
                keyed.sort(key=lambda kr, pos=pos: _sort_key(kr[0][pos]),
                           reverse=descending)

        rows = [projected for __, projected in keyed]
        if plan.distinct:
            rows = list(dict.fromkeys(rows))
        rows = rows[offset:] if limit is None else rows[offset:offset + limit]
        self.stats.rows_returned = len(rows)
        return rows


def _new_acc(agg: n.Aggregate) -> list:
    # [count, sum, min, max, distinct_set]
    return [0, 0.0, None, None, set() if agg.distinct else None]


def _accumulate(acc: list, agg: n.Aggregate, value) -> None:
    if value is None:
        return
    if agg.distinct:
        if value in acc[4]:
            return
        acc[4].add(value)
    acc[0] += 1
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        acc[1] += value
    if acc[2] is None or _sort_key(value) < _sort_key(acc[2]):
        acc[2] = value
    if acc[3] is None or _sort_key(value) > _sort_key(acc[3]):
        acc[3] = value


def _finalize(acc: list, agg: n.Aggregate):
    count, total, minimum, maximum, __ = acc
    if agg.func == "COUNT":
        return count
    if agg.func == "SUM":
        return total if count else None
    if agg.func == "MIN":
        return minimum
    if agg.func == "MAX":
        return maximum
    if agg.func == "AVG":
        return total / count if count else None
    raise SqlError(f"unknown aggregate {agg.func!r}")


def _eval_with_aggs(expr, env, params, resolver: Resolver, agg_values: dict):
    """Evaluate an expression that may contain (pre-computed) aggregates."""
    if isinstance(expr, n.Aggregate):
        return agg_values[expr]
    if isinstance(expr, n.BinaryOp):
        left = _eval_with_aggs(expr.left, env, params, resolver, agg_values)
        right = _eval_with_aggs(expr.right, env, params, resolver, agg_values)
        if expr.op in ("+", "-", "*", "/"):
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right if right else None
        if left is None or right is None:
            return False
        return {"=": left == right, "!=": left != right, "<": left < right,
                "<=": left <= right, ">": left > right,
                ">=": left >= right}[expr.op]
    return compile_expr(expr, resolver)(env, params)


# ------------------------------------------------------------------ DML

def run_update(plan: DmlPlan, params: tuple) -> ExecStats:
    stats = ExecStats(tables_written=(plan.path.table.name,),
                      tables_read=(plan.path.table.name,))
    table = plan.path.table
    env: dict = {}
    # Collect matching rowids first so the update does not see its own
    # writes (halloween protection).
    matches = [rowid for rowid, __ in _iter_path(plan.path, env, params, stats)]
    alias = plan.path.alias
    for rowid in matches:
        row = table.get_row(rowid)
        if row is None:
            continue
        env[alias] = row
        changes = {col: fn(env, params) for col, fn in plan.assignments}
        table.update_row(rowid, changes)
        stats.rows_changed += 1
    return stats


def run_delete(plan: DmlPlan, params: tuple) -> ExecStats:
    stats = ExecStats(tables_written=(plan.path.table.name,),
                      tables_read=(plan.path.table.name,))
    table = plan.path.table
    env: dict = {}
    matches = [rowid for rowid, __ in _iter_path(plan.path, env, params, stats)]
    for rowid in matches:
        table.delete_row(rowid)
        stats.rows_changed += 1
    return stats


def _iter_path(path: AccessPath, env: dict, params: tuple, stats: ExecStats):
    """Yield (rowid, row) pairs matching a single-table access path."""
    table = path.table
    if path.kind == "index_eq":
        key = tuple(fn(env, params) for fn in path.key_fns)
        if len(key) < len(path.index.columns) and \
                isinstance(path.index, SortedIndex):
            rowids = _prefix_rowids(path.index, key)
        else:
            rowids = path.index.lookup(key)
    elif path.kind == "index_range":
        low = (path.low_fn(env, params),) if path.low_fn else None
        high = (path.high_fn(env, params),) if path.high_fn else None
        rowids = path.index.range(low, high, path.low_inclusive,
                                  path.high_inclusive)
    elif path.kind == "index_order":
        rowids = path.index.scan(descending=path.descending)
    else:
        rowids = table.scan()
    kind = "scan" if path.kind == "scan" else "index"
    lead = path.index.columns[0] if path.index is not None else None
    for rowid in list(rowids):
        row = table.get_row(rowid)
        if row is None:
            continue
        stats.bump(kind, table.name, lead_column=lead)
        env[path.alias] = row
        if path.filter_fn is None or path.filter_fn(env, params):
            yield rowid, row

"""The Database facade: catalog, plan cache, sessions, explicit locks.

The functional engine executes statements immediately (it is
single-threaded); explicit ``LOCK TABLES`` state is tracked per session
and *enforced* the way MySQL enforces it -- while a session holds any
explicit locks, touching an unlocked table (or writing a table locked
only for READ) is an error.  This catches application code whose lock
statements do not cover its queries, which is precisely the bug class
the paper's sync-servlet rewrite had to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.db.cost import CostModel, QueryCost, TableScale, ZERO_COST
from repro.db.errors import LockError, SqlError
from repro.db.executor import ExecStats, SelectExecutor, run_delete, run_update
from repro.db.exprs import Resolver, compile_expr
from repro.db.planner import Planner
from repro.db.schema import IndexDef, TableSchema
from repro.db.sql import nodes as n
from repro.db.sql.parser import parse
from repro.db.storage import Table


@dataclass
class ResultSet:
    """Outcome of one executed statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[tuple] = field(default_factory=list)
    stats: ExecStats = field(default_factory=ExecStats)
    cost: QueryCost = ZERO_COST
    last_insert_id: Optional[int] = None
    kind: str = "select"

    @property
    def rowcount(self) -> int:
        if self.kind == "select":
            return len(self.rows)
        return self.stats.rows_changed

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class Session:
    """Per-connection state: explicit lock set and last insert id."""

    __slots__ = ("locks", "last_insert_id")

    def __init__(self):
        self.locks: Dict[str, str] = {}
        self.last_insert_id: Optional[int] = None


@dataclass
class _Prepared:
    """A parsed + planned statement, cached by SQL text."""

    ast: object
    kind: str
    plan: object = None
    insert_fns: Optional[list] = None
    param_count: int = 0


class Database:
    """An in-memory database instance."""

    def __init__(self, name: str = "db", cost_model: Optional[CostModel] = None):
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.cost_model = cost_model or CostModel()
        self._plan_cache: Dict[str, _Prepared] = {}
        self._planner = Planner(self.tables)
        self.queries_executed = 0
        # Cumulative priced server-side CPU over all statements -- a
        # cheap cross-check for trace-derived DB busy time.
        self.priced_cpu_seconds = 0.0

    # -- catalog -----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise SqlError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        self._plan_cache.clear()
        return table

    def create_index(self, table_name: str, index: IndexDef) -> None:
        """Add an index; cached plans are invalidated so queries that
        could now use it are re-planned on next execution."""
        self.table(table_name).create_index(index)
        self._plan_cache.clear()

    def drop_index(self, table_name: str, index_name: str) -> None:
        """Drop an index; cached plans that chose it are invalidated."""
        self.table(table_name).drop_index(index_name)
        self._plan_cache.clear()

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise SqlError(f"no such table {name!r}")
        del self.tables[name]
        self._plan_cache.clear()

    def table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise SqlError(f"no such table {name!r}")
        return table

    def load_rows(self, table_name: str, rows: Sequence[dict]) -> int:
        """Bulk-load dictionaries (data generators use this)."""
        table = self.table(table_name)
        for row in rows:
            table.insert(row)
        return len(rows)

    def scale_context(self) -> Dict[str, TableScale]:
        """Per-table scaling context for the cost model."""
        ctx: Dict[str, TableScale] = {}
        for name, table in self.tables.items():
            stats = table.schema.stats
            ctx[name] = TableScale(nominal=stats.nominal_rows,
                                   loaded=len(table),
                                   distinct=stats.distinct_values)
        return ctx

    def open_session(self) -> Session:
        return Session()

    # -- statement preparation ------------------------------------------------------

    def _prepare(self, sql: str) -> _Prepared:
        prepared = self._plan_cache.get(sql)
        if prepared is not None:
            return prepared
        ast, param_count = parse(sql)
        if isinstance(ast, n.Select):
            prepared = _Prepared(ast=ast, kind="select",
                                 plan=self._planner.plan_select(ast),
                                 param_count=param_count)
        elif isinstance(ast, n.Update):
            prepared = _Prepared(ast=ast, kind="update",
                                 plan=self._planner.plan_update(ast),
                                 param_count=param_count)
        elif isinstance(ast, n.Delete):
            prepared = _Prepared(ast=ast, kind="delete",
                                 plan=self._planner.plan_delete(ast),
                                 param_count=param_count)
        elif isinstance(ast, n.Insert):
            table = self.table(ast.table)
            resolver = Resolver({ast.table: table})
            fns = [compile_expr(v, resolver) for v in ast.values]
            prepared = _Prepared(ast=ast, kind="insert", insert_fns=fns,
                                 param_count=param_count)
        elif isinstance(ast, n.LockTables):
            prepared = _Prepared(ast=ast, kind="lock", param_count=param_count)
        elif isinstance(ast, n.UnlockTables):
            prepared = _Prepared(ast=ast, kind="unlock", param_count=param_count)
        elif isinstance(ast, n.CreateTable):
            prepared = _Prepared(ast=ast, kind="create_table",
                                 param_count=param_count)
        elif isinstance(ast, n.CreateIndex):
            prepared = _Prepared(ast=ast, kind="create_index",
                                 param_count=param_count)
        elif isinstance(ast, n.DropTable):
            prepared = _Prepared(ast=ast, kind="drop_table",
                                 param_count=param_count)
        elif isinstance(ast, n.DropIndex):
            prepared = _Prepared(ast=ast, kind="drop_index",
                                 param_count=param_count)
        elif isinstance(ast, n.Transaction):
            prepared = _Prepared(ast=ast, kind="txn", param_count=param_count)
        elif isinstance(ast, n.Explain):
            inner = ast.inner
            if isinstance(inner, n.Select):
                plan = self._planner.plan_select(inner)
            elif isinstance(inner, n.Update):
                plan = self._planner.plan_update(inner)
            elif isinstance(inner, n.Delete):
                plan = self._planner.plan_delete(inner)
            else:
                raise SqlError("EXPLAIN supports SELECT/UPDATE/DELETE only")
            prepared = _Prepared(ast=ast, kind="explain", plan=plan,
                                 param_count=param_count)
        else:  # pragma: no cover - parser covers the statement space
            raise SqlError(f"unsupported statement: {sql!r}")
        # DDL invalidates the cache, so only cache DML/queries.
        if prepared.kind not in ("create_table", "create_index",
                                 "drop_table", "drop_index"):
            self._plan_cache[sql] = prepared
        return prepared

    # -- lock enforcement ------------------------------------------------------------

    def _check_locks(self, session: Session, read: Sequence[str],
                     written: Sequence[str]) -> None:
        if not session.locks:
            return
        for table in read:
            if table not in session.locks:
                raise LockError(
                    f"table {table!r} was not locked with LOCK TABLES")
        for table in written:
            if session.locks.get(table) != "WRITE":
                raise LockError(
                    f"table {table!r} was not locked for WRITE")

    # -- execution --------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence = (),
                session: Optional[Session] = None) -> ResultSet:
        """Parse (cached), plan (cached), and run one statement."""
        result = self._execute_statement(sql, params, session)
        self.priced_cpu_seconds += result.cost.cpu_seconds
        return result

    def _execute_statement(self, sql: str, params: Sequence = (),
                           session: Optional[Session] = None) -> ResultSet:
        prepared = self._prepare(sql)
        params = tuple(params)
        if len(params) != prepared.param_count:
            raise SqlError(
                f"statement takes {prepared.param_count} parameters, "
                f"got {len(params)}: {sql!r}")
        self.queries_executed += 1
        session = session or _EPHEMERAL_SESSION
        kind = prepared.kind
        if kind == "select":
            return self._run_select(prepared, params, session)
        if kind == "insert":
            return self._run_insert(prepared, params, session)
        if kind == "update":
            self._check_locks(session, (prepared.ast.table,),
                              (prepared.ast.table,))
            stats = run_update(prepared.plan, params)
            cost = self.cost_model.price(stats, self.scale_context())
            return ResultSet(stats=stats, cost=cost, kind="update",
                             last_insert_id=session.last_insert_id)
        if kind == "delete":
            self._check_locks(session, (prepared.ast.table,),
                              (prepared.ast.table,))
            stats = run_delete(prepared.plan, params)
            cost = self.cost_model.price(stats, self.scale_context())
            return ResultSet(stats=stats, cost=cost, kind="delete",
                             last_insert_id=session.last_insert_id)
        if kind == "lock":
            if session.locks:
                # MySQL releases previously-held locks implicitly.
                session.locks.clear()
            for table, mode in prepared.ast.locks:
                self.table(table)  # must exist
                session.locks[table] = mode
            cost = self.cost_model.price(
                ExecStats(), self.scale_context(), lock_statements=1)
            return ResultSet(kind="lock", cost=cost)
        if kind == "unlock":
            session.locks.clear()
            cost = self.cost_model.price(
                ExecStats(), self.scale_context(), lock_statements=1)
            return ResultSet(kind="unlock", cost=cost)
        if kind == "create_table":
            self.create_table(prepared.ast.schema)
            return ResultSet(kind="create_table")
        if kind == "create_index":
            self.create_index(prepared.ast.table, prepared.ast.index)
            return ResultSet(kind="create_index")
        if kind == "drop_table":
            self.drop_table(prepared.ast.name)
            return ResultSet(kind="drop_table")
        if kind == "drop_index":
            self.drop_index(prepared.ast.table, prepared.ast.name)
            return ResultSet(kind="drop_index")
        if kind == "txn":
            # MyISAM: BEGIN/COMMIT/ROLLBACK are accepted no-ops.
            return ResultSet(kind="txn")
        if kind == "explain":
            return self._run_explain(prepared)
        raise SqlError(f"unsupported statement kind {kind!r}")  # pragma: no cover

    def _run_select(self, prepared: _Prepared, params: tuple,
                    session: Session) -> ResultSet:
        plan = prepared.plan
        self._check_locks(session, plan.tables_read, ())
        executor = SelectExecutor(plan, params)
        rows = executor.run()
        result_bytes = _estimate_result_bytes(rows)
        cost = self.cost_model.price(executor.stats, self.scale_context(),
                                     result_bytes=result_bytes)
        return ResultSet(columns=list(plan.output_names), rows=rows,
                         stats=executor.stats, cost=cost, kind="select",
                         last_insert_id=session.last_insert_id)

    def _run_insert(self, prepared: _Prepared, params: tuple,
                    session: Session) -> ResultSet:
        ast = prepared.ast
        self._check_locks(session, (), (ast.table,))
        table = self.table(ast.table)
        values = [fn({}, params) for fn in prepared.insert_fns]
        if ast.columns:
            mapping = dict(zip(ast.columns, values))
        else:
            names = table.schema.column_names()
            if len(values) != len(names):
                raise SqlError(
                    f"INSERT into {ast.table!r} expects {len(names)} values, "
                    f"got {len(values)}")
            mapping = dict(zip(names, values))
        rowid = table.insert(mapping)
        stats = ExecStats(rows_changed=1, tables_written=(ast.table,))
        if table.schema.auto_increment:
            pk_pos = table.column_pos(table.schema.primary_key)
            session.last_insert_id = table.get_row(rowid)[pk_pos]
        cost = self.cost_model.price(stats, self.scale_context())
        return ResultSet(stats=stats, cost=cost, kind="insert",
                         last_insert_id=session.last_insert_id)


    def _run_explain(self, prepared: _Prepared) -> ResultSet:
        """Describe the chosen access plan, one row per table access."""
        plan = prepared.plan
        paths = plan.paths if hasattr(plan, "paths") else [plan.path]
        rows = []
        for path in paths:
            index_name = path.index.name if path.index is not None else None
            extra = []
            if getattr(path, "ordered", False) or path.kind == "index_order":
                extra.append("ordered")
            if path.filter_fn is not None:
                extra.append("filter")
            rows.append((path.alias, path.table.name, path.kind,
                         index_name, ", ".join(extra)))
        if hasattr(plan, "has_aggregates") and plan.has_aggregates:
            rows.append(("", "", "aggregate", None, ""))
        if hasattr(plan, "order_items") and plan.order_items and \
                not getattr(plan, "ordered_by_index", False):
            rows.append(("", "", "sort", None, ""))
        return ResultSet(
            columns=["alias", "table", "access", "index", "notes"],
            rows=rows, kind="explain")


_EPHEMERAL_SESSION = Session()


def _estimate_result_bytes(rows: List[tuple]) -> int:
    """Approximate wire size of a result set."""
    total = 0
    for row in rows:
        for value in row:
            if value is None:
                total += 4
            elif isinstance(value, str):
                total += len(value)
            else:
                total += 8
    return total

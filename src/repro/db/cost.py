"""The query cost model: CPU-seconds charged to the database server.

Every executed statement is priced from its :class:`ExecStats` row
accounting.  Two scaling rules make a reduced dataset produce full-scale
demands:

* rows reached by a **full scan** are multiplied by the table's scale
  factor (nominal rows / loaded rows) -- a scan of the 10,000-item TPC-W
  table costs the same whether 100 or 10,000 rows are loaded;
* rows reached through an **index** are priced as counted, because the
  data generators keep per-entity relation sizes (bids per item, orders
  per customer, ...) constant across scales.

The constants were calibrated so that the six configurations land near
the paper's absolute peak throughputs (see EXPERIMENTS.md); their values
are deliberately centralized here so ablation benches can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class CostConstants:
    """Per-operation CPU prices on the database server, in seconds."""

    per_query_base: float = 0.15e-3    # parse/dispatch/connection handling
    per_row_scanned: float = 4.0e-6    # sequential examine + predicate
    per_row_indexed: float = 30.0e-6   # index traversal + row fetch
    per_row_sorted: float = 8.0e-6     # sort work per (scaled) row
    per_row_returned: float = 10.0e-6  # result marshalling per row
    per_byte_returned: float = 8.0e-9  # result marshalling per byte
    per_row_written: float = 120.0e-6  # heap + index maintenance
    per_lock_statement: float = 0.18e-3  # explicit LOCK/UNLOCK TABLES round


@dataclass(frozen=True)
class TableScale:
    """Scaling context for one table: declared vs loaded cardinalities."""

    nominal: int
    loaded: int
    distinct: dict

    def scan_factor(self) -> float:
        if self.nominal and self.loaded:
            return max(1.0, self.nominal / self.loaded)
        return 1.0

    def probe_factor(self, column) -> float:
        """How much bigger a full-scale index probe on ``column`` is.

        For columns with a declared full-scale distinct count D, a probe
        matches nominal/D rows at full scale but loaded/min(D, loaded)
        rows as loaded.  Undeclared columns have scale-invariant per-key
        cardinality (factor 1).
        """
        distinct_full = self.distinct.get(column) if column else None
        if not distinct_full or not self.nominal or not self.loaded:
            return 1.0
        full_card = self.nominal / distinct_full
        loaded_card = self.loaded / min(distinct_full, self.loaded)
        return max(1.0, full_card / loaded_card)


@dataclass(frozen=True)
class QueryCost:
    """Priced cost of one statement."""

    cpu_seconds: float
    scaled_rows_examined: float
    result_bytes: int

    def __add__(self, other: "QueryCost") -> "QueryCost":
        return QueryCost(
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            scaled_rows_examined=(self.scaled_rows_examined +
                                  other.scaled_rows_examined),
            result_bytes=self.result_bytes + other.result_bytes)


ZERO_COST = QueryCost(cpu_seconds=0.0, scaled_rows_examined=0.0, result_bytes=0)


class CostModel:
    """Prices ExecStats into CPU-seconds using per-table scale factors."""

    def __init__(self, constants: CostConstants | None = None):
        self.constants = constants or CostConstants()

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with some constants replaced (for ablation benches)."""
        return CostModel(replace(self.constants, **kwargs))

    def price(self, stats, scale_ctx: Dict[str, TableScale],
              result_bytes: int = 0, lock_statements: int = 0) -> QueryCost:
        """Price one statement given per-table scaling context."""
        k = self.constants
        scanned = 0.0
        feed_factors = [1.0]
        for table, count in stats.rows_examined_scan.items():
            ctx = scale_ctx.get(table)
            factor = ctx.scan_factor() if ctx else 1.0
            scanned += count * factor
            feed_factors.append(factor)
        indexed = 0.0
        for (table, column), count in stats.rows_examined_index.items():
            ctx = scale_ctx.get(table)
            factor = ctx.probe_factor(column) if ctx else 1.0
            indexed += count * factor
            feed_factors.append(factor)
        # A sort grows with whatever fed it.
        sort_scale = max(feed_factors)
        cpu = (k.per_query_base
               + scanned * k.per_row_scanned
               + indexed * k.per_row_indexed
               + stats.sort_rows * sort_scale * k.per_row_sorted
               + stats.rows_returned * k.per_row_returned
               + result_bytes * k.per_byte_returned
               + stats.rows_changed * k.per_row_written
               + lock_statements * k.per_lock_statement)
        return QueryCost(cpu_seconds=cpu,
                         scaled_rows_examined=scanned + indexed,
                         result_bytes=result_bytes)

"""Row storage: a heap of rows per table plus maintained indexes."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.db.errors import IntegrityError, SqlError
from repro.db.index import HashIndex, SortedIndex, make_index
from repro.db.schema import IndexDef, TableSchema


class Table:
    """A heap of rows with tombstone deletion and index maintenance.

    Row ids are positions in the row array; deleted slots hold ``None``.
    The primary key (when declared) is backed by a unique index; an
    INT auto-increment primary key is assigned on insert when the caller
    passes ``None``, mirroring MySQL.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.name = schema.name
        self._colmap: Dict[str, int] = {
            col.name: pos for pos, col in enumerate(schema.columns)}
        self._rows: List[Optional[list]] = []
        self._live = 0
        self._next_auto = 1
        self.indexes: Dict[str, object] = {}
        if schema.primary_key is not None:
            self._add_index(IndexDef(
                name=f"pk_{schema.name}", columns=(schema.primary_key,),
                unique=True, kind="sorted"))
        for index_def in schema.indexes:
            self._add_index(index_def)

    # -- shape ----------------------------------------------------------------

    def column_pos(self, name: str) -> int:
        try:
            return self._colmap[name]
        except KeyError:
            raise SqlError(
                f"table {self.name!r} has no column {name!r}") from None

    def __len__(self) -> int:
        return self._live

    @property
    def next_auto_increment(self) -> int:
        return self._next_auto

    # -- index plumbing ---------------------------------------------------------

    def _add_index(self, index_def: IndexDef) -> None:
        if index_def.name in self.indexes:
            raise SqlError(f"duplicate index name {index_def.name!r}")
        for col in index_def.columns:
            self.column_pos(col)  # validates existence
        index = make_index(index_def.kind, index_def.name,
                           index_def.columns, index_def.unique)
        # Backfill existing rows.
        for rowid, row in enumerate(self._rows):
            if row is not None:
                index.insert(self._key_of(index, row), rowid)
        self.indexes[index_def.name] = index

    def create_index(self, index_def: IndexDef) -> None:
        """Add a secondary index after table creation."""
        self._add_index(index_def)

    def drop_index(self, name: str) -> None:
        """Remove a secondary index; the primary-key index is protected."""
        if name not in self.indexes:
            raise SqlError(
                f"table {self.name!r} has no index {name!r}")
        if self.schema.primary_key is not None and \
                name == f"pk_{self.name}":
            raise SqlError(
                f"cannot drop primary-key index {name!r} of {self.name!r}")
        del self.indexes[name]

    def _key_of(self, index, row: Sequence) -> tuple:
        return tuple(row[self._colmap[c]] for c in index.columns)

    def index_on(self, columns: Sequence[str]):
        """The first index whose leading columns equal ``columns``, or None."""
        want = tuple(columns)
        for index in self.indexes.values():
            if tuple(index.columns[:len(want)]) == want:
                return index
        return None

    def sorted_index_on(self, columns: Sequence[str]) -> Optional[SortedIndex]:
        want = tuple(columns)
        for index in self.indexes.values():
            if isinstance(index, SortedIndex) and \
                    tuple(index.columns[:len(want)]) == want:
                return index
        return None

    # -- row operations -----------------------------------------------------------

    def insert(self, values: Dict[str, object]) -> int:
        """Insert one row from a column->value mapping; returns the rowid.

        Missing columns get their declared defaults; an omitted (or None)
        auto-increment key is assigned the next counter value.
        """
        row = []
        for col in self.schema.columns:
            if col.name in values:
                value = col.type.coerce(values[col.name])
            else:
                value = col.default
            row.append(value)
        unknown = set(values) - set(self._colmap)
        if unknown:
            raise SqlError(
                f"insert into {self.name!r}: unknown columns {sorted(unknown)}")

        pk = self.schema.primary_key
        if pk is not None:
            pk_pos = self._colmap[pk]
            if row[pk_pos] is None:
                if not self.schema.auto_increment:
                    raise IntegrityError(
                        f"table {self.name!r}: NULL primary key")
                row[pk_pos] = self._next_auto
                self._next_auto += 1
            elif self.schema.auto_increment and isinstance(row[pk_pos], int):
                self._next_auto = max(self._next_auto, row[pk_pos] + 1)

        for col, value in zip(self.schema.columns, row):
            if value is None and not col.nullable and col.name != pk:
                raise IntegrityError(
                    f"table {self.name!r}: column {col.name!r} is NOT NULL")
            if not col.type.accepts(value):
                raise SqlError(
                    f"table {self.name!r}.{col.name}: {value!r} is not "
                    f"a {col.type.value}")

        rowid = len(self._rows)
        # Validate unique indexes *before* mutating any of them so a
        # violation leaves every index untouched.
        inserted = []
        try:
            self._rows.append(row)
            for index in self.indexes.values():
                index.insert(self._key_of(index, row), rowid)
                inserted.append(index)
        except IntegrityError:
            for index in inserted:
                index.delete(self._key_of(index, row), rowid)
            self._rows.pop()
            raise
        self._live += 1
        return rowid

    def delete_row(self, rowid: int) -> None:
        row = self._rows[rowid]
        if row is None:
            return
        for index in self.indexes.values():
            index.delete(self._key_of(index, row), rowid)
        self._rows[rowid] = None
        self._live -= 1

    def update_row(self, rowid: int, changes: Dict[str, object]) -> None:
        row = self._rows[rowid]
        if row is None:
            raise SqlError(f"update of deleted row {rowid} in {self.name!r}")
        touched = [name for name in changes if name in self._colmap]
        if len(touched) != len(changes):
            unknown = set(changes) - set(self._colmap)
            raise SqlError(
                f"update {self.name!r}: unknown columns {sorted(unknown)}")
        affected = [
            index for index in self.indexes.values()
            if any(c in changes for c in index.columns)]
        old_image = list(row)
        old_keys = [(index, self._key_of(index, row)) for index in affected]
        for index, key in old_keys:
            index.delete(key, rowid)
        reinserted = []
        try:
            for name, value in changes.items():
                col = self.schema.column(name)
                coerced = col.type.coerce(value)
                if not col.type.accepts(coerced):
                    raise SqlError(
                        f"table {self.name!r}.{name}: {value!r} is not "
                        f"a {col.type.value}")
                row[self._colmap[name]] = coerced
            for index in affected:
                index.insert(self._key_of(index, row), rowid)
                reinserted.append(index)
        except (IntegrityError, SqlError):
            # Restore the row image and the original index entries.
            for index in reinserted:
                index.delete(self._key_of(index, row), rowid)
            row[:] = old_image
            for index, key in old_keys:
                index.insert(key, rowid)
            raise

    def get_row(self, rowid: int) -> Optional[list]:
        if 0 <= rowid < len(self._rows):
            return self._rows[rowid]
        return None

    def scan(self) -> Iterator[int]:
        """Yield live row ids in heap order."""
        for rowid, row in enumerate(self._rows):
            if row is not None:
                yield rowid

    def rows_as_dicts(self) -> Iterator[Dict[str, object]]:
        """Convenience for tests and data generators."""
        names = self.schema.column_names()
        for row in self._rows:
            if row is not None:
                yield dict(zip(names, row))

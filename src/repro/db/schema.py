"""Table schemas, column types, index definitions, and nominal statistics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.db.errors import SqlError


class ColumnType(enum.Enum):
    """The engine's value domains (a practical subset of MySQL 3.23's)."""

    INT = "int"
    FLOAT = "float"
    VARCHAR = "varchar"
    TEXT = "text"
    DATETIME = "datetime"   # stored as float seconds since epoch

    def accepts(self, value) -> bool:
        if value is None:
            return True
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self in (ColumnType.FLOAT, ColumnType.DATETIME):
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)

    def coerce(self, value):
        """Light coercion matching MySQL's permissiveness."""
        if value is None:
            return None
        if self is ColumnType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and value.is_integer():
                return int(value)
            return value
        if self in (ColumnType.FLOAT, ColumnType.DATETIME):
            if isinstance(value, int) and not isinstance(value, bool):
                return float(value)
            return value
        return value


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    type: ColumnType
    nullable: bool = True
    default: object = None
    # Approximate on-disk width, used by the cost model to price result
    # transfer and row examination.
    byte_width: int = 0

    def width(self) -> int:
        if self.byte_width:
            return self.byte_width
        return {
            ColumnType.INT: 4,
            ColumnType.FLOAT: 8,
            ColumnType.DATETIME: 8,
            ColumnType.VARCHAR: 32,
            ColumnType.TEXT: 256,
        }[self.type]


@dataclass(frozen=True)
class IndexDef:
    """A secondary (or primary) index over one or more columns."""

    name: str
    columns: tuple
    unique: bool = False
    # "hash" supports equality probes; "sorted" also supports ranges and
    # ordered scans.
    kind: str = "sorted"

    def __post_init__(self):
        if not self.columns:
            raise SqlError(f"index {self.name!r} needs at least one column")
        if self.kind not in ("hash", "sorted"):
            raise SqlError(f"index {self.name!r}: unknown kind {self.kind!r}")


@dataclass
class TableStats:
    """Nominal (full-scale) statistics used by the planner's cost model.

    The functional layer may hold a 1/100-scale dataset; declaring the
    paper's cardinalities here makes the priced cost of each query match
    the full-scale system regardless of the loaded scale.

    ``distinct_values`` declares the *full-scale* number of distinct keys
    for columns whose per-key cardinality grows with the table (e.g. the
    24 bookstore subjects: items-per-subject grows as items grow).
    Columns not declared are assumed to have per-key cardinality that is
    scale-invariant (primary keys, foreign keys into tables that scale
    together, like bids-per-item).
    """

    nominal_rows: int = 0
    avg_row_bytes: int = 64
    distinct_values: Dict[str, int] = field(default_factory=dict)


@dataclass
class TableSchema:
    """Schema of a single table."""

    name: str
    columns: Sequence[Column]
    primary_key: Optional[str] = None
    indexes: Sequence[IndexDef] = field(default_factory=tuple)
    auto_increment: bool = False
    stats: TableStats = field(default_factory=TableStats)

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SqlError(f"table {self.name!r} has duplicate column names")
        if self.primary_key is not None and self.primary_key not in names:
            raise SqlError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                "is not a column")
        if self.auto_increment:
            if self.primary_key is None:
                raise SqlError(
                    f"table {self.name!r}: auto_increment requires a primary key")
            pk = self.column(self.primary_key)
            if pk.type is not ColumnType.INT:
                raise SqlError(
                    f"table {self.name!r}: auto_increment key must be INT")
        for index in self.indexes:
            for col in index.columns:
                if col not in names:
                    raise SqlError(
                        f"table {self.name!r}: index {index.name!r} references "
                        f"unknown column {col!r}")

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SqlError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> list:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def row_bytes(self) -> int:
        """Approximate stored width of one row."""
        return sum(c.width() for c in self.columns)

"""The simulated site: replays interaction profiles over machines.

One :class:`SimulatedSite` is a full deployment of one configuration:
machines on a switched LAN, the database's table-lock manager, the
container's sync-lock registry, and the per-component CPU cost tables.
The client population calls :meth:`perform` for each interaction; the
method is a simulator process that walks the profile's steps charging
CPU, wire time, and lock waits in virtual time.

The contention mechanics are real, not modeled:

* every statement takes MyISAM-style per-table locks (write-priority
  RW locks) for its execution time;
* an explicit ``LOCK TABLES`` span holds its locks across all the
  round trips inside the span -- this is what caps the non-sync
  bookstore configurations;
* sync spans hold named locks in the *container* instead, so database
  readers keep flowing -- the (sync) configurations' advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.harness.profiles import AppProfile, InteractionVariant
from repro.machine.machine import Machine, MachineSpec
from repro.middleware.ejb.container import EjbCosts
from repro.middleware.ejb.session import RmiCosts
from repro.middleware.phpmod.module import PhpCosts
from repro.middleware.servlet.ajp import AjpCosts
from repro.middleware.servlet.engine import ServletCosts
from repro.db.driver import (
    EJB_JDBC_OVERHEADS,
    JDBC_OVERHEADS,
    NATIVE_OVERHEADS,
)
from repro.faults.errors import AdmissionReject, TierDown, TransientDbError
from repro.net.lan import Lan
from repro.sim.kernel import Process, Simulator
from repro.sim.resources import (
    Resource,
    RWLock,
    safe_acquire,
    safe_acquire_read,
    safe_acquire_write,
    traced_acquire,
    traced_acquire_lock,
)
from repro.topology.configs import Configuration
from repro.web.server import (
    SPAN_ACCEPT_QUEUE,
    SPAN_AJP_REPLY,
    SPAN_AJP_REQUEST,
    SPAN_HTTP,
    SPAN_REPLY,
    WebServerConfig,
)


@dataclass(frozen=True)
class SimCosts:
    """Replay-level constants and ablation switches."""

    request_bytes: int = 420          # client HTTP request incl. headers
    image_request_bytes: int = 240    # per embedded-image GET
    db_lock_statement_cpu: float = 0.18e-3
    client_nic_bandwidth: float = 10e9   # aggregate of many client boxes
    # Ablations (DESIGN.md section 5):
    # MyISAM gives waiting writers priority over new readers; set False
    # to evaluate FIFO/reader-friendly table locks.
    db_write_priority: bool = True
    # Container sync-lock granularity: "entity" (Java-style per-object)
    # or "table" (as coarse as the database's own locks).
    sync_lock_granularity: str = "entity"


class SimulatedSite:
    """A deployed configuration under simulation."""

    def __init__(self, sim: Simulator, config: Configuration,
                 profile: AppProfile,
                 ssl_interactions: frozenset = frozenset(),
                 costs: Optional[SimCosts] = None,
                 web_config: Optional[WebServerConfig] = None,
                 php_costs: Optional[PhpCosts] = None,
                 servlet_costs: Optional[ServletCosts] = None,
                 ejb_costs: Optional[EjbCosts] = None,
                 ajp_costs: Optional[AjpCosts] = None,
                 rmi_costs: Optional[RmiCosts] = None):
        if config.flavor != profile.flavor:
            raise ValueError(
                f"configuration {config.name} needs a {config.flavor!r} "
                f"profile, got {profile.flavor!r}")
        self.sim = sim
        self.config = config
        self.profile = profile
        self.costs = costs or SimCosts()
        self.web_config = web_config or WebServerConfig()
        self.php_costs = php_costs or PhpCosts()
        self.servlet_costs = servlet_costs or ServletCosts()
        self.ejb_costs = ejb_costs or EjbCosts()
        self.ajp_costs = ajp_costs or AjpCosts()
        self.rmi_costs = rmi_costs or RmiCosts()
        self.ssl_interactions = ssl_interactions

        self.lan = Lan(sim)
        self.machines: Dict[str, Machine] = {}
        for name in config.machine_names():
            machine = Machine(sim, name)
            self.machines[name] = machine
            self.lan.attach(machine)
        # The client side is an aggregate pseudo-machine with a fat NIC
        # (the paper uses "enough client machines" that clients are never
        # the bottleneck).
        self.client_machine = Machine(
            sim, "clients",
            MachineSpec(nic_bandwidth_bps=self.costs.client_nic_bandwidth))
        self.lan.attach(self.client_machine)

        self.web = self.machines[config.machine_of("web")]
        self.gen = self.machines[config.machine_of("gen")]
        self.db = self.machines[config.machine_of("db")]
        self.ejb = self.machines[config.machine_of("ejb")] \
            if "ejb" in config.placement else None

        # Apache's process pool (512 in the paper's configuration).
        self.web_processes = Resource(
            sim, capacity=self.web_config.max_processes, name="httpd")
        # MyISAM table locks, created on demand.
        self._table_locks: Dict[str, RWLock] = {}
        # Container sync locks (servlet_sync flavor), created on demand.
        self._sync_locks: Dict[str, RWLock] = {}
        # Interactions completed (all phases; the population windows it).
        self.interactions_done = 0
        # -- resilience state (repro.faults) --------------------------------
        # Machine names currently crashed; empty on the happy path, so
        # every check below is one falsy-set test.
        self.down: set = set()
        # Transient database-connection failure window active?
        self.db_conn_glitch = False
        # In-flight interaction processes (only tracked once a fault
        # injector attaches; the steady-state benchmark skips the dict).
        self._inflight: Dict[Process, str] = {}
        self._track_inflight = False
        # Requests shed by admission control / refused by a downed tier.
        self.rejections = 0
        # Accumulated virtual time spent *waiting* for locks (not
        # holding them): the direct measure of the contention the paper
        # attributes the bookstore results to.
        self.db_lock_wait_time = 0.0
        self.sync_lock_wait_time = 0.0

        if config.flavor == "php":
            self._driver = NATIVE_OVERHEADS
        elif config.flavor == "ejb":
            self._driver = EJB_JDBC_OVERHEADS
        else:
            self._driver = JDBC_OVERHEADS
        # The machine that issues database queries.
        self.db_client = self.ejb if config.flavor == "ejb" else self.gen

    # -- lock tables ---------------------------------------------------------------

    def table_lock(self, table: str) -> RWLock:
        lock = self._table_locks.get(table)
        if lock is None:
            lock = RWLock(self.sim,
                          write_priority=self.costs.db_write_priority,
                          name=f"db.{table}")
            self._table_locks[table] = lock
        return lock

    def sync_lock(self, name: str, route=None) -> RWLock:
        registry = self._sync_registry(route)
        lock = registry.get(name)
        if lock is None:
            lock = RWLock(self.sim, write_priority=True, name=f"sync.{name}")
            registry[name] = lock
        return lock

    def _sync_registry(self, route) -> Dict[str, RWLock]:
        """Registry holding the container sync locks for this route.
        One registry here; one per servlet-engine replica in a cluster."""
        return self._sync_locks

    # -- fault-injection surface (driven by repro.faults.FaultInjector) -------------

    def enable_fault_tracking(self) -> None:
        """Start registering in-flight interactions so crashes can abort
        them.  Idempotent; off by default to keep the happy path free."""
        self._track_inflight = True

    def mark_down(self, machine_name: str) -> None:
        """Crash one machine: new requests through it fail fast."""
        if machine_name not in self.machines:
            raise KeyError(f"configuration {self.config.name!r} has no "
                           f"machine {machine_name!r}")
        self.down.add(machine_name)

    def mark_up(self, machine_name: str) -> None:
        """Restart a crashed machine (no-op if it was up)."""
        self.down.discard(machine_name)

    def inflight_processes(self) -> list:
        """Processes currently inside :meth:`perform` (for aborting)."""
        return [proc for proc in self._inflight if not proc.finished]

    def crash_victims(self, machine_name: str) -> list:
        """Processes to interrupt when ``machine_name`` crashes.

        With one machine per tier every in-flight interaction dies with
        it; a clustered site narrows this to the requests actually
        routed through the crashed pool member so the survivors keep
        running on their replicas.
        """
        return self.inflight_processes()

    def begin_db_glitch(self) -> None:
        self.db_conn_glitch = True

    def end_db_glitch(self) -> None:
        self.db_conn_glitch = False

    def _check_up(self, machine) -> None:
        if machine.name in self.down:
            raise TierDown(machine.name)

    # -- client API ------------------------------------------------------------------

    def new_session(self, client_id: int, rng) -> None:
        """Session start: nothing to do (connections are pooled)."""

    def end_session(self, client_id: int) -> None:
        """Session end: nothing to keep per session here (a clustered
        site drops the session's balancer affinity bindings)."""

    def perform(self, client_id: int, name: str, rng):
        """Simulator process: execute one interaction end to end.

        Raises :class:`~repro.faults.errors.TierDown`,
        :class:`~repro.faults.errors.TransientDbError` or
        :class:`~repro.faults.errors.AdmissionReject` when fault injection
        or admission control fails the request; every lock and slot taken
        so far is released on the way out.
        """
        variant = self.profile.profile(name).pick(rng)
        proc = self.sim.current_process if self._track_inflight else None
        if proc is not None:
            self._inflight[proc] = name
        tracer = self.sim.tracer
        rc = tracer.begin_request(name, client_id) \
            if tracer is not None else None
        try:
            yield from self._dispatch(variant, name, client_id, rng)
        finally:
            if proc is not None:
                self._inflight.pop(proc, None)
            if rc is not None:
                # Closes every span still open (crash/interrupt paths
                # included) and folds the request into the aggregates.
                rc.close()
        self.interactions_done += 1

    # -- routing (repro.cluster overrides these hooks) -------------------------------

    def _route(self, client_id: int, rng):
        """Pick the machines serving this request.  The base site is its
        own (only) route: ``route.web`` / ``route.gen`` / ``route.db`` /
        ``route.ejb`` / ``route.db_client`` / ``route.web_processes``
        resolve to the fixed tier attributes, and nothing is allocated
        per request."""
        return self

    def _end_route(self, route) -> None:
        """Release per-request routing state (balancer slots); no-op
        when the site is its own route."""

    def _dispatch(self, variant: InteractionVariant, name: str,
                  client_id: int, rng):
        route = self._route(client_id, rng)
        try:
            yield from self._perform(variant, name, rng, route)
        finally:
            self._end_route(route)

    def _perform(self, variant: InteractionVariant, name: str, rng, route):
        costs = self.costs
        web_cfg = self.web_config
        lan = self.lan
        web = route.web
        web_processes = route.web_processes
        tracer = self.sim.tracer
        rc = tracer.current() if tracer is not None else None

        # A crashed front end refuses the TCP connection outright.
        if self.down:
            self._check_up(web)
        # Client request reaches the web server; an Apache process is
        # held for the duration of the dynamic request.
        yield from lan.transfer(self.client_machine, web, costs.request_bytes)
        # Admission control: with every process busy and the accept queue
        # at its bound, shed the request with a fast 503.
        limit = web_cfg.accept_queue_limit
        if limit is not None \
                and web_processes.in_use >= web_processes.capacity \
                and web_processes.queue_length >= limit:
            self.rejections += 1
            yield from web.cpu.execute(web_cfg.per_reject_cpu)
            yield from lan.transfer(web, self.client_machine,
                                    web_cfg.reject_response_bytes)
            raise AdmissionReject(f"accept queue full "
                                  f"({web_processes.queue_length}"
                                  f" >= {limit})")
        if rc is None:
            yield from safe_acquire(web_processes)
        else:
            yield from traced_acquire(web_processes, rc,
                                      SPAN_ACCEPT_QUEUE, "queue", "web")
        try:
            span = rc.push(SPAN_HTTP, "phase", "web") \
                if rc is not None else None
            try:
                web_cpu = (web_cfg.per_request_cpu +
                           costs.request_bytes * web_cfg.per_net_byte_cpu)
                if name in self.ssl_interactions:
                    web_cpu += web_cfg.per_ssl_request_cpu
                yield from web.cpu.execute(web_cpu)

                if self.config.flavor == "php":
                    yield from self._run_php(variant, rng, route, rc)
                else:
                    yield from self._run_container(variant, rng, route, rc)
            finally:
                if span is not None:
                    rc.pop(span)

            # Reply to the client plus the embedded images it fetches.
            span = rc.push(SPAN_REPLY, "phase", "web") \
                if rc is not None else None
            try:
                reply_cpu = (variant.response_bytes + variant.image_bytes) * \
                    web_cfg.per_net_byte_cpu + \
                    variant.image_count * web_cfg.per_static_hit_cpu
                yield from web.cpu.execute(reply_cpu)
                yield from lan.transfer(web, self.client_machine,
                                        variant.response_bytes)
                if variant.image_count:
                    yield from lan.transfer(
                        self.client_machine, web,
                        variant.image_count * costs.image_request_bytes)
                    yield from lan.transfer(web, self.client_machine,
                                            variant.image_bytes)
            finally:
                if span is not None:
                    rc.pop(span)
        finally:
            web_processes.release()

    # -- generator execution ------------------------------------------------------------

    def _run_php(self, variant: InteractionVariant, rng, route, rc=None):
        """PHP module: everything happens in the web server process."""
        php = self.php_costs
        web = route.web
        span = rc.push("php.script", "phase", "web") \
            if rc is not None else None
        try:
            yield from web.cpu.execute(
                php.per_request +
                variant.response_bytes * php.per_output_byte +
                variant.query_count * php.per_query_call)
            yield from self._replay_steps(variant, rng, route, rc)
        finally:
            if span is not None:
                rc.pop(span)

    def _run_container(self, variant: InteractionVariant, rng, route,
                       rc=None):
        """Servlet (and EJB) flavors: AJP crossing, container work."""
        ajp = self.ajp_costs
        web = route.web
        gen = route.gen
        if self.down:
            # The AJP connector to a crashed container fails fast.
            self._check_up(gen)
        request_ipc = ajp.request_overhead_bytes + 80
        reply_ipc = ajp.reply_overhead_bytes + variant.response_bytes
        # Request crossing: web -> container.
        span = rc.push(SPAN_AJP_REQUEST, "ipc", gen.name) \
            if rc is not None else None
        try:
            yield from web.cpu.execute(
                ajp.per_message + request_ipc * ajp.per_byte)
            yield from self.lan.transfer(web, gen, request_ipc)
            yield from gen.cpu.execute(
                ajp.per_message + request_ipc * ajp.per_byte)
        finally:
            if span is not None:
                rc.pop(span)

        span = rc.push("servlet.engine", "phase", gen.name) \
            if rc is not None else None
        try:
            servlet = self.servlet_costs
            yield from gen.cpu.execute(
                servlet.per_request +
                variant.response_bytes * servlet.per_output_byte)
            if self.config.flavor != "ejb":
                yield from gen.cpu.execute(
                    variant.query_count * servlet.per_query_call)
            yield from self._replay_steps(variant, rng, route, rc)
        finally:
            if span is not None:
                rc.pop(span)

        # Reply crossing: container -> web.
        span = rc.push(SPAN_AJP_REPLY, "ipc", gen.name) \
            if rc is not None else None
        try:
            yield from gen.cpu.execute(
                ajp.per_message + reply_ipc * ajp.per_byte)
            yield from self.lan.transfer(gen, web, reply_ipc)
            yield from web.cpu.execute(
                ajp.per_message + reply_ipc * ajp.per_byte)
        finally:
            if span is not None:
                rc.pop(span)

    # -- step replay ---------------------------------------------------------------------

    def _replay_steps(self, variant: InteractionVariant, rng, route,
                      rc=None):
        held_explicit: Dict[str, str] = {}
        held_sync: list = []
        key_draws: Dict[int, int] = {}
        try:
            if rc is None:
                # Hot path: identical to the untraced replay loop that
                # the perf harness benchmarks.
                for step in variant.steps:
                    kind = step[0]
                    if kind == "query":
                        yield from self._db_query(step, held_explicit,
                                                  route)
                    elif kind == "lock":
                        yield from self._db_explicit_lock(step[1],
                                                          held_explicit,
                                                          route)
                    elif kind == "unlock":
                        self._db_explicit_unlock(held_explicit)
                        yield from route.db.cpu.execute(
                            self.costs.db_lock_statement_cpu)
                    elif kind == "sync_acquire":
                        yield from self._sync_acquire(step[1], held_sync,
                                                      rng, key_draws, route)
                    elif kind == "sync_release":
                        self._sync_release(step[1], held_sync, route)
                    elif kind == "rmi":
                        yield from self._rmi_crossing(step[1], step[2],
                                                      route)
                    elif kind == "ejb_work":
                        yield from self._ejb_work(step[1], step[2], step[3],
                                                  route)
            else:
                labels = variant.step_labels
                nlabels = len(labels)
                for i, step in enumerate(variant.steps):
                    label = labels[i] if i < nlabels else ""
                    kind = step[0]
                    if kind == "query":
                        yield from self._db_query(step, held_explicit,
                                                  route, rc, label)
                    elif kind == "lock":
                        yield from self._db_explicit_lock(
                            step[1], held_explicit, route, rc, label)
                    elif kind == "unlock":
                        self._db_explicit_unlock(held_explicit)
                        yield from route.db.cpu.execute(
                            self.costs.db_lock_statement_cpu)
                    elif kind == "sync_acquire":
                        yield from self._sync_acquire(step[1], held_sync,
                                                      rng, key_draws, route,
                                                      rc, label)
                    elif kind == "sync_release":
                        self._sync_release(step[1], held_sync, route)
                    elif kind == "rmi":
                        yield from self._rmi_crossing(step[1], step[2],
                                                      route, rc, label)
                    elif kind == "ejb_work":
                        yield from self._ejb_work(step[1], step[2], step[3],
                                                  route, rc, label)
        finally:
            # Defensive cleanup: a variant always closes its spans, but
            # never leave locks dangling if one did not.
            if held_explicit:
                self._db_explicit_unlock(held_explicit)
            if held_sync:
                self._sync_release([name for name, __, __ in held_sync],
                                   held_sync, route)

    def _db_query(self, step, held_explicit, route, rc=None, label=""):
        yield from self._db_access(step, held_explicit, route,
                                   self._db_target(route), rc, label)

    def _db_target(self, route):
        """Database machine serving this statement; the clustered site
        splits reads off to replicas here."""
        return route.db

    def _db_access(self, step, held_explicit, route, db, rc=None, label=""):
        __, db_cpu, request_bytes, reply_bytes, reads, writes, count = step
        issuer = route.db_client
        driver = self._driver
        if self.down:
            self._check_up(db)
        if self.db_conn_glitch:
            # Transient: getting a connection fails, the DB box is fine.
            yield from issuer.cpu.execute(driver.per_call)
            raise TransientDbError("database connection refused")
        span = rc.push("db.query", "db", db.name,
                       meta={"origin": label, "count": count}) \
            if rc is not None else None
        try:
            # Client-side driver work (count > 1 for coalesced batches).
            yield from issuer.cpu.execute(
                count * driver.per_call +
                reply_bytes * driver.per_result_byte)
            yield from self.lan.transfer(issuer, db, request_bytes)
            # Per-statement MyISAM locks (skipped inside LOCK TABLES).
            taken = []
            try:
                if not held_explicit:
                    write_set = sorted(set(writes))
                    read_set = sorted(set(reads) - set(writes))
                    for table in sorted(set(write_set) | set(read_set)):
                        lock = self._instance_table_lock(db, table)
                        mode = "WRITE" if table in write_set else "READ"
                        waited_from = self.sim.now
                        if rc is not None:
                            yield from traced_acquire_lock(
                                lock, mode, rc, lock.name, "db", label)
                        elif mode == "WRITE":
                            yield from safe_acquire_write(lock)
                        else:
                            yield from safe_acquire_read(lock)
                        taken.append((lock, mode))
                        self.db_lock_wait_time += self.sim.now - waited_from
                yield from db.cpu.execute(db_cpu)
            finally:
                for lock, mode in taken:
                    if mode == "WRITE":
                        lock.release_write()
                    else:
                        lock.release_read()
            if writes:
                self._note_commit(route, writes, db_cpu)
            yield from self.lan.transfer(db, issuer, reply_bytes)
        finally:
            if span is not None:
                rc.pop(span)

    def _instance_table_lock(self, db, table: str) -> RWLock:
        """Table-lock registry of the database machine ``db``; one
        registry here, one per replica in a cluster."""
        return self.table_lock(table)

    def _note_commit(self, route, writes, db_cpu: float) -> None:
        """A write statement committed; the replicated DB ships it to
        the replicas.  Nothing to do with a single database."""

    def _db_explicit_lock(self, lock_set, held_explicit, route,
                          rc=None, label=""):
        """LOCK TABLES: take every lock (sorted order prevents deadlock),
        hold until UNLOCK TABLES."""
        if self.down:
            self._check_up(route.db)
        if held_explicit:           # MySQL implicitly releases first
            self._db_explicit_unlock(held_explicit)
        for table, mode in sorted(lock_set):
            lock = self.table_lock(table)
            waited_from = self.sim.now
            if rc is not None:
                yield from traced_acquire_lock(lock, mode, rc, lock.name,
                                               "db", label)
            elif mode == "WRITE":
                yield from safe_acquire_write(lock)
            else:
                yield from safe_acquire_read(lock)
            self.db_lock_wait_time += self.sim.now - waited_from
            held_explicit[table] = mode
        yield from route.db.cpu.execute(self.costs.db_lock_statement_cpu)

    def _db_explicit_unlock(self, held_explicit):
        for table, mode in list(held_explicit.items()):
            lock = self.table_lock(table)
            if mode == "WRITE":
                lock.release_write()
            else:
                lock.release_read()
        held_explicit.clear()

    def _sync_acquire(self, lock_set, held_sync, rng, key_draws, route,
                      rc=None, label=""):
        """Take container locks; placeholder slots get fresh entity keys
        drawn from the table's key space (consistent within one
        interaction, independent across interactions)."""
        gen = route.gen
        resolved = []
        table_granularity = self.costs.sync_lock_granularity == "table"
        for table, slot, mode in lock_set:
            if slot is None or table_granularity:
                resolved.append((table, mode))
            else:
                draw = key_draws.get(slot)
                if draw is None:
                    space = self.profile.key_spaces.get(table, 1_000_000)
                    draw = rng.randrange(max(1, space))
                    key_draws[slot] = draw
                resolved.append((f"{table}#{draw}", mode))
        # Coarsening can map two entries onto one name; keep WRITE.
        merged: Dict[str, str] = {}
        for name, mode in resolved:
            if merged.get(name) != "WRITE":
                merged[name] = mode
        resolved = list(merged.items())
        for name, mode in sorted(resolved):
            yield from gen.cpu.execute(self.servlet_costs.per_sync_lock)
            lock = self.sync_lock(name, route)
            waited_from = self.sim.now
            if rc is not None:
                yield from traced_acquire_lock(lock, mode, rc, lock.name,
                                               gen.name, label)
            elif mode == "WRITE":
                yield from safe_acquire_write(lock)
            else:
                yield from safe_acquire_read(lock)
            self.sync_lock_wait_time += self.sim.now - waited_from
            held_sync.append((name, mode, lock))

    def _sync_release(self, names, held_sync, route):
        registry = self._sync_registry(route)
        for name, mode, lock in list(held_sync):
            if mode == "WRITE":
                lock.release_write()
            else:
                lock.release_read()
            # Keyed entity locks are transient: drop idle ones so the
            # registry does not accumulate one lock per random key.
            if "#" in name and not lock.writer and not lock.readers \
                    and not lock.waiting_writers and not lock.waiting_readers:
                registry.pop(name, None)
        held_sync.clear()

    def _rmi_crossing(self, request_bytes, reply_bytes, route,
                      rc=None, label=""):
        """Servlet <-> EJB server round trip for one façade call."""
        rmi = self.rmi_costs
        servlet = route.gen
        ejb = route.ejb
        if self.down:
            self._check_up(ejb)
        span = rc.push("rmi", "rmi", ejb.name,
                       meta={"origin": label} if label else None) \
            if rc is not None else None
        try:
            yield from servlet.cpu.execute(
                rmi.per_call + request_bytes * rmi.per_byte)
            yield from self.lan.transfer(servlet, ejb, request_bytes)
            yield from ejb.cpu.execute(
                rmi.per_call + request_bytes * rmi.per_byte)
            # (the queries of the call replay as their own steps)
            yield from ejb.cpu.execute(
                rmi.per_call + reply_bytes * rmi.per_byte)
            yield from self.lan.transfer(ejb, servlet, reply_bytes)
            yield from servlet.cpu.execute(
                rmi.per_call + reply_bytes * rmi.per_byte)
        finally:
            if span is not None:
                rc.pop(span)

    def _ejb_work(self, loads, stores, fields, route, rc=None, label=""):
        k = self.ejb_costs
        ejb = route.ejb
        queries = 0  # driver costs are charged per query step
        cpu = (k.per_method + loads * k.per_entity_load +
               stores * k.per_entity_store + fields * k.per_field_access)
        span = rc.push("ejb.work", "ejb", ejb.name,
                       meta={"origin": label} if label else None) \
            if rc is not None else None
        try:
            yield from ejb.cpu.execute(cpu)
        finally:
            if span is not None:
                rc.pop(span)

    # -- reporting helpers ------------------------------------------------------------------

    def role_machines(self) -> Dict[str, Machine]:
        """Distinct machines keyed by their primary role name."""
        out: Dict[str, Machine] = {"web": self.web, "db": self.db}
        if self.gen is not self.web:
            out["servlet"] = self.gen
        if self.ejb is not None:
            out["ejb"] = self.ejb
        return out

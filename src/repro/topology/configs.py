"""The six hardware/software configurations of the paper (Figure 4).

Machine roles: ``web`` (Apache), ``gen`` (the dynamic-content generator:
the PHP module or the servlet container), ``ejb`` (the EJB server, only
in C6), ``db`` (MySQL).  Roles may share a machine; PHP *must* share
with the web server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Configuration:
    """One deployment shape."""

    name: str
    flavor: str           # "php" | "servlet" | "servlet_sync" | "ejb"
    # role -> machine name; machines are created per distinct name.
    placement: Dict[str, str]

    def machine_names(self) -> List[str]:
        seen: List[str] = []
        for name in self.placement.values():
            if name not in seen:
                seen.append(name)
        return seen

    def machine_of(self, role: str) -> str:
        try:
            return self.placement[role]
        except KeyError:
            raise KeyError(
                f"configuration {self.name!r} has no {role!r} role") from None

    def colocated(self, role_a: str, role_b: str) -> bool:
        return self.placement.get(role_a) == self.placement.get(role_b)

    @property
    def uses_sync_locking(self) -> bool:
        return self.flavor == "servlet_sync"

    @property
    def profile_flavor(self) -> str:
        return self.flavor

    def deploy(self, app):
        """Deploy ``app`` in this configuration's middleware flavor.

        ``app`` is an application instance or a registry name
        ("bookstore", ...); names go through
        :func:`repro.apps.build_app`.  Returns what the flavor's
        deploy method returns (the (presentation, container) pair for
        the EJB configuration).
        """
        if isinstance(app, str):
            from repro.apps import build_app
            __, deployment = build_app(app, self.flavor)
            return deployment
        return app.deploy(self.flavor)


WS_PHP_DB = Configuration(
    name="WsPhp-DB", flavor="php",
    placement={"web": "web", "gen": "web", "db": "db"})

WS_SERVLET_DB = Configuration(
    name="WsServlet-DB", flavor="servlet",
    placement={"web": "web", "gen": "web", "db": "db"})

WS_SERVLET_DB_SYNC = Configuration(
    name="WsServlet-DB(sync)", flavor="servlet_sync",
    placement={"web": "web", "gen": "web", "db": "db"})

WS_SEP_SERVLET_DB = Configuration(
    name="Ws-Servlet-DB", flavor="servlet",
    placement={"web": "web", "gen": "servlet", "db": "db"})

WS_SEP_SERVLET_DB_SYNC = Configuration(
    name="Ws-Servlet-DB(sync)", flavor="servlet_sync",
    placement={"web": "web", "gen": "servlet", "db": "db"})

WS_SERVLET_EJB_DB = Configuration(
    name="Ws-Servlet-EJB-DB", flavor="ejb",
    placement={"web": "web", "gen": "servlet", "ejb": "ejb", "db": "db"})

ALL_CONFIGURATIONS: Tuple[Configuration, ...] = (
    WS_PHP_DB,
    WS_SERVLET_DB,
    WS_SERVLET_DB_SYNC,
    WS_SEP_SERVLET_DB,
    WS_SEP_SERVLET_DB_SYNC,
    WS_SERVLET_EJB_DB,
)


def configuration_by_name(name: str) -> Configuration:
    for config in ALL_CONFIGURATIONS:
        if config.name == name:
            return config
    raise KeyError(f"unknown configuration {name!r}; have "
                   f"{[c.name for c in ALL_CONFIGURATIONS]}")


def configuration_names() -> Tuple[str, ...]:
    """The paper configurations' names, for CLI validation and help."""
    return tuple(config.name for config in ALL_CONFIGURATIONS)

"""Deployment topologies: the paper's six configurations."""

from repro.topology.configs import (
    ALL_CONFIGURATIONS,
    Configuration,
    WS_PHP_DB,
    WS_SERVLET_DB,
    WS_SERVLET_DB_SYNC,
    WS_SEP_SERVLET_DB,
    WS_SEP_SERVLET_DB_SYNC,
    WS_SERVLET_EJB_DB,
    configuration_by_name,
)
from repro.topology.simulation import SimCosts, SimulatedSite

__all__ = [
    "Configuration",
    "ALL_CONFIGURATIONS",
    "WS_PHP_DB",
    "WS_SERVLET_DB",
    "WS_SERVLET_DB_SYNC",
    "WS_SEP_SERVLET_DB",
    "WS_SEP_SERVLET_DB_SYNC",
    "WS_SERVLET_EJB_DB",
    "configuration_by_name",
    "SimulatedSite",
    "SimCosts",
]

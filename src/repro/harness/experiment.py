"""Experiment execution: ramp-up / measurement / ramp-down, and sweeps.

The measurement methodology follows the paper (§4.5): the system runs a
ramp-up phase to reach steady state, a measurement phase during which
throughput and sysstat samples are collected, and a ramp-down phase so
pending requests drain while measurement is already closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.harness.profiles import AppProfile
from repro.metrics.report import (
    ConfigurationSeries,
    CpuUtilization,
    ExperimentReport,
    ThroughputPoint,
)
from repro.metrics.sampler import SysstatSampler
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.topology.configs import Configuration
from repro.topology.simulation import SimCosts, SimulatedSite
from repro.web.server import WebServerConfig
from repro.workload.client import ClientPopulation, RetryPolicy, ThinkTimeSpec
from repro.workload.markov import choose_interaction


@dataclass
class ExperimentSpec:
    """Everything needed to run one (configuration, mix, clients) point."""

    config: Configuration
    profile: AppProfile
    mix: Dict[str, float]
    clients: int
    ramp_up: float = 60.0
    measure: float = 240.0
    ramp_down: float = 10.0
    think: ThinkTimeSpec = field(default_factory=ThinkTimeSpec)
    seed: int = 42
    ssl_interactions: frozenset = frozenset()
    sim_costs: Optional[SimCosts] = None
    sample_interval: float = 2.0
    # When set (a dict interaction -> seconds), the returned point carries
    # a WIRT compliance report over the measurement window.
    wirt_limits: Optional[Dict[str, float]] = None
    # Resilience (repro.faults): an optional crash/glitch schedule, a
    # client timeout/retry policy, and the web server's functional
    # config (admission control lives there).  All default to the
    # steady-state behaviour; run_experiment is unchanged without them.
    fault_plan: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    web_config: Optional[WebServerConfig] = None
    # Which application the profile belongs to.  Optional; when set, the
    # parallel runner ships specs without the (large) profile and
    # rehydrates it from each worker's cache (repro.harness.parallel).
    app_name: Optional[str] = None
    # Request-level tracing (repro.obs).  Off by default: the simulation
    # then runs the exact untraced hot path.  When on, the returned
    # point carries a ``bottleneck`` verdict and a ``tracer`` attribute
    # holding the full span aggregates.
    trace: bool = False
    # Overload resilience (repro.overload), all opt-in and typed loosely
    # so the package is only imported when actually used:
    # ``overload`` -- an OverloadSpec switches the run to the open-loop
    # population (session arrivals instead of a fixed client count;
    # ``clients`` is then ignored); ``degradation`` -- a
    # DegradationPolicy installs bounded tier queues, the DB circuit
    # breaker and priority shedding on the site (works for closed-loop
    # runs too); ``slo`` -- an SloSpec for the windowed SLO series
    # (open-loop runs default to SloSpec() when unset).
    overload: Optional[object] = None
    degradation: Optional[object] = None
    slo: Optional[object] = None

    def scaled(self, factor: float) -> "ExperimentSpec":
        """Shrink/grow phase durations (benches use factor < 1)."""
        return replace(self, ramp_up=self.ramp_up * factor,
                       measure=self.measure * factor,
                       ramp_down=self.ramp_down * factor)


def build_site(sim: Simulator, spec: ExperimentSpec) -> SimulatedSite:
    """The site for a spec: clustered when the configuration carries a
    cluster axis (:mod:`repro.cluster`), the plain single-machine-per-
    tier site otherwise.  The import stays lazy so the paper
    configurations never load the cluster package."""
    kwargs = dict(ssl_interactions=spec.ssl_interactions,
                  costs=spec.sim_costs or SimCosts(),
                  web_config=spec.web_config)
    if getattr(spec.config, "cluster", None) is not None:
        from repro.cluster.site import ClusteredSite
        site = ClusteredSite(sim, spec.config, spec.profile,
                             rng=RngStreams(spec.seed), **kwargs)
    else:
        site = SimulatedSite(sim, spec.config, spec.profile, **kwargs)
    if spec.degradation is not None:
        from repro.overload.degradation import install_degradation
        install_degradation(site, spec.degradation)
    return site


def run_experiment(spec: ExperimentSpec) -> ThroughputPoint:
    """Run one point and report its throughput + peak-window CPU."""
    if spec.overload is not None:
        from repro.overload.runner import run_open_loop
        return run_open_loop(spec)
    sim = Simulator()
    site = build_site(sim, spec)
    tracer = None
    if spec.trace:
        from repro.obs import Tracer
        tracer = Tracer(sim, window=(spec.ramp_up,
                                     spec.ramp_up + spec.measure))
        sim.tracer = tracer
    rng = RngStreams(spec.seed)
    population = ClientPopulation(
        sim, spec.clients, spec.mix, site, rng, choose_interaction,
        think=spec.think, retry=spec.retry)
    sampler = SysstatSampler(sim, site.machines,
                             interval=spec.sample_interval)
    if spec.fault_plan:
        FaultInjector(sim, site, spec.fault_plan).start()
    population.start()
    sampler.start()

    sim.run(until=spec.ramp_up)
    population.begin_measurement()
    db_wait0 = site.db_lock_wait_time
    sync_wait0 = site.sync_lock_wait_time
    measure_start = sim.now
    sim.run(until=spec.ramp_up + spec.measure)
    stats = population.end_measurement()
    measure_end = sim.now
    sim.run(until=spec.ramp_up + spec.measure + spec.ramp_down)

    minutes = (measure_end - measure_start) / 60.0
    throughput = stats.interactions_completed / minutes if minutes else 0.0

    roles = site.role_machines()
    cpu = CpuUtilization(
        web_server=sampler.mean_cpu(roles["web"].name, measure_start,
                                    measure_end),
        database=sampler.mean_cpu(roles["db"].name, measure_start,
                                  measure_end),
        servlet_container=sampler.mean_cpu(
            roles["servlet"].name, measure_start, measure_end)
        if "servlet" in roles else None,
        ejb_server=sampler.mean_cpu(roles["ejb"].name, measure_start,
                                    measure_end)
        if "ejb" in roles else None)
    completed = max(1, stats.interactions_completed)
    point = ThroughputPoint(
        clients=spec.clients, throughput_ipm=throughput, cpu=cpu,
        mean_response_time=stats.mean_response_time(),
        web_nic_tx_mbps=sampler.mean_nic_tx_mbps(
            roles["web"].name, measure_start, measure_end),
        db_lock_wait_per_interaction=(
            (site.db_lock_wait_time - db_wait0) / completed),
        sync_lock_wait_per_interaction=(
            (site.sync_lock_wait_time - sync_wait0) / completed),
        kernel_events=sim.events_processed)
    if spec.wirt_limits is not None:
        from repro.metrics.wirt import evaluate_wirt
        point.wirt = evaluate_wirt(stats, spec.wirt_limits)
    if tracer is not None:
        from repro.obs import build_report
        tracer.finalize()
        nic = site.web.nic
        nic_util = (point.web_nic_tx_mbps * 1e6) / nic.base_bandwidth
        bottleneck = build_report(
            tracer, configuration=spec.config.name,
            interaction_mix=spec.app_name or spec.profile.app_name,
            clients=spec.clients, web_nic_utilization=nic_util)
        point.bottleneck = bottleneck.bottleneck
        # Undeclared attributes: asdict()-based equality checks between
        # serial and parallel runs ignore them, and they never cross the
        # process pool (tracing runs serially).
        point.tracer = tracer
        point.bottleneck_report = bottleneck
    return point


def run_sweep(base: ExperimentSpec, client_counts: Iterable[int],
              jobs: Optional[int] = None) -> ConfigurationSeries:
    """One configuration across a grid of client counts.

    ``jobs`` of None/1 runs the exact legacy serial path; ``jobs`` > 1
    fans the independent points out over a process pool
    (:mod:`repro.harness.parallel`) and merges the results in client-
    count order, bit-identical to the serial output under pinned seeds.
    """
    counts = list(client_counts)
    if jobs is not None and jobs != 1:
        from repro.harness.parallel import run_sweep_parallel
        return run_sweep_parallel(base, counts, jobs=jobs)
    series = ConfigurationSeries(base.config.name)
    for clients in counts:
        point = run_experiment(replace(base, clients=clients))
        series.add(point)
    return series


def run_figure(title: str, workload: str,
               specs_by_config: Dict[str, ExperimentSpec],
               client_counts_by_config: Dict[str, Iterable[int]],
               jobs: Optional[int] = None) -> ExperimentReport:
    """Run every configuration's sweep and assemble a figure report.

    With ``jobs`` > 1 the *whole figure* (every configuration x client
    count) is one task pool, so stragglers in one configuration overlap
    with work from another; results are merged in the serial
    (configuration, client-count) order.
    """
    report = ExperimentReport(title=title, workload=workload)
    if jobs is not None and jobs != 1:
        from repro.harness.parallel import run_points
        labeled = [(name, replace(spec, clients=clients))
                   for name, spec in specs_by_config.items()
                   for clients in client_counts_by_config[name]]
        points = run_points([spec for __, spec in labeled], jobs=jobs)
        for (name, spec), point in zip(labeled, points):
            if name not in report.series:
                report.series[name] = ConfigurationSeries(spec.config.name)
            report.series[name].add(point)
        return report
    for name, spec in specs_by_config.items():
        series = run_sweep(spec, client_counts_by_config[name])
        report.series[name] = series
    return report
